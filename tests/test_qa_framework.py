"""Tests for the flowlint engine: pragmas, dispatch, reporters."""

import json
import textwrap

import pytest

from repro.qa.framework import (
    Finding,
    LintEngine,
    ModuleFile,
    Project,
    Rule,
    dotted_call_name,
    import_aliases,
    render_json,
    render_text,
)


def module(source, path="src/repro/fake/mod.py", name="repro.fake.mod"):
    return ModuleFile(path, textwrap.dedent(source), module=name)


class AlwaysFire(Rule):
    """Flags every module on line 1 — a probe for engine plumbing."""

    name = "always"
    description = "fires once per module"

    def check_module(self, mod):
        yield Finding(rule=self.name, path=mod.path, line=1, message="fired")


class FlagLine(Rule):
    name = "flag-line"
    description = "fires on a configured line"

    def __init__(self, line):
        self.line = line

    def check_module(self, mod):
        yield Finding(
            rule=self.name, path=mod.path, line=self.line, message="fired"
        )


class TestModuleFile:
    def test_module_name_inferred_from_path(self):
        mod = ModuleFile("src/repro/netsim/engine.py", "x = 1")
        assert mod.module == "repro.netsim.engine"

    def test_package_init_maps_to_package_name(self):
        mod = ModuleFile("src/repro/qa/__init__.py", "x = 1")
        assert mod.module == "repro.qa"

    def test_in_package_matches_exact_and_children(self):
        mod = ModuleFile("src/repro/netsim/engine.py", "x = 1")
        assert mod.in_package(("repro.netsim",))
        assert mod.in_package(("repro.netsim.engine",))
        assert not mod.in_package(("repro.net",))

    def test_parse_error_is_captured_not_raised(self):
        mod = module("def broken(:\n")
        assert mod.tree is None
        assert mod.parse_error is not None


class TestPragmas:
    def test_line_pragma_parsed_with_justification(self):
        mod = module(
            """\
            import time
            t = time.time()  # flowlint: disable=sim-clock -- telemetry only
            """
        )
        (pragma,) = mod.pragmas()
        assert pragma.line == 2
        assert not pragma.file_wide
        assert pragma.rules == ("sim-clock",)
        assert pragma.justification == "telemetry only"

    def test_file_pragma_and_multiple_rules(self):
        mod = module(
            """\
            # flowlint: disable-file=determinism,sim-clock -- fuzz harness
            x = 1
            """
        )
        (pragma,) = mod.pragmas()
        assert pragma.file_wide
        assert set(pragma.rules) == {"determinism", "sim-clock"}

    def test_pragma_text_inside_docstring_is_ignored(self):
        mod = module(
            '''\
            """Docs show ``# flowlint: disable=sim-clock`` as an example."""
            x = 1
            '''
        )
        assert mod.pragmas() == []

    def test_unjustified_pragma_is_a_finding(self):
        mod = module("x = 1  # flowlint: disable=always\n")
        result = LintEngine([AlwaysFire()]).run(Project([mod]))
        rules = [f.rule for f in result.findings]
        assert "pragma-justification" in rules


class TestEngine:
    def test_line_pragma_suppresses_only_its_line(self):
        mod = module(
            """\
            a = 1  # flowlint: disable=flag-line -- known exception
            b = 2
            """
        )
        hit = LintEngine([FlagLine(2)]).run(Project([mod]))
        assert [f.rule for f in hit.findings] == ["flag-line"]
        missed = LintEngine([FlagLine(1)]).run(Project([mod]))
        assert missed.findings == []
        assert missed.suppressed == 1

    def test_file_pragma_suppresses_everywhere(self):
        mod = module(
            """\
            # flowlint: disable-file=flag-line -- whole file exempt
            a = 1
            """
        )
        result = LintEngine([FlagLine(2)]).run(Project([mod]))
        assert result.ok
        assert result.suppressed == 1

    def test_pragma_for_other_rule_does_not_suppress(self):
        mod = module("a = 1  # flowlint: disable=other -- wrong rule\n")
        result = LintEngine([FlagLine(1)]).run(Project([mod]))
        assert [f.rule for f in result.findings] == ["flag-line"]

    def test_syntax_error_becomes_parse_error_finding(self):
        good = module("x = 1\n", path="a.py", name="repro.fake.a")
        bad = module("def broken(:\n", path="b.py", name="repro.fake.b")
        result = LintEngine([AlwaysFire()]).run(Project([good, bad]))
        by_rule = {f.rule for f in result.findings}
        assert "parse-error" in by_rule
        # The good module is still linted.
        assert any(f.rule == "always" and f.path == "a.py" for f in result.findings)

    def test_findings_sorted_by_path_line_rule(self):
        mods = [
            module("x = 1\n", path="z.py", name="repro.fake.z"),
            module("x = 1\n", path="a.py", name="repro.fake.a"),
        ]
        result = LintEngine([AlwaysFire()]).run(Project(mods))
        assert [f.path for f in result.findings] == ["a.py", "z.py"]

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            LintEngine([AlwaysFire(), AlwaysFire()])

    def test_empty_rule_name_rejected(self):
        with pytest.raises(ValueError):
            LintEngine([Rule()])


class TestReporters:
    def test_text_report_is_editor_clickable(self):
        result = LintEngine([AlwaysFire()]).run(
            Project([module("x = 1\n", path="m.py", name="repro.fake.m")])
        )
        text = render_text(result)
        assert "m.py:1: [always] fired" in text

    def test_clean_text_report_says_clean(self):
        result = LintEngine([]).run(Project([module("x = 1\n")]))
        assert render_text(result).startswith("clean:")

    def test_json_report_round_trips(self):
        mod = module(
            "x = 1  # flowlint: disable=nothing -- documented\n",
            path="m.py",
            name="repro.fake.m",
        )
        result = LintEngine([AlwaysFire()]).run(Project([mod]))
        payload = json.loads(render_json(result))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "always"
        assert payload["pragmas"][0]["justification"] == "documented"


class TestAstHelpers:
    def test_import_aliases_cover_the_forms(self):
        mod = module(
            """\
            import time
            import datetime as dt
            import os.path
            from time import perf_counter as pc
            from random import random
            """
        )
        aliases = import_aliases(mod.tree)
        assert aliases["time"] == "time"
        assert aliases["dt"] == "datetime"
        assert aliases["os"] == "os"
        assert aliases["pc"] == "time.perf_counter"
        assert aliases["random"] == "random.random"

    def test_dotted_call_name_resolves_through_aliases(self):
        mod = module(
            """\
            import datetime as dt
            from time import perf_counter as pc
            a = pc()
            b = dt.datetime.now()
            c = (lambda: 0)()
            """
        )
        aliases = import_aliases(mod.tree)
        import ast

        calls = [n for n in ast.walk(mod.tree) if isinstance(n, ast.Call)]
        names = {dotted_call_name(c, aliases) for c in calls}
        assert "time.perf_counter" in names
        assert "datetime.datetime.now" in names
        assert None in names  # the lambda call has no dotted name
