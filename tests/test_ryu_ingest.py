"""Tests for the Ryu capture adapter."""

import io
import json

import pytest

from repro.openflow.messages import FlowRemovedReason
from repro.openflow.ryu_ingest import event_to_message, load_ryu_log


def line(**kwargs):
    return json.dumps(kwargs)


PACKET_IN = dict(
    event="packet_in",
    time=12.345,
    dpid=1,
    in_port=3,
    buffer_id=256,
    match={
        "ipv4_src": "10.0.0.1",
        "ipv4_dst": "10.0.0.2",
        "tcp_src": 43210,
        "tcp_dst": 80,
        "ip_proto": 6,
    },
)


class TestEventConversion:
    def test_packet_in(self):
        msg = event_to_message(PACKET_IN)
        assert msg.timestamp == 12.345
        assert msg.dpid == "dpid:0000000000000001"
        assert msg.flow.src == "10.0.0.1"
        assert msg.flow.dst_port == 80
        assert msg.flow.proto == "tcp"
        assert msg.in_port == 3

    def test_udp_match(self):
        data = dict(PACKET_IN)
        data["match"] = {
            "ipv4_src": "10.0.0.1",
            "ipv4_dst": "10.0.0.53",
            "udp_src": 5353,
            "udp_dst": 53,
            "ip_proto": 17,
        }
        msg = event_to_message(data)
        assert msg.flow.proto == "udp"
        assert msg.flow.dst_port == 53

    def test_non_ip_packet_skipped(self):
        data = dict(PACKET_IN)
        data["match"] = {"eth_type": 2054}  # ARP
        assert event_to_message(data) is None

    def test_flow_removed_duration_and_reason(self):
        msg = event_to_message(
            dict(
                event="flow_removed",
                time=19.0,
                dpid=2,
                duration_sec=5,
                duration_nsec=120_000_000,
                byte_count=1234,
                packet_count=3,
                reason=1,
                match=PACKET_IN["match"],
            )
        )
        assert msg.duration == pytest.approx(5.12)
        assert msg.byte_count == 1234
        assert msg.reason == FlowRemovedReason.HARD_TIMEOUT

    def test_flow_mod(self):
        msg = event_to_message(
            dict(
                event="flow_mod",
                time=12.347,
                dpid=1,
                out_port=2,
                idle_timeout=5,
                hard_timeout=0,
                priority=1,
                match=PACKET_IN["match"],
            )
        )
        assert msg.out_port == 2
        assert msg.match.src == "10.0.0.1"

    def test_unknown_event_skipped(self):
        assert event_to_message({"event": "port_stats", "time": 0}) is None

    def test_missing_required_field_raises(self):
        with pytest.raises(ValueError, match="missing field"):
            event_to_message({"event": "packet_in", "time": 1.0})

    def test_string_dpid_passthrough(self):
        data = dict(PACKET_IN, dpid="of:cafe")
        assert event_to_message(data).dpid == "of:cafe"


class TestLoadRyuLog:
    def test_parses_stream_in_order(self):
        stream = io.StringIO(
            "\n".join(
                [
                    "# capture from mininet run 7",
                    line(**PACKET_IN),
                    "",
                    line(
                        event="flow_mod",
                        time=12.347,
                        dpid=1,
                        out_port=2,
                        match=PACKET_IN["match"],
                    ),
                    line(event="echo", time=13.0, dpid=1),  # skipped
                ]
            )
        )
        log = load_ryu_log(stream)
        assert len(log) == 2
        assert len(log.packet_ins()) == 1
        assert len(log.flow_mods()) == 1

    def test_malformed_json_reports_line(self):
        with pytest.raises(ValueError, match="line 2"):
            load_ryu_log(io.StringIO(line(**PACKET_IN) + "\n{broken\n"))

    def test_flowdiff_models_ryu_capture(self):
        """An ingested capture flows through the normal pipeline."""
        from repro import FlowDiff

        rows = []
        t = 0.0
        for i in range(30):
            t += 0.5
            rows.append(
                line(
                    event="packet_in",
                    time=t,
                    dpid=1,
                    in_port=1,
                    match={
                        "ipv4_src": "10.0.0.1",
                        "ipv4_dst": "10.0.0.2",
                        "tcp_src": 40000 + i,
                        "tcp_dst": 80,
                        "ip_proto": 6,
                    },
                )
            )
        log = load_ryu_log(io.StringIO("\n".join(rows)))
        model = FlowDiff().model(log, assess=False)
        assert len(model.app_signatures) == 1
        sig = next(iter(model.app_signatures.values()))
        assert ("10.0.0.1", "10.0.0.2") in sig.cg.edges
