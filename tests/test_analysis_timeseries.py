"""Unit and property tests for repro.analysis.timeseries."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.timeseries import epoch_counts, epoch_edges, split_intervals


class TestEpochEdges:
    def test_exact_division(self):
        assert epoch_edges(0.0, 4.0, 1.0) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_partial_trailing_epoch(self):
        edges = epoch_edges(0.0, 2.5, 1.0)
        assert edges == [0.0, 1.0, 2.0, 2.5]

    def test_empty_interval(self):
        assert epoch_edges(3.0, 3.0, 1.0) == [3.0, 3.0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            epoch_edges(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            epoch_edges(2.0, 1.0, 0.5)

    @given(
        st.floats(0, 100),
        st.floats(0.1, 100),
        st.floats(0.1, 10),
    )
    def test_edges_cover_interval(self, start, width, epoch):
        edges = epoch_edges(start, start + width, epoch)
        assert edges[0] == start
        assert edges[-1] == pytest.approx(start + width)
        assert all(a < b or (a == b) for a, b in zip(edges, edges[1:]))


class TestEpochCounts:
    def test_basic_bucketing(self):
        counts = epoch_counts([0.1, 0.2, 1.5, 2.9], 0.0, 3.0, 1.0)
        assert counts == [2, 1, 1]

    def test_out_of_window_ignored(self):
        counts = epoch_counts([-1.0, 5.0, 0.5], 0.0, 2.0, 1.0)
        assert counts == [1, 0]

    def test_event_at_end_excluded(self):
        counts = epoch_counts([2.0], 0.0, 2.0, 1.0)
        assert counts == [0, 0]

    def test_trailing_partial_epoch_collects(self):
        counts = epoch_counts([2.4], 0.0, 2.5, 1.0)
        assert counts == [0, 0, 1]

    @given(
        st.lists(st.floats(0, 10), max_size=100),
        st.floats(0.5, 3),
    )
    def test_total_count_preserved(self, times, epoch):
        counts = epoch_counts(times, 0.0, 10.0, epoch)
        in_window = sum(1 for t in times if 0.0 <= t < 10.0)
        assert sum(counts) == in_window


class TestSplitIntervals:
    def test_equal_parts(self):
        parts = split_intervals(0.0, 9.0, 3)
        assert parts == [(0.0, 3.0), (3.0, 6.0), (6.0, 9.0)]

    def test_single_part(self):
        assert split_intervals(1.0, 2.0, 1) == [(1.0, 2.0)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_intervals(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            split_intervals(1.0, 0.0, 2)

    @given(st.floats(0, 100), st.floats(0.1, 100), st.integers(1, 20))
    def test_contiguous_cover(self, start, width, parts):
        intervals = split_intervals(start, start + width, parts)
        assert len(intervals) == parts
        assert intervals[0][0] == start
        assert intervals[-1][1] == pytest.approx(start + width)
        for (_a0, a1), (b0, _b1) in zip(intervals, intervals[1:]):
            assert a1 == pytest.approx(b0)
