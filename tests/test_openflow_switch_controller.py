"""Unit tests for the switch and controller models."""

import random

import pytest

from repro.openflow.controller import Controller, ControllerConfig
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowMod, PacketIn, PacketOut
from repro.openflow.switch import OpenFlowSwitch, TableMiss

KEY = FlowKey("a", "b", 1000, 80)


class TestSwitch:
    def test_miss_then_hit(self):
        sw = OpenFlowSwitch("sw1")
        out, miss = sw.process_packet(KEY, in_port=1, now=0.0, nbytes=100)
        assert out is None
        assert miss == TableMiss(dpid="sw1", flow=KEY, in_port=1)
        sw.install(Match.exact(KEY), out_port=2, now=0.0)
        out, miss = sw.process_packet(KEY, in_port=1, now=0.1, nbytes=100)
        assert out == 2
        assert miss is None

    def test_counters_on_hit(self):
        sw = OpenFlowSwitch("sw1")
        entry = sw.install(Match.exact(KEY), out_port=2, now=0.0)
        sw.process_packet(KEY, 1, 0.1, 300, npackets=3)
        assert entry.byte_count == 300
        assert entry.packet_count == 3
        assert sw.port_bytes[2] == 300

    def test_miss_count(self):
        sw = OpenFlowSwitch("sw1")
        sw.process_packet(KEY, 1, 0.0, 10)
        sw.process_packet(KEY.reversed(), 1, 0.0, 10)
        assert sw.miss_count == 2

    def test_dead_switch_drops_silently(self):
        sw = OpenFlowSwitch("sw1")
        sw.fail()
        out, miss = sw.process_packet(KEY, 1, 0.0, 10)
        assert out is None and miss is None
        assert sw.expire(100.0) == []

    def test_fail_clears_table(self):
        sw = OpenFlowSwitch("sw1")
        sw.install(Match.exact(KEY), out_port=2, now=0.0)
        sw.fail()
        sw.recover()
        out, miss = sw.process_packet(KEY, 1, 1.0, 10)
        assert miss is not None

    def test_expire_respects_send_flow_removed(self):
        sw = OpenFlowSwitch("sw1")
        sw.install(Match.exact(KEY), out_port=2, now=0.0, idle_timeout=1.0)
        sw.install(
            Match.destination("z"),
            out_port=3,
            now=0.0,
            idle_timeout=1.0,
            send_flow_removed=False,
        )
        expired = sw.expire(10.0)
        assert len(expired) == 1
        assert expired[0][0].match == Match.exact(KEY)


class TestController:
    def make(self, **cfg):
        return Controller(
            route_fn=lambda dpid, flow: 4,
            config=ControllerConfig(**cfg),
            rng=random.Random(0),
        )

    def test_reply_logs_three_messages(self):
        ctrl = self.make()
        reply = ctrl.handle_miss(TableMiss("sw1", KEY, 1), arrived_at=1.0)
        assert reply.flow_mod is not None
        assert reply.packet_out is not None
        assert reply.flow_mod.out_port == 4
        assert reply.ready_at > 1.0
        assert len(ctrl.log.of_type(PacketIn)) == 1
        assert len(ctrl.log.of_type(FlowMod)) == 1
        assert len(ctrl.log.of_type(PacketOut)) == 1

    def test_flow_mod_pairs_with_packet_in(self):
        ctrl = self.make()
        reply = ctrl.handle_miss(TableMiss("sw1", KEY, 1), arrived_at=1.0)
        pin = ctrl.log.of_type(PacketIn)[0]
        assert reply.flow_mod.in_reply_to == pin.buffer_id

    def test_unroutable_flow_gets_no_flow_mod(self):
        ctrl = Controller(route_fn=lambda d, f: None, rng=random.Random(0))
        reply = ctrl.handle_miss(TableMiss("sw1", KEY, 1), arrived_at=1.0)
        assert reply.flow_mod is None
        assert len(ctrl.log.of_type(PacketIn)) == 1
        assert len(ctrl.log.of_type(FlowMod)) == 0

    def test_overload_factor_scales_response(self):
        fast = self.make(response_jitter=0.0)
        slow = self.make(response_jitter=0.0)
        slow.overload_factor = 10.0
        r_fast = fast.handle_miss(TableMiss("sw1", KEY, 1), 1.0)
        r_slow = slow.handle_miss(TableMiss("sw1", KEY, 1), 1.0)
        assert (r_slow.ready_at - 1.0) == pytest.approx(
            10.0 * (r_fast.ready_at - 1.0)
        )

    def test_queueing_behind_busy_controller(self):
        ctrl = self.make(base_response=0.01, response_jitter=0.0)
        r1 = ctrl.handle_miss(TableMiss("sw1", KEY, 1), 1.0)
        r2 = ctrl.handle_miss(TableMiss("sw2", KEY, 1), 1.0)
        assert r2.ready_at >= r1.ready_at + 0.01

    def test_load_factor_grows_with_arrival_rate(self):
        ctrl = self.make(base_response=0.001, response_jitter=0.0, capacity=100.0)
        # Saturate the load window.
        for _ in range(200):
            ctrl._recent_arrivals.append(1.0)
        loaded = ctrl.response_time(1.0)
        idle = ControllerConfig().base_response
        assert loaded > 0.002  # at least 2x inflation near capacity

    def test_dead_controller_never_replies(self):
        ctrl = self.make()
        ctrl.fail()
        reply = ctrl.handle_miss(TableMiss("sw1", KEY, 1), 1.0)
        assert reply.flow_mod is None
        assert reply.ready_at == float("inf")
        ctrl.recover()
        assert ctrl.handle_miss(TableMiss("sw1", KEY, 1), 2.0).flow_mod is not None

    def test_wildcard_rule_mode(self):
        ctrl = self.make(use_microflow_rules=False)
        reply = ctrl.handle_miss(TableMiss("sw1", KEY, 1), 1.0)
        assert not reply.flow_mod.match.is_microflow
        assert reply.flow_mod.match.dst == KEY.dst
