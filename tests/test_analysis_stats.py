"""Unit and property tests for repro.analysis.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    EmpiricalCDF,
    chi_squared,
    histogram_peaks,
    mean_std,
    partial_correlation,
    pearson,
)


class TestMeanStd:
    def test_empty(self):
        assert mean_std([]) == (0.0, 0.0)

    def test_single_value(self):
        mean, std = mean_std([5.0])
        assert mean == 5.0
        assert std == 0.0

    def test_known_values(self):
        mean, std = mean_std([1.0, 2.0, 3.0, 4.0])
        assert mean == pytest.approx(2.5)
        assert std == pytest.approx(math.sqrt(1.25))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_std_nonnegative(self, values):
        _, std = mean_std(values)
        assert std >= 0.0

    @given(st.floats(-1e6, 1e6), st.integers(2, 20))
    def test_constant_series_zero_std(self, v, n):
        mean, std = mean_std([v] * n)
        assert mean == pytest.approx(v)
        assert std == pytest.approx(0.0, abs=1e-6)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_short_series_is_zero(self):
        assert pearson([1], [2]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_independent_noise_near_zero(self):
        import random

        rng = random.Random(1)
        xs = [rng.random() for _ in range(2000)]
        ys = [rng.random() for _ in range(2000)]
        assert abs(pearson(xs, ys)) < 0.1

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=30),
        st.lists(st.floats(-100, 100), min_size=2, max_size=30),
    )
    def test_bounded(self, xs, ys):
        n = min(len(xs), len(ys))
        r = pearson(xs[:n], ys[:n])
        assert -1.0 <= r <= 1.0

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=30))
    def test_symmetric(self, xs):
        ys = [x * 0.5 + 1 for x in xs]
        assert pearson(xs, ys) == pytest.approx(pearson(ys, xs))


class TestPartialCorrelation:
    def test_removes_confounder(self):
        # x and y are both driven purely by z: the partial correlation
        # controlling for z should be much smaller than the raw one.
        import random

        rng = random.Random(2)
        zs = [rng.random() for _ in range(500)]
        xs = [z + rng.gauss(0, 0.01) for z in zs]
        ys = [z + rng.gauss(0, 0.01) for z in zs]
        raw = pearson(xs, ys)
        partial = partial_correlation(xs, ys, zs)
        assert raw > 0.9
        assert abs(partial) < 0.5

    def test_falls_back_when_degenerate(self):
        xs = [1.0, 2.0, 3.0]
        ys = [2.0, 4.0, 6.0]
        # z perfectly correlated with x -> denominator vanishes.
        assert partial_correlation(xs, ys, xs) == pytest.approx(pearson(xs, ys))


class TestChiSquared:
    def test_identical_is_zero(self):
        assert chi_squared([5, 5, 5], [5, 5, 5]) == 0.0

    def test_known_value(self):
        assert chi_squared([10, 20], [15, 15]) == pytest.approx(
            (10 - 15) ** 2 / 15 + (20 - 15) ** 2 / 15
        )

    def test_zero_expected_nonzero_observed_penalized(self):
        assert chi_squared([3, 0], [0, 3]) == pytest.approx(9.0 + 3.0)

    def test_both_zero_cell_free(self):
        assert chi_squared([0, 5], [0, 5]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            chi_squared([1], [1, 2])

    @given(
        st.lists(st.floats(0, 1000), min_size=1, max_size=20),
        st.lists(st.floats(0.1, 1000), min_size=1, max_size=20),
    )
    def test_nonnegative(self, obs, exp):
        n = min(len(obs), len(exp))
        assert chi_squared(obs[:n], exp[:n]) >= 0.0


class TestHistogramPeaks:
    def test_empty(self):
        assert histogram_peaks([], 1.0) == []

    def test_single_mode(self):
        values = [10.1, 10.2, 10.3, 10.4, 3.0]
        peaks = histogram_peaks(values, 1.0)
        assert peaks[0][0] == pytest.approx(10.5)
        assert peaks[0][1] == 4

    def test_two_modes_ordered_by_count(self):
        values = [1.1] * 5 + [7.2] * 9
        peaks = histogram_peaks(values, 1.0)
        assert peaks[0][0] == pytest.approx(7.5)
        assert peaks[1][0] == pytest.approx(1.5)

    def test_min_count_filters(self):
        values = [1.1] * 2 + [7.2] * 9
        peaks = histogram_peaks(values, 1.0, min_count=3)
        assert len(peaks) == 1
        assert peaks[0][0] == pytest.approx(7.5)

    def test_bad_bin_width_raises(self):
        with pytest.raises(ValueError):
            histogram_peaks([1.0], 0.0)

    def test_max_peaks_cap(self):
        values = []
        for i in range(10):
            values.extend([i * 5.0 + 0.5] * (i + 1))
        peaks = histogram_peaks(values, 1.0, max_peaks=3)
        assert len(peaks) == 3

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=100))
    def test_dominant_peak_is_true_mode(self, values):
        peaks = histogram_peaks(values, 5.0)
        if peaks:
            # The top peak's count must equal the max bin count.
            bins = {}
            for v in values:
                bins[int(v // 5.0)] = bins.get(int(v // 5.0), 0) + 1
            assert peaks[0][1] == max(bins.values())


class TestEmpiricalCDF:
    def test_monotone_and_bounded(self):
        cdf = EmpiricalCDF.from_values([3.0, 1.0, 2.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == pytest.approx(1 / 3)
        assert cdf(2.5) == pytest.approx(2 / 3)
        assert cdf(10.0) == 1.0

    def test_quantile(self):
        cdf = EmpiricalCDF.from_values(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 100
        assert cdf.quantile(0.0) == 1

    def test_quantile_validation(self):
        cdf = EmpiricalCDF.from_values([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        with pytest.raises(ValueError):
            EmpiricalCDF.from_values([]).quantile(0.5)

    def test_ks_distance_identical_zero(self):
        cdf = EmpiricalCDF.from_values([1, 2, 3])
        assert cdf.ks_distance(cdf) == 0.0

    def test_ks_distance_disjoint_is_one(self):
        a = EmpiricalCDF.from_values([1, 2])
        b = EmpiricalCDF.from_values([10, 20])
        assert a.ks_distance(b) == pytest.approx(1.0)

    def test_points_for_plotting(self):
        cdf = EmpiricalCDF.from_values([2.0, 1.0])
        assert cdf.points() == [(1.0, 0.5), (2.0, 1.0)]

    @given(
        st.lists(st.floats(0, 100), min_size=1, max_size=50),
        st.floats(0, 100),
    )
    def test_cdf_in_unit_interval(self, values, x):
        cdf = EmpiricalCDF.from_values(values)
        assert 0.0 <= cdf(x) <= 1.0

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_ks_symmetric(self, values):
        a = EmpiricalCDF.from_values(values)
        b = EmpiricalCDF.from_values([v + 1 for v in values])
        assert a.ks_distance(b) == pytest.approx(b.ks_distance(a))
