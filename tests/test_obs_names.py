"""Tests for the shared metric-name validator (lint + runtime agree)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import (
    KNOWN_LABELS,
    KNOWN_METRICS,
    escape_label_value,
    is_known_metric,
    is_valid_label_name,
    is_valid_metric_name,
    validate_label_name,
    validate_metric_name,
)


class TestGrammar:
    @pytest.mark.parametrize(
        "name", ["sim_events_total", "a", "_x", "ns:subsystem:name", "A9_b"]
    )
    def test_valid_metric_names(self, name):
        assert is_valid_metric_name(name)
        assert validate_metric_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "9lead", "has-dash", "has space", "uniçode"]
    )
    def test_invalid_metric_names(self, name):
        assert not is_valid_metric_name(name)
        with pytest.raises(ValueError):
            validate_metric_name(name)

    @pytest.mark.parametrize("name", ["kind", "_private", "a9"])
    def test_valid_label_names(self, name):
        assert is_valid_label_name(name)
        assert validate_label_name(name) == name

    @pytest.mark.parametrize("name", ["", "9x", "k-v", "__reserved", "a:b"])
    def test_invalid_label_names(self, name):
        assert not is_valid_label_name(name)
        with pytest.raises(ValueError):
            validate_label_name(name)


class TestManifest:
    def test_every_known_metric_is_grammatical(self):
        for name in KNOWN_METRICS:
            assert is_valid_metric_name(name), name

    def test_every_known_label_is_grammatical(self):
        for name in KNOWN_LABELS:
            assert is_valid_label_name(name), name

    @pytest.mark.parametrize(
        "name",
        [
            "profile_spans_total",
            "runs_records_total",
            "profile_folded_bytes",
            "telemetry_link_utilization",
            "service_ingest_messages_total",
            "service_queue_depth",
        ],
    )
    def test_grammatical_families_are_known(self, name):
        assert is_known_metric(name)

    @pytest.mark.parametrize(
        "name",
        [
            "profile_",
            "runs_BadCase",
            "profiler_spans_total",
            "run_records",
            "service_",
            "service_BadCase",
            "services_queue_depth",
        ],
    )
    def test_family_grammar_is_strict(self, name):
        assert not is_known_metric(name)


class TestRuntimeAgreement:
    """The registry and exporter enforce the same rules lint checks."""

    def test_registry_rejects_invalid_metric_name(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("not-a-name")

    def test_registry_rejects_reserved_label(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("sim_events_total", __kind="x")

    def test_registry_accepts_manifest_names(self):
        registry = MetricsRegistry()
        registry.counter("sim_events_total", kind="packet_in").inc()
        text = render_prometheus(registry)
        assert 'sim_events_total{kind="packet_in"}' in text


class TestEscaping:
    def test_quotes_newlines_backslashes(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("back\\slash") == "back\\\\slash"

    def test_backslash_escaped_first(self):
        # A literal backslash-n must not collide with an escaped newline.
        assert escape_label_value("\\n") == "\\\\n"
        assert escape_label_value("\n") == "\\n"

    @given(st.text(max_size=40), st.text(max_size=40))
    def test_injective(self, a, b):
        if a != b:
            assert escape_label_value(a) != escape_label_value(b)
