"""Unit tests for the five application signatures and infrastructure bundle."""

import pytest

from repro.core.events import FlowArrival, FlowRecord, HopReport
from repro.core.signatures import (
    ComponentInteraction,
    ConnectivityGraph,
    ControllerResponseTime,
    DelayDistribution,
    FlowStats,
    InterSwitchLatency,
    PartialCorrelation,
    PhysicalTopology,
    SignatureKind,
)
from repro.openflow.match import FlowKey


def arrival(src, dst, t, dpids=(), response=0.001, hop_gap=0.002):
    hops = []
    ts = t
    for i, dpid in enumerate(dpids):
        hops.append(
            HopReport(
                dpid=dpid,
                in_port=i + 1,
                packet_in_at=ts,
                flow_mod_at=ts + response,
                out_port=i + 2,
            )
        )
        ts += hop_gap
    return FlowArrival(flow=FlowKey(src, dst, 1000, 80), time=t, hops=tuple(hops))


def record(src, dst, t, nbytes=1000, duration=0.1):
    return FlowRecord(
        arrival=arrival(src, dst, t),
        byte_count=nbytes,
        packet_count=max(1, nbytes // 1460),
        duration=duration,
    )


class TestConnectivityGraph:
    def test_build_and_first_seen(self):
        cg = ConnectivityGraph.build(
            [arrival("a", "b", 2.0), arrival("a", "b", 1.0), arrival("b", "c", 3.0)]
        )
        assert cg.edges == {("a", "b"), ("b", "c")}
        assert cg.first_seen_at(("a", "b")) == 1.0
        assert cg.first_seen_at(("z", "z")) is None

    def test_nodes_and_undirected(self):
        cg = ConnectivityGraph.build([arrival("a", "b", 1.0), arrival("b", "a", 2.0)])
        assert cg.nodes() == {"a", "b"}
        assert cg.undirected_edges() == {("a", "b")}

    def test_distance(self):
        cg1 = ConnectivityGraph.build([arrival("a", "b", 1.0)])
        cg2 = ConnectivityGraph.build([arrival("a", "b", 1.0), arrival("b", "c", 1.0)])
        assert cg1.distance(cg1) == 0.0
        assert cg1.distance(cg2) == pytest.approx(0.5)

    def test_diff_directions(self):
        cg1 = ConnectivityGraph.build([arrival("a", "b", 1.0), arrival("b", "c", 1.0)])
        cg2 = ConnectivityGraph.build([arrival("a", "b", 1.0), arrival("x", "y", 4.0)])
        changes = cg1.diff(cg2, scope="g")
        added = [c for c in changes if c.direction == "added"]
        removed = [c for c in changes if c.direction == "removed"]
        assert len(added) == 1 and added[0].timestamp == 4.0
        assert "x" in added[0].components
        assert len(removed) == 1
        assert all(c.kind == SignatureKind.CG for c in changes)


class TestFlowStats:
    def test_scalar_summaries(self):
        records = [record("a", "b", float(i), nbytes=1000) for i in range(10)]
        fs = FlowStats.build(records, 0.0, 10.0, epoch=1.0)
        assert fs.flow_count == 10
        assert fs.byte_mean == pytest.approx(1000)
        assert fs.flows_per_sec.average == pytest.approx(1.0)
        assert dict(fs.per_edge_bytes)[("a", "b")] == 10000

    def test_zero_counter_records_excluded_from_moments(self):
        records = [record("a", "b", 0.0, nbytes=0), record("a", "b", 1.0, nbytes=500)]
        fs = FlowStats.build(records, 0.0, 2.0)
        assert fs.byte_mean == pytest.approx(500)
        assert fs.flow_count == 2

    def test_byte_cdf(self):
        records = [record("a", "b", 0.0, nbytes=n) for n in (100, 200, 300)]
        fs = FlowStats.build(records, 0.0, 1.0)
        cdf = fs.byte_cdf()
        assert cdf(200) == pytest.approx(2 / 3)

    def test_diff_flags_byte_growth(self):
        base = FlowStats.build(
            [record("a", "b", float(i), nbytes=1000) for i in range(20)], 0, 20
        )
        cur = FlowStats.build(
            [record("a", "b", float(i), nbytes=2000) for i in range(20)], 0, 20
        )
        changes = base.diff(cur, "g", threshold=0.3)
        assert changes
        assert all(c.kind == SignatureKind.FS for c in changes)
        assert any("byte count" in c.description for c in changes)

    def test_no_diff_within_threshold(self):
        base = FlowStats.build(
            [record("a", "b", float(i), nbytes=1000) for i in range(20)], 0, 20
        )
        cur = FlowStats.build(
            [record("a", "b", float(i), nbytes=1100) for i in range(20)], 0, 20
        )
        assert base.diff(cur, "g", threshold=0.3) == []


class TestComponentInteraction:
    def arrivals(self, counts):
        """counts: list of ((src, dst), n)."""
        out = []
        t = 0.0
        for (src, dst), n in counts:
            for _ in range(n):
                out.append(arrival(src, dst, t))
                t += 0.01
        return out

    def test_normalization(self):
        ci = ComponentInteraction.build(
            self.arrivals([(("a", "n"), 3), (("n", "b"), 1)])
        )
        norm = ci.normalized("n")
        assert norm[("in", "a")] == pytest.approx(0.75)
        assert norm[("out", "b")] == pytest.approx(0.25)

    def test_chi2_zero_for_identical(self):
        arrivals = self.arrivals([(("a", "n"), 5), (("n", "b"), 5)])
        ci1 = ComponentInteraction.build(arrivals)
        ci2 = ComponentInteraction.build(arrivals)
        assert ci1.chi2_at(ci2, "n") == 0.0

    def test_chi2_scales_out_volume(self):
        """Double the workload, same distribution: chi2 stays ~0."""
        ci1 = ComponentInteraction.build(
            self.arrivals([(("a", "n"), 10), (("n", "b"), 10)])
        )
        ci2 = ComponentInteraction.build(
            self.arrivals([(("a", "n"), 20), (("n", "b"), 20)])
        )
        assert ci1.chi2_at(ci2, "n") == pytest.approx(0.0, abs=1e-9)

    def test_chi2_detects_distribution_shift(self):
        ci1 = ComponentInteraction.build(
            self.arrivals([(("a", "n"), 50), (("n", "b"), 50)])
        )
        ci2 = ComponentInteraction.build(
            self.arrivals([(("a", "n"), 95), (("n", "b"), 5)])
        )
        assert ci1.chi2_at(ci2, "n") > 10.0

    def test_diff_emits_change_records(self):
        ci1 = ComponentInteraction.build(
            self.arrivals([(("a", "n"), 50), (("n", "b"), 50)])
        )
        ci2 = ComponentInteraction.build(self.arrivals([(("a", "n"), 100)]))
        changes = ci1.diff(ci2, "g", chi2_threshold=10.0)
        assert changes
        assert any("n" in c.components for c in changes)

    def test_distance_bounded(self):
        ci1 = ComponentInteraction.build(self.arrivals([(("a", "n"), 5)]))
        ci2 = ComponentInteraction.build(self.arrivals([(("n", "b"), 5)]))
        assert 0.0 <= ci1.distance(ci2) <= 1.0


class TestDelayDistribution:
    def chain(self, delay, n=50, spacing=1.0):
        """n request chains a->n then n->b `delay` seconds later."""
        arrivals = []
        for i in range(n):
            t = i * spacing
            arrivals.append(arrival("a", "n", t))
            arrivals.append(arrival("n", "b", t + delay))
        return arrivals

    def test_peak_at_processing_delay(self):
        dd = DelayDistribution.build(self.chain(0.06), bin_width=0.02)
        pair = (("a", "n"), ("n", "b"))
        assert dd.dominant_peak(pair) == pytest.approx(0.07, abs=0.011)

    def test_mean_delay_first_pairing(self):
        dd = DelayDistribution.build(self.chain(0.06))
        pair = (("a", "n"), ("n", "b"))
        assert dd.mean_delay(pair) == pytest.approx(0.06, abs=0.005)

    def test_window_excludes_far_flows(self):
        dd = DelayDistribution.build(self.chain(2.0, spacing=5.0), window=1.0)
        assert (("a", "n"), ("n", "b")) not in dd.pairs()

    def test_diff_detects_peak_shift(self):
        dd1 = DelayDistribution.build(self.chain(0.06))
        dd2 = DelayDistribution.build(self.chain(0.12))
        changes = dd1.diff(dd2, "g", shift_threshold=0.03)
        assert changes
        assert changes[0].kind == SignatureKind.DD
        assert "n" in changes[0].components

    def test_diff_detects_mean_shift_without_peak_move(self):
        """A delayed minority (retransmission tail) moves the mean only."""
        base = self.chain(0.05, n=60)
        tail = self.chain(0.05, n=45) + [
            a for pair in [
                (arrival("a", "n", 100 + i), arrival("n", "b", 100 + i + 0.25))
                for i in range(15)
            ] for a in pair
        ]
        dd1 = DelayDistribution.build(base)
        dd2 = DelayDistribution.build(tail)
        changes = dd1.diff(dd2, "g", shift_threshold=0.5, mean_threshold=0.015)
        assert changes
        assert "mean" in changes[0].description

    def test_no_diff_when_stable(self):
        dd1 = DelayDistribution.build(self.chain(0.06))
        dd2 = DelayDistribution.build(self.chain(0.062))
        assert dd1.diff(dd2, "g") == []

    def test_ambiguous_peak_reported_unknown(self):
        bimodal = self.chain(0.05, n=30) + [
            a
            for i in range(30)
            for a in (arrival("a", "n", 500 + i), arrival("n", "b", 500 + i + 0.15))
        ]
        dd = DelayDistribution.build(bimodal)
        assert dd.dominant_peak((("a", "n"), ("n", "b"))) == -1.0

    def test_delay_cdf(self):
        dd = DelayDistribution.build(self.chain(0.06))
        cdf = dd.delay_cdf((("a", "n"), ("n", "b")))
        assert cdf(0.1) == pytest.approx(1.0)
        assert cdf(0.01) == pytest.approx(0.0)


class TestPartialCorrelation:
    def correlated_arrivals(self, n_epochs=30, per_epoch=(5, 5)):
        arrivals = []
        for e in range(n_epochs):
            burst = 1 + (e % 5)
            for i in range(burst * per_epoch[0]):
                arrivals.append(arrival("a", "n", e + i * 0.001))
            for i in range(burst * per_epoch[1]):
                arrivals.append(arrival("n", "b", e + 0.5 + i * 0.001))
        return arrivals

    def test_dependent_edges_high_correlation(self):
        pc = PartialCorrelation.build(self.correlated_arrivals(), 0.0, 30.0, epoch=1.0)
        pair = (("a", "n"), ("n", "b"))
        assert pc.value(pair) > 0.9

    def test_independent_edges_low_correlation(self):
        import random

        rng = random.Random(9)
        arrivals = []
        for e in range(40):
            for _ in range(rng.randint(1, 10)):
                arrivals.append(arrival("a", "n", e + rng.random()))
            for _ in range(rng.randint(1, 10)):
                arrivals.append(arrival("n", "b", e + rng.random()))
        pc = PartialCorrelation.build(arrivals, 0.0, 40.0, epoch=1.0)
        assert abs(pc.value((("a", "n"), ("n", "b")))) < 0.6

    def test_sparse_edges_skipped(self):
        arrivals = [arrival("a", "n", 1.0), arrival("n", "b", 1.1)]
        pc = PartialCorrelation.build(arrivals, 0.0, 10.0, min_count=4)
        assert pc.correlations == ()

    def test_reverse_edges_not_paired(self):
        arrivals = []
        for e in range(20):
            arrivals.append(arrival("a", "n", e + 0.1))
            arrivals.append(arrival("n", "a", e + 0.2))
        pc = PartialCorrelation.build(arrivals, 0.0, 20.0)
        assert (("a", "n"), ("n", "a")) not in pc.pairs()

    def test_diff_flags_collapse(self):
        pc1 = PartialCorrelation.build(self.correlated_arrivals(), 0.0, 30.0)
        import random

        rng = random.Random(3)
        noise = []
        for e in range(30):
            for _ in range(rng.randint(1, 12)):
                noise.append(arrival("a", "n", e + rng.random()))
            for _ in range(rng.randint(1, 12)):
                noise.append(arrival("n", "b", e + rng.random()))
        pc2 = PartialCorrelation.build(noise, 0.0, 30.0)
        changes = pc1.diff(pc2, "g", delta_threshold=0.4)
        assert changes
        assert changes[0].kind == SignatureKind.PC


class TestInfrastructure:
    def test_physical_topology_inference(self):
        arrivals = [
            arrival("a", "b", 1.0, dpids=("sw1", "sw2", "sw3")),
            arrival("b", "a", 2.0, dpids=("sw3", "sw2", "sw1")),
        ]
        pt = PhysicalTopology.build(arrivals)
        assert pt.switch_links == {("sw1", "sw2"), ("sw2", "sw3")}
        assert pt.attachment_of("a") == "sw1"
        assert pt.attachment_of("b") == "sw3"

    def test_pt_diff_reports_moves_and_links(self):
        pt1 = PhysicalTopology.build([arrival("a", "b", 1.0, dpids=("sw1", "sw2"))])
        pt2 = PhysicalTopology.build(
            [
                arrival("a", "b", 1.0, dpids=("sw1", "sw3")),
                # Keep sw2 observed so the missing sw1--sw2 link counts as
                # a change rather than an idle link.
                arrival("x", "y", 2.0, dpids=("sw2",)),
            ]
        )
        changes = pt1.diff(pt2)
        descs = " | ".join(c.description for c in changes)
        assert "missing switch link sw1 -- sw2" in descs
        assert "new switch link sw1 -- sw3" in descs
        assert "host b moved sw2 -> sw3" in descs

    def test_pt_idle_link_not_reported_missing(self):
        """A link unobserved because no flow crossed it is not a change."""
        pt1 = PhysicalTopology.build([arrival("a", "b", 1.0, dpids=("sw1", "sw2"))])
        pt2 = PhysicalTopology.build([arrival("x", "y", 1.0, dpids=("sw9",))])
        changes = pt1.diff(pt2)
        assert not any("missing switch link" in c.description for c in changes)

    def test_pt_attachment_majority_vote(self):
        """Truncated traversals must not flip a host's attachment."""
        arrivals = [
            arrival("a", "b", float(i), dpids=("sw1", "sw2")) for i in range(5)
        ]
        # One window-truncated observation pointing the wrong way.
        arrivals.append(arrival("a", "b", 9.0, dpids=("sw2",)))
        pt = PhysicalTopology.build(arrivals)
        assert pt.attachment_of("a") == "sw1"

    def test_isl_measures_hop_gap(self):
        arrivals = [
            arrival("a", "b", float(i), dpids=("sw1", "sw2"), response=0.001, hop_gap=0.003)
            for i in range(10)
        ]
        isl = InterSwitchLatency.build(arrivals)
        # gap between flow_mod(sw1)=t+0.001 and packet_in(sw2)=t+0.003.
        assert isl.mean_of(("sw1", "sw2")) == pytest.approx(0.002, abs=1e-6)

    def test_isl_diff_sigma_threshold(self):
        base = InterSwitchLatency.build(
            [arrival("a", "b", float(i), dpids=("sw1", "sw2"), hop_gap=0.003) for i in range(10)]
        )
        slow = InterSwitchLatency.build(
            [arrival("a", "b", float(i), dpids=("sw1", "sw2"), hop_gap=0.03) for i in range(10)]
        )
        assert base.diff(slow, sigma_threshold=3.0)
        assert base.diff(base, sigma_threshold=3.0) == []

    def test_crt_mean_and_diff(self):
        fast = ControllerResponseTime.build(
            [arrival("a", "b", float(i), dpids=("sw1",), response=0.001) for i in range(10)]
        )
        slow = ControllerResponseTime.build(
            [arrival("a", "b", float(i), dpids=("sw1",), response=0.02) for i in range(10)]
        )
        assert fast.mean == pytest.approx(0.001)
        assert fast.diff(slow)
        assert fast.diff(fast) == []

    def test_crt_needs_samples(self):
        empty = ControllerResponseTime.build([])
        assert empty.count == 0
        assert empty.diff(empty) == []
