"""CLI tests for ``repro trace`` and ``repro monitor``."""

import json

import pytest

from repro.cli import main
from repro.faults.network import LinkFailure
from repro.obs.alerts import read_alerts_jsonl
from repro.openflow.serialize import save_log
from repro.scenarios import three_tier_lab

FAULT_AT = 70.0
WINDOW = 30.0


@pytest.fixture(scope="module")
def healthy_capture(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "healthy.jsonl")
    assert main(["simulate", "--out", path, "--duration", "10"]) == 0
    return path


@pytest.fixture(scope="module")
def long_healthy_capture(tmp_path_factory):
    """40s of healthy traffic: long enough that a 20s monitoring window
    clears the post-run drain tail instead of diagnosing it."""
    path = str(tmp_path_factory.mktemp("trace") / "healthy40.jsonl")
    assert main(["simulate", "--out", path, "--duration", "40"]) == 0
    return path


@pytest.fixture(scope="module")
def faulted_capture(tmp_path_factory):
    scenario = three_tier_lab(seed=3)
    scenario.inject(LinkFailure("ofs1", "ofs3"), at=FAULT_AT)
    log = scenario.run(0.5, 130.0)
    path = str(tmp_path_factory.mktemp("monitor") / "faulted.jsonl")
    save_log(log, path)
    return path


class TestTraceCommand:
    def test_every_flow_complete_and_causally_ordered(self, healthy_capture, capsys):
        """Acceptance: full PacketIn->FlowMod->FlowRemoved chain per flow."""
        assert main(["trace", healthy_capture, "--json"]) == 0
        timelines = json.loads(capsys.readouterr().out)
        assert timelines
        for t in timelines:
            assert t["complete"], t
            assert t["monotone"], t
            assert t["dropped_stages"] == []
            stages = [e["stage"] for e in t["events"]]
            assert stages[0] == "packet_in"
            assert stages[-1] == "flow_removed"
            times = [e["t"] for e in t["events"]]
            assert times == sorted(times)

    def test_text_output_has_summary_footer(self, healthy_capture, capsys):
        assert main(["trace", healthy_capture]) == 0
        out = capsys.readouterr().out
        assert "flow(s) shown" in out
        assert "0 incomplete" in out

    def test_flow_filter(self, healthy_capture, capsys):
        assert main(["trace", healthy_capture, "--flow", ":3306", "--json"]) == 0
        timelines = json.loads(capsys.readouterr().out)
        assert timelines
        assert all(":3306" in t["flow"] for t in timelines)

    def test_corr_filter_selects_one(self, healthy_capture, capsys):
        assert main(["trace", healthy_capture, "--corr", "1", "--json"]) == 0
        timelines = json.loads(capsys.readouterr().out)
        assert len(timelines) == 1
        assert timelines[0]["corr_id"] == 1

    def test_missing_corr_exits_nonzero(self, healthy_capture, capsys):
        assert main(["trace", healthy_capture, "--corr", "999999999"]) == 1

    def test_incomplete_filter_empty_on_healthy(self, healthy_capture, capsys):
        assert main(["trace", healthy_capture, "--incomplete"]) == 1
        assert "0 incomplete" in capsys.readouterr().out


@pytest.mark.slow
class TestMonitorCommand:
    def test_healthy_capture_exits_zero(self, long_healthy_capture, tmp_path, capsys):
        out_path = str(tmp_path / "alerts.jsonl")
        code = main(
            [
                "monitor",
                long_healthy_capture,
                "--window",
                "20",
                "--alerts-out",
                out_path,
            ]
        )
        assert code == 0
        assert read_alerts_jsonl(out_path) == []

    def test_fault_alerts_within_one_window(self, faulted_capture, tmp_path, capsys):
        """Acceptance: a correctly-timestamped alert follows the fault."""
        out_path = str(tmp_path / "alerts.jsonl")
        code = main(
            [
                "monitor",
                faulted_capture,
                "--window",
                str(WINDOW),
                "--alerts-out",
                out_path,
            ]
        )
        assert code == 1  # alerts fired
        alerts = read_alerts_jsonl(out_path)
        assert alerts
        first = min(a.timestamp for a in alerts)
        assert FAULT_AT <= first <= FAULT_AT + WINDOW
        out = capsys.readouterr().out
        assert "alert(s)" in out

    def test_json_output(self, faulted_capture, capsys):
        assert main(
            ["monitor", faulted_capture, "--window", str(WINDOW), "--json"]
        ) == 1
        rows = json.loads(capsys.readouterr().out.split("\n", 0)[0])
        assert isinstance(rows, list) and rows
        assert {"rule", "severity", "timestamp"} <= set(rows[0])

    def test_cooldown_suppresses(self, faulted_capture, capsys):
        assert main(
            [
                "monitor",
                faulted_capture,
                "--window",
                "15",
                "--cooldown",
                "1000",
            ]
        ) == 1
        assert " suppressed" in capsys.readouterr().out


class TestDiffEvidenceFlag:
    def test_evidence_attached(self, faulted_capture, tmp_path, capsys):
        scenario_log = str(tmp_path / "baseline.jsonl")
        assert main(["simulate", "--out", scenario_log, "--duration", "30"]) == 0
        capsys.readouterr()
        code = main(["diff", scenario_log, faulted_capture, "--evidence", "--json"])
        assert code == 1  # the faulted capture is unhealthy
        payload = json.loads(capsys.readouterr().out)
        assert payload["evidence"]
        chain = payload["evidence"][0]
        assert chain["component"]
        assert chain["flows"] and chain["flows"][0]["events"]
