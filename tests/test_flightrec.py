"""Tests for the per-flow causal flight recorder (``repro.obs.flightrec``)."""

import dataclasses

import pytest

from repro.core.diff.evidence import attach_evidence
from repro.core.diff.html import report_to_html
from repro.core.diff.ranking import select_evidence_flows
from repro.core.flowdiff import FlowDiff
from repro.faults.network import LinkFailure
from repro.obs.flightrec import (
    DEFAULT_OCCURRENCE_GAP,
    FlightRecorder,
    reconstruct,
)
from repro.obs.metrics import MetricsRegistry
from repro.openflow.log import ControllerLog
from repro.openflow.messages import FlowRemoved, PacketIn
from repro.openflow.serialize import message_from_json, message_to_json
from repro.scenarios import three_tier_lab


@pytest.fixture(scope="module")
def lab_log():
    """A healthy 3-tier run, long enough that every flow expires."""
    return three_tier_lab(seed=3).run(0.5, 10.0)


@pytest.fixture(scope="module")
def recorder(lab_log):
    return FlightRecorder.from_log(lab_log)


class TestCorrelationPlumbing:
    def test_every_tracked_message_carries_an_id(self, lab_log):
        for msg in lab_log:
            if isinstance(msg, (PacketIn, FlowRemoved)):
                assert msg.corr_id is not None

    def test_ids_partition_packet_ins_by_flow(self, lab_log):
        # All PacketIns sharing a corr_id must describe the same 5-tuple.
        flows = {}
        for msg in lab_log.packet_ins():
            flows.setdefault(msg.corr_id, set()).add(str(msg.flow))
        assert flows
        assert all(len(v) == 1 for v in flows.values())

    def test_log_helpers(self, lab_log):
        ids = lab_log.correlation_ids()
        assert ids and len(ids) == len(set(ids))
        one = lab_log.correlated(ids[0])
        assert len(one) > 0
        assert all(m.corr_id == ids[0] for m in one)

    def test_serialization_round_trips_corr_id(self, lab_log):
        for msg in list(lab_log)[:200]:
            back = message_from_json(message_to_json(msg))
            assert back.corr_id == msg.corr_id


class TestReconstruction:
    def test_every_flow_has_a_complete_monotone_chain(self, recorder):
        """Acceptance: PacketIn -> FlowMod -> FlowRemoved for every flow."""
        assert len(recorder) > 0
        for timeline in recorder.timelines:
            assert timeline.complete, timeline.describe()
            assert timeline.monotone, timeline.describe()
            assert not timeline.synthetic
            stages = [e.stage for e in timeline.events]
            assert stages[0] == "packet_in"
            assert "flow_mod" in stages
            assert stages[-1] == "flow_removed"

    def test_multi_hop_chains_cover_the_path(self, recorder):
        multi = [t for t in recorder.timelines if len(t.hops) >= 2]
        assert multi, "expected cross-switch flows in the 3-tier lab"
        for timeline in multi:
            # One controller decision per traversed switch.
            assert len(timeline.controller_latencies()) == len(timeline.hops)
            assert all(lat >= 0 for lat in timeline.controller_latencies())

    def test_summary_counts(self, recorder):
        s = recorder.summary()
        assert s["flows"] == len(recorder)
        assert s["complete"] == s["flows"]
        assert s["incomplete"] == s["synthetic"] == s["reordered"] == 0

    def test_timeline_lookup_and_flow_filter(self, recorder):
        first = recorder.timelines[0]
        assert recorder.timeline(first.corr_id) is first
        assert recorder.timeline(10**9) is None
        db = recorder.for_flow(":3306")
        assert db
        assert all(":3306" in str(t.flow) for t in db)

    def test_for_component_switch_host_edge(self, recorder):
        by_switch = recorder.for_component("ofs1")
        assert by_switch and all("ofs1" in t.hops for t in by_switch)
        by_host = recorder.for_component("S8")
        assert by_host and all("S8" in t.flow.endpoints() for t in by_host)
        # Edge matching needs consecutive traversal of both endpoints.
        a_switch = recorder.timelines[0].hops[0]
        for t in recorder.for_component(f"{a_switch}--nonexistent"):
            pytest.fail(f"edge with unknown endpoint matched {t.describe()}")

    def test_total_latency_is_setup_portion(self, recorder):
        t = recorder.timelines[0]
        mods = t.stage_events("flow_mod")
        assert t.total_latency == pytest.approx(mods[-1].timestamp - t.t_start)
        assert t.total_latency < t.t_end - t.t_start  # excludes the expiry wait


class TestDegradedCaptures:
    def test_dropped_flow_removed_marks_incomplete(self, lab_log):
        pruned = lab_log.filter(lambda m: not isinstance(m, FlowRemoved))
        timelines = reconstruct(pruned)
        assert timelines
        for t in timelines:
            assert not t.complete
            assert "flow_removed" in t.dropped_stages

    def test_reordered_messages_flagged_not_fatal(self, lab_log):
        # Corrupt one flow's PacketIn to arrive after everything else.
        victim = lab_log.correlation_ids()[0]
        _, t_end = lab_log.time_span
        messages = []
        for m in lab_log:
            if m.corr_id == victim and isinstance(m, PacketIn):
                m = dataclasses.replace(m, timestamp=t_end + 100.0)
            messages.append(m)
        recorder = FlightRecorder.from_log(ControllerLog(messages))
        broken = recorder.timeline(victim)
        assert broken is not None
        assert broken.complete  # all stages still present
        assert recorder.summary()["reordered"] >= 1 or broken.monotone is False

    def test_idless_capture_grouped_heuristically(self, lab_log):
        stripped = ControllerLog(
            [dataclasses.replace(m, corr_id=None) for m in lab_log]
        )
        timelines = reconstruct(stripped, occurrence_gap=DEFAULT_OCCURRENCE_GAP)
        assert timelines
        assert all(t.synthetic and t.corr_id < 0 for t in timelines)
        # Heuristic grouping still recovers complete chains for lab flows.
        assert any(t.complete for t in timelines)

    def test_occurrence_gap_splits_instances(self, lab_log):
        stripped = ControllerLog(
            [dataclasses.replace(m, corr_id=None) for m in lab_log]
        )
        coarse = reconstruct(stripped, occurrence_gap=10**6)
        fine = reconstruct(stripped, occurrence_gap=0.001)
        assert len(fine) > len(coarse)


class TestAnnotations:
    def test_registry_samples_attached(self):
        metrics = MetricsRegistry()
        log = three_tier_lab(seed=3, metrics=metrics).run(0.5, 5.0)
        recorder = FlightRecorder.from_log(log, metrics=metrics)
        annotated = [t for t in recorder.timelines if t.annotations]
        assert annotated
        keys = set().union(*(t.annotations for t in annotated))
        assert any(k.startswith("flowtable_entries") for k in keys)


class TestEvidenceChains:
    @pytest.fixture(scope="class")
    def faulted(self):
        scenario = three_tier_lab(seed=3)
        scenario.inject(LinkFailure("ofs1", "ofs3"), at=40.0)
        return scenario.run(0.5, 70.0)

    def test_attach_evidence_populates_report(self, lab_log, faulted):
        fd = FlowDiff()
        baseline = fd.model(lab_log)
        current_log = faulted.window(40.0, 70.0)
        report = fd.diff(baseline, fd.model(current_log, assess=False))
        assert report.component_ranking
        enriched = attach_evidence(report, current_log)
        assert enriched.evidence
        for chain in enriched.evidence:
            assert chain.timelines
            assert any(chain.component == c for c, _ in report.component_ranking)
        # Rendering and serialization carry the chains.
        assert "Evidence chains" in enriched.render()
        assert enriched.to_dict()["evidence"]
        assert "Evidence chains" in report_to_html(enriched)

    def test_healthy_report_unchanged(self, lab_log):
        fd = FlowDiff()
        model = fd.model(lab_log)
        report = fd.diff(model, model)
        assert attach_evidence(report, lab_log) is report

    def test_select_evidence_prefers_broken_flows(self, lab_log):
        recorder = FlightRecorder.from_log(lab_log)
        whole = recorder.timelines[0]
        incomplete = FlightRecorder.from_log(
            lab_log.filter(lambda m: not isinstance(m, FlowRemoved))
        ).timelines[0]
        picked = select_evidence_flows([whole, incomplete], limit=1)
        assert picked == [incomplete]
