"""Focused tests for the delay-distribution change detectors.

The DD comparator grew three refinements beyond the paper's plain
peak-shift test; each is pinned down here:

1. the **standard-error gate** — a mean shift must be statistically
   significant, not just above the absolute floor;
2. the **coherence gate** — mean detection only applies where the
   first-pairing mean sits near the causal peak (otherwise the estimator
   tracks workload rate, not server behavior);
3. the **structure-collapse detector** — losing a previously prominent
   peak is itself an anomaly.
"""

import random

import pytest

from repro.core.events import FlowArrival
from repro.core.signatures.delay import DelayDistribution
from repro.openflow.match import FlowKey

PAIR = (("a", "n"), ("n", "b"))


def arrival(src, dst, t):
    return FlowArrival(flow=FlowKey(src, dst, 1000, 80), time=t, hops=())


def chain(delays, spacing=1.0, start=0.0):
    """Request chains a->n then n->b after per-chain delays."""
    arrivals = []
    for i, delay in enumerate(delays):
        t = start + i * spacing
        arrivals.append(arrival("a", "n", t))
        arrivals.append(arrival("n", "b", t + delay))
    return arrivals


class TestStandardErrorGate:
    def test_small_shift_with_high_variance_suppressed(self):
        rng = random.Random(1)
        noisy_base = chain([0.06 + rng.uniform(-0.05, 0.05) for _ in range(60)])
        rng = random.Random(2)
        noisy_cur = chain(
            [0.078 + rng.uniform(-0.05, 0.05) for _ in range(60)], start=500.0
        )
        dd1 = DelayDistribution.build(noisy_base, bin_width=0.05)
        dd2 = DelayDistribution.build(noisy_cur, bin_width=0.05)
        # ~18ms shift clears the absolute floor but not 4 standard errors
        # of these wide distributions.
        shift = abs(dd2.mean_delay(PAIR) - dd1.mean_delay(PAIR))
        stderr = max(dd1.mean_standard_error(PAIR), dd2.mean_standard_error(PAIR))
        if shift <= 4 * stderr:  # the generated sample must exercise the gate
            assert dd1.diff(dd2, "g", shift_threshold=0.5, mean_threshold=0.015) == []

    def test_tight_distribution_same_shift_detected(self):
        dd1 = DelayDistribution.build(chain([0.06] * 60))
        dd2 = DelayDistribution.build(chain([0.078] * 60, start=500.0))
        changes = dd1.diff(dd2, "g", shift_threshold=0.5, mean_threshold=0.015)
        assert changes
        assert "mean" in changes[0].description

    def test_mean_standard_error_values(self):
        dd = DelayDistribution.build(chain([0.06] * 50))
        assert dd.mean_standard_error(PAIR) == pytest.approx(0.0, abs=1e-9)
        empty = DelayDistribution.build([])
        assert empty.mean_standard_error(PAIR) == float("inf")


class TestCoherenceGate:
    def test_incoherent_pair_mean_ignored(self):
        """Mean far from the dominant peak -> mean detection disabled."""
        # Base: most first-pairings are short spurious ones (~10ms) but the
        # causal peak is at 130ms (bimodal all-pairs, prominent short mode).
        def mixture(start, short, n=60):
            arrivals = []
            for i in range(n):
                t = start + i * 1.0
                arrivals.append(arrival("a", "n", t))
                # short spurious outgoing flow first...
                arrivals.append(arrival("n", "b", t + short))
                # ...then more of them so the peak is the short mode
                arrivals.append(arrival("n", "b", t + short + 0.002))
            return arrivals

        base = mixture(0.0, short=0.130)
        cur = mixture(1000.0, short=0.150)
        dd1 = DelayDistribution.build(base)
        dd2 = DelayDistribution.build(cur)
        # Construct incoherence artificially: peak is at short mode but the
        # recorded mean includes only first pairings; if mean and peak
        # disagree by > 1.5 bins the comparator must not use the mean.
        # (When they agree, this test is vacuous; assert the gate logic
        # through the library-level behavior below instead.)
        mean_gap = abs(dd1.mean_delay(PAIR) - dd1.dominant_peak(PAIR))
        changes = dd1.diff(dd2, "g", shift_threshold=0.5, mean_threshold=0.01)
        if mean_gap > 1.5 * dd1.bin_width:
            assert changes == []

    def test_coherent_pair_mean_used(self):
        dd1 = DelayDistribution.build(chain([0.06] * 60))
        assert abs(dd1.mean_delay(PAIR) - dd1.dominant_peak(PAIR)) <= 1.5 * dd1.bin_width


class TestStructureCollapse:
    def test_collapse_detected(self):
        base = DelayDistribution.build(chain([0.05] * 60))
        # Current: two equal modes -> no dominant peak.
        bimodal = chain([0.05] * 30, start=1000.0) + chain(
            [0.25] * 30, start=2000.0
        )
        cur = DelayDistribution.build(bimodal)
        assert cur.dominant_peak(PAIR) == -1.0
        changes = base.diff(cur, "g")
        assert changes
        assert "collapsed" in changes[0].description
        assert "n" in changes[0].components

    def test_collapse_needs_samples(self):
        base = DelayDistribution.build(chain([0.05] * 60))
        tiny = DelayDistribution.build(
            chain([0.05] * 5, start=1000.0) + chain([0.25] * 5, start=2000.0)
        )
        # Too few current samples: ambiguity there is not evidence.
        assert base.diff(tiny, "g") == []

    def test_collapse_needs_strong_base_peak(self):
        weak_base = DelayDistribution.build(
            chain([0.05] * 30) + chain([0.09] * 25, start=500.0)
        )
        bimodal = chain([0.05] * 30, start=1000.0) + chain(
            [0.25] * 30, start=2000.0
        )
        cur = DelayDistribution.build(bimodal)
        # The baseline itself is not strongly unimodal at prominence 2.0:
        # no collapse record (peak-shift logic may still fire, but not the
        # collapse detector).
        changes = weak_base.diff(cur, "g")
        assert not any("collapsed" in c.description for c in changes)
