"""Unit tests for application-group extraction and cross-log matching."""

from repro.core.events import FlowArrival
from repro.core.groups import (
    ApplicationGroup,
    extract_groups,
    group_of,
    match_groups,
)
from repro.openflow.match import FlowKey


def arrival(src, dst, t=1.0):
    return FlowArrival(flow=FlowKey(src, dst, 1000, 80), time=t, hops=())


class TestExtractGroups:
    def test_connected_hosts_one_group(self):
        groups = extract_groups([arrival("a", "b"), arrival("b", "c")])
        assert len(groups) == 1
        assert groups[0].members == {"a", "b", "c"}

    def test_disjoint_apps_separate_groups(self):
        groups = extract_groups([arrival("a", "b"), arrival("x", "y")])
        assert len(groups) == 2

    def test_special_node_does_not_merge(self):
        """Two apps sharing only a DNS server stay separate (Section III-B)."""
        arrivals = [
            arrival("a", "b"),
            arrival("x", "y"),
            arrival("a", "dns"),
            arrival("x", "dns"),
        ]
        groups = extract_groups(arrivals, special_nodes={"dns"})
        assert len(groups) == 2
        for group in groups:
            assert "dns" not in group.members
            assert "dns" in group.services

    def test_without_special_marking_groups_merge(self):
        """The same traffic without domain knowledge collapses to one group."""
        arrivals = [
            arrival("a", "b"),
            arrival("x", "y"),
            arrival("a", "dns"),
            arrival("x", "dns"),
        ]
        groups = extract_groups(arrivals)
        assert len(groups) == 1

    def test_service_to_service_traffic_ignored(self):
        arrivals = [arrival("dns", "ntp"), arrival("a", "b")]
        groups = extract_groups(arrivals, special_nodes={"dns", "ntp"})
        assert len(groups) == 1
        assert groups[0].members == {"a", "b"}

    def test_groups_sorted_deterministically(self):
        arrivals = [arrival("z", "w"), arrival("a", "b")]
        groups = extract_groups(arrivals)
        assert groups[0].key < groups[1].key

    def test_owns_edge(self):
        group = ApplicationGroup(
            members=frozenset({"a", "b"}), services=frozenset({"dns"})
        )
        assert group.owns_edge("a", "b")
        assert group.owns_edge("a", "dns")
        assert group.owns_edge("dns", "b")
        assert not group.owns_edge("dns", "dns")
        assert not group.owns_edge("x", "y")

    def test_group_of(self):
        groups = extract_groups([arrival("a", "b")])
        assert group_of(groups, "a") is groups[0]
        assert group_of(groups, "nope") is None


class TestMatchGroups:
    def g(self, *members):
        return ApplicationGroup(members=frozenset(members), services=frozenset())

    def test_identical_groups_pair(self):
        base = [self.g("a", "b"), self.g("x", "y")]
        cur = [self.g("x", "y"), self.g("a", "b")]
        pairs = match_groups(base, cur)
        assert all(b is not None and c is not None for b, c in pairs)
        for b, c in pairs:
            assert b.members == c.members

    def test_shrunk_group_still_pairs(self):
        base = [self.g("a", "b", "c")]
        cur = [self.g("a", "b")]
        pairs = match_groups(base, cur)
        assert pairs[0][1].members == {"a", "b"}

    def test_vanished_group_pairs_none(self):
        pairs = match_groups([self.g("a", "b")], [])
        assert pairs == [(match_groups([self.g("a", "b")], [])[0][0], None)]

    def test_new_group_appended(self):
        pairs = match_groups([], [self.g("n", "m")])
        assert pairs[0][0] is None
        assert pairs[0][1].members == {"n", "m"}

    def test_no_overlap_means_no_pair(self):
        pairs = match_groups([self.g("a", "b")], [self.g("x", "y")])
        matched = [(b, c) for b, c in pairs if b is not None and c is not None]
        assert not matched
        assert len(pairs) == 2

    def test_best_overlap_wins(self):
        base = [self.g("a", "b", "c")]
        cur = [self.g("a", "z"), self.g("a", "b", "q")]
        pairs = match_groups(base, cur)
        paired = [c for b, c in pairs if b is not None and c is not None]
        assert paired[0].members == {"a", "b", "q"}
