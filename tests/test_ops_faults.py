"""Unit tests for operator tasks and fault injectors."""

import random

import pytest

from repro.faults import (
    AppCrash,
    BackgroundTraffic,
    ControllerFailure,
    ControllerOverload,
    FirewallBlock,
    HighCPU,
    HostShutdown,
    LinkFailure,
    LinkLoss,
    LoggingMisconfig,
    SwitchFailure,
    UnauthorizedAccess,
)
from repro.apps.servers import ServerFarm
from repro.netsim.network import Network
from repro.netsim.topology import lab_testbed, linear_topology
from repro.ops.tasks import (
    NFS_PORT,
    MountNFSTask,
    UnmountNFSTask,
    VMMigrationTask,
    VMStartupTask,
    VMStopTask,
)


class TestOperatorTasks:
    def test_migration_sequence_matches_figure4(self):
        task = VMMigrationTask("VM1", "A", "B", "NFS")
        seq = task.flow_sequence(random.Random(1))
        keys = [k for _, k in seq]
        # First exchange: A updates the image on NFS:2049.
        assert keys[0].src == "A" and keys[0].dst == "NFS"
        assert keys[0].dst_port == NFS_PORT
        # Migration negotiation on port 8002 both ways.
        assert any(k.src == "A" and k.dst == "B" and k.dst_port == 8002 for k in keys)
        assert any(k.src == "B" and k.dst == "A" and k.dst_port == 8002 for k in keys)
        # Destination syncs with NFS at the end.
        assert any(k.src == "B" and k.dst == "NFS" for k in keys)

    def test_migration_times_increase(self):
        task = VMMigrationTask("VM1", "A", "B", "NFS")
        seq = task.flow_sequence(random.Random(2))
        times = [t for t, _ in seq]
        assert times == sorted(times)

    def test_migration_side_effect_moves_host(self):
        topo = linear_topology(3, 2)
        net = Network(topo)
        task = VMMigrationTask("h1", "h2", "h5", "h6", dst_switch="sw3")
        task.run(net, at=0.0)
        net.sim.run(until=10.0)
        assert topo.attachment_switch("h1") == "sw3"

    def test_startup_sequence_hits_services(self):
        task = VMStartupTask("VM1", dhcp="D", dns="N", ntp="T", nfs="F")
        keys = [k for _, k in task.flow_sequence(random.Random(3))]
        assert keys[0].dst == "D" and keys[0].dst_port == 67
        assert any(k.dst == "N" and k.dst_port == 53 for k in keys)
        assert any(k.dst == "T" and k.dst_port == 123 for k in keys)
        assert any(k.dst == "F" and k.dst_port == NFS_PORT for k in keys)

    def test_stop_task_shuts_host_down(self):
        net = Network(linear_topology(2, 2))
        task = VMStopTask("h1", "h4")
        task.run(net, at=0.0)
        net.sim.run(until=10.0)
        assert not net.host_is_up("h1")

    def test_mount_unmount_sequences_distinct(self):
        mount = MountNFSTask("H", "NFS").flow_sequence(random.Random(4))
        unmount = UnmountNFSTask("H", "NFS").flow_sequence(random.Random(4))
        mount_ports = [k.dst_port for _, k in mount]
        unmount_ports = [k.dst_port for _, k in unmount]
        assert mount_ports != unmount_ports

    def test_involved_hosts(self):
        task = VMMigrationTask("VM1", "A", "B", "NFS")
        assert task.involved_hosts() == {"VM1", "A", "B", "NFS"}

    def test_run_injects_flows_into_network(self):
        net = Network(linear_topology(3, 3))
        task = MountNFSTask("h1", "h9")
        task.run(net, at=1.0)
        net.sim.run(until=20.0)
        assert any(
            p.flow.dst_port == NFS_PORT for p in net.log.packet_ins()
        )


class TestFaultInjectors:
    def setup_method(self):
        self.net = Network(lab_testbed())
        self.farm = ServerFarm()

    def test_logging_misconfig(self):
        LoggingMisconfig("S3", 0.04).apply(self.net, self.farm)
        assert self.farm.behavior("S3").logging_overhead == 0.04
        LoggingMisconfig("S3").revert(self.net, self.farm)
        assert self.farm.behavior("S3").logging_overhead == 0.0

    def test_logging_requires_farm(self):
        with pytest.raises(ValueError):
            LoggingMisconfig("S3").apply(self.net, None)

    def test_high_cpu(self):
        HighCPU("S3", 5.0).apply(self.net, self.farm)
        assert self.farm.behavior("S3").cpu_factor == 5.0

    def test_app_crash(self):
        AppCrash("S3").apply(self.net, self.farm)
        assert self.farm.behavior("S3").crashed

    def test_host_shutdown_and_revert(self):
        fault = HostShutdown("S5")
        fault.apply(self.net, self.farm)
        assert not self.net.host_is_up("S5")
        fault.revert(self.net, self.farm)
        assert self.net.host_is_up("S5")

    def test_firewall_block(self):
        fault = FirewallBlock("S5", 3306)
        fault.apply(self.net)
        assert ("S5", 3306) in self.net._blocked
        fault.revert(self.net)
        assert ("S5", 3306) not in self.net._blocked

    def test_link_loss(self):
        fault = LinkLoss([("S1", "ofs3")], 0.05)
        fault.apply(self.net)
        assert self.net.topology.link("S1", "ofs3").loss_rate == 0.05
        fault.revert(self.net)
        assert self.net.topology.link("S1", "ofs3").loss_rate == 0.0

    def test_link_failure(self):
        fault = LinkFailure("ofs3", "ofs1")
        fault.apply(self.net)
        assert not self.net.topology.link("ofs3", "ofs1").up
        fault.revert(self.net)
        assert self.net.topology.link("ofs3", "ofs1").up

    def test_switch_failure(self):
        fault = SwitchFailure("ofs3")
        fault.apply(self.net)
        assert not self.net.switches["ofs3"].live
        fault.revert(self.net)
        assert self.net.switches["ofs3"].live

    def test_controller_overload(self):
        fault = ControllerOverload(8.0)
        fault.apply(self.net)
        assert self.net.controller.overload_factor == 8.0
        fault.revert(self.net)
        assert self.net.controller.overload_factor == 1.0

    def test_controller_failure(self):
        fault = ControllerFailure()
        fault.apply(self.net)
        assert not self.net.controller.live
        fault.revert(self.net)
        assert self.net.controller.live

    def test_background_traffic_generates_flows(self):
        fault = BackgroundTraffic("S24", "S25", duration=2.0, burst_period=0.1)
        fault.inject_at(self.net, at=0.0)
        self.net.sim.run(until=5.0)
        iperf_pins = [
            p for p in self.net.log.packet_ins() if p.flow.dst_port == 5001
        ]
        assert len(iperf_pins) > 0

    def test_background_traffic_revert_stops(self):
        fault = BackgroundTraffic("S24", "S25", duration=100.0, burst_period=0.1)
        fault.inject_at(self.net, at=0.0, until=1.0)
        self.net.sim.run(until=5.0)
        last_pin = max(
            (p.timestamp for p in self.net.log.packet_ins()), default=0.0
        )
        assert last_pin < 2.0

    def test_unauthorized_access_creates_new_edges(self):
        fault = UnauthorizedAccess("S20", ["S3"], n_flows=5, period=0.1)
        fault.inject_at(self.net, at=0.0)
        self.net.sim.run(until=5.0)
        intruder_flows = [
            p for p in self.net.log.packet_ins() if p.flow.src == "S20"
        ]
        assert intruder_flows

    def test_expected_impacts_declared(self):
        """Every fault declares its Table I / Fig 2(b) ground truth."""
        faults = [
            LoggingMisconfig("x"),
            HighCPU("x"),
            AppCrash("x"),
            HostShutdown("x"),
            FirewallBlock("x", 1),
            LinkLoss([("a", "b")]),
            BackgroundTraffic("a", "b"),
            LinkFailure("a", "b"),
            SwitchFailure("s"),
            ControllerOverload(),
            ControllerFailure(),
            UnauthorizedAccess("a", ["b"]),
        ]
        for fault in faults:
            assert fault.expected_impacts
            assert fault.problem_class != "unknown"
