"""End-to-end integration tests: workload -> log -> model -> diagnosis.

These mirror the paper's Table I methodology at small scale: run a healthy
baseline, re-run with one injected problem, and assert FlowDiff's diff
detects the right signature changes, classifies a plausible problem type,
and localizes the faulty component.
"""

import pytest

from repro import FlowDiff, FlowDiffConfig
from repro.core.signatures import SignatureKind
from repro.core.tasks import TaskLibrary
from repro.faults import (
    AppCrash,
    ControllerOverload,
    HighCPU,
    HostShutdown,
    LinkLoss,
    LoggingMisconfig,
    UnauthorizedAccess,
)
from repro.ops import VMMigrationTask
from repro.scenarios import three_tier_lab

pytestmark = pytest.mark.slow

DURATION = 30.0


def run_lab(fault=None, seed=3, task=None):
    scenario = three_tier_lab(seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    if task is not None:
        task.run(scenario.network, at=DURATION / 2)
    return scenario.run(0.5, DURATION)


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def baseline_model(fd):
    return fd.model(run_lab())


class TestHealthyBaseline:
    def test_no_fault_no_findings(self, fd, baseline_model):
        """A different seed (different workload sample) stays clean."""
        report = fd.diff(baseline_model, fd.model(run_lab(seed=17)))
        assert report.healthy

    def test_baseline_signatures_stable(self, baseline_model):
        for (key, kind), verdict in baseline_model.stability.items():
            assert verdict, f"{kind} unexpectedly unstable for {key}"


class TestFaultDetection:
    def diff(self, fd, baseline_model, fault):
        return fd.diff(baseline_model, fd.model(run_lab(fault=fault)))

    def test_logging_misconfig_shifts_dd_only(self, fd, baseline_model):
        report = self.diff(fd, baseline_model, LoggingMisconfig("S3", 0.05))
        assert report.changed_kinds() == (SignatureKind.DD,)
        assert "S3" in [c for c, _ in report.component_ranking[:3]]

    def test_high_cpu_shifts_dd(self, fd, baseline_model):
        report = self.diff(fd, baseline_model, HighCPU("S3", 3.0))
        assert SignatureKind.DD in report.changed_kinds()
        assert "S3" in [c for c, _ in report.component_ranking[:3]]

    def test_link_loss_shifts_dd_and_fs(self, fd, baseline_model):
        report = self.diff(
            fd, baseline_model, LinkLoss([("S1", "ofs3"), ("S3", "ofs5")], 0.02)
        )
        kinds = set(report.changed_kinds())
        assert SignatureKind.FS in kinds
        assert SignatureKind.DD in kinds

    def test_app_crash_removes_structure(self, fd, baseline_model):
        report = self.diff(fd, baseline_model, AppCrash("S3"))
        kinds = set(report.changed_kinds())
        assert SignatureKind.CG in kinds
        assert SignatureKind.CI in kinds
        assert any(
            p.problem in ("application_failure", "host_failure")
            for p in report.problems
        )

    def test_host_shutdown_detected(self, fd, baseline_model):
        report = self.diff(fd, baseline_model, HostShutdown("S8"))
        assert SignatureKind.CG in report.changed_kinds()
        assert any(p.problem == "host_failure" for p in report.problems)
        assert "S8" in [c for c, _ in report.component_ranking[:4]]

    def test_unauthorized_access_classified(self, fd, baseline_model):
        report = self.diff(
            fd, baseline_model, UnauthorizedAccess("S20", ["S3", "S8"], n_flows=30)
        )
        assert report.problems[0].problem == "unauthorized_access"
        assert report.component_ranking[0][0] == "S20"

    def test_controller_overload_shifts_crt(self, fd, baseline_model):
        report = self.diff(fd, baseline_model, ControllerOverload(20.0))
        assert SignatureKind.CRT in report.changed_kinds()
        assert any(
            p.problem in ("controller_overhead", "controller_failure")
            for p in report.problems
        )


class TestTaskValidation:
    def test_migration_changes_explained_by_task(self, fd):
        """A learned migration automaton silences the migration's changes."""
        import random

        scenario = three_tier_lab(seed=3)
        nfs = "S20"
        task = VMMigrationTask("VM1", "S1", "S2", nfs, dst_switch="ofs4")

        library = TaskLibrary()
        library.learn(
            "vm_migration",
            [task.flow_sequence(random.Random(i)) for i in range(20)],
            masked=True,
        )

        baseline = fd.model(run_lab())
        log2 = run_lab(task=VMMigrationTask("VM1", "S1", "S2", nfs, dst_switch="ofs4"))

        unvalidated = fd.diff(baseline, fd.model(log2))
        validated = fd.diff(
            baseline, fd.model(log2), task_library=library, current_log=log2
        )
        assert len(validated.task_events) >= 1
        assert validated.task_events[0].name == "vm_migration"
        assert len(validated.unknown_changes) < len(unvalidated.unknown_changes)
        assert validated.known_changes


class TestWindowedDiff:
    def test_same_log_two_windows(self, fd):
        """L1/L2 as two windows of one capture (the paper's workflow)."""
        scenario = three_tier_lab(seed=3)
        scenario.inject(LoggingMisconfig("S3", 0.05), at=30.0)
        log = scenario.run(0.5, 60.0)
        l1 = log.window(0.0, 28.0)
        l2 = log.window(32.0, 60.0)
        report = fd.diff(fd.model(l1), fd.model(l2))
        assert SignatureKind.DD in report.changed_kinds()
