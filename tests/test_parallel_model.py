"""Serial-vs-parallel modeling equivalence and signature merge laws.

The sharded pipeline's contract is exactness: ``model_to_dict(serial) ==
model_to_dict(parallel)`` for any job count, shard geometry, or log
shape it accepts — and a clean fallback to serial for shapes it cannot
shard without changing pairing semantics.
"""

import pytest

from repro.core.events import extract_flow_records
from repro.core.flowdiff import FlowDiff, FlowDiffConfig
from repro.core.occurrence import splits_occurrence
from repro.core.parallel import parallel_model
from repro.core.persist import model_to_dict
from repro.core.signatures.connectivity import ConnectivityGraph
from repro.core.signatures.correlation import PartialCorrelation
from repro.core.signatures.delay import DelayDistribution
from repro.core.signatures.flowstats import FlowStats
from repro.core.signatures.infrastructure import build_infrastructure_signature
from repro.core.signatures.interaction import ComponentInteraction
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowMod, PacketIn


@pytest.fixture(scope="module")
def lab_log():
    from repro.scenarios import three_tier_lab

    return three_tier_lab(seed=3).run(stop=12.0)


@pytest.fixture(scope="module")
def lab_serial_dict(lab_log):
    model = FlowDiff(FlowDiffConfig()).model(lab_log)
    return model_to_dict(model)


def traversal(log, key, t0, dpids, response=0.0005, step=0.001):
    """Append one flow traversal: PacketIn + paired FlowMod per switch."""
    t = t0
    for i, dpid in enumerate(dpids):
        pin = PacketIn(
            timestamp=t, dpid=dpid, flow=key, in_port=i + 1, buffer_id=1000 + len(log)
        )
        log.append(pin)
        log.append(
            FlowMod(
                timestamp=t + response,
                dpid=dpid,
                match=Match.exact(key),
                out_port=i + 2,
                in_reply_to=pin.buffer_id,
            )
        )
        t += step


class TestEquivalenceOnLabScenario:
    @pytest.mark.parametrize("jobs", [2, 8])
    def test_jobs_match_serial(self, lab_log, lab_serial_dict, jobs):
        parallel = FlowDiff(FlowDiffConfig(jobs=jobs)).model(lab_log)
        assert model_to_dict(parallel) == lab_serial_dict

    def test_jobs_zero_means_auto(self, lab_log, lab_serial_dict):
        parallel = FlowDiff(FlowDiffConfig(jobs=0)).model(lab_log)
        assert model_to_dict(parallel) == lab_serial_dict

    def test_without_stability_assessment(self, lab_log):
        serial = FlowDiff(FlowDiffConfig()).model(lab_log, assess=False)
        parallel = FlowDiff(FlowDiffConfig(jobs=4)).model(lab_log, assess=False)
        assert model_to_dict(parallel) == model_to_dict(serial)

    def test_explicit_sub_window(self, lab_log):
        a, b = lab_log.time_span
        window = (a + (b - a) * 0.25, a + (b - a) * 0.75)
        sub = lab_log.window(*window)
        serial = FlowDiff(FlowDiffConfig()).model(sub)
        parallel = FlowDiff(FlowDiffConfig(jobs=4)).model(sub)
        assert model_to_dict(parallel) == model_to_dict(serial)

    @pytest.mark.parametrize("n_shards", [2, 5, 7])
    def test_forced_shard_counts(self, lab_log, lab_serial_dict, n_shards):
        fd = FlowDiff(FlowDiffConfig(jobs=4))
        model = parallel_model(
            fd, lab_log, lab_log.time_span, assess=True, n_shards=n_shards
        )
        assert model is not None
        assert model_to_dict(model) == lab_serial_dict

    @pytest.mark.slow
    def test_forced_process_pool(self, lab_log, lab_serial_dict):
        fd = FlowDiff(FlowDiffConfig(jobs=4))
        model = parallel_model(
            fd, lab_log, lab_log.time_span, assess=True, use_processes=True
        )
        assert model is not None
        assert model_to_dict(model) == lab_serial_dict


class TestShardBoundaries:
    def test_run_straddling_shard_boundary_not_double_counted(self):
        # One flow's reports straddle the 2-shard midpoint (t=5): the
        # head run of shard 2 must be stitched into shard 1's tail run.
        log = ControllerLog()
        key = FlowKey("a", "b", 1000, 80)
        traversal(log, key, 0.0, ["sw1"])
        traversal(log, key, 4.9995, ["sw1", "sw2", "sw3"], step=0.4)
        traversal(log, FlowKey("c", "d", 1001, 80), 10.0, ["sw9"])
        serial = FlowDiff(FlowDiffConfig()).model(log, assess=False)
        fd = FlowDiff(FlowDiffConfig(jobs=2))
        model = parallel_model(fd, log, log.time_span, assess=False, n_shards=2)
        assert model is not None
        assert model_to_dict(model) == model_to_dict(serial)

    def test_empty_middle_shards_chain_gap_decisions(self):
        # Activity only near both ends: with 4 shards the middle two are
        # empty, and the same-flow gap decision must chain across them.
        log = ControllerLog()
        quiet = FlowKey("a", "b", 1000, 80)
        for gap_key, restart in ((quiet, 9.0), (FlowKey("c", "d", 1001, 80), 9.5)):
            traversal(log, gap_key, 0.5, ["sw1", "sw2"])
            traversal(log, gap_key, restart, ["sw1", "sw2"])
        serial = FlowDiff(FlowDiffConfig()).model(log)
        fd = FlowDiff(FlowDiffConfig(jobs=4))
        model = parallel_model(fd, log, log.time_span, assess=True, n_shards=4)
        assert model is not None
        assert model_to_dict(model) == model_to_dict(serial)

    def test_more_shards_than_content(self):
        log = ControllerLog()
        traversal(log, FlowKey("a", "b", 1000, 80), 1.0, ["sw1"])
        traversal(log, FlowKey("c", "d", 1001, 80), 2.0, ["sw2"])
        serial = FlowDiff(FlowDiffConfig()).model(log, assess=False)
        fd = FlowDiff(FlowDiffConfig(jobs=2))
        model = parallel_model(fd, log, log.time_span, assess=False, n_shards=16)
        assert model is not None
        assert model_to_dict(model) == model_to_dict(serial)


class TestSerialFallback:
    def test_mod_without_reply_id_falls_back(self):
        log = ControllerLog()
        key = FlowKey("a", "b", 1000, 80)
        pin = PacketIn(timestamp=1.0, dpid="sw1", flow=key, in_port=1, buffer_id=7)
        log.append(pin)
        log.append(
            FlowMod(
                timestamp=1.001,
                dpid="sw1",
                match=Match.exact(key),
                out_port=2,
                in_reply_to=None,
            )
        )
        traversal(log, FlowKey("c", "d", 1001, 80), 5.0, ["sw2"])
        fd = FlowDiff(FlowDiffConfig(jobs=4))
        assert parallel_model(fd, log, log.time_span, assess=False) is None
        # The facade still produces the serial result transparently.
        serial = FlowDiff(FlowDiffConfig()).model(log, assess=False)
        assert model_to_dict(fd.model(log, assess=False)) == model_to_dict(serial)

    def test_duplicate_reply_ids_fall_back(self):
        log = ControllerLog()
        key = FlowKey("a", "b", 1000, 80)
        for ts, dpid in ((1.0, "sw1"), (1.5, "sw2")):
            log.append(
                PacketIn(timestamp=ts, dpid=dpid, flow=key, in_port=1, buffer_id=7)
            )
            log.append(
                FlowMod(
                    timestamp=ts + 0.001,
                    dpid=dpid,
                    match=Match.exact(key),
                    out_port=2,
                    in_reply_to=7,
                )
            )
        fd = FlowDiff(FlowDiffConfig(jobs=4))
        assert parallel_model(fd, log, log.time_span, assess=False) is None

    def test_degenerate_single_timestamp_log(self):
        log = ControllerLog()
        log.append(
            PacketIn(
                timestamp=1.0,
                dpid="sw1",
                flow=FlowKey("a", "b", 1000, 80),
                in_port=1,
                buffer_id=1,
            )
        )
        fd = FlowDiff(FlowDiffConfig(jobs=4))
        assert parallel_model(fd, log, log.time_span, assess=False) is None
        fd.model(log, assess=False)  # facade falls back without error


def _contiguous_thirds(seq):
    n = len(seq)
    return [seq[: n // 3], seq[n // 3 : 2 * n // 3], seq[2 * n // 3 :]]


class TestSignatureMergeLaws:
    """merge(partials) == build(whole), per signature class."""

    @pytest.fixture(scope="class")
    def records(self, lab_log):
        records = extract_flow_records(lab_log, 1.0)
        assert len(records) > 30
        return records

    @pytest.fixture(scope="class")
    def arrivals(self, records):
        return [r.arrival for r in records]

    @pytest.fixture(scope="class")
    def span(self, lab_log):
        return lab_log.time_span

    def test_connectivity_merge(self, arrivals):
        full = ConnectivityGraph.build(arrivals)
        parts = [ConnectivityGraph.build(p) for p in _contiguous_thirds(arrivals)]
        assert ConnectivityGraph.merge(parts) == full

    def test_interaction_merge(self, arrivals):
        full = ComponentInteraction.build(arrivals)
        parts = [ComponentInteraction.build(p) for p in _contiguous_thirds(arrivals)]
        assert ComponentInteraction.merge(parts) == full

    def test_flowstats_merge(self, records, span):
        t0, t1 = span
        full = FlowStats.build(records, t0, t1)
        parts = [
            FlowStats.build(p, t0, t1, keep_rows=True)
            for p in _contiguous_thirds(records)
        ]
        assert FlowStats.merge(parts, t0, t1) == full

    def test_flowstats_merge_requires_rows(self, records, span):
        t0, t1 = span
        parts = [FlowStats.build(p, t0, t1) for p in _contiguous_thirds(records)]
        with pytest.raises(ValueError, match="keep_rows"):
            FlowStats.merge(parts, t0, t1)

    def test_delay_merge(self, arrivals):
        full = DelayDistribution.build(arrivals)
        parts = [
            DelayDistribution.build(p, keep_events=True)
            for p in _contiguous_thirds(arrivals)
        ]
        assert DelayDistribution.merge(parts) == full

    def test_delay_merge_requires_events(self, arrivals):
        parts = [DelayDistribution.build(p) for p in _contiguous_thirds(arrivals)]
        if not any(p.samples for p in parts):
            pytest.skip("scenario produced no delay samples")
        with pytest.raises(ValueError, match="keep_events"):
            DelayDistribution.merge(parts)

    def test_correlation_merge(self, arrivals, span):
        t0, t1 = span
        full = PartialCorrelation.build(arrivals, t0, t1)
        parts = [
            PartialCorrelation.build(p, t0, t1, keep_times=True)
            for p in _contiguous_thirds(arrivals)
        ]
        assert PartialCorrelation.merge(parts, t0, t1) == full

    def test_infrastructure_merge(self, arrivals):
        full = build_infrastructure_signature(arrivals, port_down_events=((1.0, "sw1", 3),))
        thirds = _contiguous_thirds(arrivals)
        parts = [
            build_infrastructure_signature(
                p, port_down_events=((1.0, "sw1", 3),) if i == 0 else (),
                keep_partials=True,
            )
            for i, p in enumerate(thirds)
        ]
        merged = type(full).merge(parts)
        assert merged == full

    def test_merge_is_associative(self, arrivals, records, span):
        t0, t1 = span
        parts = [
            DelayDistribution.build(p, keep_events=True)
            for p in _contiguous_thirds(arrivals)
        ]
        left = DelayDistribution.merge(
            [DelayDistribution.merge(parts[:2], keep_events=True), parts[2]]
        )
        assert left == DelayDistribution.merge(parts)
        fs_parts = [
            FlowStats.build(p, t0, t1, keep_rows=True)
            for p in _contiguous_thirds(records)
        ]
        fs_left = FlowStats.merge(
            [FlowStats.merge(fs_parts[:2], t0, t1, keep_rows=True), fs_parts[2]],
            t0,
            t1,
        )
        assert fs_left == FlowStats.merge(fs_parts, t0, t1)


class TestOccurrenceBoundary:
    """The shared gap predicate and both of its call sites pin the
    boundary: a report at exactly ``previous + gap`` continues the same
    occurrence; only strictly beyond starts a new one."""

    GAP = 1.0
    EPS = 1e-6

    def test_predicate_at_boundary(self):
        assert not splits_occurrence(10.0, 10.0 + self.GAP, self.GAP)
        assert not splits_occurrence(10.0, 10.0 + self.GAP - self.EPS, self.GAP)
        assert splits_occurrence(10.0, 10.0 + self.GAP + self.EPS, self.GAP)

    @pytest.mark.parametrize(
        "offset,expected_arrivals",
        [(GAP, 1), (GAP - EPS, 1), (GAP + EPS, 2)],
    )
    def test_extraction_boundary(self, offset, expected_arrivals):
        from repro.core.events import extract_flow_arrivals

        log = ControllerLog()
        key = FlowKey("a", "b", 1000, 80)
        for i, ts in enumerate((10.0, 10.0 + offset)):
            log.append(
                PacketIn(timestamp=ts, dpid="sw1", flow=key, in_port=1, buffer_id=i)
            )
        arrivals = extract_flow_arrivals(log, occurrence_gap=self.GAP)
        assert len(arrivals) == expected_arrivals

    @pytest.mark.parametrize(
        "offset,expected_timelines",
        [(GAP, 1), (GAP - EPS, 1), (GAP + EPS, 2)],
    )
    def test_flight_recorder_boundary(self, offset, expected_timelines):
        from repro.obs.flightrec import FlightRecorder

        log = ControllerLog()
        key = FlowKey("a", "b", 1000, 80)
        for ts in (10.0, 10.0 + offset):
            # No corr_id: forces the recorder's heuristic occurrence
            # grouping, the second user of the shared predicate.
            log.append(
                PacketIn(timestamp=ts, dpid="sw1", flow=key, in_port=1, buffer_id=0)
            )
        recorder = FlightRecorder.from_log(log, occurrence_gap=self.GAP)
        assert len(recorder.timelines) == expected_timelines
