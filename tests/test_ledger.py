"""The run ledger: content addressing, append-only round trips, damage
tolerance, and the perf-regression gate."""

import json
import os
import unittest
import warnings

from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    compare_records,
    gate_records,
    render_compare_table,
    render_records_table,
)


def make_record(**overrides):
    base = dict(
        run_id="deadbeef00000000",
        command="profile",
        scenario="lab",
        seed=3,
        messages=1000,
        phases={"model": 0.100, "model/extract": 0.040, "diff": 0.020},
        total_s=0.120,
        metrics={"unknown_changes": 0},
        repeats=3,
        noise_floor_pct=10.0,
        created_at="2026-01-01T00:00:00+0000",
    )
    base.update(overrides)
    return RunRecord(**base)


class RecordTest(unittest.TestCase):
    def test_round_trip(self):
        record = make_record(folded={"model;f.py:g": 0.05})
        clone = RunRecord.from_dict(record.to_dict())
        self.assertEqual(clone.record_id, record.record_id)
        self.assertEqual(clone.to_dict(), record.to_dict())

    def test_content_id_is_content_addressed(self):
        a = make_record()
        b = make_record()
        self.assertEqual(a.record_id, b.record_id)
        c = make_record(messages=1001)
        self.assertNotEqual(a.record_id, c.record_id)

    def test_content_id_excludes_itself(self):
        record = make_record()
        self.assertEqual(record.content_id(), record.record_id)

    def test_summary_omits_heavy_fields(self):
        record = make_record(folded={"model;f.py:g": 0.05})
        summary = record.summary()
        self.assertNotIn("folded", summary)
        self.assertEqual(summary["phases"], 3)
        self.assertTrue(summary["profiled"])

    def test_from_bench_adapts_pipeline_payload(self):
        payload = {
            "benchmark": "pipeline",
            "seed": 3,
            "messages": 5000,
            "phases": {"model": 0.2, "diff": 0.01},
            "total_s": 0.21,
            "obs_overhead": {"noise_floor_pct": 12.5},
            "created_at": "2026-01-01T00:00:00+0000",
        }
        record = RunRecord.from_bench(payload, source="BENCH_pipeline.json")
        self.assertEqual(record.run_id, "bench:pipeline")
        self.assertEqual(record.phases["model"], 0.2)
        self.assertEqual(record.noise_floor_pct, 12.5)


class LedgerTest(unittest.TestCase):
    def test_append_and_read_back(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ledger = RunLedger(tmp)
            first = ledger.append(make_record())
            second = ledger.append(make_record(messages=2000))
            records = ledger.records()
            self.assertEqual(
                [r.record_id for r in records],
                [first.record_id, second.record_id],
            )
            self.assertEqual(ledger.latest().record_id, second.record_id)

    def test_get_by_prefix(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ledger = RunLedger(tmp)
            record = ledger.append(make_record())
            self.assertEqual(
                ledger.get(record.record_id[:4]).record_id, record.record_id
            )
            with self.assertRaises(KeyError):
                ledger.get("zzzz")

    def test_get_ambiguous_prefix(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ledger = RunLedger(tmp)
            ledger.append(make_record())
            ledger.append(make_record(messages=2000))
            with self.assertRaises(KeyError) as ctx:
                ledger.get("")  # empty prefix matches both
            self.assertIn("ambiguous", str(ctx.exception))

    def test_latest_filters_by_run_id(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ledger = RunLedger(tmp)
            ledger.append(make_record())
            other = ledger.append(
                make_record(run_id="feedface00000000", messages=2000)
            )
            self.assertEqual(
                ledger.latest(run_id="feedface00000000").record_id,
                other.record_id,
            )
            self.assertIsNone(ledger.latest(run_id="nosuchrun"))

    def test_corrupt_line_skipped_with_warning(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ledger = RunLedger(tmp)
            kept = ledger.append(make_record())
            with open(ledger.path, "a", encoding="utf-8") as fh:
                fh.write('{"torn": \n')
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                records = ledger.records()
            self.assertEqual([r.record_id for r in records], [kept.record_id])
            self.assertTrue(
                any("unreadable ledger line" in str(w.message) for w in caught)
            )

    def test_empty_ledger(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ledger = RunLedger(os.path.join(tmp, "never-created"))
            self.assertEqual(ledger.records(), [])
            self.assertIsNone(ledger.latest())

    def test_append_is_single_json_line(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ledger = RunLedger(tmp)
            record = ledger.append(make_record(folded={"a;f": 1.0}))
            with open(ledger.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
            self.assertEqual(len(lines), 1)
            self.assertEqual(
                json.loads(lines[0])["record_id"], record.record_id
            )


class CompareTest(unittest.TestCase):
    def test_rows_cover_union_of_phases(self):
        baseline = make_record()
        current = make_record(
            phases={"model": 0.200, "rank": 0.010}, total_s=0.210
        )
        rows = compare_records(baseline, current)
        by_phase = {row["phase"]: row for row in rows}
        self.assertAlmostEqual(by_phase["model"]["delta_pct"], 100.0)
        self.assertIsNone(by_phase["rank"]["baseline_s"])
        self.assertIsNone(by_phase["rank"]["delta_pct"])
        self.assertIsNone(by_phase["diff"]["current_s"])
        self.assertIn("(total)", by_phase)
        self.assertIn("delta", render_compare_table(rows))

    def test_records_table_renders(self):
        table = render_records_table([make_record()])
        self.assertIn("record", table)
        self.assertEqual(render_records_table([]), "(empty ledger)")


class GateTest(unittest.TestCase):
    def test_identical_records_pass(self):
        record = make_record()
        result = gate_records(record, record, tolerance_pct=25.0)
        self.assertTrue(result.ok)
        self.assertEqual(result.regressions, [])
        self.assertIn("PASSED", result.render())

    def test_two_x_slowdown_fails(self):
        baseline = make_record(noise_floor_pct=5.0)
        slowed = make_record(
            phases={k: v * 2.0 for k, v in baseline.phases.items()},
            total_s=baseline.total_s * 2.0,
            noise_floor_pct=5.0,
        )
        result = gate_records(slowed, baseline, tolerance_pct=25.0)
        self.assertFalse(result.ok)
        regressed = {row["phase"] for row in result.regressions}
        self.assertIn("model", regressed)
        self.assertIn("(total)", regressed)
        self.assertIn("FAILED", result.render())

    def test_noise_floor_raises_tolerance(self):
        baseline = make_record(noise_floor_pct=80.0)
        slowed = make_record(
            phases={k: v * 1.5 for k, v in baseline.phases.items()},
            total_s=baseline.total_s * 1.5,
        )
        result = gate_records(slowed, baseline, tolerance_pct=25.0)
        self.assertTrue(result.ok)
        self.assertEqual(result.tolerance_pct, 80.0)

    def test_absolute_floor_shields_fast_phases(self):
        baseline = make_record(
            phases={"rank": 0.0001}, total_s=0.0001, noise_floor_pct=0.0
        )
        slowed = make_record(
            phases={"rank": 0.0004}, total_s=0.0004, noise_floor_pct=0.0
        )
        result = gate_records(slowed, baseline, tolerance_pct=25.0, floor_s=0.005)
        self.assertTrue(result.ok)
        # 4x on a 0.1ms phase never even enters the checked set.
        self.assertEqual(result.checked, [])

    def test_phase_only_on_one_side_never_fails(self):
        baseline = make_record()
        renamed = make_record(
            phases={"modeling": 0.5}, total_s=baseline.total_s
        )
        result = gate_records(renamed, baseline, tolerance_pct=25.0)
        self.assertTrue(result.ok)

    def test_to_dict_shape(self):
        result = gate_records(make_record(), make_record())
        payload = result.to_dict()
        self.assertIn("ok", payload)
        self.assertIn("regressions", payload)
        self.assertIn("tolerance_pct", payload)
        self.assertIn("floors", payload)

    def _floor_baseline(self, **simulate):
        section = dict(
            messages_per_s=50_000,
            min_messages_per_s=47_133,
            noise_floor_pct=0.0,
        )
        section.update(simulate)
        return make_record(
            metrics={"messages_per_s": section["messages_per_s"]},
            bench={"throughput": {"simulate": section}},
        )

    def test_throughput_floor_passes_and_renders(self):
        baseline = self._floor_baseline()
        current = make_record(metrics={"messages_per_s": 48_000.0})
        result = gate_records(current, baseline, tolerance_pct=25.0)
        self.assertTrue(result.ok)
        self.assertEqual(len(result.floors), 1)
        row = result.floors[0]
        self.assertEqual(row["name"], "throughput/messages_per_s")
        self.assertEqual(row["floor"], 47_133)
        self.assertIn("throughput/messages_per_s", result.render())

    def test_throughput_floor_failure_fails_gate(self):
        baseline = self._floor_baseline()
        slow = make_record(metrics={"messages_per_s": 15_711.0})
        result = gate_records(slow, baseline, tolerance_pct=25.0)
        self.assertFalse(result.ok)
        self.assertFalse(result.floors[0]["ok"])
        # No phase regressed; the failure line must still say why.
        self.assertEqual(result.regressions, [])
        self.assertIn("FAILED", result.render())

    def test_floor_relaxes_by_max_of_tolerance_and_noise(self):
        baseline = self._floor_baseline(noise_floor_pct=100.0)
        # Above floor/(1 + 100/100) but far below the nominal floor.
        current = make_record(metrics={"messages_per_s": 24_000.0})
        result = gate_records(current, baseline, tolerance_pct=25.0)
        self.assertTrue(result.ok)
        self.assertEqual(result.floors[0]["tolerance_pct"], 100.0)

    def test_record_without_measured_rate_skips_floor(self):
        baseline = self._floor_baseline()
        legacy = make_record()  # pre-campaign record: no messages_per_s
        result = gate_records(legacy, baseline, tolerance_pct=25.0)
        self.assertTrue(result.ok)
        self.assertEqual(result.floors, [])


class MetricsTest(unittest.TestCase):
    def test_ledger_counters(self):
        import tempfile

        from repro.obs.metrics import MetricsRegistry

        with tempfile.TemporaryDirectory() as tmp:
            registry = MetricsRegistry()
            ledger = RunLedger(tmp, metrics=registry)
            ledger.append(make_record())
            with open(ledger.path, "a", encoding="utf-8") as fh:
                fh.write("not json\n")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ledger.records()
            appended = registry.counter("runs_records_total", status="append")
            skipped = registry.counter("runs_records_total", status="skipped")
            self.assertEqual(appended.value, 1)
            self.assertEqual(skipped.value, 1)


if __name__ == "__main__":
    unittest.main()
