"""Property harness for the Signature contract (flowlint's dynamic half).

The ``signature-contract`` lint rule checks statically that every
Signature subclass defines ``merge``/``diff``/``to_dict``/``from_dict``;
this file checks dynamically what no AST pass can: that ``merge`` is
associative over time-contiguous partial signatures (the invariant the
parallel shard pipeline rests on — shards merge in tree order, so
``merge([merge([a, b]), c])``, ``merge([a, merge([b, c])])`` and
``merge([a, b, c])`` must all agree), and that the ``to_dict`` encoding
is a fixed point under re-encoding.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import FlowArrival, FlowRecord, HopReport
from repro.core.signatures import (
    ComponentInteraction,
    ConnectivityGraph,
    ControllerResponseTime,
    DelayDistribution,
    FlowStats,
    InterSwitchLatency,
    PartialCorrelation,
    PhysicalTopology,
)
from repro.openflow.match import FlowKey

HOSTS = ("h0", "h1", "h2", "h3")
DPIDS = ("s1", "s2", "s3")
T_START, T_END = 0.0, 30.0


def make_arrival(t, src, dst, n_hops):
    hops = []
    ts = t
    for i in range(n_hops):
        hops.append(
            HopReport(
                dpid=DPIDS[i % len(DPIDS)],
                in_port=i + 1,
                packet_in_at=ts,
                flow_mod_at=ts + 0.001,
                out_port=i + 2,
            )
        )
        ts += 0.002
    return FlowArrival(flow=FlowKey(src, dst, 1000, 80), time=t, hops=tuple(hops))


def make_record(arrival_obj, nbytes):
    return FlowRecord(
        arrival=arrival_obj,
        byte_count=nbytes,
        packet_count=max(1, nbytes // 1460),
        duration=0.05,
    )


#: One raw event: (centisecond timestamp, src index, dst offset, hop count,
#: byte count). Timestamps are integers scaled to floats so generated
#: streams sort deterministically without float-precision edge cases.
event_st = st.tuples(
    st.integers(min_value=0, max_value=2999),
    st.integers(min_value=0, max_value=len(HOSTS) - 1),
    st.integers(min_value=1, max_value=len(HOSTS) - 1),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=100, max_value=100_000),
)

events_st = st.lists(event_st, min_size=0, max_size=40)


def arrivals_from(events):
    """Sorted, time-contiguous arrival stream from raw generated events."""
    out = []
    for ts, src_i, dst_off, n_hops, _nbytes in sorted(events):
        src = HOSTS[src_i]
        dst = HOSTS[(src_i + dst_off) % len(HOSTS)]
        out.append(make_arrival(ts / 100.0, src, dst, n_hops))
    return out


def records_from(events):
    return [
        make_record(a, nbytes)
        for a, (_, _, _, _, nbytes) in zip(
            arrivals_from(events), sorted(events)
        )
    ]


def slices(items):
    """Three contiguous slices (some possibly empty) covering the stream."""
    third = len(items) // 3
    return items[:third], items[third : 2 * third], items[2 * third :]


class TestMergeAssociativity:
    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_connectivity_graph(self, events):
        a, b, c = (ConnectivityGraph.build(s) for s in slices(arrivals_from(events)))
        left = ConnectivityGraph.merge([ConnectivityGraph.merge([a, b]), c])
        right = ConnectivityGraph.merge([a, ConnectivityGraph.merge([b, c])])
        flat = ConnectivityGraph.merge([a, b, c])
        assert left == right == flat
        assert flat == ConnectivityGraph.build(arrivals_from(events))

    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_component_interaction(self, events):
        a, b, c = (
            ComponentInteraction.build(s) for s in slices(arrivals_from(events))
        )
        left = ComponentInteraction.merge([ComponentInteraction.merge([a, b]), c])
        right = ComponentInteraction.merge([a, ComponentInteraction.merge([b, c])])
        flat = ComponentInteraction.merge([a, b, c])
        assert left == right == flat
        assert flat == ComponentInteraction.build(arrivals_from(events))

    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_flow_stats(self, events):
        def build(s, keep):
            return FlowStats.build(s, T_START, T_END, keep_rows=keep)

        a, b, c = (build(s, True) for s in slices(records_from(events)))
        ab = FlowStats.merge([a, b], T_START, T_END, keep_rows=True)
        bc = FlowStats.merge([b, c], T_START, T_END, keep_rows=True)
        left = FlowStats.merge([ab, c], T_START, T_END)
        right = FlowStats.merge([a, bc], T_START, T_END)
        flat = FlowStats.merge([a, b, c], T_START, T_END)
        assert left == right == flat
        # Merging partials matches one build over the whole stream.
        assert flat == build(records_from(events), False)

    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_delay_distribution(self, events):
        def build(s, keep):
            return DelayDistribution.build(s, keep_events=keep)

        a, b, c = (build(s, True) for s in slices(arrivals_from(events)))
        ab = DelayDistribution.merge([a, b], keep_events=True)
        bc = DelayDistribution.merge([b, c], keep_events=True)
        left = DelayDistribution.merge([ab, c])
        right = DelayDistribution.merge([a, bc])
        flat = DelayDistribution.merge([a, b, c])
        assert left == right == flat
        assert flat == build(arrivals_from(events), False)

    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_partial_correlation(self, events):
        def build(s, keep):
            return PartialCorrelation.build(s, T_START, T_END, keep_times=keep)

        a, b, c = (build(s, True) for s in slices(arrivals_from(events)))
        ab = PartialCorrelation.merge([a, b], T_START, T_END, keep_times=True)
        bc = PartialCorrelation.merge([b, c], T_START, T_END, keep_times=True)
        left = PartialCorrelation.merge([ab, c], T_START, T_END)
        right = PartialCorrelation.merge([a, bc], T_START, T_END)
        flat = PartialCorrelation.merge([a, b, c], T_START, T_END)
        assert left == right == flat
        assert flat == build(arrivals_from(events), False)

    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_physical_topology(self, events):
        def build(s, keep):
            return PhysicalTopology.build(s, keep_votes=keep)

        a, b, c = (build(s, True) for s in slices(arrivals_from(events)))
        ab = PhysicalTopology.merge([a, b], keep_votes=True)
        bc = PhysicalTopology.merge([b, c], keep_votes=True)
        left = PhysicalTopology.merge([ab, c])
        right = PhysicalTopology.merge([a, bc])
        flat = PhysicalTopology.merge([a, b, c])
        assert left == right == flat
        assert flat == build(arrivals_from(events), False)

    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_inter_switch_latency(self, events):
        def build(s, keep):
            return InterSwitchLatency.build(s, keep_samples=keep)

        a, b, c = (build(s, True) for s in slices(arrivals_from(events)))
        ab = InterSwitchLatency.merge([a, b], keep_samples=True)
        bc = InterSwitchLatency.merge([b, c], keep_samples=True)
        left = InterSwitchLatency.merge([ab, c])
        right = InterSwitchLatency.merge([a, bc])
        flat = InterSwitchLatency.merge([a, b, c])
        assert left == right == flat
        assert flat == build(arrivals_from(events), False)

    @settings(max_examples=30, deadline=None)
    @given(events_st)
    def test_controller_response_time(self, events):
        def build(s, keep):
            return ControllerResponseTime.build(s, keep_samples=keep)

        a, b, c = (build(s, True) for s in slices(arrivals_from(events)))
        ab = ControllerResponseTime.merge([a, b], keep_samples=True)
        bc = ControllerResponseTime.merge([b, c], keep_samples=True)
        left = ControllerResponseTime.merge([ab, c])
        right = ControllerResponseTime.merge([a, bc])
        flat = ControllerResponseTime.merge([a, b, c])
        assert left == right == flat
        assert flat == build(arrivals_from(events), False)


class TestEncodingFixedPoint:
    """``to_dict`` output re-encodes to itself through ``from_dict``."""

    @settings(max_examples=20, deadline=None)
    @given(events_st)
    def test_connectivity_graph(self, events):
        sig = ConnectivityGraph.build(arrivals_from(events))
        data = sig.to_dict()
        assert ConnectivityGraph.from_dict(data).to_dict() == data

    @settings(max_examples=20, deadline=None)
    @given(events_st)
    def test_component_interaction(self, events):
        sig = ComponentInteraction.build(arrivals_from(events))
        data = sig.to_dict()
        assert ComponentInteraction.from_dict(data).to_dict() == data

    @settings(max_examples=20, deadline=None)
    @given(events_st)
    def test_flow_stats(self, events):
        sig = FlowStats.build(records_from(events), T_START, T_END)
        data = sig.to_dict()
        assert FlowStats.from_dict(data).to_dict() == data

    @settings(max_examples=20, deadline=None)
    @given(events_st)
    def test_delay_distribution(self, events):
        sig = DelayDistribution.build(arrivals_from(events))
        data = sig.to_dict()
        assert DelayDistribution.from_dict(data).to_dict() == data

    @settings(max_examples=20, deadline=None)
    @given(events_st)
    def test_partial_correlation(self, events):
        sig = PartialCorrelation.build(arrivals_from(events), T_START, T_END)
        data = sig.to_dict()
        assert PartialCorrelation.from_dict(data).to_dict() == data

    @settings(max_examples=20, deadline=None)
    @given(events_st)
    def test_infrastructure_components(self, events):
        arrivals = arrivals_from(events)
        for cls, sig in (
            (PhysicalTopology, PhysicalTopology.build(arrivals)),
            (InterSwitchLatency, InterSwitchLatency.build(arrivals)),
            (ControllerResponseTime, ControllerResponseTime.build(arrivals)),
        ):
            data = sig.to_dict()
            assert cls.from_dict(data).to_dict() == data
