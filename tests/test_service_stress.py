"""Sanitizer-instrumented stress test of the live streaming service.

The acceptance property of the concurrency suite, asserted at runtime:
with :class:`StreamService` and :class:`TenantPipeline` fully
instrumented by the Eraser lockset checker and their locks wrapped,
concurrent producers hammering :meth:`StreamService.feed` while an HTTP
client hammers every service page must produce **zero** race candidates
— and a deliberately-injected unguarded write into the same workload
must be caught. This is the runtime twin of the static
``repro lint --concurrency`` gate (the ``race-stress`` CI lane).

Main-thread assertions about pipeline state happen after the checker
deactivates: post-drain inspection is ordered by the joins, but the
checker cannot see that happens-before edge.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.qa.sanitizer import LocksetChecker, instrument_class, wrap_locks
from repro.scenarios import three_tier_lab
from repro.service import StreamService, TenantPipeline, create_server

pytestmark = pytest.mark.slow

WINDOW = 10.0
BASELINE = 15.0
BATCH = 400

PAGES = (
    "/tenants",
    "/healthz",
    "/diff?tenant=prod&n=2",
    "/alerts",
    "/traces?tenant=prod&limit=3",
)


@pytest.fixture(scope="module")
def capture():
    return list(three_tier_lab(seed=3).run(0.5, 30.0, drain=5.0))


def _get(url):
    with urllib.request.urlopen(url) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _producer(service, tenant, messages):
    for start in range(0, len(messages), BATCH):
        service.feed(tenant, messages[start : start + BATCH])


def test_stress_real_service_is_race_free(capture):
    undos = [instrument_class(StreamService), instrument_class(TenantPipeline)]
    checker = LocksetChecker()
    server = None
    try:
        service = StreamService(
            window=WINDOW, baseline_span=BASELINE, max_pending=8
        )
        service.add_tenant("prod")
        service.add_tenant("shadow")
        wrap_locks(service)
        for _, tenant in service.tenant_items():
            wrap_locks(tenant)
        server = create_server(service)
        server.start()
        stop_http = threading.Event()

        def hammer():
            while not stop_http.is_set():
                for page in PAGES:
                    try:
                        _get(server.url(page))
                    except urllib.error.HTTPError:
                        pass

        with checker.activate():
            service.start()
            producers = [
                threading.Thread(
                    target=_producer,
                    args=(service, name, capture),
                    name=f"producer-{name}",
                )
                for name in ("prod", "shadow")
            ]
            http_client = threading.Thread(target=hammer, name="http-hammer")
            for t in producers:
                t.start()
            http_client.start()
            for t in producers:
                t.join()
            service.drain()
            stop_http.set()
            http_client.join()
            service.stop()
    finally:
        for undo in undos:
            undo()
        if server is not None:
            server.stop()

    checker.assert_clean()
    # The run must have genuinely exercised the shared surface.
    assert checker.accesses > 1000
    assert service.tenants["prod"].windows_total >= 1
    assert service.tenants["shadow"].windows_total >= 1
    assert service.tenants["prod"].summary()["phase"] == "streaming"


class LeakyService(StreamService):
    """The injected-race fixture: one unguarded cross-producer write."""

    def feed(self, tenant, messages, *, block=True):
        self.hot_tenant = tenant  # deliberately not under self._lock
        return super().feed(tenant, messages, block=block)


def test_injected_service_race_is_caught(capture):
    undo = instrument_class(LeakyService)
    checker = LocksetChecker()
    try:
        service = LeakyService(window=WINDOW, baseline_span=BASELINE)
        service.add_tenant("prod")
        service.add_tenant("shadow")
        wrap_locks(service)
        with checker.activate():
            with service:
                # Three producers: the checker grants one free ownership
                # handoff, so two strictly-sequential writers could look
                # benign — the third forces the shared state.
                producers = [
                    threading.Thread(
                        target=_producer,
                        args=(service, name, capture),
                        name=f"producer-{i}",
                    )
                    for i, name in enumerate(("prod", "shadow", "prod"))
                ]
                for t in producers:
                    t.start()
                for t in producers:
                    t.join()
                service.drain()
    finally:
        undo()

    raced = {r.attr for r in checker.races}
    assert "hot_tenant" in raced, (
        f"the injected unguarded write must be caught, saw races on {raced}"
    )
    # The injection is the *only* candidate: the inherited service
    # locking stays clean even under the subclass.
    assert raced == {"hot_tenant"}
