"""Unit tests for topology construction, routing, and builders."""

import pytest

from repro.netsim.topology import (
    Topology,
    fat_tree,
    lab_testbed,
    linear_topology,
    paper_tree,
)


class TestTopologyBasics:
    def test_add_and_query_kinds(self):
        topo = Topology()
        topo.add_host("h1")
        topo.add_switch("sw1")
        topo.add_switch("legacy1", programmable=False)
        assert topo.is_host("h1")
        assert topo.is_openflow("sw1")
        assert not topo.is_openflow("legacy1")
        assert topo.legacy_switches() == ["legacy1"]

    def test_link_requires_known_nodes(self):
        topo = Topology()
        topo.add_host("h1")
        with pytest.raises(KeyError):
            topo.add_link("h1", "nope")

    def test_port_assignment_deterministic(self):
        topo = Topology()
        topo.add_switch("sw1")
        for h in ("h1", "h2", "h3"):
            topo.add_host(h)
            topo.add_link(h, "sw1")
        assert topo.port_to("sw1", "h1") == 1
        assert topo.port_to("sw1", "h2") == 2
        assert topo.neighbor_at("sw1", 3) == "h3"
        assert topo.neighbor_at("sw1", 9) is None

    def test_attachment_switch(self):
        topo = linear_topology(2, 1)
        assert topo.attachment_switch("h1") == "sw1"

    def test_link_lookup(self):
        topo = linear_topology(2, 1)
        link = topo.link("sw1", "sw2")
        assert link.key() == ("sw1", "sw2")
        assert topo.link("sw2", "sw1") is link
        with pytest.raises(KeyError):
            topo.link("sw1", "h2")


class TestRouting:
    def test_shortest_path(self):
        topo = linear_topology(3, 1)
        path = topo.path("h1", "h3")
        assert path == ["h1", "sw1", "sw2", "sw3", "h3"]

    def test_path_avoids_dead_switch(self):
        topo = lab_testbed()
        # Path between hosts on different edge switches crosses a core;
        # killing ofs1 must still leave the ofs2 core path.
        p1 = topo.path("S1", "S2")
        assert p1 is not None
        p2 = topo.path("S1", "S2", dead_nodes={"ofs1"})
        assert p2 is not None
        assert "ofs1" not in p2

    def test_path_none_when_disconnected(self):
        topo = linear_topology(2, 1)
        topo.link("sw1", "sw2").fail()
        assert topo.path("h1", "h2") is None

    def test_path_honors_downed_link(self):
        topo = lab_testbed()
        topo.link("ofs3", "ofs1").fail()
        path = topo.path("S1", "S3")
        assert path is not None
        assert ("ofs3", "ofs1") not in list(zip(path, path[1:]))

    def test_dead_endpoint_unreachable(self):
        topo = linear_topology(2, 1)
        assert topo.path("h1", "h2", dead_nodes={"h2"}) is None

    def test_move_host(self):
        topo = linear_topology(3, 1)
        assert topo.attachment_switch("h1") == "sw1"
        topo.move_host("h1", "sw3")
        assert topo.attachment_switch("h1") == "sw3"
        assert topo.path("h1", "h3") == ["h1", "sw3", "h3"]


class TestBuilders:
    def test_lab_testbed_dimensions(self):
        topo = lab_testbed()
        assert len(topo.hosts()) == 30  # 25 servers + 5 VMs
        assert len(topo.switches()) == 7
        assert len(topo.legacy_switches()) == 2

    def test_lab_testbed_openflow_on_every_path(self):
        """Every server pair path crosses at least one OpenFlow switch."""
        topo = lab_testbed()
        hosts = topo.hosts()[:8]
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                path = topo.path(a, b)
                assert path is not None
                assert any(topo.is_openflow(n) for n in path)

    def test_paper_tree_dimensions(self):
        topo = paper_tree()
        assert len(topo.hosts()) == 320
        tors = [s for s in topo.switches() if s.startswith("tor")]
        aggs = [s for s in topo.switches() if s.startswith("agg")]
        cores = [s for s in topo.switches() if s.startswith("core")]
        assert len(tors) == 16
        assert len(aggs) == 8
        assert len(cores) == 2

    def test_paper_tree_wiring(self):
        topo = paper_tree()
        # Each ToR dual-homed to its group's two aggregation switches.
        assert topo.graph.has_edge("tor1", "agg1_1")
        assert topo.graph.has_edge("tor1", "agg1_2")
        # All aggs connect to both cores.
        for g in range(1, 5):
            for s in (1, 2):
                assert topo.graph.has_edge(f"agg{g}_{s}", "core1")
                assert topo.graph.has_edge(f"agg{g}_{s}", "core2")

    def test_paper_tree_connectivity(self):
        topo = paper_tree()
        assert topo.path("srv1", "srv320") is not None

    def test_fat_tree_dimensions(self):
        topo = fat_tree(4)
        assert len(topo.hosts()) == 16  # k^3/4
        assert len(topo.switches()) == 4 + 4 * 4  # 4 cores + 8 agg + 8 edge

    def test_fat_tree_validation(self):
        with pytest.raises(ValueError):
            fat_tree(3)
        with pytest.raises(ValueError):
            fat_tree(0)

    def test_fat_tree_connectivity(self):
        topo = fat_tree(4)
        hosts = topo.hosts()
        assert topo.path(hosts[0], hosts[-1]) is not None

    def test_linear_topology_shape(self):
        topo = linear_topology(4, 2)
        assert len(topo.hosts()) == 8
        assert len(topo.switches()) == 4
