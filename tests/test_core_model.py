"""Tests for the behavior-model container and FlowDiff configuration."""

import pytest

from repro import FlowDiff, FlowDiffConfig
from repro.core.model import BehaviorModel
from repro.core.signatures import SignatureKind
from repro.core.signatures.infrastructure import (
    ControllerResponseTime,
    InfrastructureSignature,
    InterSwitchLatency,
    PhysicalTopology,
)
from repro.scenarios import three_tier_lab


@pytest.fixture(scope="module")
def model():
    log = three_tier_lab(seed=3).run(0.5, 10.0)
    return FlowDiff().model(log)


class TestBehaviorModel:
    def test_groups_sorted_by_key(self, model):
        groups = model.groups()
        assert groups
        keys = [g.key for g in groups]
        assert keys == sorted(keys)

    def test_duration(self, model):
        assert model.duration > 0

    def test_is_stable_defaults_true(self, model):
        assert model.is_stable("not-a-group", SignatureKind.CG)

    def test_stability_lookup(self, model):
        key = model.groups()[0].key
        # Whatever the verdicts are, lookups agree with the raw map.
        for kind in (SignatureKind.CG, SignatureKind.DD):
            expected = model.stability.get((key, kind), True)
            assert model.is_stable(key, kind) == expected

    def test_manual_construction(self):
        infra = InfrastructureSignature(
            pt=PhysicalTopology.build([]),
            isl=InterSwitchLatency.build([]),
            crt=ControllerResponseTime.build([]),
        )
        model = BehaviorModel(
            app_signatures={}, infrastructure=infra, window=(0.0, 5.0)
        )
        assert model.duration == 5.0
        assert model.groups() == []


class TestFlowDiffConfig:
    def test_with_special_nodes(self):
        config = FlowDiffConfig.with_special_nodes(["dns", "nfs"])
        assert config.signature.special_nodes == ("dns", "nfs")

    def test_defaults_reasonable(self):
        config = FlowDiffConfig()
        assert config.stability_parts >= 2
        assert config.thresholds.dd_shift > 0
        assert config.explanations  # built-in task rules present

    def test_stability_disabled(self):
        from repro.openflow.log import ControllerLog
        import dataclasses

        config = dataclasses.replace(FlowDiffConfig(), stability_parts=0)
        log = three_tier_lab(seed=3).run(0.5, 5.0)
        model = FlowDiff(config).model(log)
        assert model.stability == {}
