"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.engine import Simulator


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append("b"))
        sim.schedule_at(1.0, lambda: seen.append("a"))
        sim.schedule_at(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_clock_advances_with_events(self):
        sim = Simulator()
        stamps = []
        sim.schedule_at(1.5, lambda: stamps.append(sim.now))
        sim.schedule_at(4.0, lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == [1.5, 4.0]

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(10.0, lambda: seen.append(10))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 10]

    def test_schedule_in_relative(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_in(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [12.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule_in(1.0, lambda: chain(n + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_max_events_safety_valve(self):
        sim = Simulator()

        def forever():
            sim.schedule_in(0.1, forever)

        sim.schedule_at(0.0, forever)
        executed = sim.run(max_events=50)
        assert executed == 50

    def test_peek_and_pending(self):
        sim = Simulator()
        assert sim.peek() is None
        assert sim.pending() == 0
        sim.schedule_at(3.0, lambda: None)
        assert sim.peek() == 3.0
        assert sim.pending() == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 7

    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=100))
    def test_execution_order_matches_sorted_times(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(times)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_clock_monotone(self, times):
        sim = Simulator()
        stamps = []
        for t in times:
            sim.schedule_at(t, lambda: stamps.append(sim.now))
        sim.run()
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))
