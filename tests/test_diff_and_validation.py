"""Unit tests for comparison thresholds, validation, classification, ranking."""

import pytest

from repro.core.diff.dependency import (
    APP_KINDS,
    INFRA_KINDS,
    DependencyMatrix,
    classify_problems,
)
from repro.core.diff.ranking import rank_components, top_suspects
from repro.core.diff.report import DiagnosisReport
from repro.core.diff.validate import TaskExplanation, validate_changes
from repro.core.signatures.base import ChangeRecord, SignatureKind
from repro.core.tasks.detector import TaskEvent


def change(kind, components=(), timestamp=None, direction="shifted", magnitude=1.0):
    return ChangeRecord(
        kind=kind,
        scope="g",
        description=f"{kind.value} change",
        components=frozenset(components),
        magnitude=magnitude,
        timestamp=timestamp,
        direction=direction,
    )


class TestValidateChanges:
    def test_task_explains_overlapping_change(self):
        cg = change(SignatureKind.CG, components={"VM1", "S3"}, timestamp=10.0)
        event = TaskEvent(name="vm_migration", t_start=9.0, t_end=12.0, hosts=frozenset({"VM1"}))
        unknown, known = validate_changes([cg], [event])
        assert not unknown
        assert known[0][1] is event

    def test_wrong_kind_not_explained(self):
        crt = change(SignatureKind.CRT, components={"controller"}, timestamp=10.0)
        event = TaskEvent(name="vm_migration", t_start=9.0, t_end=12.0, hosts=frozenset({"VM1"}))
        unknown, known = validate_changes([crt], [event])
        assert unknown == [crt]

    def test_time_misalignment_not_explained(self):
        cg = change(SignatureKind.CG, components={"VM1"}, timestamp=100.0)
        event = TaskEvent(name="vm_migration", t_start=9.0, t_end=12.0, hosts=frozenset({"VM1"}))
        unknown, known = validate_changes([cg], [event])
        assert unknown == [cg]

    def test_component_overlap_required(self):
        cg = change(SignatureKind.CG, components={"S9"}, timestamp=10.0)
        event = TaskEvent(name="vm_migration", t_start=9.0, t_end=12.0, hosts=frozenset({"VM1"}))
        unknown, known = validate_changes([cg], [event])
        assert unknown == [cg]

    def test_absence_change_matched_by_hosts_anywhere(self):
        """A missing edge (no timestamp) is explained by a stop task on its host."""
        cg = change(SignatureKind.CG, components={"VM1", "S3"}, timestamp=None, direction="removed")
        event = TaskEvent(name="vm_stop", t_start=50.0, t_end=51.0, hosts=frozenset({"VM1"}))
        unknown, known = validate_changes([cg], [event])
        assert not unknown

    def test_unknown_task_name_ignored(self):
        cg = change(SignatureKind.CG, components={"VM1"}, timestamp=10.0)
        event = TaskEvent(name="mystery", t_start=9.0, t_end=12.0, hosts=frozenset({"VM1"}))
        unknown, _ = validate_changes([cg], [event])
        assert unknown == [cg]

    def test_custom_explanations(self):
        crt = change(SignatureKind.CRT, components={"controller"}, timestamp=10.0)
        rule = TaskExplanation(
            "controller_maintenance",
            frozenset({SignatureKind.CRT}),
            require_component_overlap=False,
        )
        event = TaskEvent(name="controller_maintenance", t_start=9.0, t_end=12.0)
        unknown, known = validate_changes([crt], [event], [rule])
        assert not unknown


class TestDependencyMatrix:
    def test_congestion_matrix_matches_figure8a(self):
        changes = [
            change(SignatureKind.DD),
            change(SignatureKind.PC),
            change(SignatureKind.FS),
            change(SignatureKind.ISL),
        ]
        matrix = DependencyMatrix.from_changes(changes)
        assert matrix.at(SignatureKind.DD, SignatureKind.ISL) == 1
        assert matrix.at(SignatureKind.PC, SignatureKind.ISL) == 1
        assert matrix.at(SignatureKind.FS, SignatureKind.ISL) == 1
        assert matrix.at(SignatureKind.CG, SignatureKind.ISL) == 0
        assert matrix.at(SignatureKind.DD, SignatureKind.PT) == 0

    def test_switch_failure_matrix_matches_figure8b(self):
        changes = [change(SignatureKind.CG), change(SignatureKind.PT)]
        matrix = DependencyMatrix.from_changes(changes)
        assert matrix.at(SignatureKind.CG, SignatureKind.PT) == 1
        assert matrix.at(SignatureKind.DD, SignatureKind.PT) == 0

    def test_render_shape(self):
        matrix = DependencyMatrix.from_changes([])
        lines = matrix.render().splitlines()
        assert len(lines) == 1 + len(APP_KINDS)
        for kind in INFRA_KINDS:
            assert kind.value in lines[0]


class TestClassifyProblems:
    def test_empty_changes_healthy(self):
        assert classify_problems([]) == []

    def test_dd_only_is_performance_problem(self):
        result = classify_problems([change(SignatureKind.DD)])
        assert result[0].problem in ("application_performance", "host_or_app_problem")

    def test_congestion_signature_set(self):
        changes = [
            change(SignatureKind.DD),
            change(SignatureKind.PC),
            change(SignatureKind.FS),
            change(SignatureKind.ISL),
        ]
        assert classify_problems(changes)[0].problem == "congestion"

    def test_unauthorized_needs_added_edges(self):
        added = [
            change(SignatureKind.CG, direction="added"),
            change(SignatureKind.CI),
            change(SignatureKind.FS),
        ]
        removed = [
            change(SignatureKind.CG, direction="removed"),
            change(SignatureKind.CI),
            change(SignatureKind.FS),
        ]
        assert classify_problems(added)[0].problem == "unauthorized_access"
        assert all(p.problem != "unauthorized_access" for p in classify_problems(removed))

    def test_failure_needs_removed_edges(self):
        removed = [
            change(SignatureKind.CG, direction="removed"),
            change(SignatureKind.CI),
        ]
        top = classify_problems(removed)
        assert any(p.problem == "application_failure" for p in top)

    def test_crt_only_is_controller_problem(self):
        result = classify_problems([change(SignatureKind.CRT)])
        assert result[0].problem in ("controller_overhead", "controller_failure")

    def test_scores_bounded_and_sorted(self):
        changes = [change(SignatureKind.DD), change(SignatureKind.ISL)]
        result = classify_problems(changes, top_k=5, min_score=0.0)
        scores = [p.score for p in result]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= s <= 1.0 for s in scores)


class TestRanking:
    def test_counts_associations(self):
        changes = [
            change(SignatureKind.CG, components={"S3", "S3--S8"}),
            change(SignatureKind.CI, components={"S3"}),
            change(SignatureKind.DD, components={"S8"}),
        ]
        ranked = rank_components(changes)
        assert ranked[0] == ("S3", 2.0)

    def test_magnitude_weighting(self):
        changes = [
            change(SignatureKind.DD, components={"a"}, magnitude=5.0),
            change(SignatureKind.CI, components={"b"}, magnitude=1.0),
            change(SignatureKind.CG, components={"b"}, magnitude=1.0),
        ]
        plain = rank_components(changes)
        weighted = rank_components(changes, weight_by_magnitude=True)
        assert plain[0][0] == "b"
        assert weighted[0][0] == "a"

    def test_top_suspects_hosts_only(self):
        changes = [
            change(SignatureKind.CG, components={"S3--S8", "S3", "S8"}),
        ]
        assert "S3--S8" not in top_suspects(changes, k=3, hosts_only=True)

    def test_deterministic_tiebreak(self):
        changes = [change(SignatureKind.CG, components={"b", "a"})]
        assert rank_components(changes) == [("a", 1.0), ("b", 1.0)]


class TestDiagnosisReport:
    def test_render_healthy(self):
        report = DiagnosisReport(
            unknown_changes=(),
            known_changes=(),
            task_events=(),
            problems=(),
            dependency=DependencyMatrix.from_changes([]),
            component_ranking=(),
        )
        text = report.render()
        assert report.healthy
        assert "No unexplained" in text

    def test_render_with_findings(self):
        ch = change(SignatureKind.DD, components={"S3"})
        report = DiagnosisReport(
            unknown_changes=(ch,),
            known_changes=(),
            task_events=(),
            problems=tuple(classify_problems([ch])),
            dependency=DependencyMatrix.from_changes([ch]),
            component_ranking=tuple(rank_components([ch])),
        )
        text = report.render()
        assert not report.healthy
        assert "DD" in text
        assert "S3" in text
        assert report.changed_kinds() == (SignatureKind.DD,)
