"""Tests for the serialized-schema manifest and the schema-drift rule."""

import json
import os

from repro.qa import LintEngine, default_rules, extract_schemas, update_manifest
from repro.qa.framework import ModuleFile, Project
from repro.qa.schemas import DEFAULT_MANIFEST_PATH, SchemaDriftRule

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def real_project():
    return Project.load([REPO_SRC])


def mutate(project, module_name, old, new):
    """A copy of the project with one module's source text edited."""
    target = project.module(module_name)
    assert target is not None
    assert old in target.source, f"{old!r} not found in {module_name}"
    modules = [
        m
        if m.module != module_name
        else ModuleFile(m.path, m.source.replace(old, new), module=m.module)
        for m in project.modules
    ]
    return Project(modules)


def drift_findings(project, manifest_path=None):
    rule = SchemaDriftRule(manifest_path=manifest_path)
    return list(rule.check_project(project))


class TestExtraction:
    def test_capture_schema_covers_control_message_fields(self):
        schemas = extract_schemas(real_project())
        fields = set(schemas["capture"]["fields"])
        # Spot-check the fields every ControlMessage serializes plus a
        # per-type one from each idiom (dict literal and .update kwargs).
        assert {"type", "ts", "dpid", "corr", "match", "priority"} <= fields

    def test_model_schema_covers_signature_components(self):
        schemas = extract_schemas(real_project())
        fields = set(schemas["model"]["fields"])
        assert {"version", "app_signatures", "infrastructure", "edges"} <= fields

    def test_versions_match_the_source_constants(self):
        from repro.core import persist
        from repro.core.tasks import serialize as tasks_serialize
        from repro.openflow import serialize as capture_serialize

        schemas = extract_schemas(real_project())
        assert schemas["capture"]["version"] == capture_serialize.FORMAT_VERSION
        assert schemas["model"]["version"] == persist.FORMAT_VERSION
        assert schemas["tasks"]["version"] == tasks_serialize.FORMAT_VERSION


class TestManifest:
    def test_checked_in_manifest_matches_the_tree(self):
        """The committed schemas.json is exactly what the code extracts."""
        with open(DEFAULT_MANIFEST_PATH, encoding="utf-8") as fh:
            manifest = json.load(fh)["schemas"]
        assert manifest == extract_schemas(real_project())

    def test_update_manifest_round_trips(self, tmp_path):
        path = str(tmp_path / "schemas.json")
        written = update_manifest(real_project(), path)
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["schemas"] == written

    def test_missing_manifest_is_a_finding(self, tmp_path):
        findings = drift_findings(
            real_project(), manifest_path=str(tmp_path / "absent.json")
        )
        assert any("missing" in f.message for f in findings)

    def test_orphan_manifest_entry_is_a_finding(self, tmp_path):
        path = str(tmp_path / "schemas.json")
        update_manifest(real_project(), path)
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["schemas"]["ghost"] = {"version": 1, "fields": []}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        findings = drift_findings(real_project(), manifest_path=path)
        assert any("ghost" in f.message for f in findings)


class TestDrift:
    def test_clean_tree_has_no_drift(self):
        assert drift_findings(real_project()) == []

    def test_renamed_control_message_field_without_bump_fails(self):
        """The acceptance demo: edit a serialized ControlMessage field and
        leave FORMAT_VERSION alone — lint must fail."""
        mutated = mutate(
            real_project(),
            "repro.openflow.serialize",
            '"dpid": message.dpid',
            '"switch_id": message.dpid',
        )
        findings = drift_findings(mutated)
        (finding,) = [f for f in findings if "capture" in f.message]
        assert "without a FORMAT_VERSION bump" in finding.message
        assert "switch_id" in finding.message and "dpid" in finding.message

    def test_added_field_without_bump_fails_full_engine(self):
        """Same demo through the full default rule set (as CI runs it)."""
        mutated = mutate(
            real_project(),
            "repro.openflow.serialize",
            'out.update(replied=message.replied)',
            'out.update(replied=message.replied, retries=0)',
        )
        result = LintEngine(default_rules()).run(mutated)
        assert not result.ok
        assert any(f.rule == "schema-drift" for f in result.findings)

    def test_bump_with_stale_manifest_says_regenerate(self):
        mutated = mutate(
            real_project(),
            "repro.openflow.serialize",
            "FORMAT_VERSION = 1",
            "FORMAT_VERSION = 2",
        )
        findings = drift_findings(mutated)
        (finding,) = findings
        assert "stale" in finding.message
        assert "--update-schemas" in finding.message

    def test_bump_plus_regenerated_manifest_is_clean(self, tmp_path):
        mutated = mutate(
            real_project(),
            "repro.openflow.serialize",
            '"dpid": message.dpid',
            '"switch_id": message.dpid',
        )
        bumped = mutate(
            mutated,
            "repro.openflow.serialize",
            "FORMAT_VERSION = 1",
            "FORMAT_VERSION = 2",
        )
        path = str(tmp_path / "schemas.json")
        update_manifest(bumped, path)
        assert drift_findings(bumped, manifest_path=path) == []

    def test_partial_lint_skips_out_of_scope_sources(self):
        """Linting a subtree without the serializers raises no drift noise."""
        qa_only = Project.load([os.path.join(REPO_SRC, "qa")])
        assert drift_findings(qa_only) == []

    def test_tasks_schema_drift_detected_too(self):
        mutated = mutate(
            real_project(),
            "repro.core.tasks.serialize",
            '"min_sup": sig.min_sup',
            '"support_floor": sig.min_sup',
        )
        findings = drift_findings(mutated)
        assert any("tasks" in f.message for f in findings)
