"""Shared fixtures for the test suite.

``lockset_checker`` is the runtime race sanitizer
(:mod:`repro.qa.sanitizer`) already activated for the duration of the
test: instrument the classes under test (``instrument_class`` /
``@race_checked``), wrap their locks (``wrap_locks``), run the threads,
then call ``checker.assert_clean()``. Main-thread inspection of
instrumented objects after the workers finish should happen *after* the
test body deactivates the checker (or be tolerant of the one free
ownership handoff) — see ``tests/test_service_stress.py`` for the
pattern.
"""

import pytest

from repro.qa.sanitizer import LocksetChecker


@pytest.fixture
def lockset_checker():
    checker = LocksetChecker()
    with checker.activate():
        yield checker
