"""Tests for maintenance-window scheduling and reconciliation."""

import random

import pytest

from repro.core.tasks import TaskLibrary
from repro.core.tasks.detector import TaskEvent
from repro.netsim.network import Network
from repro.netsim.topology import lab_testbed
from repro.ops import (
    MaintenanceWindow,
    MountNFSTask,
    ScheduledTask,
    VMStopTask,
)


def event(name, t, hosts=()):
    return TaskEvent(name=name, t_start=t, t_end=t + 0.5, hosts=frozenset(hosts))


class TestReconcile:
    def window(self):
        w = MaintenanceWindow()
        w.add(VMStopTask("VM1", "S20"), at=10.0)
        w.add(MountNFSTask("S5", "S20"), at=30.0)
        return w

    def test_perfect_schedule_is_clean(self):
        w = self.window()
        detections = [
            event("vm_stop", 10.5, hosts=("VM1", "S20")),
            event("mount_nfs", 29.0, hosts=("S5", "S20")),
        ]
        rec = w.reconcile(detections)
        assert rec.clean
        assert len(rec.matched) == 2

    def test_missed_task_reported(self):
        w = self.window()
        rec = w.reconcile([event("vm_stop", 10.5, hosts=("VM1", "S20"))])
        assert not rec.clean
        assert len(rec.missed) == 1
        assert rec.missed[0].task.name == "mount_nfs"

    def test_unexpected_task_reported(self):
        w = self.window()
        detections = [
            event("vm_stop", 10.5, hosts=("VM1", "S20")),
            event("mount_nfs", 29.0, hosts=("S5", "S20")),
            event("vm_stop", 50.0, hosts=("VM3", "S20")),  # nobody planned this
        ]
        rec = w.reconcile(detections)
        assert len(rec.unexpected) == 1
        assert rec.unexpected[0].t_start == 50.0

    def test_out_of_tolerance_is_missed_and_unexpected(self):
        w = MaintenanceWindow([ScheduledTask(VMStopTask("VM1", "S20"), at=10.0, tolerance=5.0)])
        rec = w.reconcile([event("vm_stop", 40.0, hosts=("VM1", "S20"))])
        assert len(rec.missed) == 1
        assert len(rec.unexpected) == 1

    def test_host_mismatch_not_matched(self):
        """Someone else's vm_stop cannot satisfy this schedule item."""
        w = MaintenanceWindow([ScheduledTask(VMStopTask("VM1", "S20"), at=10.0)])
        rec = w.reconcile([event("vm_stop", 10.0, hosts=("VM9", "S21"))])
        assert rec.missed and rec.unexpected

    def test_render_mentions_everything(self):
        w = self.window()
        rec = w.reconcile([event("vm_stop", 10.5, hosts=("VM1", "S20"))])
        text = rec.render()
        assert "ok" in text and "MISSED" in text


class TestEndToEnd:
    def test_schedule_run_detect_reconcile(self):
        """Full loop on a live network: schedule, execute, detect, reconcile."""
        net = Network(lab_testbed())
        window = MaintenanceWindow()
        window.add(VMStopTask("VM1", "S20"), at=5.0, tolerance=10.0)
        window.add(MountNFSTask("S5", "S20"), at=15.0, tolerance=10.0)

        library = TaskLibrary()
        library.learn(
            "vm_stop",
            [VMStopTask("VM1", "S20").flow_sequence(random.Random(i)) for i in range(20)],
            masked=True,
        )
        library.learn(
            "mount_nfs",
            [MountNFSTask("S5", "S20").flow_sequence(random.Random(i)) for i in range(20)],
            masked=True,
        )

        window.run(net, seed=7)
        net.sim.run(until=40.0)
        detected = library.detect_in_log(net.log)
        rec = window.reconcile(detected)
        assert len(rec.matched) == 2, rec.render()
        assert not rec.missed


class TestReconcileGreedy:
    def test_two_same_type_items_matched_in_time_order(self):
        w = MaintenanceWindow()
        w.add(VMStopTask("VM1", "S20"), at=10.0)
        w.add(VMStopTask("VM2", "S20"), at=30.0)
        detections = [
            event("vm_stop", 30.5, hosts=("VM2", "S20")),
            event("vm_stop", 10.5, hosts=("VM1", "S20")),
        ]
        rec = w.reconcile(detections)
        assert rec.clean
        pairing = {item.task.vm: ev.t_start for item, ev in rec.matched}
        assert pairing == {"VM1": 10.5, "VM2": 30.5}

    def test_detection_not_double_counted(self):
        w = MaintenanceWindow()
        w.add(VMStopTask("VM1", "S20"), at=10.0, tolerance=30.0)
        w.add(VMStopTask("VM1", "S20"), at=20.0, tolerance=30.0)
        rec = w.reconcile([event("vm_stop", 12.0, hosts=("VM1", "S20"))])
        assert len(rec.matched) == 1
        assert len(rec.missed) == 1

    def test_empty_schedule_everything_unexpected(self):
        w = MaintenanceWindow()
        rec = w.reconcile([event("vm_stop", 1.0, hosts=("VM1",))])
        assert not rec.clean
        assert len(rec.unexpected) == 1
