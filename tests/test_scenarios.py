"""Tests for the prebuilt experiment scenarios."""

import pytest

from repro.core.signatures import SignatureConfig, build_application_signatures
from repro.faults import HostShutdown
from repro.scenarios import (
    TABLE2_CASES,
    AppPlan,
    scalability_sim,
    table2_case,
    three_tier_lab,
)


class TestThreeTierLab:
    def test_default_scenario_runs(self):
        scenario = three_tier_lab(seed=3)
        log = scenario.run(0.5, 5.0)
        assert len(log.packet_ins()) > 0
        assert scenario.clients[0].completed > 0

    def test_custom_delays_applied(self):
        scenario = three_tier_lab(seed=3, app_delay=0.1)
        assert scenario.farm.behavior("S3").delay.mean == pytest.approx(0.1)

    def test_with_services_adds_special_nodes(self):
        scenario = three_tier_lab(seed=3, with_services=True)
        assert scenario.special_nodes()
        assert "svc-dns" in scenario.network.topology.graph

    def test_without_services_no_special_nodes(self):
        scenario = three_tier_lab(seed=3)
        assert scenario.special_nodes() == ()

    def test_inject_schedules_fault(self):
        scenario = three_tier_lab(seed=3)
        scenario.inject(HostShutdown("S8"), at=1.0)
        scenario.run(0.5, 3.0)
        assert not scenario.network.host_is_up("S8")

    def test_fault_reversion_window(self):
        scenario = three_tier_lab(seed=3)
        scenario.inject(HostShutdown("S8"), at=1.0, until=2.0)
        scenario.run(0.5, 3.0)
        assert scenario.network.host_is_up("S8")

    def test_deterministic_given_seed(self):
        log1 = three_tier_lab(seed=5).run(0.5, 5.0)
        log2 = three_tier_lab(seed=5).run(0.5, 5.0)
        assert len(log1) == len(log2)


class TestAppPlan:
    def test_uniform_reuse(self):
        plan = AppPlan("p", (("web", ("S1",), 80),), ("S22",), reuse=0.5)
        assert plan.tier_reuse(0) == 0.5
        assert plan.client_reuse() == 0.5

    def test_per_tier_reuse(self):
        plan = AppPlan(
            "p",
            (("web", ("S1",), 80), ("app", ("S3",), 81)),
            ("S22",),
            reuse=(0.0, 0.9),
        )
        assert plan.tier_reuse(0) == 0.0
        assert plan.tier_reuse(1) == 0.9
        assert plan.tier_reuse(5) == 0.0  # out of range -> no reuse
        assert plan.client_reuse() == 0.0


class TestTable2Cases:
    def test_all_cases_defined(self):
        assert sorted(TABLE2_CASES) == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("case", [1, 2, 3, 4, 5])
    def test_case_builds_and_runs(self, case):
        scenario = table2_case(case, seed=3)
        log = scenario.run(0.5, 4.0)
        sigs = build_application_signatures(log, SignatureConfig())
        assert sigs

    def test_unknown_case_raises(self):
        with pytest.raises(KeyError):
            table2_case(9)

    def test_case5_custom_apps_share_servers(self):
        plans = TABLE2_CASES[5]
        servers_a = {s for _, servers, _ in plans[0].tiers for s in servers}
        servers_b = {s for _, servers, _ in plans[1].tiers for s in servers}
        assert servers_a & servers_b  # S3 and S8 shared, per Table II


class TestScalabilitySim:
    def test_builds_paper_tree(self):
        net, wl = scalability_sim(2, racks=4, servers_per_rack=5)
        assert len(net.topology.hosts()) == 20
        assert len(wl.apps) == 2

    def test_traffic_flows(self):
        net, wl = scalability_sim(2, racks=4, servers_per_rack=5)
        wl.start(0.0, 3.0)
        net.sim.run(until=5.0)
        assert net.flows_delivered > 0
