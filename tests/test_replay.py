"""Tests for trace-driven replay."""

import pytest

from repro.core.signatures import build_application_signatures
from repro.netsim.network import Network
from repro.netsim.topology import lab_testbed, linear_topology
from repro.openflow.log import ControllerLog
from repro.scenarios import three_tier_lab
from repro.workload.replay import replay_log


@pytest.fixture(scope="module")
def source_log():
    return three_tier_lab(seed=3).run(0.5, 15.0)


class TestReplay:
    def test_empty_log(self):
        net = Network(linear_topology())
        stats = replay_log(ControllerLog(), net)
        assert stats.flows == 0

    def test_time_scale_validation(self, source_log):
        net = Network(lab_testbed())
        with pytest.raises(ValueError):
            replay_log(source_log, net, time_scale=0.0)

    def test_replay_reproduces_connectivity(self, source_log):
        """Replaying a capture yields the same connectivity graph."""
        net = Network(lab_testbed())
        stats = replay_log(source_log, net)
        assert stats.flows > 0
        assert stats.with_counters > 0.5 * stats.flows
        assert stats.skipped == 0
        net.sim.run(until=60.0)

        orig = build_application_signatures(source_log)
        replayed = build_application_signatures(net.log)
        orig_edges = {e for sig in orig.values() for e in sig.cg.edges}
        replay_edges = {e for sig in replayed.values() for e in sig.cg.edges}
        assert orig_edges == replay_edges

    def test_replay_onto_foreign_topology_skips_unknown_hosts(self, source_log):
        net = Network(linear_topology(3, 2))  # none of S1/S3/... exist here
        stats = replay_log(source_log, net)
        assert stats.flows == 0
        assert stats.skipped > 0

    def test_counterfactual_fault_on_replayed_traffic(self, source_log):
        """Replay the same capture with loss injected: byte counters inflate.

        Replay reproduces recorded arrival *times*, so causal delays are
        fixed by the trace — the counterfactual effect of loss shows up as
        retransmission bytes in the flow statistics.
        """
        def replay(loss=False):
            net = Network(lab_testbed())
            if loss:
                net.set_link_loss("S1", "ofs3", 0.1)
                net.set_link_loss("S3", "ofs5", 0.1)
            replay_log(source_log, net)
            net.sim.run(until=60.0)
            return net.log

        clean = build_application_signatures(replay())
        lossy = build_application_signatures(replay(loss=True))
        clean_mean = next(iter(clean.values())).fs.byte_mean
        lossy_mean = next(iter(lossy.values())).fs.byte_mean
        assert lossy_mean > 1.05 * clean_mean

    def test_time_scale_compresses_schedule(self, source_log):
        fast = Network(lab_testbed())
        replay_log(source_log, fast, time_scale=0.5)
        fast.sim.run(until=60.0)
        slow = Network(lab_testbed())
        replay_log(source_log, slow, time_scale=1.0)
        slow.sim.run(until=60.0)
        fast_last = max(p.timestamp for p in fast.log.packet_ins())
        slow_last = max(p.timestamp for p in slow.log.packet_ins())
        assert fast_last < slow_last
