"""Tests for the streaming alert engine (``repro.obs.alerts``)."""

import io
from types import SimpleNamespace

import pytest

from repro.core.monitor import SlidingDiagnoser
from repro.faults.network import LinkFailure
from repro.faults.unauthorized import UnauthorizedAccess
from repro.obs.alerts import (
    AlertEngine,
    EwmaDriftRule,
    ProblemClassRule,
    Severity,
    ThresholdRule,
    UnhealthyWindowsRule,
    default_rules,
    read_alerts_jsonl,
    write_alerts_jsonl,
)
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.scenarios import three_tier_lab


class TestThresholdRule:
    def test_crossing_fires_with_context(self):
        engine = AlertEngine([ThresholdRule("queue_depth", 10, op=">")])
        assert engine.observe_metric("queue_depth", 5, at=1.0) == []
        fired = engine.observe_metric("queue_depth", 12, at=2.0)
        assert len(fired) == 1
        alert = fired[0]
        assert alert.timestamp == 2.0  # stream time, not wall clock
        assert alert.value == 12
        assert dict(alert.labels)["metric"] == "queue_depth"

    def test_other_metrics_ignored(self):
        engine = AlertEngine([ThresholdRule("queue_depth", 10)])
        assert engine.observe_metric("other", 99, at=1.0) == []

    def test_all_operators(self):
        for op, good, bad in [
            (">", 1, 3), (">=", 1, 2), ("<", 3, 1), ("<=", 3, 2),
        ]:
            rule = ThresholdRule("m", 2, op=op)
            assert rule.observe_metric("m", good, at=0.0) == []
            assert len(rule.observe_metric("m", bad, at=0.0)) == 1

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            ThresholdRule("m", 1, op="!=")


class TestEwmaDriftRule:
    def test_steady_stream_stays_silent(self):
        rule = EwmaDriftRule("lat", alpha=0.3, k=3.0, warmup=3)
        for i in range(50):
            assert rule.observe_metric("lat", 10.0 + (i % 2) * 0.01, at=i) == []

    def test_step_change_fires_after_warmup(self):
        rule = EwmaDriftRule("lat", alpha=0.3, k=3.0, warmup=3, min_delta=0.5)
        for i in range(10):
            rule.observe_metric("lat", 10.0 + (i % 2) * 0.01, at=float(i))
        fired = rule.observe_metric("lat", 25.0, at=10.0)
        assert len(fired) == 1
        assert dict(fired[0].labels)["direction"] == "up"

    def test_no_fire_during_warmup(self):
        rule = EwmaDriftRule("lat", warmup=5, min_delta=0.5)
        assert rule.observe_metric("lat", 10.0, at=0.0) == []
        assert rule.observe_metric("lat", 99.0, at=1.0) == []  # n=1 < warmup

    def test_adapts_to_new_steady_state(self):
        rule = EwmaDriftRule("lat", alpha=0.5, k=3.0, warmup=2, min_delta=0.5)
        for i in range(6):
            rule.observe_metric("lat", 10.0, at=float(i))
        assert rule.observe_metric("lat", 30.0, at=6.0)  # the step alerts
        fired_later = []
        for i in range(7, 30):
            fired_later.extend(rule.observe_metric("lat", 30.0, at=float(i)))
        assert len(fired_later) < 23  # eventually converges and stops

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            EwmaDriftRule("m", alpha=0.0)


def _window(t0, t1, healthy):
    """A minimal WindowReport stand-in (duck-typed by the rules)."""
    report = SimpleNamespace(
        unknown_changes=() if healthy else ("change",),
        problems=(),
        component_ranking=(),
    )
    return SimpleNamespace(t_start=t0, t_end=t1, report=report, healthy=healthy)


class TestUnhealthyWindowsRule:
    def test_streak_resets_on_healthy(self):
        rule = UnhealthyWindowsRule(consecutive=2)
        assert rule.observe_window(_window(0, 30, healthy=False)) == []
        assert rule.observe_window(_window(30, 60, healthy=True)) == []
        assert rule.observe_window(_window(60, 90, healthy=False)) == []
        fired = rule.observe_window(_window(90, 120, healthy=False))
        assert len(fired) == 1
        assert fired[0].timestamp == 120  # the window end

    def test_invalid_consecutive(self):
        with pytest.raises(ValueError, match="consecutive"):
            UnhealthyWindowsRule(consecutive=0)


class TestEngineDedupAndExport:
    def test_cooldown_suppresses_repeats(self):
        engine = AlertEngine([ThresholdRule("m", 1, cooldown=10.0)])
        assert engine.observe_metric("m", 5, at=0.0)
        assert engine.observe_metric("m", 5, at=5.0) == []  # within cooldown
        assert engine.suppressed == 1
        assert engine.observe_metric("m", 5, at=15.0)  # cooldown elapsed
        assert len(engine.alerts) == 2

    def test_distinct_labels_not_deduped(self):
        engine = AlertEngine(
            [
                ThresholdRule("a", 1, cooldown=100.0),
                ThresholdRule("b", 1, cooldown=100.0),
            ]
        )
        assert engine.observe_metric("a", 5, at=0.0)
        assert engine.observe_metric("b", 5, at=1.0)
        assert len(engine.alerts) == 2 and engine.suppressed == 0

    def test_alert_counters_reach_prometheus(self):
        metrics = MetricsRegistry()
        engine = AlertEngine([ThresholdRule("m", 1)], metrics=metrics)
        engine.observe_metric("m", 5, at=3.0)
        engine.observe_metric("m", 6, at=4.0)
        text = render_prometheus(metrics)
        assert 'alerts_total{rule="threshold:m>1",severity="warning"} 2' in text
        assert "alerts_last_fired_timestamp" in text

    def test_severity_queries(self):
        engine = AlertEngine(
            [
                ThresholdRule("m", 1, severity=Severity.WARNING),
                ThresholdRule("m", 2, severity=Severity.CRITICAL),
            ]
        )
        engine.observe_metric("m", 5, at=7.0)
        assert engine.worst_severity() == Severity.CRITICAL
        assert len(engine.by_severity(Severity.WARNING)) == 1
        assert engine.first_alert_at() == 7.0

    def test_jsonl_round_trip(self):
        engine = AlertEngine([ThresholdRule("m", 1)])
        engine.observe_metric("m", 5, at=1.5)
        buf = io.StringIO()
        assert write_alerts_jsonl(engine.alerts, buf) == 1
        back = read_alerts_jsonl(io.StringIO(buf.getvalue()))
        assert back == engine.alerts

    def test_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 1"):
            read_alerts_jsonl(io.StringIO("not json\n"))

    def test_observe_registry_expands_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds").observe(5.0)
        engine = AlertEngine([ThresholdRule("lat_seconds_mean", 1.0)])
        fired = engine.observe_registry(registry, at=9.0)
        assert len(fired) == 1 and fired[0].value == 5.0


@pytest.fixture(scope="module")
def healthy_log():
    return three_tier_lab(seed=3).run(0.5, 120.0)


def _monitor(log, rules=None, window=30.0):
    engine = AlertEngine(rules if rules is not None else default_rules())
    diagnoser = SlidingDiagnoser(window=window, alert_engine=engine)
    t0, _ = log.time_span
    diagnoser.set_baseline(log, t0, t0 + window)
    diagnoser.advance(log)
    return diagnoser, engine


@pytest.mark.slow
class TestDiagnoserIntegration:
    def test_healthy_run_never_alerts(self, healthy_log):
        diagnoser, engine = _monitor(healthy_log)
        assert len(diagnoser.history) >= 2
        assert engine.alerts == []
        assert diagnoser.alerts == []

    def test_link_failure_alerts_within_one_window(self):
        """Acceptance: an alert inside the first window after the fault."""
        fault_at = 70.0
        scenario = three_tier_lab(seed=3)
        scenario.inject(LinkFailure("ofs1", "ofs3"), at=fault_at)
        log = scenario.run(0.5, 130.0)
        _, engine = _monitor(log, window=30.0)
        assert engine.alerts
        first = engine.first_alert_at()
        assert fault_at <= first <= fault_at + 30.0
        assert engine.worst_severity() == Severity.CRITICAL

    def test_unauthorized_flow_alerts_within_one_window(self):
        """Acceptance: the intruder trips an alert in its own window."""
        fault_at = 70.0
        scenario = three_tier_lab(seed=3)
        scenario.inject(
            UnauthorizedAccess("S22", ["S8"], dst_port=22), at=fault_at
        )
        log = scenario.run(0.5, 130.0)
        _, engine = _monitor(log, window=30.0)
        assert engine.alerts
        first = engine.first_alert_at()
        assert fault_at <= first <= fault_at + 30.0
        problems = {
            dict(a.labels).get("problem")
            for a in engine.alerts
            if a.rule == "problem-class"
        }
        assert "unauthorized_access" in problems

    def test_problem_class_rule_filters(self):
        fault_at = 70.0
        scenario = three_tier_lab(seed=3)
        scenario.inject(LinkFailure("ofs1", "ofs3"), at=fault_at)
        log = scenario.run(0.5, 130.0)
        _, engine = _monitor(
            log, rules=[ProblemClassRule(problems=["unauthorized_access"])]
        )
        assert engine.alerts == []  # a link failure is not an intrusion
