"""Unit tests for arrival processes, scalability traffic, and trace synthesis."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.network import Network
from repro.netsim.topology import paper_tree
from repro.workload.arrivals import (
    FixedProcess,
    OnOffProcess,
    PoissonProcess,
    lognormal_params,
)
from repro.workload.traces import TraceConfig, VMImage, VMTraceSynthesizer
from repro.workload.traffic import RandomThreeTierWorkload, WorkloadStats


class TestLognormalParams:
    def test_moments_recovered(self):
        mu, sigma = lognormal_params(0.1, 0.03)
        rng = random.Random(5)
        samples = [rng.lognormvariate(mu, sigma) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert mean == pytest.approx(0.1, rel=0.05)
        assert math.sqrt(var) == pytest.approx(0.03, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            lognormal_params(0.0, 0.1)
        with pytest.raises(ValueError):
            lognormal_params(1.0, -0.1)

    @given(st.floats(0.01, 100), st.floats(0, 10))
    def test_sigma_nonnegative(self, mean, std):
        _, sigma = lognormal_params(mean, std)
        assert sigma >= 0.0


class TestArrivalProcesses:
    def test_poisson_mean_interarrival(self):
        proc = PoissonProcess(50.0, random.Random(2))
        gaps = [proc.next_interarrival() for _ in range(5000)]
        assert sum(gaps) / len(gaps) == pytest.approx(1 / 50.0, rel=0.1)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0, random.Random(1))

    def test_fixed_process(self):
        proc = FixedProcess(0.25)
        assert [proc.next_interarrival() for _ in range(3)] == [0.25] * 3
        with pytest.raises(ValueError):
            FixedProcess(0.0)

    def test_onoff_produces_positive_gaps(self):
        proc = OnOffProcess(random.Random(3))
        gaps = [proc.next_interarrival() for _ in range(1000)]
        assert all(g > 0 for g in gaps)

    def test_onoff_has_bursts_and_silences(self):
        """ON/OFF gaps are bimodal: small within-burst, large across OFF."""
        proc = OnOffProcess(
            random.Random(4), on_rate=200.0, on_mean=0.1, off_mean=0.1
        )
        gaps = [proc.next_interarrival() for _ in range(3000)]
        small = sum(1 for g in gaps if g < 0.02)
        large = sum(1 for g in gaps if g > 0.05)
        assert small > 100
        assert large > 100

    def test_onoff_validation(self):
        with pytest.raises(ValueError):
            OnOffProcess(random.Random(1), on_rate=0.0)


class TestRandomThreeTierWorkload:
    def make(self, n_apps=3, **kwargs):
        net = Network(paper_tree(racks=4, servers_per_rack=5))
        return net, RandomThreeTierWorkload(net, n_apps=n_apps, **kwargs)

    def test_placement_counts(self):
        _, wl = self.make(5)
        assert len(wl.apps) == 5
        for app in wl.apps:
            assert app.web and app.app and app.db

    def test_pairs_cover_all_tiers(self):
        _, wl = self.make(1)
        pairs = wl.apps[0].pairs()
        assert all(port in (8009, 3306) for _, _, port in pairs)
        assert len(pairs) == len(wl.apps[0].web) * len(wl.apps[0].app) + len(
            wl.apps[0].app
        ) * len(wl.apps[0].db)

    def test_traffic_generates_packet_ins(self):
        net, wl = self.make(2)
        wl.start(0.0, 5.0)
        net.sim.run(until=7.0)
        assert len(net.log.packet_ins()) > 0
        assert wl.stats.bursts > 0

    def test_connection_reuse_rate(self):
        net, wl = self.make(3, reuse_prob=0.6)
        wl.start(0.0, 10.0)
        net.sim.run(until=12.0)
        total = wl.stats.new_connections + wl.stats.reused_connections
        reuse_frac = wl.stats.reused_connections / total
        assert 0.4 < reuse_frac < 0.75

    def test_zero_reuse_all_new(self):
        net, wl = self.make(2, reuse_prob=0.0)
        wl.start(0.0, 3.0)
        net.sim.run(until=5.0)
        assert wl.stats.reused_connections == 0

    def test_packet_in_rate_buckets(self):
        net, wl = self.make(2)
        wl.start(0.0, 5.0)
        net.sim.run(until=7.0)
        rates = WorkloadStats.packet_in_rate(net.log, bucket=1.0)
        assert sum(rates) == len(net.log.packet_ins())

    def test_deterministic_given_seed(self):
        net1, wl1 = self.make(2, seed=42)
        wl1.start(0.0, 3.0)
        net1.sim.run(until=5.0)
        net2, wl2 = self.make(2, seed=42)
        wl2.start(0.0, 3.0)
        net2.sim.run(until=5.0)
        assert len(net1.log.packet_ins()) == len(net2.log.packet_ins())


class TestVMTraceSynthesizer:
    def test_quartet_has_four_vms(self):
        synth = VMTraceSynthesizer.ec2_quartet()
        assert len(synth.vms) == 4
        assert "i-c5ebf1a3" in synth.vms

    def test_runs_deterministic(self):
        synth = VMTraceSynthesizer.ec2_quartet(seed=5)
        r1 = synth.startup_run("i-3486634d", 3)
        r2 = synth.startup_run("i-3486634d", 3)
        assert r1 == r2

    def test_runs_vary_across_indices(self):
        synth = VMTraceSynthesizer.ec2_quartet(seed=5)
        runs = {tuple(k for _, k in synth.startup_run("i-3486634d", i)) for i in range(10)}
        assert len(runs) > 1

    def test_times_sorted_and_positive(self):
        synth = VMTraceSynthesizer.ec2_quartet()
        run = synth.startup_run("i-5d021f3b", 0, start_time=100.0)
        times = [t for t, _ in run]
        assert times == sorted(times)
        assert times[0] >= 100.0

    def test_vm_ip_consistency(self):
        synth = VMTraceSynthesizer.ec2_quartet()
        run = synth.startup_run("i-3486634d", 0)
        vm_ip = synth.vm_ips["i-3486634d"]
        assert all(k.src == vm_ip for _, k in run)

    def test_unknown_vm_raises(self):
        synth = VMTraceSynthesizer.ec2_quartet()
        with pytest.raises(KeyError):
            synth.startup_run("i-nope", 0)

    def test_noise_interleaving(self):
        cfg = TraceConfig(noise_rate=50.0)
        synth = VMTraceSynthesizer.ec2_quartet(seed=5, config=cfg)
        clean = VMTraceSynthesizer.ec2_quartet(seed=5)
        noisy_run = synth.startup_run("i-3486634d", 0)
        clean_run = clean.startup_run("i-3486634d", 0)
        assert len(noisy_run) > len(clean_run)

    def test_to_log_wraps_packet_ins(self):
        synth = VMTraceSynthesizer.ec2_quartet()
        run = synth.startup_run("i-3486634d", 0)
        log = VMTraceSynthesizer.to_log(run)
        assert len(log.packet_ins()) == len(run)

    def test_training_runs_count(self):
        synth = VMTraceSynthesizer.ec2_quartet()
        assert len(synth.training_runs("i-c5ebf1a3", 10)) == 10

    def test_service_names_mapping(self):
        synth = VMTraceSynthesizer.ec2_quartet()
        names = synth.service_names()
        assert names["169.254.169.254"] == "METADATA"

    def test_ami_variants_share_base_ubuntu_differs(self):
        ami = VMImage.amazon_ami(0)
        ubu = VMImage.ubuntu()
        ami_ports = [s.dport for s in ami.sequence]
        ubu_ports = [s.dport for s in ubu.sequence]
        assert ami_ports != ubu_ports
