"""Edge cases of :mod:`repro.obs.tracing` that the happy-path suite
skips: self-time under overlapping/nested children, empty-tracer phase
rows, exception-exit unwinding, and span-hook dispatch order."""

import unittest

from repro.obs.profile import phase_rows, phase_timings, render_phase_table
from repro.obs.tracing import NOOP_TRACER, Span, Tracer


class SelfDurationTest(unittest.TestCase):
    def _fixed(self, name, start, end, children=()):
        span = Span(name)
        span.start_wall = start
        span.end_wall = end
        span.children = list(children)
        return span

    def test_nested_children_subtract_once(self):
        # parent [0, 10]; child [1, 4] wrapping grandchild [2, 3].
        # Only the parent's *direct* child counts against its self time:
        # 10 - 3 = 7, not 10 - 3 - 1.
        grandchild = self._fixed("gc", 2.0, 3.0)
        child = self._fixed("c", 1.0, 4.0, [grandchild])
        parent = self._fixed("p", 0.0, 10.0, [child])
        self.assertAlmostEqual(parent.self_duration, 7.0)
        self.assertAlmostEqual(child.self_duration, 2.0)
        self.assertAlmostEqual(grandchild.self_duration, 1.0)

    def test_overlapping_children_clamp_to_zero(self):
        # Two children whose recorded windows overlap (possible when a
        # hook or clock skew stretches them) can sum past the parent;
        # self time clamps at zero rather than going negative.
        a = self._fixed("a", 0.0, 3.0)
        b = self._fixed("b", 2.0, 6.0)
        parent = self._fixed("p", 0.0, 6.0, [a, b])
        self.assertEqual(parent.self_duration, 0.0)

    def test_open_span_uses_now(self):
        span = Span("open")
        self.assertGreaterEqual(span.duration, 0.0)
        self.assertGreaterEqual(span.self_duration, 0.0)
        self.assertIsNone(span.end_wall)


class EmptyTracerTest(unittest.TestCase):
    def test_phase_rows_empty(self):
        self.assertEqual(phase_rows(Tracer()), [])

    def test_phase_timings_empty(self):
        self.assertEqual(phase_timings(Tracer()), {})

    def test_render_phase_table_empty(self):
        table = render_phase_table(Tracer())
        self.assertIsInstance(table, str)

    def test_noop_tracer_has_no_rows(self):
        with NOOP_TRACER.span("ignored"):
            pass
        self.assertEqual(phase_rows(NOOP_TRACER), [])


class ExceptionExitTest(unittest.TestCase):
    def test_exception_closes_span(self):
        tracer = Tracer()
        with self.assertRaises(ValueError):
            with tracer.span("outer"):
                raise ValueError("boom")
        (outer,) = tracer.roots
        self.assertIsNotNone(outer.end_wall)
        self.assertEqual(tracer._stack, [])

    def test_exception_in_parent_closes_orphaned_children(self):
        # A child block whose __exit__ never runs (generator abandoned,
        # manual misuse) must still be closed when the parent unwinds,
        # stamped with the parent's end time.
        tracer = Tracer()
        with self.assertRaises(RuntimeError):
            with tracer.span("parent"):
                tracer.span("orphan")  # never exited
                raise RuntimeError("parent dies")
        (parent,) = tracer.roots
        (orphan,) = parent.children
        self.assertIsNotNone(orphan.end_wall)
        self.assertEqual(orphan.end_wall, parent.end_wall)
        self.assertEqual(tracer._stack, [])
        self.assertLessEqual(orphan.duration, parent.duration)

    def test_reuse_after_exception(self):
        tracer = Tracer()
        with self.assertRaises(ValueError):
            with tracer.span("first"):
                raise ValueError
        with tracer.span("second"):
            pass
        self.assertEqual([s.name for s in tracer.roots], ["first", "second"])
        self.assertTrue(all(s.end_wall is not None for s in tracer.roots))


class _RecordingHook:
    def __init__(self):
        self.events = []

    def span_opened(self, span):
        self.events.append(("open", span.name))

    def span_closed(self, span):
        self.events.append(("close", span.name))


class SpanHookTest(unittest.TestCase):
    def test_hooks_fire_in_nesting_order(self):
        tracer = Tracer()
        hook = _RecordingHook()
        tracer.add_hook(hook)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        self.assertEqual(
            hook.events,
            [
                ("open", "outer"),
                ("open", "inner"),
                ("close", "inner"),
                ("close", "outer"),
            ],
        )

    def test_hooks_see_unwound_spans_innermost_first(self):
        tracer = Tracer()
        hook = _RecordingHook()
        tracer.add_hook(hook)
        with self.assertRaises(RuntimeError):
            with tracer.span("parent"):
                tracer.span("orphan")  # abandoned: no __exit__
                raise RuntimeError
        self.assertEqual(
            hook.events,
            [
                ("open", "parent"),
                ("open", "orphan"),
                ("close", "orphan"),
                ("close", "parent"),
            ],
        )

    def test_no_hooks_is_default(self):
        self.assertEqual(Tracer()._hooks, [])
        self.assertEqual(NOOP_TRACER._hooks, [])


if __name__ == "__main__":
    unittest.main()
