"""Tests for task-library persistence."""

import json

import pytest

from repro.core.tasks import TaskLibrary
from repro.core.tasks.serialize import (
    library_from_dict,
    library_to_dict,
    load_library,
    save_library,
)
from repro.workload.traces import VMTraceSynthesizer


@pytest.fixture(scope="module")
def synth():
    return VMTraceSynthesizer.ec2_quartet(seed=7)


@pytest.fixture(scope="module")
def library(synth):
    lib = TaskLibrary(service_names=synth.service_names())
    lib.learn("startup", synth.training_runs("i-3486634d", 30), masked=True)
    lib.learn(
        "startup_exact",
        synth.training_runs("i-c5ebf1a3", 30),
        masked=False,
    )
    return lib


class TestLibraryRoundTrip:
    def test_dict_round_trip(self, library):
        restored = library_from_dict(library_to_dict(library))
        assert set(restored.signatures) == set(library.signatures)
        assert restored.service_names == library.service_names
        for name in library.signatures:
            orig = library.signatures[name].automaton
            back = restored.signatures[name].automaton
            assert back.patterns == orig.patterns
            assert back.transitions == orig.transitions
            assert back.start_states == orig.start_states
            assert back.accept_states == orig.accept_states

    def test_json_serializable(self, library):
        json.dumps(library_to_dict(library))

    def test_file_round_trip(self, library, tmp_path):
        path = str(tmp_path / "tasks.json")
        save_library(library, path)
        restored = load_library(path)
        assert set(restored.signatures) == set(library.signatures)

    def test_version_check(self, library):
        data = library_to_dict(library)
        data["version"] = 7
        with pytest.raises(ValueError, match="version"):
            library_from_dict(data)

    def test_unknown_label_tag_rejected(self):
        from repro.core.tasks.serialize import _label_from_json

        with pytest.raises(ValueError, match="unknown task label"):
            _label_from_json({"t": "mystery"})


class TestDetectionEquivalence:
    def test_reloaded_library_detects_identically(self, synth, library):
        restored = library_from_dict(library_to_dict(library))
        for i in range(200, 210):
            run = synth.startup_run("i-3486634d", i)
            orig_events = [
                (e.name, round(e.t_start, 6)) for e in library.detect(run)
            ]
            back_events = [
                (e.name, round(e.t_start, 6)) for e in restored.detect(run)
            ]
            assert orig_events == back_events

    def test_masked_and_unmasked_coexist(self, synth, library):
        restored = library_from_dict(library_to_dict(library))
        assert restored.signatures["startup"].masked
        assert not restored.signatures["startup_exact"].masked


class TestCLITaskLibrary:
    def test_diff_with_stored_task_library(self, tmp_path, capsys):
        """Full CLI loop: learn, store, use to explain a VM stop."""
        import random

        from repro.cli import main
        from repro.core.tasks import TaskLibrary, save_library
        from repro.openflow.serialize import save_log
        from repro.ops import VMStopTask
        from repro.scenarios import three_tier_lab

        l1 = str(tmp_path / "l1.jsonl")
        l2 = str(tmp_path / "l2.jsonl")
        tasks = str(tmp_path / "tasks.json")

        save_log(three_tier_lab(seed=3).run(0.5, 20.0), l1)
        scenario = three_tier_lab(seed=3)
        VMStopTask("VM1", "S20").run(scenario.network, at=10.0)
        save_log(scenario.run(0.5, 20.0), l2)

        library = TaskLibrary()
        library.learn(
            "vm_stop",
            [
                VMStopTask("VM1", "S20").flow_sequence(random.Random(i))
                for i in range(20)
            ],
            masked=True,
        )
        save_library(library, tasks)

        main(["diff", l1, l2, "--tasks", tasks])
        out = capsys.readouterr().out
        assert "vm_stop" in out  # the task was detected and attributed
