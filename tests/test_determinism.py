"""Regression: same-seed simulations are byte-identical across processes.

FlowDiff diffs a capture against a baseline recorded earlier; if the
simulator itself were nondeterministic, L1/L2 differences would reflect
the run rather than the network. The ``determinism`` lint rule bans the
shared-state RNG patterns that break this statically; this test proves
the end-to-end property the rule protects: two ``repro simulate`` runs
with the same seed — in separate interpreter processes, with *different*
``PYTHONHASHSEED`` values so set/dict iteration order cannot leak into
the capture — write byte-identical logs.
"""

import hashlib
import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "src")
DURATION = "8.0"


def simulate(out_path, seed, hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = str(hashseed)
    subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "simulate",
            "--seed",
            str(seed),
            "--duration",
            DURATION,
            "--out",
            str(out_path),
        ],
        check=True,
        env=env,
        capture_output=True,
    )
    with open(out_path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


@pytest.mark.slow
def test_same_seed_runs_are_byte_identical(tmp_path):
    first = simulate(tmp_path / "a.jsonl", seed=5, hashseed=1)
    second = simulate(tmp_path / "b.jsonl", seed=5, hashseed=2)
    assert first == second


@pytest.mark.slow
def test_different_seeds_diverge(tmp_path):
    first = simulate(tmp_path / "a.jsonl", seed=5, hashseed=1)
    other = simulate(tmp_path / "c.jsonl", seed=6, hashseed=1)
    assert first != other


@pytest.mark.slow
def test_fault_injection_is_deterministic_too(tmp_path):
    def run(path, hashseed):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = str(hashseed)
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "simulate",
                "--seed",
                "7",
                "--duration",
                DURATION,
                "--fault",
                "cpu",
                "--out",
                str(path),
            ],
            check=True,
            env=env,
            capture_output=True,
        )
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()

    assert run(tmp_path / "a.jsonl", 1) == run(tmp_path / "b.jsonl", 2)
