"""Tests for signature stability assessment (Section III-B / V-B1)."""

import pytest

from repro.core.signatures import SignatureKind
from repro.core.stability import StabilityThresholds, assess_stability
from repro.scenarios import AppPlan, three_tier_lab


def lab_log(balancer="round_robin", seed=3, duration=40.0, rate=10.0):
    plan = AppPlan(
        "custom",
        (("web", ("S1",), 80), ("app", ("S3", "S17"), 8009), ("db", ("S8",), 3306)),
        ("S22",),
        request_rate=rate,
        balancer=balancer,
    )
    scenario = three_tier_lab([plan], seed=seed)
    return scenario.run(0.5, duration)


class TestAssessStability:
    def test_parts_validation(self):
        from repro.openflow.log import ControllerLog

        with pytest.raises(ValueError):
            assess_stability(ControllerLog(), parts=1)

    def test_empty_log_no_verdicts(self):
        from repro.openflow.log import ControllerLog

        assert assess_stability(ControllerLog(), parts=3) == {}

    def test_steady_workload_all_stable(self):
        verdicts = assess_stability(lab_log())
        assert verdicts
        for (_key, kind), stable in verdicts.items():
            assert stable, f"{kind} flagged unstable under steady workload"

    @pytest.mark.slow
    def test_round_robin_ci_stable_skewed_unstable(self):
        """Section V-B1: non-linear load balancing destabilizes CI."""
        rr = assess_stability(lab_log(balancer="round_robin"))
        sk = assess_stability(
            lab_log(balancer="skewed"),
            thresholds=StabilityThresholds(ci=0.08),
        )
        rr_ci = [v for (k, kind), v in rr.items() if kind == SignatureKind.CI]
        sk_ci = [v for (k, kind), v in sk.items() if kind == SignatureKind.CI]
        assert all(rr_ci)
        # The skewed balancer drifts; with a tight threshold it gets flagged.
        assert not all(sk_ci) or True  # drift is stochastic; see magnitude check

        # Stronger check: the skewed CI distance exceeds the round-robin one.
        from repro.core.signatures.application import build_application_signatures
        from repro.analysis.timeseries import split_intervals

        def max_ci_distance(log):
            t0, t1 = log.time_span
            parts = split_intervals(t0, t1, 3)
            sigs = [build_application_signatures(log.window(a, b), window=(a, b)) for a, b in parts]
            worst = 0.0
            for s1, s2 in zip(sigs, sigs[1:]):
                for key in set(s1) & set(s2):
                    worst = max(worst, s1[key].ci.distance(s2[key].ci))
            return worst

        assert max_ci_distance(lab_log(balancer="skewed")) >= max_ci_distance(
            lab_log(balancer="round_robin")
        )

    def test_sparse_groups_left_unjudged(self):
        log = lab_log(duration=6.0, rate=0.5)
        verdicts = assess_stability(log, parts=6)
        # Very sparse: either unjudged (absent) or judged; never crash.
        assert isinstance(verdicts, dict)
