"""End-to-end telemetry observatory: the ISSUE's acceptance scenario.

One faulted run (``LinkLoss`` on ``ofs1--ofs5`` at t=15s), observed four
ways: the heatmap must visibly mark the faulted link, a telemetry-driven
alert must fire for it, the evidence chain must reference the telemetry
record, and the read-only HTTP endpoint must serve valid ``/healthz``
and ``/metrics`` responses over the same plane.
"""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.diff.dependency import DependencyMatrix
from repro.core.diff.evidence import attach_evidence, telemetry_records_for
from repro.core.diff.html import report_to_html
from repro.core.diff.report import DiagnosisReport
from repro.faults.network import LinkLoss
from repro.obs import (
    AlertEngine,
    MetricsRegistry,
    ObsHTTPServer,
    ObsState,
    TelemetryPlane,
    heatmap_to_html,
    telemetry_rules,
    topology_heatmap_svg,
)
from repro.scenarios import three_tier_lab

FAULTED_EDGE = "ofs1--ofs5"


@pytest.fixture(scope="module")
def faulted_run():
    """The lab scenario with a lossy link injected mid-run, observed once."""
    plane = TelemetryPlane(window=1.0, capacity=120)
    metrics = MetricsRegistry()
    scenario = three_tier_lab(metrics=metrics, telemetry=plane)
    scenario.inject(LinkLoss([("ofs1", "ofs5")], loss_rate=0.08), at=15.0)
    log = scenario.run(stop=30.0)
    plane.flush(scenario.network.now)
    engine = AlertEngine(telemetry_rules())
    engine.observe_telemetry(plane)
    return scenario, plane, metrics, engine, log


def test_faulted_link_accumulates_drops(faulted_run):
    _, plane, _, _, _ = faulted_run
    drops = plane.get("link", FAULTED_EDGE, "drops")
    assert drops is not None and drops.total > 0
    # Only the faulted link dropped packets.
    for series in plane:
        if series.metric == "drops" and series.component != FAULTED_EDGE:
            assert series.total == 0.0, series.component


def test_heatmap_visibly_marks_the_faulted_link(faulted_run):
    scenario, plane, _, engine, _ = faulted_run
    svg = topology_heatmap_svg(scenario.network.topology, plane)
    match = re.search(
        rf'<line class="([^"]*)" data-component="{FAULTED_EDGE}"', svg
    )
    assert match is not None, "faulted link missing from the heatmap"
    assert "drops" in match.group(1).split()
    # No healthy link is marked as dropping.
    for classes, edge in re.findall(
        r'<line class="([^"]*)" data-component="([^"]*)"', svg
    ):
        if edge != FAULTED_EDGE:
            assert "drops" not in classes.split(), edge
    # The full report embeds the SVG and the alerts table.
    html = heatmap_to_html(
        scenario.network.topology, plane, alerts=engine.alerts
    )
    assert f'data-component="{FAULTED_EDGE}"' in html
    assert "Telemetry alerts" in html


def test_heatmap_is_deterministic(faulted_run):
    scenario, plane, _, _, _ = faulted_run
    topo = scenario.network.topology
    assert topology_heatmap_svg(topo, plane) == topology_heatmap_svg(topo, plane)


def test_telemetry_alert_fires_for_the_faulted_link(faulted_run):
    _, _, _, engine, _ = faulted_run
    drifts = [
        a
        for a in engine.alerts
        if a.rule == "telemetry:drop-drift" and FAULTED_EDGE in a.message
    ]
    assert drifts, [a.message for a in engine.alerts]
    # The drift is noticed right after injection, not at end of run.
    assert min(a.timestamp for a in drifts) <= 17.0


def test_evidence_chain_references_the_telemetry_record(faulted_run):
    _, plane, _, _, log = faulted_run
    records = telemetry_records_for(plane, FAULTED_EDGE)
    assert records and records[0].component == FAULTED_EDGE
    assert any(r.metric == "drops" and r.counter for r in records)

    report = DiagnosisReport(
        unknown_changes=(),
        known_changes=(),
        task_events=(),
        problems=(),
        dependency=DependencyMatrix.from_changes([]),
        component_ranking=((FAULTED_EDGE, 2.0),),
    )
    enriched = attach_evidence(report, log, telemetry=plane)
    assert enriched.evidence, "telemetry alone should justify a chain"
    chain = enriched.evidence[0]
    assert chain.component == FAULTED_EDGE
    assert chain.telemetry
    rendered = chain.render()
    assert "telemetry" in rendered
    html = report_to_html(enriched)
    assert "telemetry series" in html
    payload = enriched.to_dict()
    assert payload["evidence"][0]["telemetry"]


def test_http_endpoint_serves_health_and_metrics(faulted_run):
    _, plane, metrics, engine, _ = faulted_run
    state = ObsState(registry=metrics, telemetry=plane, engine=engine)
    with ObsHTTPServer(state) as server:
        with urllib.request.urlopen(server.url("/healthz")) as resp:
            assert resp.status == 200
            health = json.loads(resp.read())
        assert health["status"] == "ok"
        assert health["telemetry"]["series"] == len(list(plane))
        assert health["alerts"] == len(engine.alerts)

        with urllib.request.urlopen(server.url("/metrics")) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode("utf-8")
        assert f'telemetry_link_drops{{component="{FAULTED_EDGE}"}}' in body
        for line in body.splitlines():
            if line and not line.startswith("#"):
                name_labels, value = line.rsplit(" ", 1)
                float(value)  # every sample line ends in a number

        with urllib.request.urlopen(server.url("/alerts")) as resp:
            assert len(json.loads(resp.read())) == len(engine.alerts)

        request = urllib.request.Request(
            server.url("/metrics"), data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET, HEAD"

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url("/nope"))
        assert excinfo.value.code == 404


def test_cli_telemetry_smoke(tmp_path, capsys):
    out = str(tmp_path / "telemetry.jsonl")
    prom = str(tmp_path / "telemetry.prom")
    html = str(tmp_path / "heatmap.html")
    code = main(
        [
            "telemetry",
            "--duration",
            "8",
            "--fault",
            "linkloss",
            "--fault-at",
            "3",
            "--out",
            out,
            "--prom",
            prom,
            "--html",
            html,
        ]
    )
    assert code == 0
    stdout = capsys.readouterr().out
    assert "link telemetry" in stdout
    assert "wrote topology heatmap" in stdout

    from repro.obs.export import read_jsonl
    from repro.obs.telemetry import plane_from_events

    rebuilt = plane_from_events(read_jsonl(out))
    assert rebuilt.get("link", FAULTED_EDGE, "drops") is not None
    with open(prom, encoding="utf-8") as fh:
        assert "telemetry_link_utilization" in fh.read()
    with open(html, encoding="utf-8") as fh:
        assert f'data-component="{FAULTED_EDGE}"' in fh.read()


def test_cli_linkloss_rejects_bad_target():
    with pytest.raises(SystemExit):
        main(["telemetry", "--duration", "1", "--fault", "linkloss", "--target", "S3"])
