"""Unit tests for flow tables: priorities, timeouts, expiry."""

import pytest

from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowRemovedReason

KEY = FlowKey("a", "b", 1000, 80)


def entry(match=None, **kwargs):
    return FlowEntry(match=match or Match.exact(KEY), out_port=1, **kwargs)


class TestFlowEntry:
    def test_counters_accumulate(self):
        e = entry(created_at=0.0)
        e.record_match(1.0, 100, 2)
        e.record_match(2.0, 50, 1)
        assert e.byte_count == 150
        assert e.packet_count == 3
        assert e.last_matched_at == 2.0

    def test_idle_expiry_from_last_match(self):
        e = entry(created_at=0.0, idle_timeout=5.0)
        e.record_match(3.0, 10)
        assert e.expired_reason(7.9) is None
        assert e.expired_reason(8.0) == FlowRemovedReason.IDLE_TIMEOUT

    def test_hard_expiry_from_creation(self):
        e = entry(created_at=0.0, idle_timeout=0.0, hard_timeout=10.0)
        e.record_match(9.0, 10)
        assert e.expired_reason(9.5) is None
        assert e.expired_reason(10.0) == FlowRemovedReason.HARD_TIMEOUT

    def test_hard_beats_idle_when_both_hit(self):
        e = entry(created_at=0.0, idle_timeout=2.0, hard_timeout=3.0)
        assert e.expired_reason(5.0) == FlowRemovedReason.HARD_TIMEOUT

    def test_no_timeouts_never_expires(self):
        e = entry(created_at=0.0, idle_timeout=0.0, hard_timeout=0.0)
        assert e.expired_reason(1e9) is None
        assert e.expiry_time() == float("inf")

    def test_duration_is_active_lifetime(self):
        e = entry(created_at=2.0)
        e.record_match(5.5, 10)
        assert e.duration == pytest.approx(3.5)

    def test_expiry_time_minimum(self):
        e = entry(created_at=0.0, idle_timeout=5.0, hard_timeout=4.0)
        assert e.expiry_time() == 4.0


class TestFlowTable:
    def test_lookup_hit_and_miss(self):
        table = FlowTable()
        table.install(entry(created_at=0.0))
        assert table.lookup(KEY, 1.0) is not None
        assert table.lookup(KEY.reversed(), 1.0) is None

    def test_expired_entry_never_matches(self):
        table = FlowTable()
        table.install(entry(created_at=0.0, idle_timeout=1.0))
        assert table.lookup(KEY, 0.5) is not None
        assert table.lookup(KEY, 2.0) is None

    def test_priority_resolution(self):
        table = FlowTable()
        low = entry(match=Match.destination("b"), created_at=0.0)
        high = FlowEntry(
            match=Match.exact(KEY), out_port=2, priority=10, created_at=0.0
        )
        table.install(low)
        table.install(high)
        assert table.lookup(KEY, 1.0).out_port == 2

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable()
        table.install(FlowEntry(match=Match.destination("b"), out_port=1, created_at=0.0))
        table.install(FlowEntry(match=Match.exact(KEY), out_port=2, created_at=0.0))
        assert table.lookup(KEY, 1.0).out_port == 2

    def test_reinstall_replaces(self):
        table = FlowTable()
        table.install(entry(created_at=0.0))
        table.install(FlowEntry(match=Match.exact(KEY), out_port=7, created_at=1.0))
        assert len(table) == 1
        assert table.lookup(KEY, 2.0).out_port == 7

    def test_delete_by_match(self):
        table = FlowTable()
        table.install(entry(created_at=0.0))
        removed = table.delete(Match.exact(KEY))
        assert len(removed) == 1
        assert len(table) == 0

    def test_collect_expired_removes_and_reports(self):
        table = FlowTable()
        table.install(entry(created_at=0.0, idle_timeout=1.0))
        table.install(
            FlowEntry(
                match=Match.destination("z"),
                out_port=3,
                created_at=0.0,
                idle_timeout=100.0,
            )
        )
        expired = table.collect_expired(5.0)
        assert len(expired) == 1
        assert expired[0][1] == FlowRemovedReason.IDLE_TIMEOUT
        assert len(table) == 1

    def test_next_expiry(self):
        table = FlowTable()
        assert table.next_expiry() == float("inf")
        table.install(entry(created_at=0.0, idle_timeout=3.0))
        assert table.next_expiry() == 3.0

    def test_stats(self):
        table = FlowTable()
        e = entry(created_at=0.0)
        table.install(e)
        e.record_match(1.0, 500, 4)
        stats = table.stats()
        assert stats == {"entries": 1, "bytes": 500, "packets": 4}
