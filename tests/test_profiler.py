"""The span-scoped function profiler: attribution, folding, determinism,
and the reconciliation contract between span tree and folded profile."""

import io
import time
import unittest

from repro.obs.profiler import (
    SpanProfiler,
    _frame_key,
    attach_profiler,
    deterministic_timer,
    merge_folded,
    reconcile_phases,
    render_function_table,
)
from repro.obs.tracing import Tracer


def _spin(seconds):
    """Burn CPU inside a named frame the profiler can attribute."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += 1
    return total


def _spin_other(seconds):
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += 2
    return total


class FrameKeyTest(unittest.TestCase):
    def test_string_passthrough(self):
        self.assertEqual(_frame_key("<built-in method sum>"), "<built-in method sum>")

    def test_repro_path_is_relativized(self):
        code = _spin.__code__
        key = _frame_key(code)
        self.assertTrue(key.endswith(":_spin"))
        self.assertNotIn("\\", key)

    def test_repro_module_cut_at_package(self):
        from repro.obs import tracing

        key = _frame_key(tracing.Tracer.span.__code__)
        self.assertEqual(key, "repro/obs/tracing.py:span")


class AttributionTest(unittest.TestCase):
    def test_functions_billed_to_their_span(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("model"):
            with tracer.span("extract"):
                _spin(0.02)
            _spin_other(0.02)
        folded = profiler.folded()
        spin_keys = [k for k in folded if k.endswith(":_spin")]
        other_keys = [k for k in folded if k.endswith(":_spin_other")]
        self.assertTrue(spin_keys and other_keys)
        # _spin ran inside model;extract, _spin_other inside model itself.
        self.assertTrue(all(k.startswith("model;extract;") for k in spin_keys))
        self.assertTrue(
            all(
                k.startswith("model;") and ";extract;" not in k
                for k in other_keys
            )
        )

    def test_same_function_billed_per_phase(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("a"):
            _spin(0.01)
        with tracer.span("b"):
            _spin(0.01)
        folded = profiler.folded()
        spin_lines = sorted(k for k in folded if k.endswith(":_spin"))
        self.assertEqual(len(spin_lines), 2)
        self.assertTrue(spin_lines[0].startswith("a;"))
        self.assertTrue(spin_lines[1].startswith("b;"))

    def test_off_by_default(self):
        # A tracer without the hook records spans but no profile exists;
        # a profiler never attached collects nothing.
        tracer = Tracer()
        profiler = SpanProfiler()
        with tracer.span("model"):
            _spin(0.005)
        self.assertEqual(profiler.folded(), {})
        self.assertEqual(profiler.function_rows(), [])

    def test_mid_tree_close_is_ignored(self):
        # A hook attached after a span opened sees a close for a span it
        # never saw open — must not crash or mis-pop.
        tracer = Tracer()
        ctx = tracer.span("early")
        profiler = attach_profiler(tracer)
        with tracer.span("late"):
            _spin(0.005)
        ctx.__exit__(None, None, None)
        folded = profiler.folded()
        # "late" is the profiler's root — it never saw "early" open.
        self.assertTrue(any(k.startswith("late;") for k in folded))
        self.assertFalse(any(k.startswith("early;") for k in folded))
        self.assertEqual(profiler._stack, [])

    def test_exception_exit_still_collects(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with self.assertRaises(ValueError):
            with tracer.span("phase"):
                _spin(0.005)
                raise ValueError
        self.assertTrue(profiler.folded())
        self.assertEqual(profiler._stack, [])


class FoldedOutputTest(unittest.TestCase):
    def test_folded_lines_sorted_and_positive(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("z"):
            _spin(0.005)
        with tracer.span("a"):
            _spin(0.005)
        lines = profiler.folded_lines()
        self.assertEqual(lines, sorted(lines))
        for line in lines:
            stack, _, value = line.rpartition(" ")
            self.assertTrue(stack)
            self.assertGreater(int(value), 0)

    def test_write_folded_file_and_handle(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("p"):
            _spin(0.005)
        buf = io.StringIO()
        count = profiler.write_folded(buf)
        text = buf.getvalue()
        self.assertEqual(count, len(text.strip().splitlines()))
        self.assertTrue(text.endswith("\n"))

    def test_merge_folded_sums(self):
        merged = merge_folded([{"a;f": 1.0, "b;g": 2.0}, {"a;f": 0.5}])
        self.assertEqual(merged, {"a;f": 1.5, "b;g": 2.0})


class DeterministicTimerTest(unittest.TestCase):
    def _profile_once(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer, timer=deterministic_timer())
        with tracer.span("model"):
            with tracer.span("extract"):
                sum(i * i for i in range(2000))
            sorted(range(1000), key=lambda i: -i)
        with tracer.span("diff"):
            {i: str(i) for i in range(500)}
        return profiler.folded_lines(scale=1.0)

    def test_identical_runs_fold_identically(self):
        self.assertEqual(self._profile_once(), self._profile_once())

    def test_timer_is_monotonic_counter(self):
        timer = deterministic_timer()
        self.assertEqual([timer(), timer(), timer()], [1, 2, 3])


class ReconciliationTest(unittest.TestCase):
    def test_phase_totals_reconcile_within_five_percent(self):
        # CPU-bound work inside spans: the folded (exclusive) totals per
        # span-path prefix must reproduce the span wall time within 5%.
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("model"):
            with tracer.span("extract"):
                _spin(0.08)
            with tracer.span("signature"):
                _spin(0.08)
        rows = reconcile_phases(tracer, profiler, min_seconds=0.05)
        self.assertTrue(rows)
        for row in rows:
            self.assertLess(row["rel_err"], 0.05, row)

    def test_phase_totals_nest(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("model"):
            with tracer.span("extract"):
                _spin(0.02)
        totals = profiler.phase_totals()
        self.assertIn("model", totals)
        self.assertIn("model/extract", totals)
        self.assertGreaterEqual(totals["model"], totals["model/extract"])


class TableTest(unittest.TestCase):
    def test_function_rows_ranked_and_filtered(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("model"):
            _spin(0.03)
        with tracer.span("diff"):
            _spin_other(0.005)
        rows = profiler.function_rows(top=5)
        self.assertLessEqual(len(rows), 5)
        excl = [r["exclusive_s"] for r in rows]
        self.assertEqual(excl, sorted(excl, reverse=True))
        model_rows = profiler.function_rows(phase="model")
        self.assertTrue(any(r["function"].endswith(":_spin") for r in model_rows))
        self.assertFalse(
            any(r["function"].endswith(":_spin_other") for r in model_rows)
        )

    def test_render_function_table(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        with tracer.span("p"):
            _spin(0.005)
        table = render_function_table(profiler, top=3)
        self.assertIn("hot functions", table)
        self.assertIn("excl ms", table)
        empty = render_function_table(SpanProfiler())
        self.assertIn("no profile collected", empty)

    def test_render_function_table_events_unit(self):
        tracer = Tracer()
        profiler = attach_profiler(tracer, timer=deterministic_timer())
        with tracer.span("p"):
            _spin(0.002)
        table = render_function_table(profiler, unit="events")
        self.assertIn("excl events", table)


class MetricsTest(unittest.TestCase):
    def test_profiled_span_counter(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer()
        attach_profiler(tracer, metrics=registry)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        counter = registry.counter("profile_spans_total")
        self.assertEqual(counter.value, 2)


if __name__ == "__main__":
    unittest.main()
