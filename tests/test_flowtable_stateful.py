"""Stateful property tests: the flow table against a reference model.

Hypothesis drives random install / lookup / advance-time / expire
sequences against both the real :class:`FlowTable` and a brute-force
reference implementation, checking they never disagree about which entry
matches and what expires.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import FlowKey, Match

HOSTS = ["h1", "h2", "h3"]
PORTS = [80, 443]


def keys():
    return st.builds(
        FlowKey,
        src=st.sampled_from(HOSTS),
        dst=st.sampled_from(HOSTS),
        src_port=st.sampled_from([1000, 2000]),
        dst_port=st.sampled_from(PORTS),
    )


class FlowTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = FlowTable()
        self.reference = []  # list of live FlowEntry mirrors
        self.now = 0.0
        self.out_port = 0

    # ------------------------------------------------------------------

    @rule(key=keys(), idle=st.sampled_from([0.0, 2.0, 5.0]),
          hard=st.sampled_from([0.0, 10.0]),
          priority=st.integers(0, 3),
          wildcard=st.booleans())
    def install(self, key, idle, hard, priority, wildcard):
        self.out_port += 1
        match = Match.destination(key.dst) if wildcard else Match.exact(key)
        entry = FlowEntry(
            match=match,
            out_port=self.out_port,
            priority=priority,
            idle_timeout=idle,
            hard_timeout=hard,
            created_at=self.now,
        )
        self.table.install(entry)
        self.reference = [
            e
            for e in self.reference
            if not (e.match == match and e.priority == priority)
        ]
        self.reference.append(entry)

    @rule(dt=st.floats(0.1, 4.0))
    def advance(self, dt):
        self.now += dt

    @rule(key=keys(), nbytes=st.integers(1, 5000))
    def lookup_and_touch(self, key, nbytes):
        got = self.table.lookup(key, self.now)
        live = [
            e
            for e in self.reference
            if e.expired_reason(self.now) is None and e.match.matches(key)
        ]
        if not live:
            assert got is None
            return
        expected = max(
            live, key=lambda e: (e.priority, e.match.specificity, e.created_at)
        )
        assert got is expected, (got, expected)
        got.record_match(self.now, nbytes)

    @rule()
    def collect_expired(self):
        expired = self.table.collect_expired(self.now)
        expected = {
            id(e)
            for e in self.reference
            if e.expired_reason(self.now) is not None
        }
        assert {id(e) for e, _ in expired} == expected
        self.reference = [
            e for e in self.reference if e.expired_reason(self.now) is None
        ]

    # ------------------------------------------------------------------

    @invariant()
    def table_size_matches_reference(self):
        # The real table may still hold expired entries (lazy eviction),
        # but never fewer than the reference's live set.
        live = sum(
            1 for e in self.reference if e.expired_reason(self.now) is None
        )
        assert len(self.table) >= live

    @invariant()
    def next_expiry_not_in_past_of_live(self):
        nxt = self.table.next_expiry()
        assert nxt == float("inf") or nxt >= 0.0


TestFlowTableStateful = FlowTableMachine.TestCase
TestFlowTableStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
