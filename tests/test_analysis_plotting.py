"""Tests for the ASCII plotting helpers."""

from repro.analysis.plotting import ascii_bars, ascii_cdf, ascii_series
from repro.analysis.stats import EmpiricalCDF


class TestAsciiCDF:
    def test_empty(self):
        assert ascii_cdf({}) == "(no data)"
        assert ascii_cdf({"x": EmpiricalCDF.from_values([])}) == "(no data)"

    def test_single_curve_shape(self):
        cdf = EmpiricalCDF.from_values(range(100))
        out = ascii_cdf({"uniform": cdf}, width=40, height=10)
        lines = out.splitlines()
        assert lines[0].startswith("1.00 |")
        assert any("uniform" in l for l in lines)
        assert "*" in out

    def test_two_curves_distinct_glyphs(self):
        a = EmpiricalCDF.from_values(range(50))
        b = EmpiricalCDF.from_values(range(25, 75))
        out = ascii_cdf({"a": a, "b": b})
        assert "*" in out and "o" in out

    def test_constant_values_no_crash(self):
        cdf = EmpiricalCDF.from_values([5.0] * 10)
        assert "(no data)" not in ascii_cdf({"c": cdf})


class TestAsciiSeries:
    def test_empty(self):
        assert ascii_series([]) == "(no data)"

    def test_monotone_series(self):
        points = [(float(i), float(i * i)) for i in range(10)]
        out = ascii_series(points, y_label="growth")
        assert "*" in out
        assert "growth" in out

    def test_flat_series_no_crash(self):
        assert "*" in ascii_series([(0.0, 1.0), (1.0, 1.0)])


class TestAsciiBars:
    def test_empty(self):
        assert ascii_bars({}) == "(no data)"

    def test_bar_lengths_proportional(self):
        out = ascii_bars({"small": 1.0, "big": 4.0}, width=40)
        lines = out.splitlines()
        small_bar = lines[0].count("#")
        big_bar = lines[1].count("#")
        assert big_bar == 40
        assert small_bar == 10

    def test_zero_values_no_crash(self):
        assert "0.00" in ascii_bars({"z": 0.0})
