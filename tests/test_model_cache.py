"""The content-addressed model cache and typed persistence errors."""

import json
import os

import pytest

from repro.cli import main
from repro.core.flowdiff import FlowDiff, FlowDiffConfig
from repro.core.persist import (
    FORMAT_VERSION,
    ModelCache,
    ModelLoadError,
    config_fingerprint,
    load_model,
    log_fingerprint,
    model_cache_key,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.core.signatures.application import SignatureConfig
from repro.obs.metrics import MetricsRegistry
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowMod, FlowRemoved, PacketIn
from repro.openflow.serialize import read_log, save_log


def small_log(shift=0.0):
    log = ControllerLog()
    for i, (src, dst) in enumerate((("a", "b"), ("b", "c"), ("a", "b"))):
        key = FlowKey(src, dst, 1000 + i, 80)
        pin = PacketIn(
            timestamp=1.0 + i + shift, dpid="sw1", flow=key, in_port=1, buffer_id=i
        )
        log.append(pin)
        log.append(
            FlowMod(
                timestamp=1.001 + i + shift,
                dpid="sw1",
                match=Match.exact(key),
                out_port=2,
                in_reply_to=i,
            )
        )
    log.append(
        FlowRemoved(
            timestamp=8.0 + shift,
            dpid="sw1",
            match=Match.exact(FlowKey("a", "b", 1000, 80)),
            duration=2.0,
            byte_count=1200,
            packet_count=9,
        )
    )
    return log


class TestFingerprints:
    def test_log_fingerprint_is_content_addressed(self):
        assert log_fingerprint(small_log()) == log_fingerprint(small_log())
        assert log_fingerprint(small_log()) != log_fingerprint(small_log(shift=0.5))

    def test_log_fingerprint_invalidated_by_growth(self):
        log = small_log()
        before = log_fingerprint(log)
        log.append(
            PacketIn(
                timestamp=9.0,
                dpid="sw2",
                flow=FlowKey("x", "y", 1, 2),
                in_port=1,
                buffer_id=99,
            )
        )
        assert log_fingerprint(log) != before

    def test_read_log_caches_file_digest(self, tmp_path):
        path = str(tmp_path / "capture.jsonl")
        save_log(small_log(), path)
        log = read_log(path)
        assert log.cached_content_digest() is not None
        assert log_fingerprint(log) == log.cached_content_digest()

    def test_config_fingerprint_ignores_execution_knobs(self):
        base = FlowDiffConfig()
        assert config_fingerprint(base) == config_fingerprint(
            FlowDiffConfig(jobs=8, cache_dir="/somewhere")
        )
        changed = FlowDiffConfig(signature=SignatureConfig(occurrence_gap=2.0))
        assert config_fingerprint(base) != config_fingerprint(changed)

    def test_cache_key_components(self):
        log = small_log()
        cfg = FlowDiffConfig()
        key = model_cache_key(log, cfg, (0.0, 1.0), True)
        assert key != model_cache_key(log, cfg, (0.0, 2.0), True)
        assert key != model_cache_key(log, cfg, (0.0, 1.0), False)
        assert key != model_cache_key(small_log(shift=0.1), cfg, (0.0, 1.0), True)


class TestModelCache:
    def test_hit_returns_identical_model(self, tmp_path):
        metrics = MetricsRegistry()
        fd = FlowDiff(
            FlowDiffConfig(cache_dir=str(tmp_path)), metrics=metrics
        )
        log = small_log()
        first = fd.model(log)
        second = fd.model(log)
        assert model_to_dict(first) == model_to_dict(second)

    def test_store_then_hit_under_parallel_config(self, tmp_path):
        log = small_log()
        cold = FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path), jobs=4)).model(log)
        warm = FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path), jobs=1)).model(log)
        assert model_to_dict(warm) == model_to_dict(cold)
        assert len(list(tmp_path.glob("*.model.json"))) == 1

    def test_config_change_misses(self, tmp_path):
        log = small_log()
        FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path))).model(log)
        FlowDiff(
            FlowDiffConfig(
                cache_dir=str(tmp_path),
                signature=SignatureConfig(occurrence_gap=2.0),
            )
        ).model(log)
        assert len(list(tmp_path.glob("*.model.json"))) == 2

    def test_window_change_misses(self, tmp_path):
        log = small_log()
        fd = FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path)))
        fd.model(log)
        fd.model(log, window=(1.0, 6.0))
        assert len(list(tmp_path.glob("*.model.json"))) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        log = small_log()
        fd = FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path)))
        fresh = fd.model(log)
        (entry,) = tmp_path.glob("*.model.json")
        entry.write_text("not json at all", encoding="utf-8")
        with pytest.warns(UserWarning, match="unreadable cached model"):
            rebuilt = fd.model(log)
        assert model_to_dict(rebuilt) == model_to_dict(fresh)

    def test_version_skew_is_a_miss(self, tmp_path):
        log = small_log()
        fd = FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path)))
        fd.model(log)
        (entry,) = tmp_path.glob("*.model.json")
        data = json.loads(entry.read_text(encoding="utf-8"))
        data["version"] = FORMAT_VERSION + 1
        entry.write_text(json.dumps(data), encoding="utf-8")
        with pytest.warns(UserWarning, match="unreadable cached model"):
            fd.model(log)

    def test_records_bypass_cache(self, tmp_path):
        from repro.core.events import extract_flow_records

        log = small_log()
        fd = FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path)))
        records = extract_flow_records(log, 1.0)
        fd.model(log, records=records)
        assert not list(tmp_path.glob("*.model.json"))

    def test_cache_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ModelCache(str(tmp_path), metrics=metrics)
        fd = FlowDiff(FlowDiffConfig(cache_dir=str(tmp_path)), metrics=metrics)
        log = small_log()
        fd.model(log)
        fd.model(log)
        snapshot = metrics.snapshot()
        assert any("flowdiff_cache_total" in name for name in snapshot)
        assert cache.entry(log, fd.config, log.time_span, True).load() is not None


class TestModelLoadError:
    def test_truncated_json_names_path(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text('{"version": 1, "window"', encoding="utf-8")
        with pytest.raises(ModelLoadError, match="invalid JSON") as err:
            load_model(str(path))
        assert err.value.path == str(path)
        assert str(path) in str(err.value)

    def test_version_skew(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(
            json.dumps(
                {
                    "version": 99,
                    "window": [0, 1],
                    "app_signatures": {},
                    "infrastructure": {},
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ModelLoadError, match="version"):
            load_model(str(path))

    def test_missing_section(self):
        with pytest.raises(ModelLoadError, match="infrastructure"):
            model_from_dict(
                {"version": FORMAT_VERSION, "window": [0, 1], "app_signatures": {}}
            )

    def test_wrong_payload_type(self):
        with pytest.raises(ModelLoadError, match="JSON object"):
            model_from_dict([1, 2, 3])

    def test_truncated_signature_payload(self, tmp_path):
        log = small_log()
        model = FlowDiff(FlowDiffConfig()).model(log)
        data = model_to_dict(model)
        for sig in data["app_signatures"].values():
            del sig["fs"]
        path = tmp_path / "model.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ModelLoadError, match="truncated or corrupt"):
            load_model(str(path))

    def test_is_a_value_error(self):
        # Callers that caught the old ValueError keep working.
        assert issubclass(ModelLoadError, ValueError)


class TestCliFlags:
    @pytest.fixture()
    def captures(self, tmp_path):
        from repro.scenarios import three_tier_lab

        baseline = str(tmp_path / "baseline.jsonl")
        current = str(tmp_path / "current.jsonl")
        log = three_tier_lab(seed=3).run(stop=10.0)
        save_log(log, baseline)
        save_log(log.window(*log.time_span), current)
        return baseline, current

    @pytest.mark.slow
    def test_model_jobs_flag(self, tmp_path, captures, capsys):
        baseline, _ = captures
        out_serial = str(tmp_path / "serial.json")
        out_parallel = str(tmp_path / "parallel.json")
        assert main(["model", baseline, "--out", out_serial]) == 0
        assert main(["model", baseline, "--jobs", "4", "--out", out_parallel]) == 0
        capsys.readouterr()
        with open(out_serial, encoding="utf-8") as fh:
            serial = json.load(fh)
        with open(out_parallel, encoding="utf-8") as fh:
            parallel = json.load(fh)
        assert serial == parallel

    @pytest.mark.slow
    def test_warm_diff_skips_remodeling(self, tmp_path, captures, capsys, monkeypatch):
        baseline, current = captures
        cache_dir = str(tmp_path / "cache")
        code = main(
            ["diff", baseline, current, "--jobs", "2", "--cache-dir", cache_dir]
        )
        capsys.readouterr()
        assert code == 0
        assert list(os.listdir(cache_dir))
        # Warm run: the modeling pipeline must not execute at all.
        import repro.core.flowdiff as flowdiff_mod

        def boom(*args, **kwargs):  # pragma: no cover - only on failure
            raise AssertionError("remodeled despite warm cache")

        monkeypatch.setattr(
            flowdiff_mod.FlowDiff, "_model_serial", boom, raising=True
        )
        monkeypatch.setattr(
            flowdiff_mod, "extract_flow_records", boom, raising=True
        )
        code = main(
            ["diff", baseline, current, "--jobs", "2", "--cache-dir", cache_dir]
        )
        capsys.readouterr()
        assert code == 0


class TestNonAsciiRoundTrip:
    def test_unicode_host_names_round_trip(self, tmp_path):
        key = FlowKey("ホストα", "दब-β", 4242, 443)
        log = ControllerLog()
        pin = PacketIn(timestamp=1.0, dpid="スイッチ1", flow=key, in_port=1, buffer_id=5)
        log.append(pin)
        log.append(
            FlowMod(
                timestamp=1.001,
                dpid="スイッチ1",
                match=Match.exact(key),
                out_port=2,
                in_reply_to=5,
            )
        )
        path = str(tmp_path / "unicode.jsonl")
        save_log(log, path)
        reloaded = read_log(path)
        assert [m.dpid for m in reloaded] == [m.dpid for m in log]
        assert reloaded.packet_ins()[0].flow == key

        model = FlowDiff(FlowDiffConfig()).model(reloaded, assess=False)
        model_path = str(tmp_path / "unicode.model.json")
        save_model(model, model_path)
        assert model_to_dict(load_model(model_path)) == model_to_dict(model)
