"""Unit and property tests for flow keys, matches, and masking."""

import pytest
from hypothesis import given, strategies as st

from repro.openflow.match import (
    EPHEMERAL_PORT_FLOOR,
    FlowKey,
    MaskedFlow,
    Match,
    mask_flows,
)

flow_keys = st.builds(
    FlowKey,
    src=st.sampled_from(["h1", "h2", "h3", "10.0.0.1"]),
    dst=st.sampled_from(["h4", "h5", "10.0.0.2"]),
    src_port=st.integers(1, 65535),
    dst_port=st.integers(1, 65535),
    proto=st.sampled_from(["tcp", "udp"]),
)


class TestFlowKey:
    def test_reversed_swaps_everything(self):
        key = FlowKey("a", "b", 1000, 80)
        rev = key.reversed()
        assert rev == FlowKey("b", "a", 80, 1000)

    @given(flow_keys)
    def test_double_reverse_is_identity(self, key):
        assert key.reversed().reversed() == key

    def test_str_representation(self):
        assert str(FlowKey("a", "b", 1, 2, "udp")) == "a:1->b:2/udp"

    def test_hashable_and_ordered(self):
        keys = {FlowKey("a", "b", 1, 2), FlowKey("a", "b", 1, 2)}
        assert len(keys) == 1
        assert FlowKey("a", "b", 1, 2) < FlowKey("b", "a", 1, 2)


class TestMatch:
    def test_exact_match_is_microflow(self):
        key = FlowKey("a", "b", 1000, 80)
        match = Match.exact(key)
        assert match.is_microflow
        assert match.matches(key)
        assert not match.matches(key.reversed())

    def test_destination_wildcard(self):
        match = Match.destination("b")
        assert not match.is_microflow
        assert match.matches(FlowKey("a", "b", 1, 2))
        assert match.matches(FlowKey("x", "b", 9, 9))
        assert not match.matches(FlowKey("a", "c", 1, 2))

    def test_specificity_ordering(self):
        key = FlowKey("a", "b", 1, 2)
        assert Match.exact(key).specificity == 5
        assert Match.destination("b").specificity == 1
        assert Match().specificity == 0

    def test_empty_match_matches_all(self):
        assert Match().matches(FlowKey("x", "y", 5, 6))

    @given(flow_keys)
    def test_exact_always_matches_own_key(self, key):
        assert Match.exact(key).matches(key)

    def test_str_shows_wildcards(self):
        assert "*" in str(Match.destination("b"))


class TestMaskFlows:
    def test_placeholders_by_first_appearance(self):
        flows = [
            FlowKey("hostA", "hostB", 40000, 2049),
            FlowKey("hostB", "hostA", 2049, 40000),
            FlowKey("hostC", "hostA", 41000, 80),
        ]
        masked = mask_flows(flows)
        assert masked[0].src == "#1"
        assert masked[0].dst == "#2"
        assert masked[1].src == "#2"
        assert masked[1].dst == "#1"
        assert masked[2].src == "#3"

    def test_service_names_preserved(self):
        flows = [FlowKey("vm1", "10.0.0.9", 40000, 2049)]
        masked = mask_flows(flows, service_names={"10.0.0.9": "NFS"})
        assert masked[0].dst == "NFS"
        assert masked[0].src == "#1"

    def test_ephemeral_ports_wildcarded(self):
        flows = [FlowKey("a", "b", EPHEMERAL_PORT_FLOOR + 5, 80)]
        assert mask_flows(flows)[0].src_port == "*"

    def test_well_known_ports_kept(self):
        flows = [FlowKey("a", "b", 68, 67)]
        masked = mask_flows(flows)
        assert masked[0].src_port == "68"
        assert masked[0].dst_port == "67"

    def test_extra_well_known_ports(self):
        flows = [FlowKey("a", "b", 32768, 80)]
        masked = mask_flows(flows, well_known_ports=[32768])
        assert masked[0].src_port == "32768"

    def test_unmasked_hosts_mode(self):
        flows = [FlowKey("hostA", "hostB", 40000, 80)]
        masked = mask_flows(flows, mask_hosts=False)
        assert masked[0].src == "hostA"
        assert masked[0].dst == "hostB"
        assert masked[0].src_port == "*"  # port masking still applies

    def test_figure4_representation(self):
        """Reproduce Figure 4's [#1:*-NFS:2049] template."""
        flows = [FlowKey("hostA", "nfs-server", 45123, 2049)]
        masked = mask_flows(flows, service_names={"nfs-server": "NFS"})
        assert str(masked[0]) == "[#1:*-NFS:2049]"

    @given(st.lists(flow_keys, max_size=30))
    def test_same_key_same_template(self, flows):
        masked = mask_flows(flows)
        seen = {}
        for key, template in zip(flows, masked):
            if key in seen:
                assert seen[key] == template
            seen[key] = template

    @given(st.lists(flow_keys, max_size=30))
    def test_output_length_matches(self, flows):
        assert len(mask_flows(flows)) == len(flows)
