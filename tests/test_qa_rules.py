"""Good/bad fixture pairs for every flowlint domain rule.

Each rule gets a conforming fixture (no findings) and a violating one
(the expected finding), plus a pragma-suppression case where it matters.
The final self-check runs the full default rule set over the real source
tree — the repository must lint clean.
"""

import os
import textwrap

from repro.qa import LintEngine, default_rules
from repro.qa.framework import ModuleFile, Project
from repro.qa.rules import (
    DeterminismRule,
    ForkSafetyRule,
    HotLoopAllocRule,
    MetricNamesRule,
    OpenEncodingRule,
    SignatureContractRule,
    SimClockRule,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def module(source, name="repro.netsim.fake", path=None):
    path = path or "src/" + name.replace(".", "/") + ".py"
    return ModuleFile(path, textwrap.dedent(source), module=name)


def run(rule, mod):
    return LintEngine([rule]).run(Project([mod]))


class TestSimClock:
    def test_engine_clock_is_clean(self):
        mod = module(
            """\
            def handle(sim, pkt):
                return sim.now + 0.5
            """
        )
        assert run(SimClockRule(), mod).ok

    def test_wall_clock_read_is_flagged(self):
        mod = module(
            """\
            import time

            def handle(pkt):
                return time.time()
            """
        )
        result = run(SimClockRule(), mod)
        assert [f.rule for f in result.findings] == ["sim-clock"]
        assert "time.time" in result.findings[0].message

    def test_aliased_import_is_still_caught(self):
        mod = module(
            """\
            from time import perf_counter as pc

            def handle(pkt):
                return pc()
            """
        )
        assert not run(SimClockRule(), mod).ok

    def test_outside_sim_packages_wall_clock_is_fine(self):
        mod = module(
            """\
            import time

            def now():
                return time.time()
            """,
            name="repro.obs.metrics2",
        )
        assert run(SimClockRule(), mod).ok

    def test_justified_pragma_suppresses(self):
        mod = module(
            """\
            import time

            def handle(pkt):
                return time.perf_counter()  # flowlint: disable=sim-clock -- host-cost telemetry
            """
        )
        result = run(SimClockRule(), mod)
        assert result.ok
        assert result.suppressed == 1

    def test_monitor_package_is_covered(self):
        # core.monitor diffs stream-time windows; a wall-clock read there
        # would skew latency accounting against stream timestamps.
        mod = module(
            """\
            import time

            def observe(entry):
                return time.monotonic()
            """,
            name="repro.core.monitor",
        )
        assert not run(SimClockRule(), mod).ok

    def test_service_package_is_covered(self):
        # The streaming daemon reasons in stream time; only the sanctioned
        # wall_now() (and time.sleep for polling) are allowed.
        mod = module(
            """\
            import time

            def close_window(win):
                return time.perf_counter()
            """,
            name="repro.service.faketenant",
        )
        assert not run(SimClockRule(), mod).ok

    def test_sleep_is_allowed_in_service(self):
        mod = module(
            """\
            import time

            def poll(interval):
                time.sleep(interval)
            """,
            name="repro.service.faketail",
        )
        assert run(SimClockRule(), mod).ok


class TestDeterminism:
    def test_seeded_instance_is_clean(self):
        mod = module(
            """\
            import random

            def make(seed):
                rng = random.Random(seed)
                return rng.choice([1, 2, 3])
            """
        )
        assert run(DeterminismRule(), mod).ok

    def test_global_rng_call_is_flagged(self):
        mod = module(
            """\
            import random

            def jitter():
                return random.random()
            """
        )
        result = run(DeterminismRule(), mod)
        assert [f.rule for f in result.findings] == ["determinism"]

    def test_unseeded_random_instance_is_flagged(self):
        mod = module(
            """\
            import random

            def make():
                return random.Random()
            """
        )
        assert not run(DeterminismRule(), mod).ok

    def test_outside_determinism_packages_is_fine(self):
        mod = module(
            """\
            import random

            def shuffle(xs):
                random.shuffle(xs)
            """,
            name="repro.analysis.sampling",
        )
        assert run(DeterminismRule(), mod).ok


class TestOpenEncoding:
    def test_encoding_kwarg_is_clean(self):
        mod = module(
            """\
            def read(path):
                with open(path, encoding="utf-8") as fh:
                    return fh.read()
            """
        )
        assert run(OpenEncodingRule(), mod).ok

    def test_binary_mode_is_clean(self):
        mod = module(
            """\
            def read(path):
                with open(path, "rb") as fh:
                    return fh.read()
            """
        )
        assert run(OpenEncodingRule(), mod).ok

    def test_text_open_without_encoding_is_flagged(self):
        mod = module(
            """\
            def read(path):
                with open(path) as fh:
                    return fh.read()
            """
        )
        result = run(OpenEncodingRule(), mod)
        assert [f.rule for f in result.findings] == ["open-encoding"]

    def test_mode_keyword_binary_is_clean(self):
        mod = module(
            """\
            def write(path, data):
                with open(path, mode="wb") as fh:
                    fh.write(data)
            """
        )
        assert run(OpenEncodingRule(), mod).ok


SIGNATURE_OK = """\
    from repro.core.signatures.base import Signature

    class Good(Signature):
        def merge(self, other):
            return self

        def diff(self, other):
            return ()

        def to_dict(self):
            return {}

        @classmethod
        def from_dict(cls, data):
            return cls()
    """


class TestSignatureContract:
    def test_complete_subclass_is_clean(self):
        mod = module(SIGNATURE_OK, name="repro.core.signatures.fake")
        assert run(SignatureContractRule(), mod).ok

    def test_missing_methods_are_flagged(self):
        mod = module(
            """\
            from repro.core.signatures.base import Signature

            class Incomplete(Signature):
                def merge(self, other):
                    return self
            """,
            name="repro.core.signatures.fake",
        )
        result = run(SignatureContractRule(), mod)
        (finding,) = result.findings
        assert finding.rule == "signature-contract"
        assert "diff" in finding.message
        assert "from_dict" in finding.message

    def test_signature_shaped_class_without_base_is_flagged(self):
        mod = module(
            """\
            class Sneaky:
                def merge(self, other):
                    return self

                def diff(self, other):
                    return ()
            """,
            name="repro.core.signatures.fake",
        )
        result = run(SignatureContractRule(), mod)
        (finding,) = result.findings
        assert "does not subclass Signature" in finding.message

    def test_merge_diff_outside_signatures_package_is_fine(self):
        mod = module(
            """\
            class Intervals:
                def merge(self, other):
                    return self

                def diff(self, other):
                    return ()
            """,
            name="repro.analysis.intervals",
        )
        assert run(SignatureContractRule(), mod).ok


class TestForkSafety:
    def test_module_level_worker_is_clean(self):
        mod = module(
            """\
            from concurrent.futures import ProcessPoolExecutor

            def _work(i):
                return i * 2

            def run_all(n):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(_work, range(n)))
            """,
            name="repro.core.fakepar",
        )
        assert run(ForkSafetyRule(), mod).ok

    def test_lambda_worker_is_flagged(self):
        mod = module(
            """\
            from concurrent.futures import ProcessPoolExecutor

            def run_all(n):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(lambda i: i * 2, range(n)))
            """,
            name="repro.core.fakepar",
        )
        result = run(ForkSafetyRule(), mod)
        (finding,) = result.findings
        assert "lambda" in finding.message

    def test_closure_worker_is_flagged(self):
        mod = module(
            """\
            from concurrent.futures import ProcessPoolExecutor

            def run_all(n):
                def work(i):
                    return i * 2
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, range(n)))
            """,
            name="repro.core.fakepar",
        )
        assert not run(ForkSafetyRule(), mod).ok

    def test_worker_with_global_statement_is_flagged(self):
        mod = module(
            """\
            from concurrent.futures import ProcessPoolExecutor

            _STATE = None

            def _work(i):
                global _STATE
                _STATE = i
                return i

            def run_all(n):
                pool = ProcessPoolExecutor()
                return list(pool.map(_work, range(n)))
            """,
            name="repro.core.fakepar",
        )
        result = run(ForkSafetyRule(), mod)
        (finding,) = result.findings
        assert "global" in finding.message

    def test_thread_pool_is_not_in_scope(self):
        mod = module(
            """\
            from concurrent.futures import ThreadPoolExecutor

            def run_all(n):
                with ThreadPoolExecutor() as pool:
                    return list(pool.map(lambda i: i * 2, range(n)))
            """,
            name="repro.core.fakepar",
        )
        assert run(ForkSafetyRule(), mod).ok


class TestMetricNames:
    def test_known_metric_and_label_are_clean(self):
        mod = module(
            """\
            def instrument(metrics):
                return metrics.counter("sim_events_total", kind="packet_in")
            """,
            name="repro.core.fakemetrics",
        )
        assert run(MetricNamesRule(), mod).ok

    def test_invalid_grammar_is_flagged(self):
        mod = module(
            """\
            def instrument(metrics):
                return metrics.counter("sim-events-total")
            """,
            name="repro.core.fakemetrics",
        )
        result = run(MetricNamesRule(), mod)
        (finding,) = result.findings
        assert "not a valid Prometheus metric name" in finding.message

    def test_undeclared_metric_is_flagged(self):
        mod = module(
            """\
            def instrument(metrics):
                return metrics.gauge("totally_new_metric")
            """,
            name="repro.core.fakemetrics",
        )
        result = run(MetricNamesRule(), mod)
        (finding,) = result.findings
        assert "KNOWN_METRICS" in finding.message

    def test_undeclared_label_is_flagged(self):
        mod = module(
            """\
            def instrument(metrics):
                return metrics.counter("sim_events_total", color="red")
            """,
            name="repro.core.fakemetrics",
        )
        result = run(MetricNamesRule(), mod)
        (finding,) = result.findings
        assert "KNOWN_LABELS" in finding.message

    def test_profile_family_is_declared(self):
        # ``profile_*``/``runs_*`` membership is grammatical, like the
        # telemetry family: the observatory mints instrument names
        # without a manifest edit each.
        mod = module(
            """\
            def instrument(metrics):
                metrics.counter("profile_spans_total")
                return metrics.counter("runs_records_total", status="append")
            """,
            name="repro.core.fakemetrics",
        )
        assert run(MetricNamesRule(), mod).ok

    def test_profile_family_grammar_is_enforced(self):
        # The family regex requires lowercase snake after the prefix —
        # a malformed member is still an undeclared metric.
        mod = module(
            """\
            def instrument(metrics):
                return metrics.counter("profile_BadName")
            """,
            name="repro.core.fakemetrics",
        )
        result = run(MetricNamesRule(), mod)
        (finding,) = result.findings
        assert "KNOWN_METRICS" in finding.message

    def test_service_family_is_declared(self):
        # ``service_*`` membership is grammatical like profile/runs: the
        # streaming service mints tenant-labeled instruments freely.
        mod = module(
            """\
            def instrument(metrics):
                metrics.counter("service_windows_total", tenant="prod")
                return metrics.counter(
                    "service_dropped_total", tenant="prod", reason="late"
                )
            """,
            name="repro.core.fakemetrics",
        )
        assert run(MetricNamesRule(), mod).ok

    def test_service_family_grammar_is_enforced(self):
        mod = module(
            """\
            def instrument(metrics):
                return metrics.counter("service_BadName")
            """,
            name="repro.core.fakemetrics",
        )
        result = run(MetricNamesRule(), mod)
        (finding,) = result.findings
        assert "KNOWN_METRICS" in finding.message

    def test_dynamic_name_outside_obs_is_flagged(self):
        mod = module(
            """\
            def instrument(metrics, name):
                return metrics.counter(name)
            """,
            name="repro.core.fakemetrics",
        )
        assert not run(MetricNamesRule(), mod).ok

    def test_dynamic_name_inside_obs_is_allowed(self):
        mod = module(
            """\
            def rebuild(metrics, name):
                return metrics.counter(name)
            """,
            name="repro.obs.fakeexport",
        )
        assert run(MetricNamesRule(), mod).ok


class TestHotLoopAlloc:
    def test_hoisted_containers_are_clean(self):
        mod = module(
            """\
            def drain(queue, out):
                scratch = []
                while queue:
                    item = queue.pop()
                    scratch.append(item)
                    out[item.key] = item
            """,
            name="repro.netsim.fakeengine",
        )
        assert run(HotLoopAllocRule(), mod).ok

    def test_per_iteration_display_is_flagged(self):
        mod = module(
            """\
            def drain(queue):
                while queue:
                    msg = queue.pop()
                    fields = [msg.src, msg.dst]
                    handle(fields)
            """,
            name="repro.netsim.fakeengine",
        )
        result = run(HotLoopAllocRule(), mod)
        assert [f.rule for f in result.findings] == ["hot-loop-alloc"]
        assert "list display" in result.findings[0].message

    def test_dict_call_and_comprehension_in_for_are_flagged(self):
        mod = module(
            """\
            def deliver(messages):
                for msg in messages:
                    meta = dict(src=msg.src)
                    sizes = [p.size for p in msg.packets]
                    emit(meta, sizes)
            """,
            name="repro.openflow.fakeswitch",
        )
        result = run(HotLoopAllocRule(), mod)
        assert len(result.findings) == 2

    def test_for_iterable_and_orelse_run_once(self):
        # The iterable expression and the else block evaluate once per
        # loop, not per message — neither is churn.
        mod = module(
            """\
            def deliver(switch):
                for msg in list(switch.pending):
                    handle(msg)
                else:
                    switch.done = [1]
            """,
            name="repro.openflow.fakeswitch",
        )
        assert run(HotLoopAllocRule(), mod).ok

    def test_nested_loop_reports_once(self):
        mod = module(
            """\
            def drain(queue):
                while queue:
                    for msg in queue.pop():
                        handle({msg.src: msg.dst})
            """,
            name="repro.netsim.fakeengine",
        )
        result = run(HotLoopAllocRule(), mod)
        assert len(result.findings) == 1
        assert "dict display" in result.findings[0].message

    def test_setup_time_modules_are_exempt(self):
        mod = module(
            """\
            def build(graph):
                for node in graph:
                    ports = {}
                    wire(node, ports)
            """,
            name="repro.netsim.topology",
        )
        assert run(HotLoopAllocRule(), mod).ok

    def test_outside_data_plane_is_fine(self):
        mod = module(
            """\
            def fold(rows):
                for row in rows:
                    yield [row.a, row.b]
            """,
            name="repro.analysis.fakefold",
        )
        assert run(HotLoopAllocRule(), mod).ok

    def test_justified_pragma_suppresses(self):
        mod = module(
            """\
            def rebalance(switch):
                while switch.dirty:
                    snapshot = list(switch.table)  # flowlint: disable=hot-loop-alloc -- cold path, runs per rebalance
                    apply(snapshot)
            """,
            name="repro.openflow.fakeswitch",
        )
        result = run(HotLoopAllocRule(), mod)
        assert result.ok
        assert result.suppressed == 1


class TestSelfCheck:
    def test_repository_lints_clean(self):
        """The shipped source tree passes its own lint — the CI gate."""
        project = Project.load([REPO_SRC])
        result = LintEngine(default_rules()).run(project)
        assert result.ok, "\n" + "\n".join(f.render() for f in result.findings)

    def test_repo_pragma_budget(self):
        """<= 8 pragmas repo-wide, all justified, none in repro.qa.

        The budget was raised from 5 when the concurrency rules landed:
        interprocedural lock analysis can legitimately need a few benign
        suppressions (the current count is well under the ceiling — the
        service refactor fixed its findings outright instead).
        """
        project = Project.load([REPO_SRC])
        result = LintEngine(default_rules()).run(project)
        assert len(result.pragmas) <= 8
        for pragma in result.pragmas:
            assert pragma.justification, f"unjustified pragma at {pragma.path}"
            assert os.sep + "qa" + os.sep not in pragma.path
