"""Tests for the naive baseline detectors."""

import pytest

from repro.baselines import PerHostVolumeDetector, RateThresholdDetector
from repro.faults import AppCrash, HostShutdown, LoggingMisconfig
from repro.scenarios import three_tier_lab

DURATION = 25.0


def capture(fault=None, seed=3):
    scenario = three_tier_lab(seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    return scenario.run(0.5, DURATION)


@pytest.fixture(scope="module")
def baseline_log():
    return capture()


class TestRateThresholdDetector:
    def test_requires_fit(self, baseline_log):
        with pytest.raises(RuntimeError):
            RateThresholdDetector().check(baseline_log)

    def test_healthy_run_no_alarm(self, baseline_log):
        detector = RateThresholdDetector()
        detector.fit(baseline_log)
        verdict = detector.check(capture(seed=17))
        assert not verdict.alarmed

    def test_crash_drops_rate_and_alarms(self, baseline_log):
        detector = RateThresholdDetector()
        detector.fit(baseline_log)
        verdict = detector.check(capture(fault=HostShutdown("S8")))
        assert verdict.alarmed
        assert verdict.suspects == ()  # cannot localize by design

    def test_blind_to_delay_faults(self, baseline_log):
        """The headline weakness: volume looks normal under a slow server."""
        detector = RateThresholdDetector()
        detector.fit(baseline_log)
        verdict = detector.check(capture(fault=LoggingMisconfig("S3", 0.05)))
        assert not verdict.alarmed


class TestPerHostVolumeDetector:
    def test_requires_fit(self, baseline_log):
        with pytest.raises(RuntimeError):
            PerHostVolumeDetector().check(baseline_log)

    def test_healthy_run_no_alarm(self, baseline_log):
        detector = PerHostVolumeDetector()
        detector.fit(baseline_log)
        assert not detector.check(capture(seed=17)).alarmed

    def test_crash_localizes_crudely(self, baseline_log):
        detector = PerHostVolumeDetector()
        detector.fit(baseline_log)
        verdict = detector.check(capture(fault=AppCrash("S3")))
        assert verdict.alarmed
        assert verdict.suspects  # volume vanished on several hosts
        # The crashed server is implicated, but so are its healthy peers —
        # crude localization.
        assert "S3" in verdict.suspects or "S8" in verdict.suspects

    def test_blind_to_delay_faults(self, baseline_log):
        detector = PerHostVolumeDetector()
        detector.fit(baseline_log)
        assert not detector.check(
            capture(fault=LoggingMisconfig("S3", 0.05))
        ).alarmed
