"""Tests for the observability subsystem (``repro.obs``)."""

import io
import math

import pytest

from repro.obs.export import (
    iter_metric_events,
    iter_span_events,
    metrics_from_events,
    read_jsonl,
    render_prometheus,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP_REGISTRY,
    Histogram,
    MetricsRegistry,
    NoopRegistry,
)
from repro.obs.profile import phase_rows, phase_timings, render_phase_table
from repro.obs.stats import record_log_metrics, render_summary, summarize_log
from repro.obs.tracing import NOOP_TRACER, Tracer


class TestRegistryMath:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert reg.value("requests_total") == 3.5

    def test_same_identity_on_refetch(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", a="1") is reg.counter("x", a="1")
        assert reg.counter("x", a="1") is not reg.counter("x", a="2")

    def test_labels_order_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1", b="2") is reg.counter("x", b="2", a="1")

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(-3)
        assert reg.value("depth") == 7

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")

    def test_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("m", kind="a").inc(2)
        reg.counter("m", kind="b").inc(3)
        assert reg.total("m") == 5

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0

    def test_iteration_is_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa", x="2")
        reg.counter("aa", x="1")
        names = [(m.name, m.labels) for m in reg]
        assert names == sorted(names)


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", buckets=[0.01, 0.1, 1.0])
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(5.555)
        assert h.min == 0.005
        assert h.max == 5.0

    def test_boundary_values_go_to_lower_bucket(self):
        # le semantics: a value equal to the bound lands in that bucket.
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_mean_and_quantile(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(1.625)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        assert Histogram("e", buckets=[1.0]).quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0]).quantile(1.5)

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])


class TestNoopRegistry:
    def test_noop_records_nothing(self):
        NOOP_REGISTRY.counter("x").inc()
        NOOP_REGISTRY.gauge("y").set(5)
        NOOP_REGISTRY.histogram("z").observe(1.0)
        assert len(NOOP_REGISTRY) == 0
        assert not NOOP_REGISTRY.enabled

    def test_noop_instruments_are_shared(self):
        reg = NoopRegistry()
        assert reg.counter("a") is reg.histogram("b")

    def test_real_registry_is_enabled(self):
        assert MetricsRegistry().enabled


class TestTracing:
    def test_span_nesting(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner-1"):
                pass
            with t.span("inner-2"):
                with t.span("leaf"):
                    pass
        assert len(t.roots) == 1
        outer = t.roots[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert outer.children[1].children[0].name == "leaf"
        assert outer.duration >= sum(c.duration for c in outer.children)
        assert outer.self_duration >= 0.0

    def test_sibling_roots(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        assert [s.name for s in t.roots] == ["a", "b"]

    def test_find_and_total(self):
        t = Tracer()
        with t.span("model"):
            with t.span("phase"):
                pass
        with t.span("model"):
            pass
        assert len(t.find("model")) == 2
        assert t.total("model") >= t.total("phase")

    def test_exception_unwinds_stack(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                with t.span("inner"):
                    raise RuntimeError("boom")
        # Both spans closed despite the exception; new spans root cleanly.
        assert t.roots[0].end_wall is not None
        assert t.roots[0].children[0].end_wall is not None
        with t.span("after"):
            pass
        assert [s.name for s in t.roots] == ["outer", "after"]

    def test_sim_clock_durations(self):
        clock = iter([10.0, 40.0])
        t = Tracer(sim_clock=lambda: next(clock))
        with t.span("window"):
            pass
        assert t.roots[0].sim_duration == pytest.approx(30.0)

    def test_meta_recorded(self):
        t = Tracer()
        with t.span("model", messages=42):
            pass
        assert t.roots[0].meta == {"messages": 42}
        assert t.roots[0].to_dict()["meta"] == {"messages": 42}

    def test_noop_tracer_records_nothing(self):
        with NOOP_TRACER.span("anything", extra=1):
            pass
        assert NOOP_TRACER.roots == []
        assert not NOOP_TRACER.enabled


class TestExportRoundTrip:
    def build_registry(self):
        reg = MetricsRegistry()
        reg.counter("messages_total", kind="packet_in").inc(7)
        reg.gauge("queue_depth").set(3)
        h = reg.histogram("latency_seconds", buckets=[0.01, 0.1])
        for v in (0.005, 0.05, 0.5):
            h.observe(v)
        return reg

    def test_jsonl_round_trip(self):
        reg = self.build_registry()
        buf = io.StringIO()
        lines = write_jsonl(buf, reg, extra={"run": "t"})
        assert lines == 4  # meta + 3 instruments
        events = read_jsonl(io.StringIO(buf.getvalue()))
        assert events[0] == {"type": "meta", "run": "t"}
        restored = metrics_from_events(events)
        assert restored.value("messages_total", kind="packet_in") == 7
        assert restored.value("queue_depth") == 3
        hist = restored.get("latency_seconds")
        assert hist.count == 3
        assert hist.counts == [1, 1, 1]
        assert hist.total == pytest.approx(0.555)

    def test_jsonl_file_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        write_jsonl(path, self.build_registry())
        assert len(read_jsonl(path)) == 3

    def test_bad_jsonl_reports_line(self):
        with pytest.raises(ValueError, match="line 1"):
            read_jsonl(io.StringIO("{nope\n"))

    def test_span_events_flattened_with_paths(self):
        t = Tracer()
        with t.span("model"):
            with t.span("extract"):
                pass
        events = list(iter_span_events(t))
        assert [e["path"] for e in events] == ["model", "model/extract"]
        assert events[1]["depth"] == 1
        assert all(e["duration_s"] >= 0 for e in events)

    def test_histogram_event_shape(self):
        reg = self.build_registry()
        hist_event = [e for e in iter_metric_events(reg) if e["type"] == "histogram"][0]
        assert hist_event["buckets"][-1]["le"] == "+Inf"
        assert sum(b["n"] for b in hist_event["buckets"]) == hist_event["count"]

    def test_prometheus_rendering(self):
        text = render_prometheus(self.build_registry())
        assert "# TYPE messages_total counter" in text
        assert 'messages_total{kind="packet_in"} 7' in text
        assert "# TYPE queue_depth gauge" in text
        assert 'latency_seconds_bucket{le="0.01"} 1' in text
        assert 'latency_seconds_bucket{le="0.1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 0.555" in text
        assert "latency_seconds_count 3" in text
        assert text.endswith("\n")

    def test_prometheus_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0, 2.0])
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = render_prometheus(reg)
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestProfileTable:
    def make_tracer(self):
        t = Tracer()
        with t.span("model"):
            with t.span("extract"):
                pass
        return t

    def test_rows_and_shares(self):
        rows = phase_rows(self.make_tracer())
        assert rows[0]["phase"] == "model"
        assert rows[0]["share"] == pytest.approx(1.0)
        assert rows[1]["depth"] == 1
        assert 0.0 <= rows[1]["share"] <= 1.0

    def test_render_contains_phases(self):
        table = render_phase_table(self.make_tracer())
        assert "model" in table and "extract" in table and "share" in table

    def test_render_empty(self):
        assert "no spans" in render_phase_table(Tracer())

    def test_phase_timings_accumulate(self):
        t = self.make_tracer()
        with t.span("model"):
            pass
        timings = phase_timings(t)
        assert set(timings) == {"model", "model/extract"}
        assert timings["model"] >= timings["model/extract"]
        assert not math.isnan(timings["model"])


class TestSimulatorInstrumentation:
    def test_event_and_queue_metrics(self):
        from repro.netsim.engine import Simulator

        reg = MetricsRegistry()
        sim = Simulator(metrics=reg)
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.schedule_at(99.0, lambda: None)
        sim.run(until=10.0)
        assert reg.value("sim_events_total") == 5
        assert reg.value("sim_queue_depth") == 1
        assert reg.get("sim_callback_seconds").count == 5

    def test_uninstrumented_default_records_nothing(self):
        from repro.netsim.engine import Simulator

        sim = Simulator()
        sim.schedule_at(0.0, lambda: None)
        sim.run()
        assert sim.metrics is NOOP_REGISTRY


class TestFlowTableInstrumentation:
    def test_lookup_install_miss_occupancy(self):
        from repro.openflow.flowtable import FlowTable
        from repro.openflow.match import FlowKey, Match

        reg = MetricsRegistry()
        table = FlowTable(metrics=reg, dpid="sw1")
        key = FlowKey("a", "b", 1000, 80)
        assert table.lookup(key, now=0.0) is None
        from repro.openflow.flowtable import FlowEntry

        table.install(FlowEntry(match=Match.exact(key), out_port=1, idle_timeout=1.0))
        assert table.lookup(key, now=0.5) is not None
        assert reg.value("flowtable_lookups_total", dpid="sw1") == 2
        assert reg.value("flowtable_misses_total", dpid="sw1") == 1
        assert reg.value("flowtable_installs_total", dpid="sw1") == 1
        assert reg.value("flowtable_entries", dpid="sw1") == 1
        expired = table.collect_expired(now=10.0)
        assert len(expired) == 1
        assert reg.value("flowtable_expired_total", dpid="sw1") == 1
        assert reg.value("flowtable_entries", dpid="sw1") == 0


class TestMonitorInstrumentation:
    def test_window_metrics(self):
        from repro.core.monitor import SlidingDiagnoser
        from repro.scenarios import three_tier_lab

        log = three_tier_lab(seed=3).run(0.5, 20.0)
        reg = MetricsRegistry()
        mon = SlidingDiagnoser(window=5.0, metrics=reg)
        mon.set_baseline(log, 0.5, 10.5)
        mon.advance(log)
        windows = reg.value("monitor_windows_total")
        assert windows >= 1
        assert reg.get("monitor_window_seconds").count == windows
        assert reg.value("monitor_last_window_healthy") in (0.0, 1.0)
        assert reg.value("monitor_healthy_streak") == mon.healthy_streak()
        assert reg.value("flowdiff_diffs_total") == windows
