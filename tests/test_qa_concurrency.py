"""Good/bad fixture pairs for the four concurrency rules.

Fixture modules live under a fake ``repro.confix`` package; the rules
are built with ``packages=("repro.confix",)`` so the fixtures are in
reporting scope. The final self-check runs the real rule set (scoped to
the service + ops endpoint) over the shipped source tree — the
repository must lint clean under ``repro lint --concurrency``.
"""

import os
import textwrap

from repro.qa import LintEngine, concurrency_rules, default_rules
from repro.qa.framework import ModuleFile, Project

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
SCOPE = ("repro.confix",)


def module(source, name="repro.confix.mod"):
    path = "src/" + name.replace(".", "/") + ".py"
    return ModuleFile(path, textwrap.dedent(source), module=name)


def run(mod):
    return LintEngine(concurrency_rules(SCOPE)).run(Project([mod]))


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


class TestLockDiscipline:
    BAD = """\
        import threading

        class Box:
            def __init__(self):
                self.value = 0
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._run)
                self._thread.start()

            def stop(self):
                self._thread.join()

            def _run(self):
                self.value += 1


        def poke(box: Box) -> int:
            return box.value
        """

    def test_unguarded_cross_thread_attribute_is_flagged(self):
        result = run(module(self.BAD))
        assert rules_fired(result) == ["lock-discipline"]
        assert "Box.value" in result.findings[0].message

    def test_common_lock_at_every_access_is_clean(self):
        result = run(
            module(
                """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.value = 0
                        self._thread = None

                    def start(self):
                        self._thread = threading.Thread(target=self._run)
                        self._thread.start()

                    def stop(self):
                        self._thread.join()

                    def _run(self):
                        with self._lock:
                            self.value += 1


                def poke(box: Box) -> int:
                    with box._lock:
                        return box.value
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_guarded_by_table_sanctions_the_attribute(self):
        result = run(
            module(
                """\
                import threading

                class Box:
                    _GUARDED_BY = {
                        "value": "single writer; torn reads are acceptable",
                    }

                    def __init__(self):
                        self.value = 0
                        self._thread = None

                    def start(self):
                        self._thread = threading.Thread(target=self._run)
                        self._thread.start()

                    def stop(self):
                        self._thread.join()

                    def _run(self):
                        self.value += 1


                def poke(box: Box) -> int:
                    return box.value
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_empty_guarded_by_justification_is_a_finding(self):
        result = run(
            module(
                """\
                class Box:
                    _GUARDED_BY = {"value": ""}

                    def __init__(self):
                        self.value = 0
                """
            )
        )
        assert rules_fired(result) == ["lock-discipline"]
        assert "empty" in result.findings[0].message

    def test_helper_locked_at_every_call_site_is_clean(self):
        # The inherited-lock fixpoint: _publish never takes the lock
        # itself, but every caller holds it.
        result = run(
            module(
                """\
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.snapshot = {}
                        self._thread = None

                    def start(self):
                        self._thread = threading.Thread(target=self._run)
                        self._thread.start()

                    def stop(self):
                        self._thread.join()

                    def _run(self):
                        with self._lock:
                            self._publish()

                    def _publish(self):
                        self.snapshot = {"n": 1}


                def peek(box: Box) -> dict:
                    with box._lock:
                        return box.snapshot
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestBlockingUnderLock:
    def test_sleep_under_lock_is_flagged(self):
        result = run(
            module(
                """\
                import threading
                import time

                class Sleeper:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def nap(self):
                        with self._lock:
                            time.sleep(0.1)
                """
            )
        )
        assert rules_fired(result) == ["blocking-under-lock"]

    def test_transitive_blocking_through_a_call_is_flagged(self):
        result = run(
            module(
                """\
                import threading
                import time

                class Sleeper:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def nap(self):
                        with self._lock:
                            self._slow()

                    def _slow(self):
                        time.sleep(0.1)
                """
            )
        )
        assert "blocking-under-lock" in rules_fired(result)

    def test_blocking_outside_the_lock_is_clean(self):
        result = run(
            module(
                """\
                import threading
                import time

                class Sleeper:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.n = 0

                    def nap(self):
                        with self._lock:
                            self.n += 1
                        time.sleep(0.1)
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_nonblocking_queue_put_is_clean(self):
        result = run(
            module(
                """\
                import queue
                import threading

                class Pusher:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._q = queue.Queue()

                    def push(self, item):
                        with self._lock:
                            self._q.put(item, block=False)
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestLockOrder:
    def test_both_orders_is_a_deadlock_hazard(self):
        result = run(
            module(
                """\
                import threading

                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def ab(self):
                        with self._a:
                            with self._b:
                                pass

                    def ba(self):
                        with self._b:
                            with self._a:
                                pass
                """
            )
        )
        assert rules_fired(result) == ["lock-order"]
        assert len(result.findings) == 1  # one finding per pair, not two

    def test_consistent_order_is_clean(self):
        result = run(
            module(
                """\
                import threading

                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def one(self):
                        with self._a:
                            with self._b:
                                pass

                    def two(self):
                        with self._a:
                            with self._b:
                                pass
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestUnmanagedThread:
    def test_discarded_thread_is_flagged(self):
        result = run(
            module(
                """\
                import threading

                def fire(work):
                    threading.Thread(target=work).start()
                """
            )
        )
        assert rules_fired(result) == ["unmanaged-thread"]

    def test_joined_attr_thread_is_clean(self):
        result = run(
            module(
                """\
                import threading

                class Owner:
                    def __init__(self):
                        self._thread = None

                    def start(self, work):
                        self._thread = threading.Thread(target=work)
                        self._thread.start()

                    def stop(self):
                        self._thread.join()
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_stop_event_counts_as_managed(self):
        result = run(
            module(
                """\
                import threading

                class Owner:
                    def __init__(self):
                        self._stop = threading.Event()
                        self._thread = None

                    def start(self):
                        self._thread = threading.Thread(target=self._run)
                        self._thread.start()

                    def stop(self):
                        self._stop.set()

                    def _run(self):
                        while not self._stop.is_set():
                            pass
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_locally_joined_thread_is_clean(self):
        result = run(
            module(
                """\
                import threading

                def run_once(work):
                    t = threading.Thread(target=work)
                    t.start()
                    t.join()
                """
            )
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestPragmas:
    def test_justified_pragma_suppresses_a_concurrency_finding(self):
        result = run(
            module(
                """\
                import threading
                import time

                class Sleeper:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def nap(self):
                        with self._lock:
                            time.sleep(0.1)  # flowlint: disable=blocking-under-lock -- test-only fixture, single-threaded
                """
            )
        )
        assert result.ok
        assert result.suppressed == 1


class TestSelfCheck:
    def test_repository_lints_clean_with_concurrency_rules(self):
        """`repro lint --concurrency` over the shipped tree — the CI gate."""
        project = Project.load([REPO_SRC])
        engine = LintEngine(default_rules() + concurrency_rules())
        result = engine.run(project)
        assert result.ok, "\n" + "\n".join(f.render() for f in result.findings)
