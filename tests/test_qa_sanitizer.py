"""The runtime lockset sanitizer: injected races caught, guarded code clean.

The regression the ISSUE demands: a deliberately-injected unguarded
cross-thread write must be detected, and the guarded twin of the same
workload must not be. Plus the machinery itself: activation scoping,
instrumentation undo, the one free ownership handoff, and the
``_GUARDED_BY`` runtime sanction.
"""

import threading

import pytest

from repro.qa.sanitizer import (
    LocksetChecker,
    TrackedLock,
    instrument_class,
    race_checked,
    wrap_locks,
)


class Unguarded:
    def __init__(self):
        self.counter = 0

    def bump(self, n=200):
        for _ in range(n):
            self.counter += 1


class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self.counter = 0

    def bump(self, n=200):
        for _ in range(n):
            with self._lock:
                self.counter += 1


class Sanctioned:
    _GUARDED_BY = {"counter": "test fixture: torn increments acceptable"}

    def __init__(self):
        self.counter = 0

    def bump(self, n=200):
        for _ in range(n):
            self.counter += 1


def hammer(obj, threads=3):
    workers = [
        threading.Thread(target=obj.bump, name=f"w{i}") for i in range(threads)
    ]
    for t in workers:
        t.start()
    for t in workers:
        t.join()


@pytest.fixture
def instrumented():
    undos = [instrument_class(c) for c in (Unguarded, Guarded, Sanctioned)]
    yield
    for undo in undos:
        undo()


class TestDetection:
    def test_injected_unguarded_write_is_detected(
        self, instrumented, lockset_checker
    ):
        obj = Unguarded()
        hammer(obj)
        races = lockset_checker.races
        assert races, "the injected race must be detected"
        assert races[0].cls == "Unguarded"
        assert races[0].attr == "counter"
        with pytest.raises(AssertionError, match="race candidate"):
            lockset_checker.assert_clean()

    def test_guarded_twin_is_clean(self, instrumented, lockset_checker):
        obj = Guarded()
        wrap_locks(obj)
        hammer(obj)
        lockset_checker.assert_clean()

    def test_guarded_by_table_is_honoured_at_runtime(
        self, instrumented, lockset_checker
    ):
        obj = Sanctioned()
        hammer(obj)
        lockset_checker.assert_clean()

    def test_single_ownership_handoff_is_benign(
        self, instrumented, lockset_checker
    ):
        obj = Unguarded()  # constructed on the main thread...
        worker = threading.Thread(target=obj.bump, name="only-worker")
        worker.start()  # ...then owned exclusively by one worker
        worker.join()
        lockset_checker.assert_clean()

    def test_race_report_names_both_sites(self, instrumented, lockset_checker):
        obj = Unguarded()
        hammer(obj)
        text = lockset_checker.races[0].render()
        assert "Unguarded.counter" in text
        assert "lockset went empty" in text


class TestMachinery:
    def test_inert_without_activation(self, instrumented):
        checker = LocksetChecker()
        obj = Unguarded()
        hammer(obj)
        assert checker.accesses == 0
        assert not checker.races

    def test_undo_restores_the_class(self):
        undo = instrument_class(Unguarded)
        assert getattr(Unguarded, "_lockset_instrumented", False)
        undo()
        assert not getattr(Unguarded, "_lockset_instrumented", False)
        checker = LocksetChecker()
        with checker.activate():
            hammer(Unguarded())
        assert checker.accesses == 0

    def test_instrumentation_is_idempotent(self):
        undo = instrument_class(Unguarded)
        second = instrument_class(Unguarded)  # no-op
        second()
        checker = LocksetChecker()
        with checker.activate():
            obj = Unguarded()
            obj.bump(1)
        undo()
        assert checker.accesses > 0

    def test_race_checked_decorator(self):
        @race_checked
        class Decorated:
            def __init__(self):
                self.x = 0

        checker = LocksetChecker()
        with checker.activate():
            d = Decorated()
            d.x = 1
        assert checker.accesses >= 2

    def test_tracked_lock_is_lock_compatible(self):
        lock = TrackedLock("test.lock")
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_wrap_locks_names_follow_the_static_ids(self):
        obj = Guarded()
        wrapped = wrap_locks(obj)
        assert wrapped == ["Guarded._lock"]
        assert isinstance(obj._lock, TrackedLock)
