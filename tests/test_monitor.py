"""Tests for the sliding-window diagnoser and JSON report export."""

import json

import pytest

from repro.core.monitor import SlidingDiagnoser
from repro.faults import LoggingMisconfig
from repro.scenarios import three_tier_lab

pytestmark = pytest.mark.slow


def long_run_log(fault_at=None, total=90.0):
    scenario = three_tier_lab(seed=3)
    if fault_at is not None:
        scenario.inject(LoggingMisconfig("S3", overhead=0.05), at=fault_at)
    return scenario.run(0.5, total, drain=10.0)


@pytest.fixture(scope="module")
def healthy_log():
    return long_run_log()


@pytest.fixture(scope="module")
def faulty_log():
    # Fault turns on at t=60: windows after that should flag DD shifts.
    return long_run_log(fault_at=60.0)


class TestSlidingDiagnoser:
    def test_requires_baseline(self, healthy_log):
        diagnoser = SlidingDiagnoser(window=20.0)
        with pytest.raises(RuntimeError):
            diagnoser.advance(healthy_log)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SlidingDiagnoser(window=0.0)

    def test_healthy_log_stays_healthy(self, healthy_log):
        diagnoser = SlidingDiagnoser(window=20.0)
        diagnoser.set_baseline(healthy_log, 0.0, 30.0)
        reports = diagnoser.advance(healthy_log)
        assert reports  # at least [30, 50) and [50, 70)
        assert all(r.healthy for r in reports)
        assert diagnoser.healthy_streak() == len(reports)
        assert diagnoser.first_unhealthy() is None

    def test_detects_onset_window(self, faulty_log):
        diagnoser = SlidingDiagnoser(window=15.0)
        diagnoser.set_baseline(faulty_log, 0.0, 30.0)
        diagnoser.advance(faulty_log)
        first_bad = diagnoser.first_unhealthy()
        assert first_bad is not None
        # The fault starts at t=60; the first unhealthy window must cover
        # or follow it, and pre-fault windows must stay clean.
        assert first_bad.t_end > 60.0
        for entry in diagnoser.history:
            if entry.t_end <= 60.0:
                assert entry.healthy, f"false alarm in window [{entry.t_start}, {entry.t_end})"

    def test_problem_onset_lookup(self, faulty_log):
        diagnoser = SlidingDiagnoser(window=15.0)
        diagnoser.set_baseline(faulty_log, 0.0, 30.0)
        diagnoser.advance(faulty_log)
        onset = diagnoser.problem_onset("application_performance")
        fallback = diagnoser.problem_onset("host_or_app_problem")
        assert (onset is not None and onset >= 45.0) or (
            fallback is not None and fallback >= 45.0
        )
        assert diagnoser.problem_onset("switch_failure") is None

    def test_advance_is_incremental(self, healthy_log):
        diagnoser = SlidingDiagnoser(window=20.0)
        diagnoser.set_baseline(healthy_log, 0.0, 30.0)
        first = diagnoser.advance(healthy_log)
        again = diagnoser.advance(healthy_log)
        assert first
        assert again == []  # no new complete windows


class TestReportJSON:
    def test_json_round_trip(self, faulty_log):
        from repro import FlowDiff

        fd = FlowDiff()
        baseline = fd.model(faulty_log.window(0.0, 30.0))
        current = fd.model(faulty_log.window(65.0, 95.0), assess=False)
        report = fd.diff(baseline, current)
        data = json.loads(report.to_json())
        assert data["healthy"] is False
        assert data["unknown_changes"]
        assert data["unknown_changes"][0]["kind"] == "DD"
        assert any(
            item["component"] == "S3" for item in data["component_ranking"]
        )
        assert len(data["dependency"]) == 5  # app-kind rows

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.openflow.serialize import save_log

        baseline = str(tmp_path / "l1.jsonl")
        save_log(long_run_log(total=20.0), baseline)
        assert main(["diff", baseline, baseline, "--json"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["healthy"] is True


class TestAutoRebaseline:
    def test_rebaseline_fires_after_streak(self, healthy_log):
        diagnoser = SlidingDiagnoser(window=15.0, rebaseline_after=2)
        diagnoser.set_baseline(healthy_log, 0.0, 30.0)
        diagnoser.advance(healthy_log)
        assert diagnoser.rebaseline_count >= 1
        # Still healthy after re-anchoring.
        assert all(r.healthy for r in diagnoser.history)

    def test_disabled_by_default(self, healthy_log):
        diagnoser = SlidingDiagnoser(window=15.0)
        diagnoser.set_baseline(healthy_log, 0.0, 30.0)
        diagnoser.advance(healthy_log)
        assert diagnoser.rebaseline_count == 0

    def test_unhealthy_window_blocks_rebaseline(self, faulty_log):
        diagnoser = SlidingDiagnoser(window=15.0, rebaseline_after=1)
        diagnoser.set_baseline(faulty_log, 0.0, 30.0)
        diagnoser.advance(faulty_log)
        # Windows after the fault are unhealthy and must never become the
        # baseline: the last report must remain unhealthy.
        assert not diagnoser.history[-1].healthy
