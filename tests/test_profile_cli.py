"""``repro profile`` and ``repro runs``: the CLI surface of the
performance observatory, plus the ``/runs`` route and ``HEAD`` support
of the ops endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main

PROFILE_ARGS = [
    "profile",
    "--scenario",
    "scalability",
    "--apps",
    "2",
    "--duration",
    "5",
    "--repeats",
    "1",
]


@pytest.fixture(scope="module")
def profiled(tmp_path_factory):
    """One deterministic profiled run with every artifact written."""
    root = tmp_path_factory.mktemp("observatory")
    flame = str(root / "pipeline.svg")
    folded = str(root / "pipeline.folded")
    ledger = str(root / "ledger")
    assert (
        main(
            PROFILE_ARGS
            + [
                "--deterministic",
                "--flame",
                flame,
                "--folded",
                folded,
                "--ledger-dir",
                ledger,
            ]
        )
        == 0
    )
    return flame, folded, ledger


def _record_ids(ledger):
    with open(ledger + "/ledger.jsonl", encoding="utf-8") as fh:
        return [json.loads(line)["record_id"] for line in fh if line.strip()]


class TestProfileCommand:
    def test_artifacts_written(self, profiled):
        flame, folded, ledger = profiled
        with open(flame, encoding="utf-8") as fh:
            svg = fh.read()
        assert svg.startswith("<svg")
        assert "repro pipeline" in svg
        with open(folded, encoding="utf-8") as fh:
            lines = fh.read().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert int(value) > 0
            assert stack.split(";")[0] in ("model", "diff")
        assert len(_record_ids(ledger)) == 1

    def test_deterministic_rerun_is_byte_identical(self, profiled, tmp_path):
        flame, folded, _ = profiled
        flame2 = str(tmp_path / "again.svg")
        folded2 = str(tmp_path / "again.folded")
        assert (
            main(
                PROFILE_ARGS
                + ["--deterministic", "--flame", flame2, "--folded", folded2]
            )
            == 0
        )
        with open(flame, "rb") as a, open(flame2, "rb") as b:
            assert a.read() == b.read()
        with open(folded, "rb") as a, open(folded2, "rb") as b:
            assert a.read() == b.read()

    def test_stdout_reports_phases_and_functions(self, profiled, capsys, tmp_path):
        assert main(PROFILE_ARGS + ["--deterministic", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "model" in out
        assert "hot functions" in out
        assert "excl events" in out

    def test_folded_totals_reconcile_with_span_tree(self):
        """Per-phase folded sums agree with span durations within 5%."""
        from repro.obs import Tracer, attach_profiler, reconcile_phases
        from repro.core.flowdiff import FlowDiff
        from repro.scenarios import scalability_sim

        network, workload = scalability_sim(2, seed=3)
        workload.start(0.0, 5.0)
        network.sim.run(until=8.0)
        tracer = Tracer()
        profiler = attach_profiler(tracer)
        fd = FlowDiff(tracer=tracer)
        baseline = fd.model(network.log)
        fd.diff(baseline, fd.model(network.log, assess=False))
        rows = reconcile_phases(tracer, profiler, min_seconds=0.05)
        for row in rows:
            assert row["rel_err"] < 0.05, row


class TestRunsCommands:
    @pytest.fixture(scope="class")
    def ledger(self, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("runs") / "ledger")
        for _ in range(2):
            assert main(PROFILE_ARGS + ["--ledger-dir", root]) == 0
        return root

    def test_list(self, ledger, capsys):
        assert main(["runs", "list", "--ledger-dir", ledger]) == 0
        out = capsys.readouterr().out
        assert "scalability_sim(2 apps, 5s)" in out
        assert main(["runs", "list", "--ledger-dir", ledger, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        # Same workload, same seed: records line up under one run id.
        assert len({row["run_id"] for row in rows}) == 1

    def test_show(self, ledger, capsys):
        rid = _record_ids(ledger)[0]
        assert main(["runs", "show", rid[:6], "--ledger-dir", ledger]) == 0
        out = capsys.readouterr().out
        assert rid in out
        assert "phases:" in out
        assert main(["runs", "show", "zzzz", "--ledger-dir", ledger]) == 2

    def test_compare(self, ledger, capsys):
        first, second = _record_ids(ledger)
        assert (
            main(["runs", "compare", first, second, "--ledger-dir", ledger])
            == 0
        )
        out = capsys.readouterr().out
        assert "(total)" in out
        assert "model" in out

    def test_gate_passes_against_itself(self, ledger, capsys):
        rid = _record_ids(ledger)[-1]
        assert (
            main(
                [
                    "runs",
                    "gate",
                    rid,
                    "--baseline",
                    rid,
                    "--ledger-dir",
                    ledger,
                ]
            )
            == 0
        )
        assert "gate PASSED" in capsys.readouterr().out

    def test_gate_detects_injected_slowdown(self, ledger, tmp_path, capsys):
        """A ~2x slowdown must fail the gate (the regression regression
        test): double every phase of the latest record and gate it
        against the genuine one."""
        rid = _record_ids(ledger)[-1]
        assert (
            main(["runs", "show", rid, "--ledger-dir", ledger, "--json"]) == 0
        )
        record = json.loads(capsys.readouterr().out)
        record["phases"] = {
            k: v * 2.0 for k, v in record["phases"].items()
        }
        record["total_s"] *= 2.0
        record.pop("record_id")
        slowed = str(tmp_path / "slowed.json")
        with open(slowed, "w", encoding="utf-8") as fh:
            json.dump(record, fh)
        # Write the slowed record into a second ledger and gate it
        # against the honest baseline record (exported as a file).
        from repro.obs.ledger import RunLedger, RunRecord

        slow_dir = str(tmp_path / "slow-ledger")
        RunLedger(slow_dir).append(RunRecord.from_dict(record))
        honest = str(tmp_path / "honest.json")
        assert (
            main(["runs", "show", rid, "--ledger-dir", ledger, "--json"]) == 0
        )
        with open(honest, "w", encoding="utf-8") as fh:
            fh.write(capsys.readouterr().out)
        assert (
            main(
                [
                    "runs",
                    "gate",
                    "--baseline",
                    honest,
                    "--ledger-dir",
                    slow_dir,
                    "--tol-pct",
                    "25",
                ]
            )
            == 1
        )
        assert "gate FAILED" in capsys.readouterr().out

    def test_gate_accepts_bench_baseline_shape(self, ledger, tmp_path, capsys):
        """--baseline accepts a BENCH_pipeline.json-shaped payload."""
        rid = _record_ids(ledger)[-1]
        assert (
            main(["runs", "show", rid, "--ledger-dir", ledger, "--json"]) == 0
        )
        record = json.loads(capsys.readouterr().out)
        bench = {
            "benchmark": "pipeline",
            "seed": record["seed"],
            "messages": record["messages"],
            "phases": record["phases"],
            "total_s": record["total_s"],
            "obs_overhead": {"noise_floor_pct": 50.0},
        }
        path = str(tmp_path / "BENCH_pipeline.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(bench, fh)
        assert (
            main(
                ["runs", "gate", rid, "--baseline", path, "--ledger-dir", ledger]
            )
            == 0
        )

    def test_gate_empty_ledger(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        assert (
            main(
                ["runs", "gate", "--baseline", "x", "--ledger-dir", empty]
            )
            == 2
        )


class TestRunsEndpoint:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        from repro.obs.httpd import ObsHTTPServer, ObsState
        from repro.obs.ledger import RunLedger

        root = str(tmp_path_factory.mktemp("httpd") / "ledger")
        assert main(PROFILE_ARGS + ["--ledger-dir", root]) == 0
        with ObsHTTPServer(ObsState(ledger=RunLedger(root))) as srv:
            yield srv, root

    def test_runs_listing(self, server):
        srv, root = server
        payload = json.loads(urllib.request.urlopen(srv.url("/runs")).read())
        assert len(payload["records"]) == 1
        assert payload["records"][0]["record_id"] == _record_ids(root)[0]
        assert "folded" not in payload["records"][0]

    def test_runs_by_id(self, server):
        srv, root = server
        rid = _record_ids(root)[0]
        record = json.loads(
            urllib.request.urlopen(srv.url(f"/runs?id={rid[:6]}")).read()
        )
        assert record["record_id"] == rid
        assert record["phases"]

    def test_runs_unknown_id_404(self, server):
        srv, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(srv.url("/runs?id=zzzz"))
        assert err.value.code == 404

    def test_head_matches_get(self, server):
        srv, _ = server
        for path in ("/healthz", "/metrics", "/runs"):
            body = urllib.request.urlopen(srv.url(path)).read()
            head = urllib.request.urlopen(
                urllib.request.Request(srv.url(path), method="HEAD")
            )
            assert int(head.headers["Content-Length"]) == len(body)
            assert head.read() == b""

    def test_head_unknown_is_404_no_body(self, server):
        srv, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                urllib.request.Request(srv.url("/nope"), method="HEAD")
            )
        assert err.value.code == 404
        assert err.value.read() == b""

    def test_post_refused_with_allow_header(self, server):
        srv, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                urllib.request.Request(
                    srv.url("/runs"), data=b"{}", method="POST"
                )
            )
        assert err.value.code == 405
        assert err.value.headers["Allow"] == "GET, HEAD"

    def test_no_ledger_configured(self):
        from repro.obs.httpd import ObsHTTPServer, ObsState

        with ObsHTTPServer(ObsState()) as srv:
            payload = json.loads(
                urllib.request.urlopen(srv.url("/runs")).read()
            )
        assert payload == {"records": []}
