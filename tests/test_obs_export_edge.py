"""Prometheus exposition edge cases (``repro.obs.export``).

The renderer is only useful if a scrape survives hostile inputs: label
values containing quote/backslash/newline characters, registries with
nothing in them, and non-finite gauge values.
"""

import math

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry


class TestLabelEscaping:
    def test_double_quote_escaped(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", path='say "hi"').inc()
        text = render_prometheus(reg)
        assert 'path="say \\"hi\\""' in text

    def test_backslash_escaped(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", path="C:\\logs").inc()
        assert 'path="C:\\\\logs"' in render_prometheus(reg)

    def test_newline_escaped(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", msg="line1\nline2").inc()
        text = render_prometheus(reg)
        assert 'msg="line1\\nline2"' in text
        # The rendered sample itself must stay on one physical line.
        sample = [ln for ln in text.splitlines() if ln.startswith("hits_total")]
        assert len(sample) == 1

    def test_backslash_before_quote_ordering(self):
        # A value ending in a backslash followed by a quote must not
        # produce an escaped quote that terminates the label early.
        reg = MetricsRegistry()
        reg.counter("hits_total", v='trailing\\').inc()
        assert 'v="trailing\\\\"' in render_prometheus(reg)

    def test_histogram_labels_escaped_on_every_series(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", src='a"b').observe(0.5)
        text = render_prometheus(reg)
        for suffix in ("_bucket", "_sum", "_count"):
            assert any(
                line.startswith(f"lat_seconds{suffix}") and '\\"' in line
                for line in text.splitlines()
            ), suffix


class TestEmptyRegistry:
    def test_renders_empty_string(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_no_trailing_garbage(self):
        text = render_prometheus(MetricsRegistry())
        assert text.strip() == ""


class TestNonFiniteValues:
    def test_nan_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("ratio").set(float("nan"))
        assert "ratio NaN" in render_prometheus(reg)

    def test_positive_infinity(self):
        reg = MetricsRegistry()
        reg.gauge("ratio").set(math.inf)
        assert "ratio +Inf" in render_prometheus(reg)

    def test_negative_infinity(self):
        reg = MetricsRegistry()
        reg.gauge("ratio").set(-math.inf)
        assert "ratio -Inf" in render_prometheus(reg)

    def test_finite_values_unaffected(self):
        reg = MetricsRegistry()
        reg.gauge("a").set(2.0)
        reg.gauge("b").set(2.5)
        text = render_prometheus(reg)
        assert "a 2\n" in text + "\n"
        assert "b 2.5" in text
