"""Tests for log serialization and the command-line interface."""

import io
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import (
    EchoRequest,
    FlowMod,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsReply,
    PacketIn,
    PacketOut,
    PortStatus,
)
from repro.openflow.serialize import (
    dump_log,
    load_log,
    message_from_json,
    message_to_json,
    read_log,
    save_log,
)

KEY = FlowKey("a", "b", 1000, 80)


def sample_log():
    log = ControllerLog()
    log.append(PacketIn(timestamp=1.0, dpid="sw1", flow=KEY, in_port=2, buffer_id=7))
    log.append(
        FlowMod(
            timestamp=1.001,
            dpid="sw1",
            match=Match.exact(KEY),
            out_port=3,
            idle_timeout=5.0,
            in_reply_to=7,
        )
    )
    log.append(PacketOut(timestamp=1.001, dpid="sw1", flow=KEY, out_port=3, buffer_id=7))
    log.append(
        FlowRemoved(
            timestamp=7.0,
            dpid="sw1",
            match=Match.exact(KEY),
            duration=1.2,
            byte_count=999,
            packet_count=3,
            reason=FlowRemovedReason.IDLE_TIMEOUT,
        )
    )
    log.append(PortStatus(timestamp=8.0, dpid="sw2", port=4, live=False))
    log.append(
        FlowStatsReply(
            timestamp=9.0, dpid="sw1", match=Match.destination("b"), byte_count=5
        )
    )
    log.append(EchoRequest(timestamp=10.0, dpid="sw1", replied=False))
    return log


class TestSerialization:
    def test_round_trip_all_message_types(self):
        log = sample_log()
        buf = io.StringIO()
        count = dump_log(log, buf)
        assert count == len(log)
        buf.seek(0)
        restored = load_log(buf)
        assert list(restored) == list(log)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "capture.jsonl")
        log = sample_log()
        save_log(log, path)
        restored = read_log(path)
        assert len(restored) == len(log)
        assert restored.packet_ins()[0].flow == KEY

    def test_blank_lines_skipped(self):
        log = sample_log()
        buf = io.StringIO()
        dump_log(log, buf)
        content = "\n\n" + buf.getvalue() + "\n\n"
        restored = load_log(io.StringIO(content))
        assert len(restored) == len(log)

    def test_malformed_json_reports_line(self):
        with pytest.raises(ValueError, match="line 1"):
            load_log(io.StringIO("{nope\n"))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown control message"):
            message_from_json({"type": "mystery", "ts": 0.0, "dpid": "x"})

    def test_unknown_class_rejected(self):
        class Fake:
            timestamp = 0.0
            dpid = "x"

        with pytest.raises(TypeError):
            message_to_json(Fake())  # type: ignore[arg-type]

    @given(
        st.floats(0, 1e6),
        st.sampled_from(["sw1", "sw2"]),
        st.integers(1, 65535),
        st.integers(1, 65535),
    )
    @settings(max_examples=30)
    def test_packet_in_round_trip_property(self, ts, dpid, sport, dport):
        msg = PacketIn(
            timestamp=ts,
            dpid=dpid,
            flow=FlowKey("x", "y", sport, dport, "udp"),
            in_port=1,
        )
        assert message_from_json(message_to_json(msg)) == msg

    def test_wildcard_match_round_trip(self):
        msg = FlowMod(timestamp=1.0, dpid="sw1", match=Match.destination("z"), out_port=1)
        restored = message_from_json(message_to_json(msg))
        assert restored.match == Match.destination("z")
        assert not restored.match.is_microflow


class TestCLI:
    def test_simulate_inspect_diff_workflow(self, tmp_path, capsys):
        baseline = str(tmp_path / "l1.jsonl")
        current = str(tmp_path / "l2.jsonl")
        assert main(["simulate", "--out", baseline, "--duration", "20"]) == 0
        assert main(
            [
                "simulate",
                "--out",
                current,
                "--duration",
                "20",
                "--fault",
                "logging",
                "--target",
                "S3",
            ]
        ) == 0

        assert main(["inspect", baseline]) == 0
        out = capsys.readouterr().out
        assert "PacketIn=" in out
        assert "group [" in out

        # Healthy diff exits 0; fault diff exits 1 and names the suspect.
        assert main(["diff", baseline, baseline]) == 0
        rc = main(["diff", baseline, current])
        out = capsys.readouterr().out
        assert rc == 1
        assert "S3" in out
        assert "DD" in out

    def test_unknown_fault_rejected(self, tmp_path):
        out = str(tmp_path / "x.jsonl")
        assert main(["simulate", "--out", out, "--fault", "gremlins"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLIRyuFormat:
    def test_inspect_ryu_capture(self, tmp_path, capsys):
        import json as _json

        path = tmp_path / "ryu.jsonl"
        rows = []
        for i in range(12):
            rows.append(
                _json.dumps(
                    dict(
                        event="packet_in",
                        time=0.5 * i,
                        dpid=1,
                        in_port=1,
                        match={
                            "ipv4_src": "10.0.0.1",
                            "ipv4_dst": "10.0.0.2",
                            "tcp_src": 40000 + i,
                            "tcp_dst": 80,
                            "ip_proto": 6,
                        },
                    )
                )
            )
        path.write_text("\n".join(rows))
        assert main(["inspect", str(path), "--format", "ryu", "--no-stability"]) == 0
        out = capsys.readouterr().out
        assert "PacketIn=12" in out
        assert "10.0.0.1" in out


class TestCLIModelPersistence:
    def test_model_then_diff_with_stored_baseline(self, tmp_path, capsys):
        l1 = str(tmp_path / "l1.jsonl")
        l2 = str(tmp_path / "l2.jsonl")
        mdl = str(tmp_path / "baseline.model.json")
        assert main(["simulate", "--out", l1, "--duration", "20"]) == 0
        assert main(
            ["simulate", "--out", l2, "--duration", "20", "--fault", "logging"]
        ) == 0
        assert main(["model", l1, "--out", mdl]) == 0
        out = capsys.readouterr().out
        assert "wrote baseline model" in out
        rc = main(["diff", mdl, l2, "--baseline-model"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DD" in out


class TestCLIErrorPaths:
    def test_model_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["model", str(tmp_path / "nope.jsonl"), "--out", str(tmp_path / "m.json")])

    def test_diff_with_corrupt_model(self, tmp_path):
        bad = tmp_path / "bad.model.json"
        bad.write_text('{"version": 42}')
        capture = str(tmp_path / "l.jsonl")
        assert main(["simulate", "--out", capture, "--duration", "5"]) == 0
        with pytest.raises(ValueError, match="version"):
            main(["diff", str(bad), capture, "--baseline-model"])


class TestCLIHtmlReport:
    def test_diff_writes_html(self, tmp_path, capsys):
        l1 = str(tmp_path / "l1.jsonl")
        l2 = str(tmp_path / "l2.jsonl")
        out = str(tmp_path / "report.html")
        assert main(["simulate", "--out", l1, "--duration", "15"]) == 0
        assert main(
            ["simulate", "--out", l2, "--duration", "15", "--fault", "logging"]
        ) == 0
        rc = main(["diff", l1, l2, "--html", out])
        assert rc == 1
        content = open(out).read()
        assert "<!DOCTYPE html>" in content
        assert "S3" in content
