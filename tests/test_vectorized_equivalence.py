"""Bit-identical equivalence of the raw-speed stability paths.

The campaign's correctness contract in test form:

* every numpy kernel in :mod:`repro.core.vectorized` returns *exactly*
  the float of the pure ``distance`` fold it replaces (the pure code is
  the oracle), over hypothesis-generated signatures and a fixed-seed
  capture;
* ``assess_stability`` verdicts are identical with ``vectorize=True``,
  ``vectorize=False``, and with the single-pass interval builder versus
  per-interval ``log.window`` rebuilds;
* interval matching breaks overlap ties deterministically (smallest
  group key), independent of dict insertion order;
* the serial and sharded-parallel modeling pipelines still produce
  dict-identical models over the slotted netsim records.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.timeseries import split_intervals
from repro.core import vectorized
from repro.core.groups import ApplicationGroup
from repro.core.signatures.application import (
    ApplicationSignature,
    build_application_signatures,
)
from repro.core.signatures.connectivity import ConnectivityGraph
from repro.core.signatures.correlation import PartialCorrelation
from repro.core.signatures.delay import DelayDistribution
from repro.core.signatures.flowstats import FlowStats, RateSummary
from repro.core.signatures.interaction import ComponentInteraction
from repro.core.stability import (
    _match_interval_signature,
    _match_with_index,
    _member_index,
    assess_stability,
)
from repro.scenarios import three_tier_lab

pytestmark = pytest.mark.skipif(
    not vectorized.HAVE_NUMPY, reason="numpy unavailable; kernels inert"
)

NODES = ("a", "b", "c", "d", "e")
edges = st.tuples(st.sampled_from(NODES), st.sampled_from(NODES))
edge_pairs = st.tuples(edges, edges)

#: Scalar features including the magnitudes the 1e-12 zero guard carves
#: out, so the FS relative-change guard is actually exercised.
scalars = st.one_of(
    st.floats(-1e6, 1e6, allow_nan=False),
    st.sampled_from([0.0, -0.0, 1e-13, -1e-13, 5e-12]),
)


def pure_worst(seq):
    worst = 0.0
    for a, b in zip(seq, seq[1:]):
        worst = max(worst, a.distance(b))
    return worst


connectivity_graphs = st.builds(
    lambda e: ConnectivityGraph(edges=frozenset(e)), st.frozensets(edges, max_size=8)
)

flow_stats = st.builds(
    lambda f0, f1, f2, f3: FlowStats(
        flow_count=1,
        byte_mean=f0,
        byte_std=0.0,
        duration_mean=f1,
        duration_std=0.0,
        packet_mean=0.0,
        flows_per_sec=RateSummary(0.0, 0.0, f2),
        bytes_per_sec=RateSummary(0.0, 0.0, f3),
        per_edge_bytes=(),
    ),
    scalars,
    scalars,
    scalars,
    scalars,
)

interactions = st.builds(
    lambda counts: ComponentInteraction(
        counts=tuple(
            (node, tuple(sorted(per.items())))
            for node, per in sorted(counts.items())
        )
    ),
    st.dictionaries(
        st.sampled_from(NODES),
        st.dictionaries(
            st.tuples(st.sampled_from(["in", "out"]), st.sampled_from(NODES)),
            st.integers(0, 20),
            max_size=4,
        ),
        max_size=4,
    ),
)

# Peaks are (delay, count) bins, dominant first; a runner-up within 1.5x
# of the top makes the pair multimodal (the -1.0 sentinel path).
peak_lists = st.lists(
    st.tuples(st.floats(0.0, 0.5, allow_nan=False), st.integers(1, 30)),
    max_size=3,
).map(lambda pk: tuple(sorted(pk, key=lambda p: -p[1])))

delay_distributions = st.builds(
    lambda pairs: DelayDistribution(
        samples=tuple((pair, ()) for pair in sorted(pairs)),
        first_samples=(),
        peaks=tuple(sorted(pairs.items())),
    ),
    st.dictionaries(edge_pairs, peak_lists, max_size=5),
)

partial_correlations = st.builds(
    lambda corr: PartialCorrelation(
        correlations=tuple(sorted(corr.items()))
    ),
    st.dictionaries(edge_pairs, st.floats(-1.0, 1.0, allow_nan=False), max_size=5),
)


class TestKernelsBitIdentical:
    """Each numpy kernel against the pure fold it replaces."""

    @settings(max_examples=150, deadline=None)
    @given(st.lists(connectivity_graphs, min_size=2, max_size=5))
    def test_cg(self, graphs):
        assert vectorized.worst_cg(graphs) == pure_worst(graphs)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(flow_stats, min_size=2, max_size=5))
    def test_fs(self, stats):
        assert vectorized.worst_fs(stats) == pure_worst(stats)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(interactions, min_size=2, max_size=5))
    def test_ci(self, seq):
        assert vectorized.worst_ci(seq) == pure_worst(seq)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(delay_distributions, min_size=2, max_size=5))
    def test_dd(self, seq):
        assert vectorized.worst_dd(seq) == pure_worst(seq)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(partial_correlations, min_size=2, max_size=5))
    def test_pc(self, seq):
        assert vectorized.worst_pc(seq) == pure_worst(seq)

    def test_short_sequences_are_zero(self):
        assert vectorized.worst_cg([]) == 0.0
        assert vectorized.worst_cg([ConnectivityGraph(edges=frozenset())]) == 0.0
        empty = [ConnectivityGraph(edges=frozenset())] * 2
        assert vectorized.worst_cg(empty) == 0.0


@pytest.fixture(scope="module")
def lab_log():
    return three_tier_lab(seed=3).run(0.5, 20.0)


class TestAssessStabilityEquivalence:
    """Verdicts are path-independent on a real capture."""

    def test_vectorized_matches_pure(self, lab_log):
        fast = assess_stability(lab_log, vectorize=True)
        pure = assess_stability(lab_log, vectorize=False)
        assert fast == pure
        assert fast  # the capture actually yields verdicts

    def test_fast_intervals_match_window_rebuilds(self, lab_log):
        t0, t1 = lab_log.time_span
        rebuilt = [
            build_application_signatures(
                lab_log.window(a, b), None, window=(a, b)
            )
            for a, b in split_intervals(t0, t1, 3)
        ]
        assert assess_stability(lab_log) == assess_stability(
            lab_log, per_interval=rebuilt
        )

    def test_worst_distances_bit_identical_on_capture(self, lab_log):
        from repro.core.stability import _worst_distances_pure

        t0, t1 = lab_log.time_span
        per_interval = [
            build_application_signatures(
                lab_log.window(a, b), None, window=(a, b)
            )
            for a, b in split_intervals(t0, t1, 3)
        ]
        full = build_application_signatures(lab_log, None)
        indexes = [_member_index(sigs) for sigs in per_interval]
        checked = 0
        for signature in full.values():
            matched = [
                m
                for m in (
                    _match_with_index(signature.group.members, sigs, index)
                    for sigs, index in zip(per_interval, indexes)
                )
                if m is not None
            ]
            if len(matched) < 2:
                continue
            assert vectorized.worst_distances(matched) == _worst_distances_pure(
                matched
            )
            checked += 1
        assert checked


def _blank_signature(members):
    group = ApplicationGroup(members=frozenset(members), services=frozenset())
    return ApplicationSignature(
        group=group,
        cg=ConnectivityGraph(edges=frozenset()),
        fs=FlowStats(
            flow_count=0,
            byte_mean=0.0,
            byte_std=0.0,
            duration_mean=0.0,
            duration_std=0.0,
            packet_mean=0.0,
            flows_per_sec=RateSummary(0.0, 0.0, 0.0),
            bytes_per_sec=RateSummary(0.0, 0.0, 0.0),
            per_edge_bytes=(),
        ),
        ci=ComponentInteraction(counts=()),
        dd=DelayDistribution(samples=(), first_samples=(), peaks=()),
        pc=PartialCorrelation(correlations=()),
    )


class TestTieBreakDeterminism:
    """Equal-overlap candidates resolve by key, not dict order."""

    def test_equal_overlap_ties_break_to_smallest_key(self):
        # Two candidate groups each share exactly one member with the
        # query; only their dict insertion order differs between the two
        # layouts. The historical scan kept whichever dict yielded
        # first — the verdict depended on dict assembly order.
        query = frozenset({"web1", "db1"})
        sig_z = _blank_signature({"web1", "cache1"})
        sig_a = _blank_signature({"db1", "spare1"})
        adversarial = {"z-group": sig_z, "a-group": sig_a}
        sorted_order = {"a-group": sig_a, "z-group": sig_z}
        for layout in (adversarial, sorted_order):
            match = _match_interval_signature(query, layout)
            assert match is sig_a  # smallest key wins the tie
            indexed = _match_with_index(query, layout, _member_index(layout))
            assert indexed is match

    def test_index_match_agrees_with_scan(self):
        query = frozenset({"web1", "db1", "app1"})
        layout = {
            "g1": _blank_signature({"web1", "app1"}),  # overlap 2
            "g2": _blank_signature({"db1"}),  # overlap 1
            "g3": _blank_signature({"x"}),  # overlap 0
        }
        scan = _match_interval_signature(query, layout)
        indexed = _match_with_index(query, layout, _member_index(layout))
        assert scan is indexed is layout["g1"]
        assert _match_with_index(
            frozenset({"nope"}), layout, _member_index(layout)
        ) is None


class TestSerialParallelCrossCheck:
    """The slotted netsim records feed both pipelines identically."""

    def test_jobs_variants_dict_identical(self, lab_log):
        from repro import FlowDiff
        from repro.core.flowdiff import FlowDiffConfig
        from repro.core.persist import model_to_dict

        serial = FlowDiff(FlowDiffConfig(jobs=1)).model(lab_log)
        parallel = FlowDiff(FlowDiffConfig(jobs=2)).model(lab_log)
        assert model_to_dict(serial) == model_to_dict(parallel)
        assert serial.stability == parallel.stability


class TestQueueDepthGauge:
    """The simulator gauge tracks pushes, not just the run loop."""

    def test_gauge_current_after_schedule_burst(self):
        from repro.netsim.engine import Simulator
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        sim = Simulator(metrics=metrics)
        gauge = metrics.gauge("sim_queue_depth")
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
            assert gauge.value == i + 1  # fresh on every push, pre-run
        sim.run(until=2.0)
        assert gauge.value == 2.0  # and kept current by the loop
