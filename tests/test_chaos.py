"""Chaos tests: randomized fault sequences must never break the pipeline.

Property-based end-to-end runs: arbitrary (bounded) combinations of faults
injected at random times into the lab scenario. The pipeline must always
produce a well-formed report, and — the paper's implicit false-positive
contract — fault-free runs with different workload samples must never
raise unexplained changes against each other.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FlowDiff
from repro.faults import (
    AppCrash,
    BackgroundTraffic,
    FirewallBlock,
    HighCPU,
    HostShutdown,
    LinkLoss,
    LoggingMisconfig,
)
from repro.scenarios import three_tier_lab

pytestmark = pytest.mark.slow

DURATION = 20.0

FAULT_FACTORIES = [
    lambda: LoggingMisconfig("S3", 0.05),
    lambda: HighCPU("S3", 4.0),
    lambda: AppCrash("S3"),
    lambda: HostShutdown("S8"),
    lambda: FirewallBlock("S8", 3306),
    lambda: LinkLoss([("S1", "ofs3")], 0.05),
    lambda: BackgroundTraffic("S24", "S25", duration=DURATION),
]


def run_lab(fault_indices=(), fault_times=(), seed=3):
    scenario = three_tier_lab(seed=seed)
    for idx, at in zip(fault_indices, fault_times):
        scenario.inject(FAULT_FACTORIES[idx](), at=at)
    return scenario.run(0.5, DURATION, drain=10.0)


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def baseline(fd):
    return fd.model(run_lab())


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    indices=st.lists(
        st.integers(0, len(FAULT_FACTORIES) - 1), min_size=1, max_size=3, unique=True
    ),
    times=st.lists(st.floats(0.0, DURATION * 0.5), min_size=3, max_size=3),
)
def test_any_fault_combination_yields_wellformed_report(
    fd, baseline, indices, times
):
    log = run_lab(indices, times)
    report = fd.diff(baseline, fd.model(log, assess=False))
    # Structural sanity regardless of what happened.
    for change in report.unknown_changes:
        assert change.kind is not None
        assert change.description
        assert change.direction in ("added", "removed", "shifted")
    for problem in report.problems:
        assert 0.0 <= problem.score <= 1.0
    for _component, score in report.component_ranking:
        assert score > 0
    # The report always serializes.
    assert report.to_json()
    # Any single destructive fault among the set must be noticed.
    destructive = {2, 3, 4}
    if destructive & set(indices):
        assert not report.healthy


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(10, 10_000))
def test_no_fault_no_false_positive(fd, baseline, seed):
    """Different workload samples of the same deployment never alarm."""
    log = run_lab(seed=seed)
    report = fd.diff(baseline, fd.model(log, assess=False))
    assert report.healthy, [c.brief() for c in report.unknown_changes]
