"""CLI observability surface: ``repro stats``, ``--profile``, ``--metrics-out``.

The reconciliation tests here are the acceptance gate for the telemetry
export: counters written by ``--metrics-out`` must agree exactly with the
message counts of the capture they describe.
"""

import logging

import pytest

from repro.cli import main
from repro.obs.export import metrics_from_events, read_jsonl
from repro.openflow.serialize import read_log


@pytest.fixture(scope="module")
def captures(tmp_path_factory):
    """One healthy and one faulty capture, simulated once per module."""
    root = tmp_path_factory.mktemp("captures")
    baseline = str(root / "l1.jsonl")
    current = str(root / "l2.jsonl")
    assert main(["simulate", "--out", baseline, "--duration", "15"]) == 0
    assert (
        main(
            [
                "simulate",
                "--out",
                current,
                "--duration",
                "15",
                "--fault",
                "logging",
            ]
        )
        == 0
    )
    return baseline, current


class TestStatsCommand:
    def test_stats_summary(self, captures, capsys):
        baseline, _ = captures
        assert main(["stats", baseline]) == 0
        out = capsys.readouterr().out
        assert "control messages" in out
        assert "packet_in" in out
        assert "flow_mod" in out
        assert "rate/s" in out
        assert "top talkers" in out
        assert "busiest switches" in out

    def test_stats_matches_log_counts(self, captures, capsys):
        baseline, _ = captures
        log = read_log(baseline)
        assert main(["stats", baseline]) == 0
        out = capsys.readouterr().out
        assert f"{baseline}: {len(log)} control messages" in out
        # The per-kind counts printed are the log's actual counts.
        for kind, count in (
            ("packet_in", len(log.packet_ins())),
            ("flow_mod", len(log.flow_mods())),
            ("flow_removed", len(log.flow_removed())),
        ):
            line = next(l for l in out.splitlines() if l.strip().startswith(kind))
            assert str(count) in line.split()

    def test_stats_metrics_out(self, captures, tmp_path, capsys):
        baseline, _ = captures
        out_path = str(tmp_path / "stats.jsonl")
        assert main(["stats", baseline, "--metrics-out", out_path]) == 0
        events = read_jsonl(out_path)
        assert events[0]["type"] == "meta"
        restored = metrics_from_events(events)
        log = read_log(baseline)
        assert restored.value(
            "log_messages_total", kind="packet_in", role="capture"
        ) == len(log.packet_ins())

    def test_stats_top_zero(self, captures, capsys):
        baseline, _ = captures
        assert main(["stats", baseline, "--top", "0"]) == 0
        out = capsys.readouterr().out
        assert "top talkers" not in out


class TestDiffProfile:
    def test_profile_prints_phase_table(self, captures, capsys):
        baseline, current = captures
        rc = main(["diff", baseline, current, "--profile"])
        out = capsys.readouterr().out
        assert rc == 1  # the fault is detected, as without --profile
        assert "phase timings:" in out
        for phase in ("model", "extract", "app-signature", "stability",
                      "diff", "compare", "validate", "rank"):
            assert phase in out

    def test_metrics_out_reconciles_with_logs(self, captures, tmp_path, capsys):
        """Acceptance criterion: exported counters == capture message counts."""
        baseline, current = captures
        out_path = str(tmp_path / "diff.jsonl")
        rc = main(["diff", baseline, current, "--metrics-out", out_path])
        assert rc == 1
        restored = metrics_from_events(read_jsonl(out_path))
        for role, path in (("baseline", baseline), ("current", current)):
            log = read_log(path)
            for kind, count in (
                ("packet_in", len(log.packet_ins())),
                ("flow_mod", len(log.flow_mods())),
                ("flow_removed", len(log.flow_removed())),
            ):
                assert (
                    restored.value("log_messages_total", kind=kind, role=role)
                    == count
                ), f"{role}/{kind} mismatch"
        # Pipeline counters and spans came along too.
        assert restored.value("flowdiff_models_total") == 2
        assert restored.value("flowdiff_diffs_total") == 1
        events = read_jsonl(out_path)
        span_paths = {e["path"] for e in events if e["type"] == "span"}
        assert {"model", "model/extract", "diff", "diff/compare"} <= span_paths

    def test_model_profile_and_metrics(self, captures, tmp_path, capsys):
        baseline, _ = captures
        model_path = str(tmp_path / "m.json")
        out_path = str(tmp_path / "model.jsonl")
        rc = main(
            ["model", baseline, "--out", model_path,
             "--profile", "--metrics-out", out_path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase timings:" in out
        assert "stability" in out
        restored = metrics_from_events(read_jsonl(out_path))
        log = read_log(baseline)
        assert restored.value(
            "log_messages_total", kind="packet_in", role="baseline"
        ) == len(log.packet_ins())


class TestSimulateTelemetry:
    def test_simulate_metrics_out_reconciles(self, tmp_path, capsys):
        capture = str(tmp_path / "cap.jsonl")
        out_path = str(tmp_path / "sim.jsonl")
        rc = main(
            ["simulate", "--out", capture, "--duration", "10",
             "--metrics-out", out_path]
        )
        assert rc == 0
        log = read_log(capture)
        restored = metrics_from_events(read_jsonl(out_path))
        # Live controller counters agree with what landed in the capture.
        assert restored.value(
            "controller_messages_total", kind="packet_in"
        ) == len(log.packet_ins())
        assert restored.value(
            "controller_messages_total", kind="flow_mod"
        ) == len(log.flow_mods())
        assert restored.value(
            "controller_messages_total", kind="flow_removed"
        ) == len(log.flow_removed())
        # And so do the one-pass log counters.
        assert restored.value(
            "log_messages_total", kind="packet_in", role="capture"
        ) == len(log.packet_ins())
        # Simulator and flow-table activity was recorded.
        assert restored.value("sim_events_total") > 0
        assert restored.total("flowtable_lookups_total") > 0
        assert restored.get("controller_response_seconds").count == len(
            log.packet_ins()
        )

    def test_simulate_profile_table(self, tmp_path, capsys):
        capture = str(tmp_path / "cap.jsonl")
        rc = main(
            ["simulate", "--out", capture, "--duration", "5", "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase timings:" in out
        assert "simulate" in out


class TestVerboseFlag:
    def test_verbose_sets_root_level(self):
        tmp_main_args = ["--verbose"]
        assert main(tmp_main_args + ["stats", "/dev/null"]) == 0
        assert logging.getLogger().getEffectiveLevel() == logging.INFO

    def test_double_verbose_sets_debug(self):
        assert main(["-vv", "stats", "/dev/null"]) == 0
        assert logging.getLogger().getEffectiveLevel() == logging.DEBUG

    def test_default_is_warning(self):
        assert main(["stats", "/dev/null"]) == 0
        assert logging.getLogger().getEffectiveLevel() == logging.WARNING
