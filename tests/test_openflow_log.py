"""Unit and property tests for the controller log."""

import pytest
from hypothesis import given, strategies as st

from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey
from repro.openflow.messages import FlowMod, FlowRemoved, PacketIn, PacketOut

KEY = FlowKey("a", "b", 1000, 80)


def pin(ts, dpid="sw1"):
    return PacketIn(timestamp=ts, dpid=dpid, flow=KEY, in_port=1)


class TestControllerLog:
    def test_append_and_len(self):
        log = ControllerLog()
        log.append(pin(1.0))
        log.append(pin(2.0))
        assert len(log) == 2

    def test_out_of_order_appends_sorted(self):
        log = ControllerLog()
        log.append(pin(2.0))
        log.append(pin(1.0))
        log.append(pin(3.0))
        assert [m.timestamp for m in log] == [1.0, 2.0, 3.0]

    def test_stable_order_for_equal_timestamps(self):
        log = ControllerLog()
        a = pin(1.0, "first")
        b = pin(1.0, "second")
        log.append(a)
        log.append(b)
        assert [m.dpid for m in log] == ["first", "second"]

    def test_time_span(self):
        log = ControllerLog([pin(1.5), pin(4.5)])
        assert log.time_span == (1.5, 4.5)
        assert ControllerLog().time_span == (0.0, 0.0)

    def test_window_half_open(self):
        log = ControllerLog([pin(1.0), pin(2.0), pin(3.0)])
        sub = log.window(1.0, 3.0)
        assert [m.timestamp for m in sub] == [1.0, 2.0]

    def test_type_filters(self):
        log = ControllerLog()
        log.append(pin(1.0))
        log.append(FlowMod(timestamp=1.1, dpid="sw1"))
        log.append(PacketOut(timestamp=1.1, dpid="sw1", flow=KEY))
        log.append(FlowRemoved(timestamp=6.0, dpid="sw1"))
        assert len(log.packet_ins()) == 1
        assert len(log.flow_mods()) == 1
        assert len(log.packet_outs()) == 1
        assert len(log.flow_removed()) == 1

    def test_filter_predicate(self):
        log = ControllerLog([pin(1.0, "sw1"), pin(2.0, "sw2")])
        sub = log.filter(lambda m: m.dpid == "sw2")
        assert len(sub) == 1

    def test_merged_with(self):
        a = ControllerLog([pin(1.0, "sw1")])
        b = ControllerLog([pin(0.5, "sw2")])
        merged = a.merged_with(b)
        assert [m.dpid for m in merged] == ["sw2", "sw1"]
        assert len(a) == 1  # originals untouched
        assert len(b) == 1

    @given(st.lists(st.floats(0, 100), max_size=50))
    def test_iteration_always_sorted(self, times):
        log = ControllerLog()
        for t in times:
            log.append(pin(t))
        stamps = [m.timestamp for m in log]
        assert stamps == sorted(stamps)

    @given(
        st.lists(st.floats(0, 100), max_size=50),
        st.floats(0, 50),
        st.floats(50, 100),
    )
    def test_window_subset_invariant(self, times, lo, hi):
        log = ControllerLog()
        for t in times:
            log.append(pin(t))
        sub = log.window(lo, hi)
        assert len(sub) == sum(1 for t in times if lo <= t < hi)
