"""The interprocedural call graph: entrypoints, coloring, fact records.

These tests feed small fixture modules through :func:`CallGraph.build`
and assert the *facts* layer the concurrency rules consume: which
functions are thread entrypoints, what color each function runs under,
and which attribute accesses / lock acquisitions / thread creations are
recorded with what held-lock context.
"""

import textwrap

from repro.qa.callgraph import MAIN, WORKER, HTTP, CallGraph
from repro.qa.framework import ModuleFile, Project


def build(source, name="repro.confix.mod"):
    path = "src/" + name.replace(".", "/") + ".py"
    mod = ModuleFile(path, textwrap.dedent(source), module=name)
    return CallGraph.build(Project([mod]))


WORKER_CLASS = """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0
            self._thread = None

        def start(self):
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()

        def stop(self):
            self._thread.join()

        def _run(self):
            self._bump()

        def _bump(self):
            with self._lock:
                self.value += 1


    def poke(box: Box) -> int:
        return box.value
    """


class TestEntrypoints:
    def test_thread_target_is_a_worker_entrypoint(self):
        graph = build(WORKER_CLASS)
        workers = {e.qualname for e in graph.entrypoints if e.kind == WORKER}
        assert "repro.confix.mod.Box._run" in workers

    def test_http_handler_methods_are_entrypoints(self):
        graph = build(
            """\
            from http.server import BaseHTTPRequestHandler

            class Handler(BaseHTTPRequestHandler):
                def do_GET(self):
                    self._reply()

                def _reply(self):
                    pass
            """
        )
        https = {e.qualname for e in graph.entrypoints if e.kind == HTTP}
        assert "repro.confix.mod.Handler.do_GET" in https


class TestColoring:
    def test_worker_color_does_not_leak_to_the_spawner(self):
        graph = build(WORKER_CLASS)
        assert WORKER in graph.color("repro.confix.mod.Box._run")
        # _bump is only called from the worker entrypoint.
        assert graph.color("repro.confix.mod.Box._bump") == frozenset({WORKER})
        # start() runs on whatever thread calls it — main here — and
        # spawning a thread must not color it as the worker.
        assert WORKER not in graph.color("repro.confix.mod.Box.start")

    def test_uncalled_module_function_is_a_main_root(self):
        graph = build(WORKER_CLASS)
        assert MAIN in graph.color("repro.confix.mod.poke")

    def test_constructors_are_exempt(self):
        graph = build(WORKER_CLASS)
        assert graph.is_exempt("repro.confix.mod.Box.__init__")


class TestFacts:
    def test_attr_access_records_owner_write_and_locks(self):
        graph = build(WORKER_CLASS)
        by_attr = {
            (a.owner, a.attr, a.write): a
            for a in graph.accesses
            if a.attr == "value"
        }
        write = by_attr[("repro.confix.mod.Box", "value", True)]
        assert "repro.confix.mod.Box._lock" in write.locks
        read = by_attr[("repro.confix.mod.Box", "value", False)]
        assert read.func == "repro.confix.mod.poke"
        assert not read.locks

    def test_lock_acquire_and_thread_create_are_recorded(self):
        graph = build(WORKER_CLASS)
        assert any(
            acq.lock == "repro.confix.mod.Box._lock" for acq in graph.acquires
        )
        creates = [c for c in graph.thread_creates]
        assert len(creates) == 1
        assert creates[0].bound == ("attr", "_thread")

    def test_blocking_ops_are_recorded_with_held_locks(self):
        graph = build(
            """\
            import threading
            import time

            class Sleeper:
                def __init__(self):
                    self._lock = threading.Lock()

                def nap(self):
                    with self._lock:
                        time.sleep(0.1)
            """
        )
        ops = {op.what: op for op in graph.blocking}
        assert "time.sleep()" in ops
        assert "repro.confix.mod.Sleeper._lock" in ops["time.sleep()"].locks

    def test_mutator_method_counts_as_write(self):
        graph = build(
            """\
            import threading

            class Ring:
                def __init__(self):
                    self.items = []
                    self._thread = threading.Thread(target=self._run)
                    self._thread.start()

                def stop(self):
                    self._thread.join()

                def _run(self):
                    self.items.append(1)
            """
        )
        writes = {
            a.func for a in graph.accesses if a.attr == "items" and a.write
        }
        assert "repro.confix.mod.Ring._run" in writes


class TestRealService:
    def test_service_entrypoints_are_discovered(self):
        import os

        src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
        graph = CallGraph.build(Project.load([src]))
        names = {e.qualname.rsplit(".", 1)[-1] for e in graph.entrypoints}
        assert "_drain_loop" in names  # the daemon's worker
        assert "run" in names  # FileTailSource tail thread
        assert "do_GET" in names  # the ops endpoint
