"""Tests for behavior-model persistence."""

import json

import pytest

from repro import FlowDiff
from repro.core.persist import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.faults import LoggingMisconfig
from repro.scenarios import three_tier_lab

DURATION = 25.0


def capture(fault=None, seed=3):
    scenario = three_tier_lab(seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    return scenario.run(0.5, DURATION)


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def model(fd):
    return fd.model(capture())


class TestRoundTrip:
    def test_dict_round_trip_structure(self, model):
        data = model_to_dict(model)
        restored = model_from_dict(data)
        assert set(restored.app_signatures) == set(model.app_signatures)
        assert restored.window == model.window
        assert restored.stability == model.stability
        for key in model.app_signatures:
            orig = model.app_signatures[key]
            back = restored.app_signatures[key]
            assert back.group.members == orig.group.members
            assert back.cg.edges == orig.cg.edges
            assert back.fs.byte_mean == pytest.approx(orig.fs.byte_mean)
            assert back.ci.counts == orig.ci.counts
            assert back.pc.correlations == orig.pc.correlations
        assert (
            restored.infrastructure.pt.switch_links
            == model.infrastructure.pt.switch_links
        )
        assert restored.infrastructure.crt.mean == pytest.approx(
            model.infrastructure.crt.mean
        )

    def test_json_serializable(self, model):
        json.dumps(model_to_dict(model))  # no exotic types sneak through

    def test_file_round_trip(self, model, tmp_path):
        path = str(tmp_path / "baseline.model.json")
        save_model(model, path)
        restored = load_model(path)
        assert set(restored.app_signatures) == set(model.app_signatures)

    def test_version_check(self, model):
        data = model_to_dict(model)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            model_from_dict(data)

    def test_dd_summaries_preserved(self, model):
        restored = model_from_dict(model_to_dict(model))
        key = next(iter(model.app_signatures))
        orig_dd = model.app_signatures[key].dd
        back_dd = restored.app_signatures[key].dd
        for pair in orig_dd.pairs():
            assert back_dd.dominant_peak(pair) == pytest.approx(
                orig_dd.dominant_peak(pair)
            )
            assert back_dd.mean_delay(pair) == pytest.approx(
                orig_dd.mean_delay(pair)
            )

    def test_raw_samples_not_available_after_reload(self, model):
        restored = model_from_dict(model_to_dict(model))
        key = next(iter(model.app_signatures))
        dd = restored.app_signatures[key].dd
        pair = dd.pairs()[0]
        with pytest.raises(NotImplementedError):
            dd.delay_cdf(pair)


class TestDiffEquivalence:
    def test_reloaded_baseline_diffs_identically(self, fd, model):
        """The headline guarantee: diff(reloaded, X) == diff(original, X)."""
        restored = model_from_dict(model_to_dict(model))
        current = fd.model(
            capture(fault=LoggingMisconfig("S3", 0.05)), assess=False
        )
        original_report = fd.diff(model, current)
        reloaded_report = fd.diff(restored, current)
        assert [c.brief() for c in reloaded_report.unknown_changes] == [
            c.brief() for c in original_report.unknown_changes
        ]
        assert [p.problem for p in reloaded_report.problems] == [
            p.problem for p in original_report.problems
        ]
        assert reloaded_report.component_ranking == original_report.component_ranking

    def test_reloaded_baseline_healthy_against_healthy(self, fd, model):
        restored = model_from_dict(model_to_dict(model))
        current = fd.model(capture(seed=17), assess=False)
        assert fd.diff(restored, current).healthy


class TestPortEventsPersistence:
    def test_port_events_round_trip(self, fd):
        from repro.faults import SwitchFailure

        scenario = three_tier_lab(seed=3)
        scenario.inject(SwitchFailure("ofs5"), at=5.0)
        log = scenario.run(0.5, DURATION)
        model = fd.model(log, assess=False)
        assert model.infrastructure.port_down_events
        restored = model_from_dict(model_to_dict(model))
        assert (
            restored.infrastructure.port_down_events
            == model.infrastructure.port_down_events
        )
        assert "ofs5" in restored.infrastructure.corroborated_dead_switches()
