"""The SVG flamegraph renderer: determinism, layout proportionality,
escaping, pruning, and the folded-format round trip."""

import re
import unittest

from repro.obs.flamegraph import (
    FRAME_HEIGHT,
    flamegraph_svg,
    frame_color,
    parse_folded,
    save_flamegraph,
)

FOLDED = {
    "model;extract;events.py:decode": 400.0,
    "model;extract;events.py:join": 100.0,
    "model;signature;delay.py:fit": 300.0,
    "diff;compare;compare.py:changes": 200.0,
}


class ParseFoldedTest(unittest.TestCase):
    def test_round_trip(self):
        lines = [f"{stack} {value:.0f}" for stack, value in FOLDED.items()]
        self.assertEqual(parse_folded(lines), FOLDED)

    def test_blank_and_comment_lines_skipped(self):
        parsed = parse_folded(["", "# header", "a;f 10", "   "])
        self.assertEqual(parsed, {"a;f": 10.0})

    def test_repeated_stacks_sum(self):
        self.assertEqual(parse_folded(["a;f 10", "a;f 5"]), {"a;f": 15.0})

    def test_malformed_value_raises_naming_line(self):
        with self.assertRaises(ValueError) as ctx:
            parse_folded(["a;f notanumber"])
        self.assertIn("a;f notanumber", str(ctx.exception))

    def test_missing_value_field_raises(self):
        with self.assertRaises(ValueError):
            parse_folded(["loneword"])


class DeterminismTest(unittest.TestCase):
    def test_byte_identical_for_equal_input(self):
        self.assertEqual(flamegraph_svg(FOLDED), flamegraph_svg(FOLDED))

    def test_insertion_order_does_not_matter(self):
        reordered = dict(reversed(list(FOLDED.items())))
        self.assertEqual(flamegraph_svg(FOLDED), flamegraph_svg(reordered))

    def test_frame_color_is_pure(self):
        self.assertEqual(frame_color("model"), frame_color("model"))
        self.assertRegex(frame_color("model"), r"^#[0-9a-f]{6}$")

    def test_span_and_function_ramps_differ(self):
        # Phase frames (no colon) are cool (blue-dominant); function
        # frames (with colon) are warm (red-dominant).
        phase = frame_color("model")
        func = frame_color("events.py:decode")
        pr, pb = int(phase[1:3], 16), int(phase[5:7], 16)
        fr, fb = int(func[1:3], 16), int(func[5:7], 16)
        self.assertGreater(pb, pr)
        self.assertGreater(fr, fb)


class LayoutTest(unittest.TestCase):
    def _rect_widths(self, svg):
        widths = {}
        for m in re.finditer(
            r'data-name="([^"]*)"><rect [^>]*width="([0-9.]+)"', svg
        ):
            widths[m.group(1)] = float(m.group(2))
        return widths

    def test_widths_proportional_to_values(self):
        svg = flamegraph_svg(FOLDED, width=1000)
        widths = self._rect_widths(svg)
        total = sum(FOLDED.values())
        self.assertAlmostEqual(widths["all"], 1000.0)
        self.assertAlmostEqual(
            widths["model"], 1000.0 * 800.0 / total, delta=0.05
        )
        self.assertAlmostEqual(
            widths["diff"], 1000.0 * 200.0 / total, delta=0.05
        )
        self.assertAlmostEqual(
            widths["events.py:decode"], 1000.0 * 400.0 / total, delta=0.05
        )

    def test_height_tracks_depth(self):
        shallow = flamegraph_svg({"a": 10.0})
        deep = flamegraph_svg({"a;b;c;d;e": 10.0})
        h_shallow = int(re.search(r'height="(\d+)"', shallow).group(1))
        h_deep = int(re.search(r'height="(\d+)"', deep).group(1))
        self.assertEqual(h_deep - h_shallow, 4 * FRAME_HEIGHT)

    def test_tiny_frames_pruned(self):
        folded = {"big;huge": 1_000_000.0, "big;tiny": 0.001}
        svg = flamegraph_svg(folded, width=1000)
        self.assertIn('data-name="huge"', svg)
        self.assertNotIn('data-name="tiny"', svg)

    def test_empty_input_renders_valid_svg(self):
        svg = flamegraph_svg({})
        self.assertTrue(svg.startswith("<svg"))
        self.assertTrue(svg.endswith("</svg>"))
        self.assertIn("0 stacks", svg)


class EscapingTest(unittest.TestCase):
    def test_hostile_names_escaped(self):
        folded = {'phase;<script>"alert"&x.py:f': 10.0}
        svg = flamegraph_svg(folded, title='<b>"title"&</b>')
        self.assertNotIn("<script>", svg)
        self.assertNotIn('<b>"title"', svg)
        self.assertIn("&lt;script&gt;", svg)
        self.assertIn("&amp;", svg)

    def test_tooltips_carry_share(self):
        svg = flamegraph_svg({"model;f.py:g": 100.0}, unit="µs")
        self.assertIn("100 µs (100.00%)", svg)


class SaveTest(unittest.TestCase):
    def test_save_writes_same_bytes(self):
        import os
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "g.svg")
            save_flamegraph(path, FOLDED, title="t")
            with open(path, encoding="utf-8") as fh:
                self.assertEqual(fh.read(), flamegraph_svg(FOLDED, title="t"))


if __name__ == "__main__":
    unittest.main()
