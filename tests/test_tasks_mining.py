"""Unit and property tests for frequent-sequence mining (Section III-D)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tasks.mining import (
    closed_frequent_patterns,
    common_flows,
    filter_to_common,
    frequent_contiguous_patterns,
    mine_states,
)


class TestCommonFlows:
    def test_intersection(self):
        runs = [["a", "b", "c"], ["b", "c", "d"], ["c", "b"]]
        assert common_flows(runs) == {"b", "c"}

    def test_single_run(self):
        assert common_flows([["a", "b"]]) == {"a", "b"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            common_flows([])

    def test_filter_preserves_order(self):
        runs = [["a", "x", "b"], ["b", "a"]]
        filtered = filter_to_common(runs, {"a", "b"})
        assert filtered == [["a", "b"], ["b", "a"]]


class TestPaperExample:
    """The worked example of Section III-D / Figure 6."""

    RUNS = [
        ["f1", "f2", "f3", "f4", "f5"],
        ["f3", "f4", "f5", "f1"],
        ["f3", "f4", "f5", "f2", "f1"],
    ]

    def test_frequent_patterns_match_figure6a(self):
        freq = frequent_contiguous_patterns(self.RUNS, min_sup=0.6)
        # Length-1: all five flows; f2 has support 2 (>= 0.6*3 = 1.8).
        assert freq[("f1",)] == 3
        assert freq[("f2",)] == 2
        assert freq[("f3",)] == 3
        # Length-2 survivors.
        assert freq[("f3", "f4")] == 3
        assert freq[("f4", "f5")] == 3
        assert ("f1", "f2") not in freq  # support 1, below threshold
        assert ("f5", "f1") not in freq
        # Length-3 terminal pattern.
        assert freq[("f3", "f4", "f5")] == 3
        assert not any(len(p) > 3 for p in freq)

    def test_closed_pruning_matches_paper(self):
        """f3, f4, f5, f3f4 and f4f5 are subsumed by f3f4f5."""
        closed = closed_frequent_patterns(
            frequent_contiguous_patterns(self.RUNS, min_sup=0.6)
        )
        assert ("f3", "f4", "f5") in closed
        assert ("f3",) not in closed
        assert ("f4",) not in closed
        assert ("f5",) not in closed
        assert ("f3", "f4") not in closed
        assert ("f4", "f5") not in closed
        # f1 and f2 survive: no superset has their support.
        assert ("f1",) in closed
        assert ("f2",) in closed


class TestMiningMechanics:
    def test_support_counted_once_per_run(self):
        runs = [["a", "a", "a"], ["b"]]
        freq = frequent_contiguous_patterns(runs, min_sup=0.5)
        assert freq[("a",)] == 1

    def test_min_sup_validation(self):
        with pytest.raises(ValueError):
            frequent_contiguous_patterns([["a"]], min_sup=0.0)
        with pytest.raises(ValueError):
            frequent_contiguous_patterns([["a"]], min_sup=1.5)
        with pytest.raises(ValueError):
            frequent_contiguous_patterns([], min_sup=0.5)

    def test_max_length_caps_patterns(self):
        runs = [["a", "b", "c", "d"]] * 2
        freq = frequent_contiguous_patterns(runs, min_sup=1.0, max_length=2)
        assert max(len(p) for p in freq) == 2

    def test_contiguity_requirement(self):
        """a..c is not contiguous in 'abc' runs interrupted by b."""
        runs = [["a", "b", "c"], ["a", "b", "c"]]
        freq = frequent_contiguous_patterns(runs, min_sup=1.0)
        assert ("a", "c") not in freq
        assert ("a", "b", "c") in freq

    @given(
        st.lists(
            st.lists(st.sampled_from("abcd"), min_size=1, max_size=8),
            min_size=1,
            max_size=5,
        ),
        st.floats(0.3, 1.0),
    )
    @settings(max_examples=50)
    def test_support_threshold_respected(self, runs, min_sup):
        freq = frequent_contiguous_patterns(runs, min_sup=min_sup)
        for _pattern, support in freq.items():
            assert support >= min_sup * len(runs) - 1e-9

    @given(
        st.lists(
            st.lists(st.sampled_from("abc"), min_size=1, max_size=6),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=50)
    def test_closed_is_subset_with_same_supports(self, runs):
        freq = frequent_contiguous_patterns(runs, min_sup=0.5)
        closed = closed_frequent_patterns(freq)
        assert set(closed) <= set(freq)
        for pattern, support in closed.items():
            assert freq[pattern] == support

    @given(
        st.lists(
            st.lists(st.sampled_from("ab"), min_size=1, max_size=6),
            min_size=2,
            max_size=4,
        )
    )
    @settings(max_examples=50)
    def test_mine_states_covers_all_common_flows(self, runs):
        """Every common flow appears inside some mined state (when min_sup<=1)."""
        common = common_flows(runs)
        if not common:
            return
        filtered = filter_to_common(runs, common)
        states = mine_states(filtered, min_sup=1.0)
        covered = {f for pattern in states for f in pattern}
        assert covered == common


class TestAutomatonInvariants:
    """Property tests over the full mining -> automaton pipeline."""

    @given(
        st.lists(
            st.lists(st.sampled_from("abc"), min_size=1, max_size=7),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_automaton_accepts_every_training_run(self, runs):
        """Section III-D: 'all extracted logs can be precisely represented
        by the constructed automata' — for arbitrary run sets."""
        from repro.core.tasks.automaton import TaskAutomaton

        common = common_flows(runs)
        if not common:
            return
        filtered = [run for run in filter_to_common(runs, common) if run]
        if not filtered:
            return
        automaton = TaskAutomaton.build(filtered, min_sup=0.6)
        for run in filtered:
            assert automaton.accepts(run), (runs, run, automaton.patterns)

    @given(
        st.lists(
            st.lists(st.sampled_from("abcd"), min_size=1, max_size=6),
            min_size=2,
            max_size=4,
        )
    )
    @settings(max_examples=40)
    def test_state_patterns_are_mined_or_singletons(self, runs):
        from repro.core.tasks.automaton import TaskAutomaton
        from repro.core.tasks.mining import mine_states

        common = common_flows(runs)
        if not common:
            return
        filtered = [run for run in filter_to_common(runs, common) if run]
        if not filtered:
            return
        automaton = TaskAutomaton.build(filtered, min_sup=0.6)
        mined = set(mine_states(filtered, min_sup=0.6))
        for pattern in automaton.patterns:
            assert pattern in mined or len(pattern) == 1
