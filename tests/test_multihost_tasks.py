"""Tests for multi-host operator tasks (the paper's future-work extension)."""

import random

import pytest

from repro.core.tasks import TaskLibrary
from repro.ops import ACLUpdateTask, VLANUpdateTask


class TestVLANUpdateTask:
    def test_sequence_touches_every_host(self):
        task = VLANUpdateTask("mgmt", ["h1", "h2", "h3"], "cfgstore")
        keys = [k for _, k in task.flow_sequence(random.Random(1))]
        for host in ("h1", "h2", "h3"):
            assert any(k.dst == host and k.dst_port == 8443 for k in keys)
            assert any(k.src == host and k.src_port == 8443 for k in keys)
        # Config store read first, commit last.
        assert keys[0].dst == "cfgstore"
        assert keys[-1].dst == "cfgstore"

    def test_requires_hosts(self):
        with pytest.raises(ValueError):
            VLANUpdateTask("mgmt", [], "cfg")

    def test_involved_hosts(self):
        task = VLANUpdateTask("m", ["a", "b"], "c")
        assert task.involved_hosts() == {"m", "a", "b", "c"}


class TestACLUpdateTask:
    def test_ssh_profile(self):
        task = ACLUpdateTask("mgmt", ["h1", "h2"])
        keys = [k for _, k in task.flow_sequence(random.Random(2))]
        assert all(k.dst_port == 22 for k in keys)
        assert [k.dst for k in keys] == ["h1", "h2"]

    def test_requires_hosts(self):
        with pytest.raises(ValueError):
            ACLUpdateTask("mgmt", [])


class TestMultiHostDetection:
    def test_masked_vlan_automaton_generalizes(self):
        """The learned template binds distinct placeholders per host and
        matches a VLAN update on entirely different hosts."""
        library = TaskLibrary(service_names={"cfgstore": "CFG"})
        train_task = VLANUpdateTask("mgmt", ["h1", "h2"], "cfgstore")
        runs = [train_task.flow_sequence(random.Random(i)) for i in range(20)]
        library.learn("vlan_update", runs, min_sup=0.6, masked=True)

        other = VLANUpdateTask("admin9", ["web1", "db7"], "cfgstore")
        stream = other.flow_sequence(random.Random(99))
        events = library.detect(stream)
        assert any(e.name == "vlan_update" for e in events)
        event = [e for e in events if e.name == "vlan_update"][0]
        assert {"admin9", "web1", "db7"} <= event.hosts

    def test_vlan_and_acl_do_not_cross_match(self):
        library = TaskLibrary(service_names={"cfgstore": "CFG"})
        vlan_runs = [
            VLANUpdateTask("mgmt", ["h1", "h2"], "cfgstore").flow_sequence(
                random.Random(i)
            )
            for i in range(20)
        ]
        acl_runs = [
            ACLUpdateTask("mgmt", ["h1", "h2"]).flow_sequence(random.Random(i))
            for i in range(20)
        ]
        library.learn("vlan_update", vlan_runs, min_sup=0.6, masked=True)
        library.learn("acl_update", acl_runs, min_sup=0.6, masked=True)

        acl_stream = ACLUpdateTask("m2", ["x", "y"]).flow_sequence(random.Random(7))
        events = library.detect(acl_stream)
        names = {e.name for e in events}
        assert "acl_update" in names
        assert "vlan_update" not in names

    def test_host_count_mismatch_not_detected(self):
        """An update touching fewer hosts than learned is incomplete."""
        library = TaskLibrary(service_names={"cfgstore": "CFG"})
        runs = [
            VLANUpdateTask("mgmt", ["h1", "h2", "h3"], "cfgstore").flow_sequence(
                random.Random(i)
            )
            for i in range(20)
        ]
        library.learn("vlan_update", runs, min_sup=0.6, masked=True)
        small = VLANUpdateTask("mgmt", ["only1"], "cfgstore")
        events = library.detect(small.flow_sequence(random.Random(3)))
        assert not any(e.name == "vlan_update" for e in events)
