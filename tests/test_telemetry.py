"""Unit tests for the data-plane telemetry plane.

Three contracts are load-bearing and checked exhaustively here:

* **bounded memory** — a series is a ring of closed windows plus one
  decimating reservoir, so arbitrarily long runs cannot grow a series
  past its configured capacity;
* **rollup correctness** — window mean/min/max/sum/p95 must agree with a
  numpy recomputation over the same samples (p95 is the inverted-CDF
  order statistic, exact while the reservoir has not decimated);
* **export round-trips** — JSONL events rebuild an equivalent plane, and
  the Prometheus rendering survives label-escaping edge cases.
"""

import json
import math

import numpy
import pytest

from repro.obs.export import read_jsonl, render_prometheus, write_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import escape_label_value, is_known_metric
from repro.obs.telemetry import (
    NOOP_TELEMETRY,
    ComponentSeries,
    NoopTelemetry,
    TelemetryPlane,
    WindowStat,
    iter_telemetry_events,
    percentile_index,
    plane_from_events,
    telemetry_registry,
)


def _numpy_p95(values):
    return float(numpy.percentile(values, 95, method="inverted_cdf"))


# ----------------------------------------------------------------------
# rollup correctness
# ----------------------------------------------------------------------


def test_window_rollups_match_numpy_recomputation():
    rng = numpy.random.default_rng(17)
    values = rng.uniform(0.0, 3.0, size=200).tolist()
    series = ComponentSeries("link", "a--b", "utilization", window=10.0)
    for i, value in enumerate(values):
        series.record(0.01 * i, value)  # all inside [0, 10)
    series.flush()

    (window,) = series.closed_windows()
    assert window.count == len(values)
    assert window.total == pytest.approx(sum(values))
    assert window.mean == pytest.approx(float(numpy.mean(values)))
    assert window.vmin == pytest.approx(float(numpy.min(values)))
    assert window.vmax == pytest.approx(float(numpy.max(values)))
    assert window.last == pytest.approx(values[-1])
    # 200 samples < the default 256-sample reservoir: p95 is exact.
    assert window.p95 == pytest.approx(_numpy_p95(values))


def test_percentile_index_matches_inverted_cdf():
    rng = numpy.random.default_rng(3)
    for n in (1, 2, 5, 19, 20, 21, 100):
        values = sorted(rng.normal(size=n).tolist())
        expected = _numpy_p95(values)
        assert values[percentile_index(n, 0.95)] == pytest.approx(expected)


def test_decimated_reservoir_p95_stays_close_and_deterministic():
    rng = numpy.random.default_rng(5)
    values = rng.uniform(0.0, 1.0, size=5000).tolist()

    def build():
        series = ComponentSeries(
            "link", "a--b", "utilization", window=100.0, sample_capacity=64
        )
        for i, value in enumerate(values):
            series.record(0.01 * i, value)
        series.flush()
        return series.closed_windows()[0]

    first, second = build(), build()
    assert first.p95 == second.p95  # decimation is deterministic
    # The coarse estimate must still land in the distribution's tail.
    assert abs(first.p95 - _numpy_p95(values)) < 0.05


def test_multiple_windows_split_on_stream_time():
    series = ComponentSeries("app", "web", "rpc_latency", window=1.0)
    for t, v in [(0.2, 1.0), (0.7, 3.0), (1.1, 5.0), (2.5, 7.0)]:
        series.record(t, v)
    series.flush()
    windows = series.closed_windows()
    assert [w.count for w in windows] == [2, 1, 1]
    assert [w.t_start for w in windows] == [0.0, 1.0, 2.0]
    assert windows[0].vmax == 3.0 and windows[2].last == 7.0


def test_counter_and_level_peaks_disagree_on_purpose():
    counter = ComponentSeries("link", "a--b", "drops", window=1.0, counter=True)
    level = ComponentSeries("link", "a--b", "utilization", window=1.0)
    # Window [0,1): many small increments; window [1,2): one big spike.
    for t in (0.1, 0.2, 0.3, 0.4):
        counter.record(t, 2.0)
        level.record(t, 0.3)
    counter.record(1.5, 5.0)
    level.record(1.5, 0.9)
    counter.flush()
    level.flush()
    # The counter's worst window is the one with the largest *sum*...
    assert counter.peak_window().t_start == 0.0
    assert counter.peak_value() == 8.0
    # ...the level's is the one with the largest *reading*.
    assert level.peak_window().t_start == 1.0
    assert level.peak_value() == 0.9


def test_window_rate_uses_duration():
    series = ComponentSeries("link", "a--b", "tx_bytes", window=2.0, counter=True)
    series.record(0.5, 100.0)
    series.record(1.5, 300.0)
    series.flush()
    (window,) = series.closed_windows()
    assert window.rate() == pytest.approx(200.0)  # 400 bytes / 2 s


# ----------------------------------------------------------------------
# bounded memory
# ----------------------------------------------------------------------


def test_ring_buffer_evicts_oldest_windows():
    series = ComponentSeries("switch", "ofs1", "flowtable_occupancy", window=1.0, capacity=8)
    for i in range(100):
        series.record(float(i) + 0.5, float(i))
    series.flush()
    windows = series.closed_windows()
    assert len(windows) == 8  # the ring bound, not 100
    assert [w.t_start for w in windows] == [92.0, 93.0, 94.0, 95.0, 96.0, 97.0, 98.0, 99.0]
    # Cumulative aggregates still cover the whole stream.
    assert series.count == 100
    assert series.vmax == 99.0


def test_memory_stays_o_components_not_o_events():
    plane = TelemetryPlane(window=1.0, capacity=16, sample_capacity=32)
    for i in range(20_000):
        plane.record("link", "a--b", "utilization", t=i * 0.01, value=0.5)
    series = plane.get("link", "a--b", "utilization")
    assert len(list(plane)) == 1  # one component, one series
    assert len(series.closed_windows()) <= 16
    if series._acc is not None:
        assert len(series._acc.samples) <= 32
    assert series.count == 20_000


# ----------------------------------------------------------------------
# plane behavior
# ----------------------------------------------------------------------


def test_plane_series_is_get_or_create():
    plane = TelemetryPlane()
    first = plane.series("link", "a--b", "drops", counter=True)
    second = plane.series("link", "a--b", "drops")
    assert first is second
    assert first.counter  # creation kwargs win; later lookups are plain


def test_for_component_matches_edges_and_endpoints():
    plane = TelemetryPlane()
    plane.series("link", "ofs1--ofs5", "drops", counter=True)
    plane.series("switch", "ofs1", "flowtable_occupancy")
    plane.series("switch", "ofs9", "flowtable_occupancy")
    # A bare endpoint picks up its links; an edge matches either order.
    assert {s.component for s in plane.for_component("ofs1")} == {
        "ofs1--ofs5",
        "ofs1",
    }
    # An edge query matches regardless of endpoint order — and also picks
    # up the endpoints' own series, mirroring ``changes_for``.
    assert {s.component for s in plane.for_component("ofs5--ofs1")} == {
        "ofs1--ofs5",
        "ofs1",
    }
    assert plane.for_component("ofs7") == []


def test_noop_plane_is_inert():
    assert NOOP_TELEMETRY.enabled is False
    series = NOOP_TELEMETRY.series("link", "a--b", "drops")
    series.record(1.0, 5.0)  # must not raise, must not retain
    assert list(NOOP_TELEMETRY) == []
    assert isinstance(NOOP_TELEMETRY, NoopTelemetry)


def test_series_names_follow_the_lintable_grammar():
    plane = TelemetryPlane()
    for kind, component, metric in [
        ("link", "a--b", "utilization"),
        ("switch", "ofs1", "flowtable_occupancy"),
        ("controller", "c0", "reply_latency"),
        ("app", "web", "rpc_latency"),
        ("host", "S1", "rpc_latency"),
    ]:
        series = plane.series(kind, component, metric)
        assert is_known_metric(series.name), series.name


def test_plane_rejects_unknown_kind_and_bad_window():
    plane = TelemetryPlane()
    with pytest.raises(ValueError):
        plane.series("rack", "r1", "utilization")
    with pytest.raises(ValueError):
        TelemetryPlane(window=0.0)
    with pytest.raises(ValueError):
        TelemetryPlane(capacity=0)


# ----------------------------------------------------------------------
# export round-trips
# ----------------------------------------------------------------------


def _sample_plane():
    plane = TelemetryPlane(window=1.0, capacity=8)
    for i in range(40):
        t = i * 0.25
        plane.record("link", "ofs1--ofs5", "utilization", t=t, value=0.1 + 0.02 * i)
        plane.record("link", "ofs1--ofs5", "drops", t=t, value=1.0, counter=True)
    plane.record("app", "web", "rpc_latency", t=3.0, value=0.5)
    plane.flush(10.0)
    return plane


def test_window_stat_dict_round_trip():
    stat = WindowStat(1.0, 2.0, 5, 10.0, 1.0, 4.0, 2.0, 3.5)
    assert WindowStat.from_dict(stat.to_dict()) == stat


def test_jsonl_round_trip_rebuilds_equivalent_plane(tmp_path):
    plane = _sample_plane()
    path = str(tmp_path / "telemetry.jsonl")
    lines = write_jsonl(path, MetricsRegistry(), telemetry=plane)
    assert lines == len(list(plane))

    rebuilt = plane_from_events(read_jsonl(path))
    assert sorted(s.name for s in rebuilt) == sorted(s.name for s in plane)
    for series in plane:
        twin = rebuilt.get(series.kind, series.component, series.metric)
        assert twin is not None
        assert twin.counter == series.counter
        assert twin.count == series.count
        assert twin.total == pytest.approx(series.total)
        assert twin.closed_windows() == series.closed_windows()


def test_plane_from_events_skips_foreign_events():
    events = [{"type": "meta"}, {"type": "counter", "name": "x_total"}]
    events.extend(iter_telemetry_events(_sample_plane()))
    rebuilt = plane_from_events(events)
    assert len(list(rebuilt)) == 3


@pytest.mark.parametrize(
    "component",
    [
        'edge "with" quotes',
        "back\\slash--b",
        "new\nline--b",
        'all\\"of\nit',
    ],
)
def test_prometheus_export_escapes_hostile_component_labels(component):
    plane = TelemetryPlane(window=1.0)
    plane.record("link", component, "drops", t=0.5, value=3.0, counter=True)
    plane.flush(2.0)
    text = render_prometheus(telemetry_registry(plane))
    expected = f'component="{escape_label_value(component)}"'
    assert expected in text
    # The escaped form must encode every hostile character...
    assert "\n" not in expected.strip("\n")
    for raw, escaped in (("\\", "\\\\"), ('"', '\\"'), ("\n", "\\n")):
        if raw in component:
            assert escaped in expected
    # ...and the exposition must still be line-structured: every
    # non-comment line is "name{labels} value".
    for line in text.splitlines():
        if line and not line.startswith("#"):
            assert line.rsplit(" ", 1)[1] != ""


def test_telemetry_registry_renders_counters_and_level_stats():
    plane = _sample_plane()
    text = render_prometheus(telemetry_registry(plane))
    assert 'telemetry_link_drops{component="ofs1--ofs5"} 40' in text
    for stat in ("last", "mean", "p95", "min", "max"):
        assert f'stat="{stat}"' in text
    # JSON events embed the same window payloads the ring retains.
    event = next(
        e
        for e in iter_telemetry_events(plane)
        if e["metric"] == "utilization"
    )
    assert len(event["windows"]) <= 8
    assert json.dumps(event)  # JSON-serializable all the way down


def test_render_tables_lists_worst_components_first():
    from repro.obs.telemetry import render_tables

    plane = _sample_plane()
    plane.record("link", "quiet--edge", "utilization", t=0.5, value=0.01)
    plane.flush(10.0)
    text = render_tables(plane)
    assert text.index("ofs1--ofs5") < text.index("quiet--edge")
    assert "link telemetry" in text and "app telemetry" in text


def test_flush_without_close_partial_keeps_open_window():
    series = ComponentSeries("app", "web", "rpc_latency", window=10.0)
    series.record(1.0, 2.0)
    series.flush(now=5.0, close_partial=False)
    assert series.closed_windows() == ()
    series.flush(now=15.0, close_partial=False)
    assert len(series.closed_windows()) == 1


def test_mean_and_duration_guard_empty_windows():
    stat = WindowStat(0.0, 1.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    assert stat.mean == 0.0
    assert stat.rate() == 0.0
    assert math.isfinite(stat.duration)
