"""Tests for the streaming FlowDiff service (:mod:`repro.service`).

The load-bearing property is *equivalence*: a window assembled
incrementally through the signatures' ``merge()`` path must produce a
diagnosis report dict-identical to the batch :class:`SlidingDiagnoser`
remodeling the same window from scratch. Everything else — checkpoint
resume, tenant isolation, backpressure accounting, the HTTP surface —
rides on top of that.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.monitor import SlidingDiagnoser
from repro.faults import LinkLoss
from repro.obs.metrics import MetricsRegistry
from repro.scenarios import three_tier_lab
from repro.service import (
    STATUS_FALLBACK,
    STATUS_MERGED,
    FileTailSource,
    StreamService,
    TenantPipeline,
    create_server,
    replay_messages,
)
from repro.openflow.serialize import save_log

pytestmark = pytest.mark.slow

WINDOW = 10.0
#: Long enough that the lab's healthy traffic models as stable; a 10s
#: baseline still flags its own noise as congestion.
BASELINE = 15.0


def lab_log(fault_at=None, total=40.0):
    scenario = three_tier_lab(seed=3)
    if fault_at is not None:
        scenario.inject(LinkLoss([("ofs1", "ofs5")], loss_rate=0.3), at=fault_at)
    return scenario.run(0.5, total, drain=5.0)


@pytest.fixture(scope="module")
def healthy_log():
    return lab_log()


@pytest.fixture(scope="module")
def faulty_log():
    # Loss on the core link turns on at t=20: windows past it degrade.
    return lab_log(fault_at=20.0)


def batch_reference(log, window=WINDOW, baseline=BASELINE):
    """The batch monitor's window reports over the same capture."""
    diagnoser = SlidingDiagnoser(window=window)
    t_first, _ = log.time_span
    diagnoser.set_baseline(log, t_first, t_first + baseline)
    diagnoser.advance(log)
    return diagnoser.history


def stream_through(log, batch_size=500, **kwargs):
    """Feed the capture through a fresh tenant pipeline in small batches."""
    registry = kwargs.pop("metrics", MetricsRegistry())
    kwargs.setdefault("baseline_span", BASELINE)
    tenant = TenantPipeline(
        "t1", window=WINDOW, metrics=registry, **kwargs
    )
    messages = list(log)
    for start in range(0, len(messages), batch_size):
        tenant.ingest(messages[start : start + batch_size])
    return tenant, registry


def assert_histories_identical(streamed, reference):
    """Every streamed window must be dict-identical to the batch one."""
    assert streamed, "the service must close at least one window"
    assert len(streamed) <= len(reference)
    for svc, ref in zip(streamed, reference):
        assert (svc.t_start, svc.t_end) == (ref.t_start, ref.t_end)
        assert svc.report.to_dict() == ref.report.to_dict()


class TestIncrementalEquivalence:
    def test_healthy_capture_matches_batch(self, healthy_log):
        tenant, registry = stream_through(healthy_log)
        assert_histories_identical(tenant.history, batch_reference(healthy_log))
        # Every window went through the merge path — no remodel happened.
        assert tenant.status_counts == {STATUS_MERGED: tenant.windows_total}
        assert registry.value(
            "service_window_merge_total", tenant="t1", status=STATUS_MERGED
        ) == tenant.windows_total
        assert all(entry.healthy for entry in tenant.history)

    def test_faulted_capture_matches_batch(self, faulty_log):
        tenant, _ = stream_through(faulty_log)
        reference = batch_reference(faulty_log)
        assert_histories_identical(tenant.history, reference)
        assert tenant.status_counts == {STATUS_MERGED: tenant.windows_total}
        # The link-loss onset is visible to both paths identically.
        assert any(not entry.healthy for entry in tenant.history)

    def test_out_of_order_window_falls_back_identically(self, healthy_log):
        messages = list(healthy_log)
        # Swap two strictly-ordered messages inside one post-baseline
        # window so exactly that window goes dirty; equivalence must
        # still hold because the fallback path re-sorts the raw buffer.
        t_first, _ = healthy_log.time_span
        lo = t_first + BASELINE + 2.0
        idx = next(
            i for i, msg in enumerate(messages) if msg.timestamp > lo
        )
        jdx = next(
            j
            for j in range(idx + 1, len(messages))
            if lo < messages[j].timestamp < lo + WINDOW / 2
            and messages[j].timestamp > messages[idx].timestamp
        )
        messages[idx], messages[jdx] = messages[jdx], messages[idx]
        registry = MetricsRegistry()
        tenant = TenantPipeline(
            "t1", window=WINDOW, baseline_span=BASELINE, metrics=registry
        )
        tenant.ingest(messages)
        assert tenant.status_counts.get(STATUS_FALLBACK, 0) >= 1
        assert_histories_identical(tenant.history, batch_reference(healthy_log))

    def test_single_batch_and_tiny_batches_agree(self, healthy_log):
        one, _ = stream_through(healthy_log, batch_size=10 ** 9)
        tiny, _ = stream_through(healthy_log, batch_size=7)
        assert len(one.history) == len(tiny.history)
        for a, b in zip(one.history, tiny.history):
            assert a.report.to_dict() == b.report.to_dict()


class TestCheckpointRestore:
    def test_restart_resumes_and_reports_match(self, faulty_log, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        uninterrupted, _ = stream_through(faulty_log)
        messages = list(faulty_log)
        # Kill mid-stream, after at least one window has closed and
        # while another is open.
        t_first, _ = faulty_log.time_span
        cut = t_first + BASELINE + 1.5 * WINDOW
        split = next(
            i for i, msg in enumerate(messages) if msg.timestamp >= cut
        )
        registry = MetricsRegistry()
        first = TenantPipeline(
            "t1",
            window=WINDOW,
            baseline_span=BASELINE,
            metrics=registry,
            checkpoint_dir=ckpt,
        )
        first.ingest(messages[:split])
        assert first.windows_total >= 1
        assert registry.value("service_checkpoints_total", tenant="t1") >= 1

        # A new pipeline on the same directory resumes at the cursor; the
        # full stream is replayed from the start, as a restarted tail
        # would, and already-diagnosed spans are skipped.
        second = TenantPipeline(
            "t1",
            window=WINDOW,
            baseline_span=BASELINE,
            metrics=registry,
            checkpoint_dir=ckpt,
        )
        assert second.resumed
        assert second.phase == "streaming"
        second.ingest(messages)
        assert registry.value("service_resume_skipped_total", tenant="t1") > 0

        combined = first.history + second.history
        assert len(combined) == len(uninterrupted.history)
        for resumed, straight in zip(combined, uninterrupted.history):
            assert (resumed.t_start, resumed.t_end) == (
                straight.t_start,
                straight.t_end,
            )
            assert resumed.report.to_dict() == straight.report.to_dict()

    def test_cold_start_when_no_checkpoint_exists(self, tmp_path):
        tenant = TenantPipeline(
            "fresh", window=WINDOW, checkpoint_dir=str(tmp_path / "empty")
        )
        assert not tenant.resumed
        assert tenant.phase == "baseline"

    def test_resume_can_be_disabled(self, healthy_log, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first = TenantPipeline("t1", window=WINDOW, checkpoint_dir=ckpt)
        first.ingest(list(healthy_log))
        again = TenantPipeline(
            "t1", window=WINDOW, checkpoint_dir=ckpt, resume=False
        )
        assert not again.resumed
        assert again.phase == "baseline"


class TestTenantIsolation:
    def test_tenants_diagnose_independently(self, healthy_log, faulty_log):
        service = StreamService(window=WINDOW, baseline_span=BASELINE)
        service.add_tenant("steady")
        service.add_tenant("broken")
        with service:
            replay_messages(service, "steady", list(healthy_log))
            replay_messages(service, "broken", list(faulty_log))
            service.drain()
        steady = service.tenants["steady"]
        broken = service.tenants["broken"]
        assert all(entry.healthy for entry in steady.history)
        assert any(not entry.healthy for entry in broken.history)
        assert steady.summary()["worst_severity"] is None
        assert broken.summary()["worst_severity"] == "critical"
        # Shared registry, tenant-labeled instruments: both visible.
        assert service.metrics.value(
            "service_windows_total", tenant="steady"
        ) == steady.windows_total
        assert service.metrics.value(
            "service_windows_total", tenant="broken"
        ) == broken.windows_total

    def test_duplicate_tenant_is_rejected(self):
        service = StreamService()
        service.add_tenant("a")
        with pytest.raises(ValueError):
            service.add_tenant("a")

    def test_unknown_tenant_feed_raises(self, healthy_log):
        service = StreamService()
        with pytest.raises(KeyError):
            service.feed("ghost", list(healthy_log)[:5])


class TestBackpressure:
    def test_nonblocking_feed_drops_with_accounting(self, healthy_log):
        # The drain thread is never started, so the queue fills and the
        # overflow batch must be dropped — counted, not buffered.
        service = StreamService(window=WINDOW, max_pending=2)
        service.add_tenant("t1")
        batch = list(healthy_log)[:100]
        accepted = []
        for _ in range(4):
            accepted.append(service.feed("t1", batch, block=False))
        assert accepted[:2] == [100, 100]
        assert accepted[2:] == [0, 0]
        assert (
            service.metrics.value(
                "service_dropped_total", tenant="t1", reason="backpressure"
            )
            == 200
        )
        assert service.metrics.value("service_queue_depth") == 200

    def test_blocking_feed_waits_for_room(self, healthy_log):
        service = StreamService(window=WINDOW, max_pending=1)
        service.add_tenant("t1")
        batch = list(healthy_log)[:50]
        service.feed("t1", batch)  # fills the queue
        done = threading.Event()

        def second_feed():
            service.feed("t1", batch)  # must block until the drain runs
            done.set()

        feeder = threading.Thread(target=second_feed, daemon=True)
        feeder.start()
        assert not done.wait(0.2), "feed should block while the queue is full"
        service.start()
        assert done.wait(5.0), "feed should complete once draining starts"
        service.stop()
        assert service.metrics.total("service_dropped_total") == 0


class TestDaemonSources:
    def test_file_tail_drives_diagnosis(self, faulty_log, tmp_path):
        path = str(tmp_path / "capture.jsonl")
        save_log(faulty_log, path)
        service = StreamService(window=WINDOW, baseline_span=BASELINE)
        service.add_tenant("t1")
        with service:
            source = FileTailSource(service, "t1", path)
            source.start()
            source.join(timeout=60.0)
            service.drain()
        tenant = service.tenants["t1"]
        assert tenant.windows_total >= 2
        assert tenant.status_counts.get(STATUS_MERGED, 0) >= 2
        assert tenant.summary()["worst_severity"] == "critical"

    def test_undecodable_lines_are_counted_not_fatal(self, healthy_log, tmp_path):
        path = str(tmp_path / "capture.jsonl")
        save_log(healthy_log, path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("this is not json\n")
            fh.write('{"type": "unknown_kind"}\n')
        service = StreamService(window=WINDOW, baseline_span=BASELINE)
        service.add_tenant("t1")
        with service:
            source = FileTailSource(service, "t1", path)
            source.start()
            source.join(timeout=60.0)
            service.drain()
        assert (
            service.metrics.value(
                "service_dropped_total", tenant="t1", reason="decode"
            )
            == 2
        )
        assert service.tenants["t1"].windows_total >= 1


def _get(url):
    with urllib.request.urlopen(url) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _get_error(url):
    try:
        urllib.request.urlopen(url)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))
    raise AssertionError(f"expected an HTTP error from {url}")


class TestHTTPSurface:
    @pytest.fixture(scope="class")
    def served(self, faulty_log):
        service = StreamService(window=WINDOW, baseline_span=BASELINE)
        service.add_tenant("prod")
        service.add_tenant("idle")
        with service:
            replay_messages(service, "prod", list(faulty_log))
            service.drain()
        server = create_server(service)
        server.start()
        yield service, server
        server.stop()

    def test_healthz_carries_tenant_rows(self, served):
        _, server = served
        payload = _get(server.url("/healthz"))
        assert payload["status"] == "ok"
        assert payload["tenants"]["prod"]["windows"] >= 2
        assert payload["tenants"]["idle"]["phase"] == "baseline"

    def test_tenants_page_lists_everyone(self, served):
        _, server = served
        payload = _get(server.url("/tenants"))
        names = {row["tenant"] for row in payload["tenants"]}
        assert names == {"prod", "idle"}

    def test_diff_returns_recent_reports(self, served):
        service, server = served
        payload = _get(server.url("/diff?tenant=prod&n=2"))
        assert payload["tenant"] == "prod"
        assert len(payload["windows"]) == 2
        live = service.tenants["prod"].history[-2:]
        assert payload["windows"][0]["report"] == live[0].report.to_dict()
        assert payload["windows"][-1]["healthy"] == live[-1].healthy

    def test_diff_requires_tenant_when_ambiguous(self, served):
        _, server = served
        code, payload = _get_error(server.url("/diff"))
        assert code == 400
        assert payload["tenants"] == ["idle", "prod"]

    def test_unknown_tenant_is_404(self, served):
        _, server = served
        code, _ = _get_error(server.url("/diff?tenant=nope"))
        assert code == 404

    def test_alerts_are_tenant_labeled_and_ordered(self, served):
        _, server = served
        alerts = _get(server.url("/alerts"))
        assert alerts, "the faulted tenant must have fired alerts"
        assert {row["tenant"] for row in alerts} == {"prod"}
        stamps = [row["timestamp"] or 0.0 for row in alerts]
        assert stamps == sorted(stamps)

    def test_traces_reconstruct_from_the_ring(self, served):
        _, server = served
        payload = _get(server.url("/traces?tenant=prod&limit=5"))
        assert payload["chains"] > 0
        assert len(payload["timelines"]) == 5

    def test_metrics_exports_service_family(self, served):
        _, server = served
        with urllib.request.urlopen(server.url("/metrics")) as resp:
            text = resp.read().decode("utf-8")
        assert 'service_windows_total{tenant="prod"}' in text
        assert "service_queue_depth" in text
