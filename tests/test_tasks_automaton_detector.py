"""Unit tests for task automata and the streaming detector."""

import pytest

from repro.core.tasks.automaton import TaskAutomaton
from repro.core.tasks.detector import TaskDetector, TaskEvent, unify_label
from repro.openflow.match import FlowKey, MaskedFlow


class TestTaskAutomaton:
    RUNS = [
        ["f1", "f2", "f3", "f4", "f5"],
        ["f3", "f4", "f5", "f1"],
        ["f3", "f4", "f5", "f2", "f1"],
    ]

    def test_accepts_all_training_runs(self):
        """'All extracted logs can be precisely represented' (Section III-D)."""
        automaton = TaskAutomaton.build(self.RUNS, min_sup=0.6)
        for run in self.RUNS:
            assert automaton.accepts(run)

    def test_rejects_foreign_runs(self):
        automaton = TaskAutomaton.build(self.RUNS, min_sup=0.6)
        assert not automaton.accepts(["f9", "f8"])
        assert not automaton.accepts([])

    def test_states_include_figure6_chunk(self):
        automaton = TaskAutomaton.build(self.RUNS, min_sup=0.6)
        assert ("f3", "f4", "f5") in automaton.patterns

    def test_start_and_accept_states(self):
        automaton = TaskAutomaton.build(self.RUNS, min_sup=0.6)
        start_patterns = {automaton.patterns[s] for s in automaton.start_states}
        assert ("f1",) in start_patterns or ("f3", "f4", "f5") in start_patterns

    def test_empty_runs_raise(self):
        with pytest.raises(ValueError):
            TaskAutomaton.build([[], []])

    def test_edge_min_sup_prunes_outlier_endpoints(self):
        runs = [["a", "b", "c"]] * 9 + [["c", "a", "b"]]
        loose = TaskAutomaton.build(runs, min_sup=0.6, edge_min_sup=0.0)
        strict = TaskAutomaton.build(runs, min_sup=0.6, edge_min_sup=0.3)
        assert len(strict.start_states) <= len(loose.start_states)

    def test_start_labels_and_flat_labels(self):
        automaton = TaskAutomaton.build(self.RUNS, min_sup=0.6)
        assert automaton.flat_labels() == {"f1", "f2", "f3", "f4", "f5"}
        assert automaton.start_labels() <= automaton.flat_labels()


class TestUnifyLabel:
    def test_flowkey_label_requires_equality(self):
        key = FlowKey("a", "b", 1000, 80)
        assert unify_label(key, key, {}, {}) == {}
        assert unify_label(key, key.reversed(), {}, {}) is None

    def test_placeholder_binds_and_sticks(self):
        label = MaskedFlow("#1", "*", "NFS", "2049")
        key = FlowKey("host9", "nfs-ip", 40000, 2049)
        bindings = unify_label(label, key, {}, {"nfs-ip": "NFS"})
        assert bindings == {"#1": "host9"}
        # Same placeholder must keep resolving to host9.
        key2 = FlowKey("other", "nfs-ip", 41000, 2049)
        assert unify_label(label, key2, bindings, {"nfs-ip": "NFS"}) is None

    def test_placeholder_injectivity(self):
        label = MaskedFlow("#2", "*", "#1", "8002")
        key = FlowKey("hostA", "hostA", 40000, 8002)
        # #1 already bound to hostA; #2 cannot also take hostA.
        assert unify_label(label, key, {"#1": "hostA"}, {}) is None

    def test_service_label_must_match(self):
        label = MaskedFlow("#1", "*", "DNS", "53")
        key = FlowKey("vm", "not-dns", 40000, 53)
        assert unify_label(label, key, {}, {"dns-ip": "DNS"}) is None

    def test_concrete_ports_enforced(self):
        label = MaskedFlow("#1", "68", "#2", "67")
        good = FlowKey("vm", "dhcp", 68, 67)
        bad = FlowKey("vm", "dhcp", 69, 67)
        assert unify_label(label, good, {}, {}) is not None
        assert unify_label(label, bad, {}, {}) is None

    def test_unmasked_host_equality(self):
        label = MaskedFlow("hostA", "*", "hostB", "80")
        assert unify_label(label, FlowKey("hostA", "hostB", 40000, 80), {}, {}) == {}
        assert unify_label(label, FlowKey("hostX", "hostB", 40000, 80), {}, {}) is None


class TestTaskDetector:
    def automaton(self, runs, **kwargs):
        return TaskAutomaton.build(runs, **kwargs)

    def keys(self, *specs):
        """specs: (t, src, dst, sport, dport)."""
        return [(t, FlowKey(s, d, sp, dp)) for t, s, d, sp, dp in specs]

    def simple_task(self):
        """A 3-flow task over concrete FlowKey labels."""
        a = FlowKey("h1", "nfs", 40001, 2049)
        b = FlowKey("h1", "h2", 8002, 8002)
        c = FlowKey("h2", "nfs", 40002, 2049)
        return [a, b, c]

    def test_detects_exact_sequence(self):
        seq = self.simple_task()
        automaton = self.automaton([seq, seq])
        detector = TaskDetector({"mig": automaton})
        events = detector.detect([(0.1 * i, k) for i, k in enumerate(seq)])
        assert len(events) == 1
        assert events[0].name == "mig"
        assert events[0].t_start == pytest.approx(0.0)
        assert events[0].t_end == pytest.approx(0.2)
        assert "h1" in events[0].hosts and "nfs" in events[0].hosts

    def test_tolerates_interleaved_noise(self):
        seq = self.simple_task()
        automaton = self.automaton([seq, seq])
        detector = TaskDetector({"mig": automaton}, interleave_threshold=1.0)
        noise = FlowKey("x", "y", 1, 2)
        stream = [
            (0.0, seq[0]),
            (0.1, noise),
            (0.2, seq[1]),
            (0.3, noise),
            (0.4, seq[2]),
        ]
        assert len(detector.detect(stream)) == 1

    def test_interleave_threshold_kills_stale_matchers(self):
        seq = self.simple_task()
        automaton = self.automaton([seq, seq])
        detector = TaskDetector({"mig": automaton}, interleave_threshold=1.0)
        stream = [(0.0, seq[0]), (0.1, seq[1]), (5.0, seq[2])]  # 4.9s gap
        assert detector.detect(stream) == []

    def test_incomplete_sequence_not_detected(self):
        seq = self.simple_task()
        automaton = self.automaton([seq, seq])
        detector = TaskDetector({"mig": automaton})
        assert detector.detect([(0.0, seq[0]), (0.1, seq[1])]) == []

    def test_multiple_occurrences_detected(self):
        seq = self.simple_task()
        automaton = self.automaton([seq, seq])
        detector = TaskDetector({"mig": automaton})
        stream = [(0.1 * i, k) for i, k in enumerate(seq)]
        stream += [(10 + 0.1 * i, k) for i, k in enumerate(seq)]
        events = detector.detect(stream)
        assert len(events) == 2

    def test_overlapping_duplicates_merged(self):
        seq = self.simple_task()
        automaton = self.automaton([seq, seq])
        detector = TaskDetector({"mig": automaton})
        # Duplicate first flow: two matchers spawn, one event reported.
        stream = [(0.0, seq[0]), (0.01, seq[0]), (0.1, seq[1]), (0.2, seq[2])]
        assert len(detector.detect(stream)) == 1

    def test_masked_automaton_generalizes_to_other_hosts(self):
        from repro.openflow.match import mask_flows

        seq = self.simple_task()
        masked_runs = [
            mask_flows(seq, service_names={"nfs": "NFS"}) for _ in range(2)
        ]
        automaton = self.automaton(masked_runs)
        detector = TaskDetector(
            {"mig": automaton}, service_names={"nfs": "NFS"}
        )
        other_vm = [
            FlowKey("hostX", "nfs", 51000, 2049),
            FlowKey("hostX", "hostY", 8002, 8002),
            FlowKey("hostY", "nfs", 52000, 2049),
        ]
        events = detector.detect([(0.1 * i, k) for i, k in enumerate(other_vm)])
        assert len(events) == 1
        assert "hostX" in events[0].hosts

    def test_task_event_covers(self):
        event = TaskEvent(name="t", t_start=5.0, t_end=7.0)
        assert event.covers(6.0)
        assert event.covers(4.5, slack=1.0)
        assert not event.covers(9.0, slack=1.0)
