"""Tests for the ``repro lint`` command-line surface."""

import json
import os
import textwrap

from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


class TestLintCommand:
    def test_repo_lints_clean_with_exit_zero(self, capsys):
        assert main(["lint", REPO_SRC]) == 0
        out = capsys.readouterr().out
        assert out.startswith("clean:")

    def test_default_paths_are_the_installed_package(self, capsys):
        assert main(["lint"]) == 0

    def test_violation_exits_nonzero_with_clickable_line(self, tmp_path, capsys):
        bad = write(
            tmp_path,
            "repro/netsim/bad.py",
            """\
            import time

            def handle(pkt):
                return time.time()
            """,
        )
        assert main(["lint", bad]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:4: [sim-clock]" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        bad = write(
            tmp_path,
            "repro/netsim/bad.py",
            """\
            import random

            def jitter():
                return random.random()
            """,
        )
        assert main(["lint", "--format", "json", bad]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "determinism"

    def test_update_schemas_writes_manifest(self, tmp_path, capsys, monkeypatch):
        import repro.qa.schemas as schemas_mod

        target = tmp_path / "schemas.json"
        monkeypatch.setattr(
            schemas_mod, "DEFAULT_MANIFEST_PATH", str(target)
        )
        assert main(["lint", "--update-schemas", REPO_SRC]) == 0
        assert target.exists()
        written = json.loads(target.read_text(encoding="utf-8"))
        assert set(written["schemas"]) == {"capture", "model", "tasks"}
