"""The monitor and task library working together over a long log."""

import random

import pytest

from repro.core.monitor import SlidingDiagnoser
from repro.core.tasks import TaskLibrary
from repro.faults import HighCPU
from repro.ops import VMStopTask
from repro.scenarios import three_tier_lab

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def setting():
    """120 s with a planned VM stop at t=45 and a CPU fault at t=80."""
    scenario = three_tier_lab(seed=3)
    VMStopTask("VM1", "S20").run(scenario.network, at=45.0)
    scenario.inject(HighCPU("S3", factor=3.0), at=80.0)
    log = scenario.run(0.5, 120.0)

    library = TaskLibrary()
    library.learn(
        "vm_stop",
        [VMStopTask("VM1", "S20").flow_sequence(random.Random(i)) for i in range(20)],
        masked=True,
    )
    return log, library


class TestMonitorWithTasks:
    def test_task_window_not_flagged(self, setting):
        log, library = setting
        diagnoser = SlidingDiagnoser(window=15.0, task_library=library)
        diagnoser.set_baseline(log, 0.0, 30.0)
        diagnoser.advance(log)
        task_windows = [
            e for e in diagnoser.history if e.t_start <= 45.0 < e.t_end
        ]
        assert task_windows
        for entry in task_windows:
            assert entry.healthy, [
                c.brief() for c in entry.report.unknown_changes
            ]
            # The task itself was observed and attributed.
            names = {ev.name for ev in entry.report.task_events}
            assert "vm_stop" in names

    def test_fault_still_flagged_despite_library(self, setting):
        log, library = setting
        diagnoser = SlidingDiagnoser(window=15.0, task_library=library)
        diagnoser.set_baseline(log, 0.0, 30.0)
        diagnoser.advance(log)
        first_bad = diagnoser.first_unhealthy()
        assert first_bad is not None
        assert first_bad.t_end > 80.0
        suspects = [
            c for c, _ in first_bad.report.component_ranking if "--" not in c
        ]
        assert "S3" in suspects[:3]
