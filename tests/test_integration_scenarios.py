"""Deeper end-to-end scenarios: compound faults, recovery, boundaries."""

import pytest

from repro import FlowDiff
from repro.core.signatures import SignatureKind
from repro.faults import (
    BackgroundTraffic,
    HostShutdown,
    LoggingMisconfig,
)
from repro.openflow.log import ControllerLog
from repro.scenarios import three_tier_lab

pytestmark = pytest.mark.slow

DURATION = 30.0


def capture(faults=(), seed=3, stop=DURATION):
    scenario = three_tier_lab(seed=seed)
    for fault, at, until in faults:
        scenario.inject(fault, at=at, until=until)
    return scenario.run(0.5, stop)


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def baseline(fd):
    return fd.model(capture())


class TestCompoundFaults:
    def test_two_simultaneous_faults_both_visible(self, fd, baseline):
        """A slow server AND an iperf hog: both symptom sets must appear."""
        log = capture(
            faults=[
                (LoggingMisconfig("S3", 0.05), 0.0, None),
                (
                    BackgroundTraffic(
                        "S24", "S25", rate_bytes=200_000_000, duration=DURATION
                    ),
                    0.0,
                    None,
                ),
            ]
        )
        report = fd.diff(baseline, fd.model(log, assess=False))
        kinds = set(report.changed_kinds())
        assert SignatureKind.DD in kinds  # the slow server
        assert SignatureKind.ISL in kinds  # the congestion
        suspects = [c for c, _ in report.component_ranking if "--" not in c]
        assert "S3" in suspects[:6]

    def test_fault_plus_shutdown_distinct_components(self, fd, baseline):
        log = capture(
            faults=[
                (LoggingMisconfig("S3", 0.05), 0.0, None),
                (HostShutdown("S8"), 0.0, None),
            ]
        )
        report = fd.diff(baseline, fd.model(log, assess=False))
        components = set()
        for change in report.unknown_changes:
            components |= change.components
        assert "S3" in components
        assert "S8" in components


class TestRecovery:
    def test_reverted_fault_leaves_later_window_clean(self, fd, baseline):
        """A fault active only early in the log: the tail looks healthy."""
        scenario = three_tier_lab(seed=3)
        scenario.inject(LoggingMisconfig("S3", 0.05), at=0.0, until=20.0)
        log = scenario.run(0.5, 60.0)
        early = fd.model(log.window(0.5, 18.0), assess=False)
        late = fd.model(log.window(30.0, 60.0), assess=False)
        assert not fd.diff(baseline, early).healthy
        assert fd.diff(baseline, late).healthy


class TestBoundaries:
    def test_model_of_empty_log(self, fd):
        model = fd.model(ControllerLog())
        assert model.app_signatures == {}
        assert model.infrastructure.crt.count == 0

    def test_diff_against_empty_current(self, fd, baseline):
        empty = fd.model(ControllerLog(), assess=False)
        report = fd.diff(baseline, empty)
        # Everything disappeared: structural removals, no crash.
        assert not report.healthy
        assert all(
            c.direction == "removed"
            for c in report.unknown_changes
            if c.kind == SignatureKind.CG
        )

    def test_diff_empty_against_empty(self, fd):
        a = fd.model(ControllerLog(), assess=False)
        b = fd.model(ControllerLog(), assess=False)
        assert fd.diff(a, b).healthy

    def test_very_short_window(self, fd, baseline):
        log = capture(stop=2.0)
        model = fd.model(log, assess=False)
        report = fd.diff(baseline, model)
        # A 2 s sample is sparse: rates differ wildly, but the report must
        # still be well-formed and structural signatures consistent.
        for change in report.unknown_changes:
            assert change.kind in SignatureKind

    def test_same_model_diff_is_healthy(self, fd, baseline):
        assert fd.diff(baseline, baseline).healthy


class TestPortStatusCorroboration:
    def test_switch_failure_includes_port_down_evidence(self, fd, baseline):
        """A failed switch's own PortStatus report lands in the diff."""
        from repro.faults import SwitchFailure

        scenario = three_tier_lab(seed=3)
        scenario.inject(SwitchFailure("ofs5"), at=5.0)
        log = scenario.run(0.5, DURATION)
        model = fd.model(log, assess=False)
        assert "ofs5" in model.infrastructure.corroborated_dead_switches()
        report = fd.diff(baseline, model)
        assert any(
            "reported port" in c.description and "ofs5" in c.components
            for c in report.unknown_changes
        )

    def test_healthy_run_no_port_events(self, fd, baseline):
        log = capture(seed=29)
        model = fd.model(log, assess=False)
        assert model.infrastructure.port_down_events == ()
