"""Tests for the distributed control plane (Section VI)."""

import pytest

from repro import FlowDiff
from repro.core.signatures import build_application_signatures
from repro.netsim.network import FlowRequest, Network, NetworkConfig
from repro.netsim.topology import lab_testbed, linear_topology
from repro.openflow.match import FlowKey


def run_flows(net, n=5, until=30.0):
    for i in range(n):
        net.send_flow(
            FlowRequest(
                key=FlowKey("h1", "h5", 40000 + i, 80),
                size_bytes=4000,
                duration=0.01,
            )
        )
    net.sim.run(until=until)


class TestDistributedControlPlane:
    def test_switches_partitioned_across_controllers(self):
        net = Network(linear_topology(3, 2), config=NetworkConfig(n_controllers=2))
        assert len(net.controllers) == 2
        owners = {net.controller_for(d) for d in net.switches}
        assert len(owners) == 2

    def test_each_controller_sees_only_its_switches(self):
        net = Network(linear_topology(3, 2), config=NetworkConfig(n_controllers=2))
        run_flows(net)
        for controller in net.controllers:
            dpids = {m.dpid for m in controller.log.packet_ins()}
            expected = {
                d for d in net.switches if net.controller_for(d) is controller
            }
            assert dpids <= expected

    def test_merged_log_equivalent_to_centralized(self):
        """Distribution must not change what FlowDiff can observe."""
        central = Network(linear_topology(3, 2), config=NetworkConfig(n_controllers=1))
        run_flows(central)
        distributed = Network(
            linear_topology(3, 2), config=NetworkConfig(n_controllers=3)
        )
        run_flows(distributed)
        c_pins = {(p.dpid, p.flow) for p in central.log.packet_ins()}
        d_pins = {(p.dpid, p.flow) for p in distributed.log.packet_ins()}
        assert c_pins == d_pins
        assert len(central.log.flow_removed()) == len(
            distributed.log.flow_removed()
        )

    def test_flowdiff_on_merged_distributed_log(self):
        from repro.scenarios import three_tier_lab
        from repro.netsim.network import NetworkConfig

        scenario = three_tier_lab(
            seed=3, network_config=NetworkConfig(n_controllers=2)
        )
        log = scenario.run(0.5, 15.0)
        sigs = build_application_signatures(log)
        assert sigs
        sig = next(iter(sigs.values()))
        assert ("S1", "S3") in sig.cg.edges

    def test_controller_faults_hit_all_instances(self):
        from repro.faults import ControllerFailure, ControllerOverload

        net = Network(linear_topology(3, 2), config=NetworkConfig(n_controllers=2))
        ControllerOverload(5.0).apply(net)
        assert all(c.overload_factor == 5.0 for c in net.controllers)
        ControllerFailure().apply(net)
        assert all(not c.live for c in net.controllers)
        ControllerFailure().revert(net)
        assert all(c.live for c in net.controllers)
