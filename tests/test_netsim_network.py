"""Integration tests for the network: control-plane choreography and faults."""

import pytest

from repro.netsim.network import FlowRequest, Network, NetworkConfig
from repro.netsim.topology import lab_testbed, linear_topology
from repro.openflow.controller import ControllerConfig
from repro.openflow.match import FlowKey
from repro.openflow.messages import FlowRemovedReason


def make_network(n_switches=3, hosts_per_switch=2, **config_kwargs):
    topo = linear_topology(n_switches, hosts_per_switch)
    return Network(topo, config=NetworkConfig(**config_kwargs))


def send_and_run(net, key, size=5000, duration=0.02, until=30.0):
    results = []
    net.send_flow(
        FlowRequest(key=key, size_bytes=size, duration=duration),
        on_complete=results.append,
    )
    net.sim.run(until=until)
    return results[0]


class TestForwarding:
    def test_flow_crosses_every_switch(self):
        net = make_network()
        result = send_and_run(net, FlowKey("h1", "h5", 40000, 80))
        assert result.delivered
        assert result.path == ("h1", "sw1", "sw2", "sw3", "h5")

    def test_one_packet_in_per_switch(self):
        """Figure 3: every on-path switch reports the new flow."""
        net = make_network()
        send_and_run(net, FlowKey("h1", "h5", 40000, 80))
        pins = net.log.packet_ins()
        assert [p.dpid for p in pins] == ["sw1", "sw2", "sw3"]
        # Timestamps strictly increase along the path.
        stamps = [p.timestamp for p in pins]
        assert stamps == sorted(stamps)

    def test_second_flow_same_key_hits_table(self):
        net = make_network()
        key = FlowKey("h1", "h5", 40000, 80)
        send_and_run(net, key, until=1.0)
        before = len(net.log.packet_ins())
        net.send_flow(FlowRequest(key=key, size_bytes=100, duration=0.001))
        net.sim.run(until=2.0)
        assert len(net.log.packet_ins()) == before  # no new misses

    def test_expired_entry_triggers_new_packet_in(self):
        net = make_network()
        key = FlowKey("h1", "h5", 40000, 80)
        send_and_run(net, key, until=30.0)  # entries expired by now
        before = len(net.log.packet_ins())
        net.send_flow(FlowRequest(key=key, size_bytes=100, duration=0.001))
        net.sim.run(until=60.0)
        assert len(net.log.packet_ins()) == before + 3

    def test_flow_removed_carries_full_byte_count(self):
        net = make_network()
        send_and_run(net, FlowKey("h1", "h5", 40000, 80), size=25000)
        removed = net.log.flow_removed()
        assert len(removed) == 3
        for fr in removed:
            assert fr.byte_count == 25000
            assert fr.reason == FlowRemovedReason.IDLE_TIMEOUT

    def test_flow_removed_duration_close_to_flow_duration(self):
        net = make_network()
        send_and_run(net, FlowKey("h1", "h5", 40000, 80), duration=2.0, until=60.0)
        for fr in net.log.flow_removed():
            assert fr.duration == pytest.approx(2.0, abs=0.5)

    def test_long_flow_entry_stays_alive(self):
        """Body checkpoints refresh idle timeouts across a long flow."""
        net = make_network()
        result = send_and_run(
            net, FlowKey("h1", "h5", 40000, 80), size=50000, duration=20.0, until=90.0
        )
        assert result.delivered
        # One FlowRemoved per switch, not multiple from mid-flow expiry.
        assert len(net.log.flow_removed()) == 3

    def test_unknown_destination_fails(self):
        net = make_network()
        result = send_and_run(net, FlowKey("h1", "ghost", 40000, 80))
        assert not result.delivered

    def test_counters(self):
        net = make_network()
        send_and_run(net, FlowKey("h1", "h5", 40000, 80))
        assert net.flows_sent == 1
        assert net.flows_delivered == 1


class TestDeploymentModes:
    def test_wildcard_rules_reduce_packet_ins(self):
        reactive = make_network()
        send_and_run(reactive, FlowKey("h1", "h5", 40000, 80), until=1.0)
        reactive.send_flow(
            FlowRequest(key=FlowKey("h1", "h5", 41000, 81), size_bytes=100, duration=0.001)
        )
        reactive.sim.run(until=2.0)
        micro_pins = len(reactive.log.packet_ins())

        wild_cfg = NetworkConfig(
            controller=ControllerConfig(use_microflow_rules=False)
        )
        wild = Network(linear_topology(3, 2), config=wild_cfg)
        send_and_run(wild, FlowKey("h1", "h5", 40000, 80), until=1.0)
        wild.send_flow(
            FlowRequest(key=FlowKey("h1", "h5", 41000, 81), size_bytes=100, duration=0.001)
        )
        wild.sim.run(until=2.0)
        assert len(wild.log.packet_ins()) < micro_pins

    def test_proactive_deployment_silences_control_traffic(self):
        net = make_network()
        installed = net.proactive_install_all_pairs()
        assert installed > 0
        result = send_and_run(net, FlowKey("h1", "h5", 40000, 80))
        assert result.delivered
        assert len(net.log.packet_ins()) == 0
        assert len(net.log.flow_removed()) == 0

    def test_stats_polling_emits_replies(self):
        net = make_network()
        net.enable_stats_polling(interval=0.5, until=5.0)
        send_and_run(net, FlowKey("h1", "h5", 40000, 80), until=6.0)
        from repro.openflow.messages import FlowStatsReply

        assert len(net.log.of_type(FlowStatsReply)) > 0


class TestFaultHooks:
    def test_switch_failure_reroutes_or_drops(self):
        topo = lab_testbed()
        net = Network(topo)
        key = FlowKey("S1", "S3", 40000, 80)
        r1 = send_and_run(net, key, until=5.0)
        assert r1.delivered
        assert "ofs1" in r1.path or "ofs2" in r1.path
        crossed = "ofs1" if "ofs1" in r1.path else "ofs2"
        net.fail_switch(crossed)
        r2 = []
        net.send_flow(
            FlowRequest(key=FlowKey("S1", "S3", 41000, 80), size_bytes=100, duration=0.01),
            on_complete=r2.append,
        )
        net.sim.run(until=40.0)
        assert r2[0].delivered
        assert crossed not in r2[0].path

    def test_switch_failure_disconnects_without_alternative(self):
        net = make_network()  # linear: sw2 is a cut vertex
        net.fail_switch("sw2")
        result = send_and_run(net, FlowKey("h1", "h5", 40000, 80))
        assert not result.delivered

    def test_link_failure_and_recovery(self):
        net = make_network()
        net.fail_link("sw1", "sw2")
        assert not send_and_run(net, FlowKey("h1", "h5", 40000, 80), until=40.0).delivered
        net.recover_link("sw1", "sw2")
        r = []
        net.send_flow(
            FlowRequest(key=FlowKey("h1", "h5", 42000, 80), size_bytes=100, duration=0.01),
            on_complete=r.append,
        )
        net.sim.run(until=80.0)
        assert r[0].delivered

    def test_host_shutdown_blocks_flows(self):
        net = make_network()
        net.shutdown_host("h5")
        assert not send_and_run(net, FlowKey("h1", "h5", 40000, 80)).delivered
        net.boot_host("h5")
        r = []
        net.send_flow(
            FlowRequest(key=FlowKey("h1", "h5", 43000, 80), size_bytes=100, duration=0.01),
            on_complete=r.append,
        )
        net.sim.run(until=60.0)
        assert r[0].delivered

    def test_firewall_blocks_port_only(self):
        net = make_network()
        net.block_port("h5", 3306)
        assert not send_and_run(net, FlowKey("h1", "h5", 40000, 3306), until=1.0).delivered
        r = []
        net.send_flow(
            FlowRequest(key=FlowKey("h1", "h5", 40001, 80), size_bytes=100, duration=0.01),
            on_complete=r.append,
        )
        net.sim.run(until=30.0)
        assert r[0].delivered

    def test_link_loss_inflates_observed_bytes(self):
        net = make_network(seed=5)
        net.set_link_loss("sw1", "sw2", 0.3)
        total = 0
        for i in range(30):
            result = send_and_run(
                net,
                FlowKey("h1", "h5", 40000 + i, 80),
                size=14600,
                until=net.sim.now + 60.0,
            )
            if result.delivered:
                total += result.observed_bytes - 14600
        assert total > 0

    def test_migrate_host_changes_path(self):
        net = make_network()
        r1 = send_and_run(net, FlowKey("h1", "h5", 40000, 80), until=5.0)
        net.migrate_host("h5", "sw1")
        r2 = []
        net.send_flow(
            FlowRequest(key=FlowKey("h1", "h5", 41000, 80), size_bytes=100, duration=0.01),
            on_complete=r2.append,
        )
        net.sim.run(until=40.0)
        assert r2[0].path == ("h1", "sw1", "h5")

    def test_controller_failure_blackholes_new_flows(self):
        net = make_network()
        net.controller.fail()
        results = []
        net.send_flow(
            FlowRequest(key=FlowKey("h1", "h5", 40000, 80), size_bytes=100, duration=0.01),
            on_complete=results.append,
        )
        net.sim.run(until=10.0)
        assert results and not results[0].delivered
        assert len(net.log.flow_mods()) == 0  # no replies from a dead brain


class TestECMP:
    def test_ecmp_spreads_flows_across_cores(self):
        """With ECMP on the paper tree, both core switches carry traffic."""
        from repro.netsim.topology import paper_tree

        topo = paper_tree(racks=4, servers_per_rack=2)
        net = Network(topo, config=NetworkConfig(ecmp=True))
        for i in range(40):
            net.send_flow(
                FlowRequest(
                    key=FlowKey("srv1", "srv8", 40000 + i, 80),
                    size_bytes=1000,
                    duration=0.005,
                )
            )
        net.sim.run(until=30.0)
        dpids = {p.dpid for p in net.log.packet_ins()}
        assert {"core1", "core2"} <= dpids or {
            "agg1_1",
            "agg1_2",
        } <= dpids, f"only one fabric side used: {sorted(dpids)}"

    def test_ecmp_flow_path_is_stable(self):
        """The same 5-tuple always hashes to the same path."""
        from repro.netsim.topology import paper_tree

        def run_once():
            topo = paper_tree(racks=4, servers_per_rack=2)
            net = Network(topo, config=NetworkConfig(ecmp=True))
            done = []
            net.send_flow(
                FlowRequest(
                    key=FlowKey("srv1", "srv8", 41000, 80),
                    size_bytes=1000,
                    duration=0.005,
                ),
                on_complete=done.append,
            )
            net.sim.run(until=30.0)
            return done[0].path

        assert run_once() == run_once()

    def test_ecmp_off_by_default(self):
        assert NetworkConfig().ecmp is False
