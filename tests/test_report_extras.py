"""Tests for HTML export, report drill-down, and automaton DOT export."""

import pytest

from repro import FlowDiff
from repro.core.diff.html import report_to_html, save_html_report
from repro.core.tasks.automaton import TaskAutomaton
from repro.faults import LoggingMisconfig
from repro.scenarios import three_tier_lab


@pytest.fixture(scope="module")
def report():
    fd = FlowDiff()

    def capture(fault=None):
        scenario = three_tier_lab(seed=3)
        if fault:
            scenario.inject(fault, at=0.0)
        return scenario.run(0.5, 25.0)

    baseline = fd.model(capture())
    return fd.diff(baseline, fd.model(capture(LoggingMisconfig("S3", 0.05)), assess=False))


class TestHtmlExport:
    def test_contains_findings(self, report):
        doc = report_to_html(report)
        assert doc.startswith("<!DOCTYPE html>")
        assert "unexplained" in doc
        assert "S3" in doc
        assert "DD" in doc
        assert "First response" in doc

    def test_escapes_content(self):
        from repro.core.diff.dependency import DependencyMatrix
        from repro.core.diff.report import DiagnosisReport
        from repro.core.signatures.base import ChangeRecord, SignatureKind

        nasty = ChangeRecord(
            kind=SignatureKind.CG,
            scope="<script>alert(1)</script>",
            description="bad & <b>bold</b>",
        )
        doc = report_to_html(
            DiagnosisReport(
                unknown_changes=(nasty,),
                known_changes=(),
                task_events=(),
                problems=(),
                dependency=DependencyMatrix.from_changes([nasty]),
                component_ranking=(),
            )
        )
        assert "<script>" not in doc
        assert "&lt;script&gt;" in doc

    def test_save_to_file(self, report, tmp_path):
        path = str(tmp_path / "report.html")
        save_html_report(report, path, title="incident 42")
        content = open(path).read()
        assert "incident 42" in content

    def test_healthy_report(self):
        fd = FlowDiff()
        log = three_tier_lab(seed=3).run(0.5, 10.0)
        model = fd.model(log, assess=False)
        doc = report_to_html(fd.diff(model, model))
        assert "No unexplained" in doc


class TestDrillDown:
    def test_changes_for_host(self, report):
        changes = report.changes_for("S3")
        assert changes
        assert all("S3" in c.components or any(
            "S3" in comp.split("--") for comp in c.components if "--" in comp
        ) for c in changes)

    def test_changes_for_edge_endpoint(self, report):
        # Querying an endpoint also surfaces edge components.
        assert report.changes_for("S1")

    def test_unknown_component_empty(self, report):
        assert report.changes_for("nonexistent-host") == ()


class TestAutomatonDot:
    def test_dot_structure(self):
        automaton = TaskAutomaton.build(
            [["a", "b", "c"], ["a", "b", "c"], ["b", "c", "a"]], min_sup=0.6
        )
        dot = automaton.to_dot("startup")
        assert dot.startswith('digraph "startup"')
        assert dot.rstrip().endswith("}")
        assert "doublecircle" in dot  # accept states marked
        assert "->" in dot
        # One node per state.
        assert dot.count("[label=") == automaton.n_states
