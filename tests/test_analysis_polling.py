"""Tests for polled-counter utilization analysis."""

import pytest

from repro.analysis.polling import busiest_switches, switch_throughput
from repro.netsim.network import FlowRequest, Network
from repro.netsim.topology import linear_topology
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowStatsReply


def reply(ts, dpid, nbytes, match=None):
    return FlowStatsReply(
        timestamp=ts,
        dpid=dpid,
        match=match or Match.exact(FlowKey("a", "b", 1, 2)),
        byte_count=nbytes,
    )


class TestSwitchThroughput:
    def test_empty_log(self):
        assert switch_throughput(ControllerLog()) == {}

    def test_counter_deltas(self):
        log = ControllerLog(
            [reply(0.0, "sw1", 1000), reply(1.0, "sw1", 3000), reply(2.0, "sw1", 3000)]
        )
        series = switch_throughput(log, bucket=1.0)["sw1"]
        values = [p.bytes_per_sec for p in series]
        # First snapshot contributes 1000, second's delta 2000, third 0.
        assert values == [1000.0, 2000.0]

    def test_counter_reset_treated_as_fresh(self):
        log = ControllerLog([reply(0.0, "sw1", 5000), reply(1.0, "sw1", 700)])
        series = switch_throughput(log, bucket=1.0)["sw1"]
        assert [p.bytes_per_sec for p in series] == [5000.0, 700.0]

    def test_per_switch_separation(self):
        log = ControllerLog([reply(0.0, "sw1", 100), reply(0.0, "sw2", 900)])
        out = switch_throughput(log)
        assert set(out) == {"sw1", "sw2"}

    def test_busiest_ranking(self):
        log = ControllerLog(
            [reply(0.0, "sw1", 100), reply(0.0, "sw2", 900), reply(0.0, "sw3", 500)]
        )
        ranked = busiest_switches(log)
        assert [d for d, _ in ranked] == ["sw2", "sw3", "sw1"]

    def test_end_to_end_with_polling_network(self):
        net = Network(linear_topology(3, 2))
        net.enable_stats_polling(interval=0.5, until=5.0)
        net.send_flow(
            FlowRequest(
                key=FlowKey("h1", "h5", 40000, 80), size_bytes=50000, duration=3.0
            )
        )
        net.sim.run(until=10.0)
        ranked = busiest_switches(net.log)
        assert ranked
        assert all(mean > 0 for _, mean in ranked)
        # Every on-path switch saw roughly the same bytes.
        means = [mean for _, mean in ranked]
        assert max(means) < 4 * min(means)
