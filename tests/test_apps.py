"""Unit and integration tests for servers, multi-tier apps, and clients."""

import random

import pytest

from repro.apps.client import WorkloadClient
from repro.apps.multitier import MultiTierApp, TierSpec
from repro.apps.servers import DelayModel, ServerBehavior, ServerFarm
from repro.apps.services import SERVICE_PORTS, ServiceDirectory
from repro.netsim.network import Network
from repro.netsim.topology import lab_testbed, linear_topology
from repro.workload.arrivals import FixedProcess, PoissonProcess


def simple_app(net=None, reuse=0.0, balancer="round_robin", servers=("h3", "h4")):
    net = net or Network(linear_topology(3, 2))
    farm = ServerFarm()
    farm.set_delay("h3", 0.02, 0.0)
    farm.set_delay("h4", 0.02, 0.0)
    farm.set_delay("h5", 0.01, 0.0)
    app = MultiTierApp(
        "test",
        [
            TierSpec("web", servers, 80, reuse_prob=reuse, balancer=balancer),
            TierSpec("db", ("h5",), 3306),
        ],
        net,
        farm,
        seed=9,
    )
    return net, farm, app


class TestServerBehavior:
    def test_delay_model_sampling(self):
        model = DelayModel(mean=0.05, std=0.0)
        assert model.sample(random.Random(1)) == pytest.approx(0.05)

    def test_floor_clamps(self):
        model = DelayModel(mean=0.0001, std=0.0, floor=0.01)
        assert model.sample(random.Random(1)) == 0.01

    def test_faults_compose(self):
        behavior = ServerBehavior(delay=DelayModel(mean=0.1, std=0.0))
        behavior.cpu_factor = 2.0
        behavior.logging_overhead = 0.05
        assert behavior.service_time(random.Random(1)) == pytest.approx(0.25)

    def test_reset_faults(self):
        behavior = ServerBehavior()
        behavior.cpu_factor = 5.0
        behavior.crashed = True
        behavior.reset_faults()
        assert behavior.cpu_factor == 1.0
        assert not behavior.crashed

    def test_farm_lazy_creation_and_fault_api(self):
        farm = ServerFarm()
        farm.enable_logging_fault("s1", 0.03)
        farm.enable_cpu_fault("s2", 4.0)
        farm.crash("s3")
        assert farm.behavior("s1").logging_overhead == 0.03
        assert farm.behavior("s2").cpu_factor == 4.0
        assert farm.behavior("s3").crashed
        farm.clear_faults()
        assert not farm.behavior("s3").crashed


class TestServiceDirectory:
    def test_standard_directory(self):
        services = ServiceDirectory.standard()
        assert services.host("DNS") == "svc-dns"
        assert services.port("NFS") == 2049
        assert "svc-nfs" in services.special_nodes()
        assert services.service_names()["svc-dns"] == "DNS"
        assert services.label_of("svc-ntp") == "NTP"
        assert services.label_of("random-host") is None

    def test_register_into_topology(self):
        topo = linear_topology(2, 1)
        services = ServiceDirectory.standard()
        services.register_into(topo, attach_to="sw1")
        for host in services.special_nodes():
            assert host in topo.graph
        # idempotent
        services.register_into(topo, attach_to="sw1")


class TestMultiTierApp:
    def test_request_completes_end_to_end(self):
        net, _, app = simple_app()
        outcomes = []
        app.handle_request("h1", on_done=outcomes.append)
        net.sim.run(until=20.0)
        assert len(outcomes) == 1
        assert outcomes[0].completed
        assert outcomes[0].response_time > 0.04  # two service times

    def test_request_generates_expected_edges(self):
        net, _, app = simple_app(servers=("h3",))
        app.handle_request("h1")
        net.sim.run(until=20.0)
        endpoints = {(p.flow.src, p.flow.dst) for p in net.log.packet_ins()}
        assert ("h1", "h3") in endpoints
        assert ("h3", "h5") in endpoints
        assert ("h5", "h3") in endpoints  # response
        assert ("h3", "h1") in endpoints

    def test_round_robin_balances(self):
        net, _, app = simple_app()
        for _ in range(10):
            app.handle_request("h1")
        net.sim.run(until=30.0)
        dsts = [p.flow.dst for p in net.log.packet_ins() if p.flow.src == "h1"]
        assert dsts.count("h3") == pytest.approx(dsts.count("h4"), abs=2)

    def test_connection_reuse_suppresses_packet_ins(self):
        net1, _, app1 = simple_app(reuse=0.0, servers=("h3",))
        client1 = WorkloadClient("h1", app1, FixedProcess(0.2))
        client1.run(0.0, 10.0)
        net1.sim.run(until=20.0)
        no_reuse_pins = len(net1.log.packet_ins())

        net2, _, app2 = simple_app(reuse=0.95, servers=("h3",))
        client2 = WorkloadClient("h1", app2, FixedProcess(0.2), reuse_prob=0.95)
        client2.run(0.0, 10.0)
        net2.sim.run(until=20.0)
        reuse_pins = len(net2.log.packet_ins())
        assert reuse_pins < no_reuse_pins / 2

    def test_crashed_server_fails_requests(self):
        net, farm, app = simple_app(servers=("h3",))
        farm.crash("h3")
        outcomes = []
        app.handle_request("h1", on_done=outcomes.append)
        net.sim.run(until=20.0)
        assert len(outcomes) == 1
        assert not outcomes[0].completed

    def test_crashed_server_avoided_when_alternatives(self):
        net, farm, app = simple_app()
        farm.crash("h3")
        outcomes = []
        for _ in range(5):
            app.handle_request("h1", on_done=outcomes.append)
        net.sim.run(until=30.0)
        assert all(o.completed for o in outcomes)
        assert all("h4" in o.hops for o in outcomes)

    def test_requires_at_least_one_tier(self):
        net = Network(linear_topology(2, 1))
        with pytest.raises(ValueError):
            MultiTierApp("bad", [], net)

    def test_dns_lookup_prob(self):
        topo = linear_topology(3, 2)
        services = ServiceDirectory(hosts={"DNS": "h6"})
        net = Network(topo)
        farm = ServerFarm()
        app = MultiTierApp(
            "svc",
            [TierSpec("web", ("h3",), 80)],
            net,
            farm,
            seed=2,
            services=services,
            dns_lookup_prob=1.0,
        )
        app.handle_request("h1")
        net.sim.run(until=10.0)
        dns_flows = [
            p for p in net.log.packet_ins() if p.flow.dst == "h6" and p.flow.dst_port == 53
        ]
        assert dns_flows

    def test_expected_edges_helper(self):
        _, _, app = simple_app()
        edges = app.expected_edges()
        assert ("h3", "h5") in edges
        assert ("h4", "h5") in edges

    def test_skewed_balancer_prefers_first(self):
        net, _, app = simple_app(balancer="skewed")
        for _ in range(40):
            app.handle_request("h1")
        net.sim.run(until=60.0)
        dsts = [p.flow.dst for p in net.log.packet_ins() if p.flow.src == "h1"]
        assert dsts.count("h3") > dsts.count("h4")


class TestWorkloadClient:
    def test_generates_requests_within_window(self):
        net, _, app = simple_app()
        client = WorkloadClient("h1", app, FixedProcess(0.5))
        client.run(0.0, 5.0)
        net.sim.run(until=20.0)
        assert 8 <= len(client.outcomes) <= 10
        assert client.completed == len(client.outcomes)
        assert client.failed == 0

    def test_poisson_rate_roughly_matches(self):
        net, _, app = simple_app()
        client = WorkloadClient("h1", app, PoissonProcess(20.0, random.Random(4)))
        client.run(0.0, 10.0)
        net.sim.run(until=30.0)
        assert 120 <= len(client.outcomes) <= 280

    def test_inverted_window_raises(self):
        net, _, app = simple_app()
        client = WorkloadClient("h1", app, FixedProcess(1.0))
        with pytest.raises(ValueError):
            client.run(5.0, 1.0)

    def test_on_outcome_callback(self):
        net, _, app = simple_app()
        seen = []
        client = WorkloadClient("h1", app, FixedProcess(1.0))
        client.run(0.0, 3.0, on_outcome=seen.append)
        net.sim.run(until=20.0)
        assert len(seen) == len(client.outcomes)
