"""Unit tests for controller-log decoding into flow-level observations."""

import pytest

from repro.core.events import (
    extract_flow_arrivals,
    extract_flow_records,
    timed_flows,
)
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowMod, FlowRemoved, PacketIn

KEY = FlowKey("a", "b", 1000, 80)


def traversal(log, key, t0, dpids, gap=0.001, response=0.0005):
    """Append one flow traversal: PacketIn + FlowMod per switch."""
    t = t0
    for i, dpid in enumerate(dpids):
        pin = PacketIn(timestamp=t, dpid=dpid, flow=key, in_port=i + 1, buffer_id=len(log))
        log.append(pin)
        log.append(
            FlowMod(
                timestamp=t + response,
                dpid=dpid,
                match=Match.exact(key),
                out_port=i + 2,
                in_reply_to=pin.buffer_id,
            )
        )
        t += gap


class TestExtractFlowArrivals:
    def test_single_traversal_one_arrival(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2", "sw3"])
        arrivals = extract_flow_arrivals(log)
        assert len(arrivals) == 1
        a = arrivals[0]
        assert a.flow == KEY
        assert a.time == 1.0
        assert a.path_dpids == ("sw1", "sw2", "sw3")
        assert a.src == "a" and a.dst == "b"

    def test_hops_carry_flow_mod_pairing(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2"])
        a = extract_flow_arrivals(log)[0]
        for hop in a.hops:
            assert hop.flow_mod_at == pytest.approx(hop.packet_in_at + 0.0005)
            assert hop.out_port is not None

    def test_occurrence_gap_splits(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2"])
        traversal(log, KEY, 10.0, ["sw1", "sw2"])
        arrivals = extract_flow_arrivals(log, occurrence_gap=1.0)
        assert len(arrivals) == 2
        assert arrivals[0].time == 1.0
        assert arrivals[1].time == 10.0

    def test_within_gap_same_occurrence(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2"])
        arrivals = extract_flow_arrivals(log, occurrence_gap=1.0)
        assert len(arrivals) == 1

    def test_multiple_flows_interleaved(self):
        log = ControllerLog()
        other = FlowKey("c", "d", 2000, 443)
        traversal(log, KEY, 1.0, ["sw1", "sw2"])
        traversal(log, other, 1.0005, ["sw2", "sw3"])
        arrivals = extract_flow_arrivals(log)
        assert len(arrivals) == 2
        assert {a.flow for a in arrivals} == {KEY, other}

    def test_unpaired_packet_in_has_none_flow_mod(self):
        log = ControllerLog()
        log.append(PacketIn(timestamp=1.0, dpid="sw1", flow=KEY, in_port=1))
        a = extract_flow_arrivals(log)[0]
        assert a.hops[0].flow_mod_at is None

    def test_sorted_by_time(self):
        log = ControllerLog()
        traversal(log, FlowKey("x", "y", 1, 2), 5.0, ["sw1"])
        traversal(log, KEY, 1.0, ["sw1"])
        arrivals = extract_flow_arrivals(log)
        assert [a.time for a in arrivals] == [1.0, 5.0]

    def test_empty_log(self):
        assert extract_flow_arrivals(ControllerLog()) == []


class TestExtractFlowRecords:
    def test_joins_flow_removed_counters(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2"])
        log.append(
            FlowRemoved(
                timestamp=7.0,
                dpid="sw1",
                match=Match.exact(KEY),
                duration=1.5,
                byte_count=12345,
                packet_count=9,
            )
        )
        records = extract_flow_records(log)
        assert len(records) == 1
        assert records[0].byte_count == 12345
        assert records[0].packet_count == 9
        assert records[0].duration == 1.5

    def test_max_across_switches(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2"])
        for dpid, nbytes in (("sw1", 1000), ("sw2", 1200)):
            log.append(
                FlowRemoved(
                    timestamp=7.0,
                    dpid=dpid,
                    match=Match.exact(KEY),
                    duration=1.0,
                    byte_count=nbytes,
                    packet_count=1,
                )
            )
        records = extract_flow_records(log)
        assert records[0].byte_count == 1200

    def test_no_counters_defaults_zero(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1"])
        records = extract_flow_records(log)
        assert records[0].byte_count == 0

    def test_removed_not_double_consumed(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1"])
        traversal(log, KEY, 10.0, ["sw1"])
        log.append(
            FlowRemoved(
                timestamp=8.0, dpid="sw1", match=Match.exact(KEY),
                duration=1.0, byte_count=500, packet_count=1,
            )
        )
        log.append(
            FlowRemoved(
                timestamp=16.0, dpid="sw1", match=Match.exact(KEY),
                duration=1.0, byte_count=700, packet_count=1,
            )
        )
        records = extract_flow_records(log)
        assert [r.byte_count for r in records] == [500, 700]


class TestTimedFlows:
    def test_flattens_with_dedup(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2", "sw3"])
        flat = timed_flows(log, dedup_window=0.05)
        assert len(flat) == 1
        assert flat[0] == (1.0, KEY)

    def test_no_dedup_keeps_all(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1", "sw2"])
        assert len(timed_flows(log, dedup_window=0.0)) == 2

    def test_reoccurrence_after_window_kept(self):
        log = ControllerLog()
        traversal(log, KEY, 1.0, ["sw1"])
        traversal(log, KEY, 5.0, ["sw1"])
        assert len(timed_flows(log, dedup_window=0.5)) == 2
