"""Unit and property tests for link utilization and transport effects."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.links import Link
from repro.netsim.transport import TransportModel


class TestLink:
    def test_idle_link_base_latency(self):
        link = Link("a", "b", latency=0.001)
        assert link.effective_latency(0.0) == pytest.approx(0.001)

    def test_utilization_raises_latency(self):
        link = Link("a", "b", latency=0.001, bandwidth=1_000_000)
        link.record_traffic(0.0, nbytes=900_000, duration=1.0)
        assert link.utilization(0.0) > 0.5
        assert link.effective_latency(0.0) > 0.0015

    def test_utilization_decays(self):
        link = Link("a", "b", bandwidth=1_000_000, decay=0.5)
        link.record_traffic(0.0, nbytes=900_000, duration=1.0)
        busy = link.utilization(0.0)
        later = link.utilization(5.0)
        assert later < busy / 10

    def test_utilization_saturates_below_one(self):
        link = Link("a", "b", bandwidth=1_000)
        link.record_traffic(0.0, nbytes=10_000_000, duration=0.1)
        assert link.utilization(0.0) <= 0.95

    def test_fail_recover(self):
        link = Link("a", "b")
        assert link.up
        link.fail()
        assert not link.up
        link.recover()
        assert link.up

    def test_key_canonical(self):
        assert Link("b", "a").key() == Link("a", "b").key()

    def test_zero_bandwidth_treated_saturated(self):
        link = Link("a", "b", bandwidth=0)
        assert link.utilization(0.0) == 0.95


class TestTransportModel:
    def test_lossless_passthrough(self):
        model = TransportModel()
        out = model.apply(10000, [0.0, 0.0], random.Random(1))
        assert out.delivered
        assert out.observed_bytes == 10000
        assert out.extra_delay == 0.0
        assert out.retransmissions == 0

    def test_path_loss_combines(self):
        assert TransportModel.path_loss([0.5, 0.5]) == pytest.approx(0.75)
        assert TransportModel.path_loss([]) == 0.0
        assert TransportModel.path_loss([1.0]) == 1.0

    def test_packets_for(self):
        model = TransportModel(mss=1460)
        assert model.packets_for(1) == 1
        assert model.packets_for(1460) == 1
        assert model.packets_for(1461) == 2

    def test_loss_inflates_bytes_and_delay(self):
        model = TransportModel()
        rng = random.Random(7)
        total_bytes = 0
        total_delay = 0.0
        for _ in range(200):
            out = model.apply(14600, [0.05], rng)
            total_bytes += out.observed_bytes
            total_delay += out.extra_delay
        assert total_bytes > 200 * 14600  # retransmissions visible
        assert total_delay > 0.0

    def test_heavy_loss_can_kill_flow(self):
        model = TransportModel(max_attempts=2)
        rng = random.Random(3)
        outcomes = [model.apply(14600, [0.9], rng) for _ in range(50)]
        assert any(not o.delivered for o in outcomes)

    def test_extra_delay_multiple_of_rto(self):
        model = TransportModel(rto=0.2)
        rng = random.Random(11)
        for _ in range(100):
            out = model.apply(1460, [0.3], rng)
            if out.retransmissions:
                assert out.extra_delay >= 0.2

    @given(
        st.integers(1, 100_000),
        st.floats(0, 0.5),
        st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_observed_bytes_at_least_nominal(self, nbytes, loss, seed):
        model = TransportModel()
        out = model.apply(nbytes, [loss], random.Random(seed))
        if out.delivered:
            assert out.observed_bytes >= nbytes
        assert out.extra_delay >= 0.0

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_path_loss_bounded(self, a, b):
        loss = TransportModel.path_loss([a, b])
        assert 0.0 <= loss <= 1.0
        assert loss >= max(a, b) - 1e-9
