"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the evaluation section
(Section V), prints the rows/series, and writes them under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.
Shapes (who wins, directions of shifts, crossovers) are asserted; absolute
numbers are simulator-specific by design.
"""

from __future__ import annotations

import os
from typing import Iterable

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write (and echo) a named result table."""

    def _record(name: str, lines: Iterable[str]) -> str:
        text = "\n".join(lines)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n=== {name} ===")
        print(text)
        return path

    return _record
