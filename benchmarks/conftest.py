"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the evaluation section
(Section V), prints the rows/series, and writes them under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artifacts.
Shapes (who wins, directions of shifts, crossovers) are asserted; absolute
numbers are simulator-specific by design.
"""

from __future__ import annotations

import os
from typing import Iterable

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_sessionfinish(session, exitstatus):
    """After a successful benchmark run, refresh ``BENCH_pipeline.json``.

    The emitter profiles the fixed seeded pipeline with the repro.obs
    tracer, keeping the machine-readable perf baseline in lockstep with
    the benchmark suite. Skipped on failures (a broken run is not a
    baseline) and overridable with ``BENCH_EMIT=0`` for quick local loops.
    """
    if exitstatus != 0 or os.environ.get("BENCH_EMIT", "1") == "0":
        return
    # Import by path: benchmarks/ is not a package and the working
    # directory is not guaranteed to be the repository root.
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_emit", os.path.join(os.path.dirname(__file__), "emit.py")
    )
    emitter = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(emitter)
    path = emitter.emit()
    print(f"\nwrote pipeline perf baseline to {path}")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write (and echo) a named result table."""

    def _record(name: str, lines: Iterable[str]) -> str:
        text = "\n".join(lines)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n=== {name} ===")
        print(text)
        return path

    return _record
