"""Microbenchmarks: throughput of FlowDiff's hot primitives.

Unlike the figure/table harnesses (single-shot ``pedantic`` runs), these
use pytest-benchmark's statistical timing to track the per-primitive costs
that dominate Figure 13(b): log decoding, signature construction, model
diffing, and task-automaton matching.
"""

import pytest

from repro import FlowDiff
from repro.core.events import extract_flow_arrivals, extract_flow_records
from repro.core.signatures import build_application_signatures
from repro.core.tasks import TaskLibrary
from repro.scenarios import three_tier_lab
from repro.workload.traces import VMTraceSynthesizer


@pytest.fixture(scope="module")
def lab_log():
    return three_tier_lab(seed=3).run(0.5, 30.0)


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def lab_model(fd, lab_log):
    return fd.model(lab_log)


def test_bench_extract_flow_arrivals(benchmark, lab_log):
    arrivals = benchmark(extract_flow_arrivals, lab_log)
    assert arrivals


def test_bench_extract_flow_records(benchmark, lab_log):
    records = benchmark(extract_flow_records, lab_log)
    assert records


def test_bench_build_application_signatures(benchmark, lab_log):
    sigs = benchmark(build_application_signatures, lab_log)
    assert sigs


def test_bench_model_with_stability(benchmark, fd, lab_log):
    model = benchmark(fd.model, lab_log)
    assert model.app_signatures


def test_bench_diff(benchmark, fd, lab_model):
    report = benchmark(fd.diff, lab_model, lab_model)
    assert report.healthy


def test_bench_task_learning(benchmark):
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)
    runs = synth.training_runs("i-3486634d", 50)

    def learn():
        library = TaskLibrary(service_names=synth.service_names())
        return library.learn("s", runs, min_sup=0.6, masked=True)

    signature = benchmark(learn)
    assert signature.automaton.n_states


def test_bench_task_detection(benchmark):
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)
    library = TaskLibrary(service_names=synth.service_names())
    library.learn(
        "s", synth.training_runs("i-3486634d", 50), min_sup=0.6, masked=True
    )
    run = synth.startup_run("i-3486634d", 200)
    events = benchmark(library.detect, run)
    assert isinstance(events, list)


def test_bench_log_serialization(benchmark, lab_log, tmp_path):
    from repro.openflow.serialize import save_log

    path = str(tmp_path / "bench.jsonl")
    count = benchmark(save_log, lab_log, path)
    assert count == len(lab_log)


def _load_emitter():
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "bench_emit", os.path.join(os.path.dirname(__file__), "emit.py")
    )
    emitter = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(emitter)
    return emitter


def test_obs_overhead_under_five_percent(lab_log):
    """The instrumented pipeline must cost <5% over the no-op path.

    This is the contract that lets the sliding diagnoser run with real
    metrics + tracing in production; guarded here (and recorded in
    BENCH_pipeline.json) so an accidentally hot instrument shows up as a
    test failure rather than a silent slowdown. Median-of-repeats with
    the spread reported as ``noise_floor_pct``; re-measure up to twice
    before declaring a regression (a real hot path fails all three).
    """
    emitter = _load_emitter()
    result = None
    for _ in range(3):
        result = emitter.run_obs_overhead_bench(log=lab_log, repeats=7)
        if result["overhead_pct"] < 5.0:
            break
    assert result["overhead_pct"] < 5.0, result
    assert "noise_floor_pct" in result and result["noise_floor_pct"] >= 0.0
    _assert_overhead_not_below_noise_floor(result)


def test_profiler_off_overhead_under_five_percent(lab_log):
    """An unattached span profiler must cost <5% over the no-op path.

    ``repro profile`` rides tracer span hooks, so a traced pipeline now
    performs one empty-hook-list check per span boundary even with no
    profiler attached. That is the *default* production configuration —
    guarded here so hook dispatch never silently grows into the hot
    path. The bench also reports the attached-profiler slowdown, which
    must be finite and positive (it is expected to be several ×; that
    cost is why ledger phase numbers come from unprofiled passes).
    """
    emitter = _load_emitter()
    result = None
    for _ in range(3):
        result = emitter.run_profiler_overhead_bench(log=lab_log, repeats=7)
        if result["overhead_pct"] < 5.0:
            break
    assert result["overhead_pct"] < 5.0, result
    assert "noise_floor_pct" in result and result["noise_floor_pct"] >= 0.0
    assert result["profiled_slowdown_x"] > 0.0
    _assert_overhead_not_below_noise_floor(result)


TELEMETRY_BUDGET_US_PER_MSG = 6.0


def test_telemetry_overhead_budget_per_message():
    """Enabling the telemetry plane must cost <6µs per control message.

    Every packet delivery, table install, and RPC completion samples the
    plane when it is enabled, so a regression here multiplies across the
    whole simulation. The budget is *absolute* on purpose: the plane's
    per-message cost is constant, so a percent-of-simulation contract
    (this test asserted <5% before the raw-speed campaign) silently
    tightens every time the simulator gets faster and silently loosens
    when it regresses — exactly the bench math that hides what changed.
    The committed pre-campaign cost was ~4.5µs/message; the campaign
    left the plane untouched and the budget leaves headroom above it.
    Recorded in BENCH_pipeline.json as ``telemetry``.
    """
    emitter = _load_emitter()
    # Median-of-N suppresses most scheduler noise, but on a single-CPU
    # runner one unlucky leg can still exceed the budget; re-measure up
    # to twice before declaring a regression (a real hot path fails all
    # three).
    result = None
    for _ in range(3):
        result = emitter.run_ingest_bench(duration=15.0, repeats=7)
        if result["overhead_us_per_message"] < TELEMETRY_BUDGET_US_PER_MSG:
            break
    assert result["overhead_us_per_message"] < TELEMETRY_BUDGET_US_PER_MSG, result
    assert "noise_floor_pct" in result and result["noise_floor_pct"] >= 0.0
    assert result["raw_samples_per_s"] > 0
    assert result["messages_per_s"] > 0
    _assert_overhead_not_below_noise_floor(result)


def _assert_overhead_not_below_noise_floor(result):
    """No bench may publish an overhead below its own noise floor.

    A reported overhead more negative than the repeat spread cannot be
    scheduler luck (the clamp in ``_overhead_fields`` zeroes within-floor
    negatives and leaves beyond-floor ones visible on purpose): it means
    the bench compared the wrong legs or warmed them asymmetrically.
    """
    assert result["overhead_pct"] >= -result["noise_floor_pct"], result
    assert "overhead_raw_pct" in result, result


def test_overhead_clamp_semantics():
    """`_overhead_fields`: within-floor negatives report 0, beyond-floor
    negatives stay visible, positives pass through untouched."""
    emitter = _load_emitter()
    lucky = emitter._overhead_fields(-6.722, 11.61)
    assert lucky["overhead_pct"] == 0.0
    assert lucky["overhead_raw_pct"] == -6.722
    assert lucky["noise_floor_pct"] == 11.61
    broken = emitter._overhead_fields(-25.0, 11.61)
    assert broken["overhead_pct"] == -25.0  # loud, fails the floor assert
    real = emitter._overhead_fields(3.4, 11.61)
    assert real["overhead_pct"] == 3.4
    assert real["overhead_raw_pct"] == 3.4


def test_throughput_section_floors_and_rates():
    """The throughput section carries the campaign's explicit gate floor
    (3x the pre-campaign 15,711 msg/s ingest baseline) plus the measured
    rates the ``repro runs gate`` floor check consumes."""
    emitter = _load_emitter()
    assert emitter.INGEST_MIN_MSG_S == round(15_711 * 3.0) == 47_133
    section = emitter.throughput_section(
        {"messages_per_s": 50_000, "noise_floor_pct": 7.5},
        {"model": 0.2, "model/stability": 0.04},
        group_signatures=4,
        stability_parts=3,
    )
    simulate = section["simulate"]
    assert simulate["messages_per_s"] == 50_000
    assert simulate["baseline_messages_per_s"] == 15_711
    assert simulate["min_messages_per_s"] == 47_133
    assert simulate["achieved_x"] == round(50_000 / 15_711, 3)
    assert simulate["noise_floor_pct"] == 7.5
    model = section["model"]
    assert model["signatures_nominal"] == 4 * 5  # 2 full passes + 3 intervals
    assert model["signatures_per_s"] == round(20 / 0.2)
    assert model["stability_share_pct"] == 20.0


def test_service_ingest_sustains_floor(lab_log):
    """The streaming daemon must sustain the 100k msg/s aggregate floor
    across two concurrent tenants — baseline learning, incremental
    window folding, diffing, and alerting all inside the timed region —
    with every window closing through the merge path."""
    emitter = _load_emitter()
    section = emitter.run_service_ingest_bench(log=lab_log)
    assert section["tenants"] >= 2
    assert section["all_windows_merged"], section
    assert section["p95_report_s"] > 0.0
    # Same cross-machine tolerance the CI perf-gate job uses (100%):
    # the floor relaxes to min/(1 + tol/100) exactly as in gate_records.
    tol = max(100.0, section["noise_floor_pct"])
    need = section["min_messages_per_s"] / (1.0 + tol / 100.0)
    assert section["messages_per_s"] >= need, section


def test_service_floor_rides_the_gate(lab_log):
    """A payload carrying the service section adapts into a gate
    baseline that floors ``service_messages_per_s`` alongside the
    simulate rate — and fails a record that lost the service speed."""
    from repro.obs.ledger import RunRecord, gate_records

    emitter = _load_emitter()
    service = {
        "tenants": 2,
        "messages_per_s": 150_000,
        "min_messages_per_s": emitter.SERVICE_MIN_MSG_S,
        "noise_floor_pct": 5.0,
    }
    payload = {
        "benchmark": "pipeline",
        "messages": 10_000,
        "phases": {"model": 0.1},
        "total_s": 0.1,
        "throughput": emitter.throughput_section(
            {"messages_per_s": 50_000, "noise_floor_pct": 5.0},
            {"model": 0.1, "model/stability": 0.02},
            4,
            3,
            service=service,
        ),
    }
    baseline = RunRecord.from_bench(payload, source="BENCH_pipeline.json")
    assert baseline.metrics["service_messages_per_s"] == 150_000

    def record(service_rate):
        return RunRecord(
            run_id="r", command="profile", scenario="lab", seed=3,
            messages=10_000, phases={"model": 0.1}, total_s=0.1,
            metrics={
                "messages_per_s": 50_000,
                "service_messages_per_s": service_rate,
            },
        )

    result = gate_records(record(150_000), baseline, tolerance_pct=100.0)
    rows = {row["name"]: row for row in result.floors}
    assert "throughput/service_messages_per_s" in rows
    assert result.ok
    result = gate_records(record(40_000), baseline, tolerance_pct=100.0)
    assert not result.ok
    assert not {
        row["name"]: row for row in result.floors
    }["throughput/service_messages_per_s"]["ok"]
    # A record that never measured the service rate skips the row — old
    # profile records must not fail a floor they predate.
    legacy = RunRecord(
        run_id="r2", command="profile", scenario="lab", seed=3,
        messages=10_000, phases={"model": 0.1}, total_s=0.1,
        metrics={"messages_per_s": 50_000},
    )
    result = gate_records(legacy, baseline, tolerance_pct=100.0)
    assert [row["name"] for row in result.floors] == [
        "throughput/messages_per_s"
    ]
    assert result.ok


def test_emitted_payload_gates_green(lab_log):
    """End-to-end: a freshly emitted payload adapts into a gate baseline
    whose throughput floor a matching profile record passes, and which
    fails a record that lost the campaign's ingest speedup."""
    from repro.obs.ledger import RunRecord, gate_records

    emitter = _load_emitter()
    telemetry = emitter.run_ingest_bench(duration=10.0, repeats=3)
    payload = {
        "benchmark": "pipeline",
        "messages": telemetry["messages"],
        "phases": {"model": 0.1},
        "total_s": 0.1,
        "throughput": emitter.throughput_section(
            telemetry, {"model": 0.1, "model/stability": 0.02}, 4, 3
        ),
    }
    baseline = RunRecord.from_bench(payload, source="BENCH_pipeline.json")
    assert baseline.metrics["messages_per_s"] == telemetry["messages_per_s"]

    def record(rate):
        return RunRecord(
            run_id="r", command="profile", scenario="lab", seed=3,
            messages=telemetry["messages"], phases={"model": 0.1},
            total_s=0.1, metrics={"messages_per_s": rate},
        )

    # Same cross-machine tolerance the CI perf-gate job uses: the floor
    # relaxes to min/(1 + 100/100), so this asserts exactly what the CI
    # gate enforces, no more.
    current = record(telemetry["messages_per_s"])
    result = gate_records(current, baseline, tolerance_pct=100.0)
    assert result.floors and result.floors[0]["ok"], result.to_dict()
    assert result.ok
    slow = record(emitter.INGEST_BASELINE_MSG_S)  # pre-campaign speed
    result = gate_records(slow, baseline, tolerance_pct=100.0)
    assert not result.ok and not result.floors[0]["ok"]
