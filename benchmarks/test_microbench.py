"""Microbenchmarks: throughput of FlowDiff's hot primitives.

Unlike the figure/table harnesses (single-shot ``pedantic`` runs), these
use pytest-benchmark's statistical timing to track the per-primitive costs
that dominate Figure 13(b): log decoding, signature construction, model
diffing, and task-automaton matching.
"""

import pytest

from repro import FlowDiff
from repro.core.events import extract_flow_arrivals, extract_flow_records
from repro.core.signatures import build_application_signatures
from repro.core.tasks import TaskLibrary
from repro.scenarios import three_tier_lab
from repro.workload.traces import VMTraceSynthesizer


@pytest.fixture(scope="module")
def lab_log():
    return three_tier_lab(seed=3).run(0.5, 30.0)


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def lab_model(fd, lab_log):
    return fd.model(lab_log)


def test_bench_extract_flow_arrivals(benchmark, lab_log):
    arrivals = benchmark(extract_flow_arrivals, lab_log)
    assert arrivals


def test_bench_extract_flow_records(benchmark, lab_log):
    records = benchmark(extract_flow_records, lab_log)
    assert records


def test_bench_build_application_signatures(benchmark, lab_log):
    sigs = benchmark(build_application_signatures, lab_log)
    assert sigs


def test_bench_model_with_stability(benchmark, fd, lab_log):
    model = benchmark(fd.model, lab_log)
    assert model.app_signatures


def test_bench_diff(benchmark, fd, lab_model):
    report = benchmark(fd.diff, lab_model, lab_model)
    assert report.healthy


def test_bench_task_learning(benchmark):
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)
    runs = synth.training_runs("i-3486634d", 50)

    def learn():
        library = TaskLibrary(service_names=synth.service_names())
        return library.learn("s", runs, min_sup=0.6, masked=True)

    signature = benchmark(learn)
    assert signature.automaton.n_states


def test_bench_task_detection(benchmark):
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)
    library = TaskLibrary(service_names=synth.service_names())
    library.learn(
        "s", synth.training_runs("i-3486634d", 50), min_sup=0.6, masked=True
    )
    run = synth.startup_run("i-3486634d", 200)
    events = benchmark(library.detect, run)
    assert isinstance(events, list)


def test_bench_log_serialization(benchmark, lab_log, tmp_path):
    from repro.openflow.serialize import save_log

    path = str(tmp_path / "bench.jsonl")
    count = benchmark(save_log, lab_log, path)
    assert count == len(lab_log)


def _load_emitter():
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "bench_emit", os.path.join(os.path.dirname(__file__), "emit.py")
    )
    emitter = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(emitter)
    return emitter


def test_obs_overhead_under_five_percent(lab_log):
    """The instrumented pipeline must cost <5% over the no-op path.

    This is the contract that lets the sliding diagnoser run with real
    metrics + tracing in production; guarded here (and recorded in
    BENCH_pipeline.json) so an accidentally hot instrument shows up as a
    test failure rather than a silent slowdown. Median-of-repeats with
    the spread reported as ``noise_floor_pct``; re-measure up to twice
    before declaring a regression (a real hot path fails all three).
    """
    emitter = _load_emitter()
    result = None
    for _ in range(3):
        result = emitter.run_obs_overhead_bench(log=lab_log, repeats=7)
        if result["overhead_pct"] < 5.0:
            break
    assert result["overhead_pct"] < 5.0, result
    assert "noise_floor_pct" in result and result["noise_floor_pct"] >= 0.0


def test_profiler_off_overhead_under_five_percent(lab_log):
    """An unattached span profiler must cost <5% over the no-op path.

    ``repro profile`` rides tracer span hooks, so a traced pipeline now
    performs one empty-hook-list check per span boundary even with no
    profiler attached. That is the *default* production configuration —
    guarded here so hook dispatch never silently grows into the hot
    path. The bench also reports the attached-profiler slowdown, which
    must be finite and positive (it is expected to be several ×; that
    cost is why ledger phase numbers come from unprofiled passes).
    """
    emitter = _load_emitter()
    result = None
    for _ in range(3):
        result = emitter.run_profiler_overhead_bench(log=lab_log, repeats=7)
        if result["overhead_pct"] < 5.0:
            break
    assert result["overhead_pct"] < 5.0, result
    assert "noise_floor_pct" in result and result["noise_floor_pct"] >= 0.0
    assert result["profiled_slowdown_x"] > 0.0


def test_telemetry_overhead_under_five_percent():
    """Simulating with the telemetry plane on must cost <5% over noop.

    Same contract as the obs overhead gate, one layer down: every packet
    delivery, table install, and RPC completion samples the plane when it
    is enabled, so a regression here multiplies across the whole
    simulation. Recorded in BENCH_pipeline.json as ``telemetry``.
    """
    emitter = _load_emitter()
    # Median-of-N suppresses most scheduler noise, but on a single-CPU
    # runner one unlucky leg can still exceed the budget; re-measure up
    # to twice before declaring a regression (a real hot path fails all
    # three).
    result = None
    for _ in range(3):
        result = emitter.run_ingest_bench(duration=15.0, repeats=7)
        if result["overhead_pct"] < 5.0:
            break
    assert result["overhead_pct"] < 5.0, result
    assert "noise_floor_pct" in result and result["noise_floor_pct"] >= 0.0
    assert result["raw_samples_per_s"] > 0
    assert result["messages_per_s"] > 0
