"""FlowDiff vs naive baselines: who detects, who localizes.

The paper's pitch is that volume-threshold monitoring misses structural
and temporal problems that control-plane signature diffing catches. This
harness sweeps Table I's core faults over FlowDiff and two straw-man
detectors on identical logs and reports detection + localization per
fault — the "who wins, where" comparison.
"""

import pytest

from repro import FlowDiff
from repro.baselines import PerHostVolumeDetector, RateThresholdDetector
from repro.faults import (
    AppCrash,
    HighCPU,
    HostShutdown,
    LinkLoss,
    LoggingMisconfig,
    UnauthorizedAccess,
)
from repro.scenarios import three_tier_lab

DURATION = 30.0

FAULTS = [
    ("logging@S3", lambda: LoggingMisconfig("S3", 0.05), "S3"),
    ("high_cpu@S3", lambda: HighCPU("S3", 4.0), "S3"),
    ("link_loss", lambda: LinkLoss([("S1", "ofs3"), ("S3", "ofs5")], 0.03), None),
    ("crash@S3", lambda: AppCrash("S3"), "S3"),
    ("shutdown@S8", lambda: HostShutdown("S8"), "S8"),
    ("intruder@S20", lambda: UnauthorizedAccess("S20", ["S3", "S8"], n_flows=30), "S20"),
]


def capture(fault=None, seed=3):
    scenario = three_tier_lab(seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    return scenario.run(0.5, DURATION)


def test_flowdiff_vs_baselines(benchmark, record_table):
    baseline_log = capture()
    fd = FlowDiff()
    fd_base = fd.model(baseline_log)
    rate = RateThresholdDetector()
    rate.fit(baseline_log)
    volume = PerHostVolumeDetector()
    volume.fit(baseline_log)

    def sweep():
        rows = []
        for name, factory, target in FAULTS:
            log = capture(fault=factory())
            report = fd.diff(fd_base, fd.model(log, assess=False))
            fd_hosts = [c for c, _ in report.component_ranking if "--" not in c]
            fd_detected = not report.healthy
            fd_localized = target is None or target in fd_hosts[:3]

            rate_verdict = rate.check(log)
            vol_verdict = volume.check(log)
            vol_localized = target is not None and target in vol_verdict.suspects[:3]
            rows.append(
                (
                    name,
                    fd_detected,
                    fd_localized,
                    rate_verdict.alarmed,
                    vol_verdict.alarmed,
                    vol_localized,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'fault':<14} {'FlowDiff':>9} {'FD-top3':>8} {'rate-thr':>9} "
        f"{'host-vol':>9} {'HV-top3':>8}"
    ]
    for name, fd_d, fd_l, rate_d, vol_d, vol_l in rows:
        lines.append(
            f"{name:<14} {str(fd_d):>9} {str(fd_l):>8} {str(rate_d):>9} "
            f"{str(vol_d):>9} {str(vol_l):>8}"
        )
    record_table("baseline_comparison", lines)

    by_name = {r[0]: r for r in rows}
    # FlowDiff detects and localizes everything.
    assert all(r[1] and r[2] for r in rows), rows
    # The delay faults are invisible to both volume baselines — the
    # paper's core argument for control-plane behavioral diffing.
    for delay_fault in ("logging@S3", "high_cpu@S3"):
        _, _, _, rate_d, vol_d, _ = by_name[delay_fault]
        assert not rate_d and not vol_d
    # FlowDiff's win count strictly dominates both baselines'.
    fd_wins = sum(1 for r in rows if r[1])
    rate_wins = sum(1 for r in rows if r[3])
    vol_wins = sum(1 for r in rows if r[4])
    assert fd_wins > max(rate_wins, vol_wins)
