"""Ablation: monitoring window size vs onset precision and noise.

The sliding diagnoser trades onset precision against statistical power:
small windows localize a problem's start tightly but carry fewer samples
per signature (risking noise), large windows are robust but blur the
onset. This sweep injects a fault at a known time and measures, per
window size, the onset error and whether any pre-fault window false-
alarmed.
"""

import pytest

from repro.core.monitor import SlidingDiagnoser
from repro.faults import LoggingMisconfig
from repro.scenarios import three_tier_lab

FAULT_AT = 60.0
TOTAL = 120.0


@pytest.fixture(scope="module")
def faulty_log():
    scenario = three_tier_lab(seed=3)
    scenario.inject(LoggingMisconfig("S3", overhead=0.05), at=FAULT_AT)
    return scenario.run(0.5, TOTAL, drain=10.0)


def test_monitor_window_ablation(benchmark, faulty_log, record_table):
    def sweep():
        rows = []
        for window in (10.0, 15.0, 30.0):
            diagnoser = SlidingDiagnoser(window=window)
            diagnoser.set_baseline(faulty_log, 0.0, 30.0)
            diagnoser.advance(faulty_log)
            first_bad = diagnoser.first_unhealthy()
            false_alarm = any(
                not e.healthy and e.t_end <= FAULT_AT for e in diagnoser.history
            )
            onset_error = (
                first_bad.t_end - FAULT_AT if first_bad is not None else None
            )
            rows.append((window, onset_error, false_alarm, len(diagnoser.history)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"fault injected at t={FAULT_AT:.0f}s; onset error = first-unhealthy "
        "window end minus fault time",
        f"{'window (s)':>11} {'onset error (s)':>16} {'false alarm':>12} {'windows':>8}",
    ]
    for window, onset, fp, n in rows:
        onset_str = f"{onset:.0f}" if onset is not None else "missed"
        lines.append(f"{window:>11.0f} {onset_str:>16} {str(fp):>12} {n:>8}")
    record_table("ablation_monitor_window", lines)

    for window, onset, fp, _ in rows:
        assert onset is not None, f"window={window}: fault missed entirely"
        assert not fp, f"window={window}: false alarm before the fault"
        # Onset is localized within at most one window of the truth.
        assert onset <= window + 1e-6
    # Finer windows localize at least as tightly as coarser ones.
    onsets = [onset for _, onset, _, _ in rows]
    assert onsets[0] <= onsets[-1]
