"""Emit the machine-readable perf baseline: ``BENCH_pipeline.json``.

Runs the fixed seeded scenario (the same one the microbenchmarks use),
profiles a full model + diff pass with the :mod:`repro.obs` tracer, and
writes the phase timings as JSON at the repository root. Every PR from
this one onward regenerates the file, so the perf trajectory of the
pipeline is diffable commit to commit without parsing pytest-benchmark
output.

Run directly (``python benchmarks/emit.py [--out PATH]``) or let the
benchmark suite's ``pytest_sessionfinish`` hook produce it as a side
effect of a normal benchmark run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Any, Dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_pipeline.json")

#: The fixed scenario: seed and capture duration of the profiled run.
BENCH_SEED = 3
BENCH_DURATION = 30.0

#: The ingest-throughput floor the ``repro runs gate`` CI job enforces:
#: the pre-campaign end-to-end simulation rate (telemetry plane on) and
#: the explicit speedup target of the raw-speed campaign. The floor is
#: carried inside the emitted ``throughput`` section, so the gate reads
#: it from the committed baseline rather than hard-coding it twice.
INGEST_BASELINE_MSG_S = 15_711
INGEST_TARGET_X = 3.0
INGEST_MIN_MSG_S = round(INGEST_BASELINE_MSG_S * INGEST_TARGET_X)

#: The streaming-service floor: sustained control-message ingest through
#: the multi-tenant daemon queue (baseline learning and per-window
#: incremental diagnosis included), aggregated across
#: ``SERVICE_TENANTS`` concurrent tenants. ``repro runs gate`` enforces
#: it from the committed baseline's ``throughput.service`` section.
SERVICE_MIN_MSG_S = 100_000
SERVICE_TENANTS = 2
SERVICE_WINDOW_S = 10.0


def _median(samples: "list[float]") -> float:
    """The sample median (midpoint mean for even counts)."""
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _spread_pct(samples: "list[float]") -> float:
    """Repeat spread relative to the median, in percent.

    This is the run's *noise floor*: any overhead or regression claim
    smaller than the spread of identical repeats is indistinguishable
    from scheduler jitter and must not be read as a real delta.
    """
    mid = _median(samples)
    if mid <= 0:
        return 0.0
    return (max(samples) - min(samples)) / mid * 100.0


def _overhead_fields(raw_pct: float, noise_floor_pct: float) -> Dict[str, float]:
    """Noise-aware reported overhead: the shared fields of every
    overhead bench.

    Instrumentation cannot make code faster, so a negative measured
    overhead is scheduler luck by construction. When the negative value
    sits inside the repeat noise floor it is reported as ``0.0`` — the
    raw median ratio stays visible as ``overhead_raw_pct`` — instead of
    publishing a nonsense number like the ``-6.72%`` an earlier baseline
    carried. A negative value *beyond* the floor is deliberately left
    unclamped: that shape means the bench itself is broken (wrong legs
    compared, warm-up asymmetry), and the microbench floor assertion
    (``overhead_pct >= -noise_floor_pct``) must fail loudly rather than
    have the clamp paper over it.
    """
    clamped = raw_pct
    if raw_pct < 0 and -raw_pct <= noise_floor_pct:
        clamped = 0.0
    return {
        "overhead_pct": round(clamped, 3),
        "overhead_raw_pct": round(raw_pct, 3),
        "noise_floor_pct": round(noise_floor_pct, 3),
    }


def run_obs_overhead_bench(
    log: Any = None,
    seed: int = BENCH_SEED,
    duration: float = BENCH_DURATION,
    repeats: int = 5,
) -> Dict[str, Any]:
    """Time model+diff with observability off (no-ops) vs on (real
    registry + tracer); return both timings and the relative overhead.

    Median-of-``repeats`` on each side, interleaved so host noise lands
    on both legs. An earlier min-of-repeats version of this bench
    regularly reported *negative* overhead — two independent minima pick
    each side's luckiest sample, and the luckier lucky sample wins — so
    the ratio now comes from medians, the repeat spread is recorded
    explicitly as ``noise_floor_pct``, and residual within-floor
    negatives are zeroed by :func:`_overhead_fields`. The contract this
    guards: the
    instrumented path must stay within a few percent of the no-op path
    (asserted <5% by the microbench suite), because the sliding
    diagnoser runs instrumented in production.
    """
    from repro import FlowDiff
    from repro.obs import MetricsRegistry, Tracer
    from repro.scenarios import three_tier_lab

    if log is None:
        log = three_tier_lab(seed=seed).run(0.5, duration)

    def one_pass(fd: "FlowDiff") -> float:
        started = time.perf_counter()
        baseline = fd.model(log)
        current = fd.model(log, assess=False)
        fd.diff(baseline, current)
        return time.perf_counter() - started

    noop_samples: list = []
    instrumented_samples: list = []
    for _ in range(max(1, repeats)):
        noop_samples.append(one_pass(FlowDiff()))
        instrumented_samples.append(
            one_pass(FlowDiff(metrics=MetricsRegistry(), tracer=Tracer()))
        )
    noop_s = _median(noop_samples)
    instrumented_s = _median(instrumented_samples)
    out = {
        "noop_s": round(noop_s, 6),
        "instrumented_s": round(instrumented_s, 6),
        "repeats": repeats,
    }
    out.update(
        _overhead_fields(
            (instrumented_s / noop_s - 1.0) * 100.0 if noop_s else 0.0,
            max(_spread_pct(noop_samples), _spread_pct(instrumented_samples)),
        )
    )
    return out


def run_profiler_overhead_bench(
    log: Any = None,
    seed: int = BENCH_SEED,
    duration: float = BENCH_DURATION,
    repeats: int = 5,
) -> Dict[str, Any]:
    """The span-profiler's *off* cost, plus its *on* cost for context.

    ``repro profile`` rides tracer span hooks, so every traced pipeline
    now pays one empty-hook-list check per span open/close even when no
    profiler is attached. This bench isolates that: a plain-``Tracer``
    pass (hooks exist, none attached) vs the no-op-tracer pass,
    median-of-``repeats`` interleaved, asserted <5% by the microbench
    suite. The final profiled pass documents what attaching the profiler
    *does* cost (cProfile is a several-× slowdown — that is why ledger
    phase numbers always come from unprofiled passes).
    """
    from repro import FlowDiff
    from repro.obs import Tracer, attach_profiler
    from repro.scenarios import three_tier_lab

    if log is None:
        log = three_tier_lab(seed=seed).run(0.5, duration)

    def one_pass(fd: "FlowDiff") -> float:
        started = time.perf_counter()
        baseline = fd.model(log)
        current = fd.model(log, assess=False)
        fd.diff(baseline, current)
        return time.perf_counter() - started

    baseline_samples: list = []
    off_samples: list = []
    for _ in range(max(1, repeats)):
        baseline_samples.append(one_pass(FlowDiff()))
        off_samples.append(one_pass(FlowDiff(tracer=Tracer())))

    profiled_tracer = Tracer()
    attach_profiler(profiled_tracer)
    profiled_s = one_pass(FlowDiff(tracer=profiled_tracer))

    baseline_s = _median(baseline_samples)
    off_s = _median(off_samples)
    out = {
        "baseline_s": round(baseline_s, 6),
        "profiler_off_s": round(off_s, 6),
        "profiled_s": round(profiled_s, 6),
        "profiled_slowdown_x": round(
            profiled_s / baseline_s if baseline_s else 0.0, 3
        ),
        "repeats": repeats,
    }
    out.update(
        _overhead_fields(
            (off_s / baseline_s - 1.0) * 100.0 if baseline_s else 0.0,
            max(_spread_pct(baseline_samples), _spread_pct(off_samples)),
        )
    )
    return out


def run_ingest_bench(
    seed: int = BENCH_SEED,
    duration: float = BENCH_DURATION,
    repeats: int = 5,
    raw_samples: int = 200_000,
) -> Dict[str, Any]:
    """Benchmark the data-plane telemetry path three ways.

    * ``raw_samples_per_s`` — tight-loop ingest into one held
      :class:`ComponentSeries` (the hot-path upper bound: one sample =
      one window fold, no dict lookup).
    * ``messages_per_s`` — end-to-end simulation throughput with the
      plane enabled, in control messages per wall second.
    * ``overhead_pct`` — telemetry-enabled vs ``NOOP_TELEMETRY``
      simulation time, median-of-``repeats`` interleaved with the repeat
      spread recorded as ``noise_floor_pct`` (same discipline as
      :func:`run_obs_overhead_bench`). The microbench contract is on
      ``overhead_us_per_message`` instead — the plane's cost per control
      message is constant, so the percent form inflates whenever the
      rest of the simulator speeds up — because :class:`NoopTelemetry`
      is the production default and turning the plane on must never be a
      scary decision.
    """
    from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
    from repro.scenarios import three_tier_lab

    def one_run(telemetry: Any) -> float:
        scenario = three_tier_lab(seed=seed, telemetry=telemetry)
        started = time.perf_counter()
        one_run.messages = len(scenario.run(0.5, duration))
        return time.perf_counter() - started

    one_run(NOOP_TELEMETRY)  # warm-up: imports, allocator, caches
    # Interleave so host noise lands on both legs (see parallel bench).
    off_samples: list = []
    on_samples: list = []
    for _ in range(max(1, repeats)):
        off_samples.append(one_run(NOOP_TELEMETRY))
        on_samples.append(one_run(TelemetryPlane()))
    off_s = _median(off_samples)
    on_s = _median(on_samples)
    messages = one_run.messages

    plane = TelemetryPlane()
    series = plane.series("link", "a--b", "utilization")
    started = time.perf_counter()
    for i in range(raw_samples):
        series.record(i * 1e-3, 0.5)
    raw_s = time.perf_counter() - started

    out = {
        "raw_samples_per_s": round(raw_samples / raw_s) if raw_s else 0,
        "messages": messages,
        "messages_per_s": round(messages / on_s) if on_s else 0,
        "telemetry_off_s": round(off_s, 6),
        "telemetry_on_s": round(on_s, 6),
        # The plane's absolute cost. ``overhead_pct`` divides a constant
        # per-message cost by however fast the rest of the simulator
        # happens to be, so every ingest speedup inflates it with no
        # telemetry change at all; this is the speed-independent number
        # the microbench budget is asserted against.
        "overhead_us_per_message": round(
            (on_s - off_s) / messages * 1e6, 3
        )
        if messages
        else 0.0,
        "repeats": repeats,
    }
    out.update(
        _overhead_fields(
            (on_s / off_s - 1.0) * 100.0 if off_s else 0.0,
            max(_spread_pct(off_samples), _spread_pct(on_samples)),
        )
    )
    return out


def run_service_ingest_bench(
    log: Any = None,
    seed: int = BENCH_SEED,
    duration: float = BENCH_DURATION,
    tenants: int = SERVICE_TENANTS,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Benchmark the streaming service's sustained multi-tenant ingest.

    The same lab capture is replayed through the daemon's bounded queue
    once per tenant (blocking feeds — lossless backpressure), and the
    aggregate drain rate is reported in control messages per wall second.
    The timed region is everything the always-on deployment pays: queue
    hand-off, baseline learning, incremental per-window folding, the
    per-window diff, alert evaluation. Median-of-``repeats`` with the
    spread recorded, same discipline as the other benches; the p95
    per-window report latency comes from the service's own
    ``service_report_seconds`` histogram.

    Memory stays bounded by construction (the open window's buffers, a
    capped history, a fixed trace ring), so the bench asserts the
    behavioral part instead: every window of every tenant must close
    through the incremental ``merged`` path, never a remodel.
    """
    from repro.scenarios import three_tier_lab
    from repro.service import STATUS_MERGED, StreamService, replay_messages

    if log is None:
        log = three_tier_lab(seed=seed).run(0.5, duration)
    messages = list(log)

    def one_run() -> "tuple[float, Any]":
        service = StreamService(window=SERVICE_WINDOW_S)
        for i in range(tenants):
            service.add_tenant(f"bench{i}")
        started = time.perf_counter()
        with service:
            for i in range(tenants):
                replay_messages(service, f"bench{i}", messages)
            service.drain()
        return time.perf_counter() - started, service

    elapsed_samples: list = []
    service = None
    for _ in range(max(1, repeats)):
        elapsed, service = one_run()
        elapsed_samples.append(elapsed)
    elapsed_s = _median(elapsed_samples)
    total = tenants * len(messages)

    windows = sum(t.windows_total for t in service.tenants.values())
    merged = sum(
        t.status_counts.get(STATUS_MERGED, 0)
        for t in service.tenants.values()
    )
    p95 = service.metrics.histogram("service_report_seconds").quantile(0.95)
    return {
        "tenants": tenants,
        "window_s": SERVICE_WINDOW_S,
        "messages_per_tenant": len(messages),
        "messages_total": total,
        "elapsed_s": round(elapsed_s, 6),
        "messages_per_s": round(total / elapsed_s) if elapsed_s else 0,
        "min_messages_per_s": SERVICE_MIN_MSG_S,
        "p95_report_s": round(p95, 6),
        "windows": windows,
        "merged_windows": merged,
        "all_windows_merged": merged == windows and windows > 0,
        "repeats": repeats,
        "noise_floor_pct": round(_spread_pct(elapsed_samples), 3),
    }


def run_parallel_cache_bench(repeats: int = 7) -> Dict[str, Any]:
    """Benchmark the sharded parallel pipeline and the model cache.

    Uses a Figure-13-style capture (the 320-server tree with 9 random
    three-tier apps) so the modeling cost is dominated by extraction and
    signature building, the phases the sharded pipeline restructures.
    Records, commit to commit:

    * ``speedup``: best-of-``repeats`` ``jobs=1`` vs ``jobs=4`` modeling
      time. On a single-CPU runner the parallel path still wins by
      reusing shard work across the model and its stability intervals
      (the serial path re-extracts the log per interval); ``cpus`` is
      recorded so multi-core numbers are read in context.
    * ``dict_identical``: the exactness contract —
      ``model_to_dict(serial) == model_to_dict(parallel)``.
    * ``cache``: cold store vs warm load of the same request, and
      whether the warm path skipped remodeling entirely.
    """
    import gc
    import tempfile

    from repro import FlowDiff
    from repro.core.flowdiff import FlowDiffConfig
    from repro.core.persist import model_to_dict
    from repro.scenarios import scalability_sim

    network, workload = scalability_sim(9, seed=11)
    workload.start(0.0, 20.0)
    network.sim.run(until=23.0)
    log = network.log

    def timed_model(fd: "FlowDiff"):
        gc.collect()  # allocation noise from earlier benches skews the ratio
        started = time.perf_counter()
        model = fd.model(log)
        return time.perf_counter() - started, model

    # Interleave the repeats so transient host noise (shared CI runners)
    # lands on both legs instead of biasing whichever ran second.
    serial_fd = FlowDiff(FlowDiffConfig(jobs=1))
    parallel_fd = FlowDiff(FlowDiffConfig(jobs=4))
    serial_s = parallel_s = float("inf")
    serial_built = parallel_built = None
    for _ in range(max(1, repeats)):
        elapsed, serial_built = timed_model(serial_fd)
        serial_s = min(serial_s, elapsed)
        elapsed, parallel_built = timed_model(parallel_fd)
        parallel_s = min(parallel_s, elapsed)

    with tempfile.TemporaryDirectory() as cache_dir:
        fd = FlowDiff(FlowDiffConfig(jobs=4, cache_dir=cache_dir))
        started = time.perf_counter()
        cold_model = fd.model(log)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm_model = fd.model(log)
        warm_s = time.perf_counter() - started

    return {
        "scenario": "scalability_sim(9 apps, 20s)",
        "messages": len(log),
        "cpus": os.cpu_count(),
        "jobs1_s": round(serial_s, 6),
        "jobs4_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "dict_identical": model_to_dict(serial_built) == model_to_dict(parallel_built),
        "cache": {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "warm_skips_remodeling": warm_s < cold_s / 10.0,
            "warm_dict_identical": model_to_dict(warm_model)
            == model_to_dict(cold_model),
        },
        "repeats": repeats,
    }


def throughput_section(
    telemetry: Dict[str, Any],
    phases: Dict[str, float],
    group_signatures: int,
    stability_parts: int,
    service: "Dict[str, Any] | None" = None,
) -> Dict[str, Any]:
    """The ``throughput`` section of the payload: rates, not durations.

    Raw durations hide regressions when the workload drifts with them —
    a 2x message count excuses a 2x phase time in a duration-only diff.
    Rates don't, so the gate floors live here:

    * ``simulate`` — end-to-end control-message ingest (telemetry plane
      on, from :func:`run_ingest_bench`'s enabled leg) in messages per
      wall second, against the committed pre-campaign baseline and the
      campaign's explicit >=``target_x`` floor. ``repro runs gate``
      reads ``min_messages_per_s`` from this section and fails the
      build when the measured rate lands below it (noise-aware: the
      floor is relaxed by the gate tolerance and this section's own
      ``noise_floor_pct``).
    * ``model`` — signatures materialized per second of the benched
      ``model`` phase. The phase accumulates both benched passes, so the
      nominal build count is one signature per group for the full window
      twice (assess on + off) plus one per group per stability interval
      (interval group counts can differ slightly from the full window's;
      the count is nominal, the seconds are measured).
      ``stability_share_pct`` restates the campaign's other target —
      stability assessment staying a minority of model time — directly
      in the payload.
    * ``service`` — the streaming daemon's sustained multi-tenant ingest
      (from :func:`run_service_ingest_bench`), with its own
      ``min_messages_per_s`` floor the gate enforces the same way.
    """
    msg_s = int(telemetry.get("messages_per_s", 0))
    model_s = phases.get("model", 0.0)
    stability_s = phases.get("model/stability", 0.0)
    built = group_signatures * (stability_parts + 2)
    out = {
        "simulate": {
            "messages_per_s": msg_s,
            "baseline_messages_per_s": INGEST_BASELINE_MSG_S,
            "target_x": INGEST_TARGET_X,
            "min_messages_per_s": INGEST_MIN_MSG_S,
            "achieved_x": round(msg_s / INGEST_BASELINE_MSG_S, 3),
            "noise_floor_pct": telemetry.get("noise_floor_pct", 0.0),
        },
        "model": {
            "group_signatures": group_signatures,
            "signatures_nominal": built,
            "model_s": round(model_s, 6),
            "signatures_per_s": round(built / model_s) if model_s else 0,
            "stability_share_pct": round(stability_s / model_s * 100.0, 2)
            if model_s
            else 0.0,
        },
    }
    if service is not None:
        out["service"] = service
    return out


def run_qa_lint_bench(repeats: int = 3) -> Dict[str, Any]:
    """Time the repo self-lint: base rules vs base + concurrency suite.

    The concurrency rules build a project-wide call graph, so their cost
    rides on repository size; publishing both legs (with the repeat
    noise floor) keeps the CI lint gate's wall time an explicit,
    diffable number instead of silent drift.
    """
    import repro
    from repro.qa import LintEngine, concurrency_rules, default_rules
    from repro.qa.framework import Project

    src = os.path.dirname(repro.__file__)

    def _leg(make_rules: Any) -> "list[float]":
        samples = []
        for _ in range(max(1, repeats)):
            project = Project.load([src])
            t0 = time.perf_counter()
            result = LintEngine(make_rules()).run(project)
            samples.append(time.perf_counter() - t0)
            assert result.ok, "the self-lint must be clean while benching"
        return samples

    base = _leg(default_rules)
    full = _leg(lambda: default_rules() + concurrency_rules())
    return {
        "qa_lint_base_s": round(_median(base), 6),
        "qa_lint_concurrency_s": round(_median(full), 6),
        "noise_floor_pct": round(max(_spread_pct(base), _spread_pct(full)), 3),
        "repeats": max(1, repeats),
    }


def run_pipeline_bench(
    seed: int = BENCH_SEED, duration: float = BENCH_DURATION, repeats: int = 3
) -> Dict[str, Any]:
    """Profile model+diff on the seeded lab capture; return the payload.

    The simulation itself is *not* part of the timed region (it stands in
    for capture ingestion); each repeat re-runs the full modeling and
    diffing pipeline and the fastest repeat is reported, pytest-benchmark
    style, to suppress scheduler noise. The payload also records the
    observability on/off timing pair (see :func:`run_obs_overhead_bench`)
    so the enabled-path overhead is diffable commit to commit, and the
    rate-based :func:`throughput_section` whose ingest floor the
    ``repro runs gate`` CI job enforces.
    """
    from repro import FlowDiff
    from repro.obs import Tracer, phase_timings
    from repro.scenarios import three_tier_lab

    log = three_tier_lab(seed=seed).run(0.5, duration)

    best: Dict[str, float] = {}
    baseline = None
    for _ in range(max(1, repeats)):
        tracer = Tracer()
        fd = FlowDiff(tracer=tracer)
        baseline = fd.model(log)
        current = fd.model(log, assess=False)
        fd.diff(baseline, current)
        timings = phase_timings(tracer)
        if not best or timings.get("model", 0.0) + timings.get("diff", 0.0) < (
            best.get("model", 0.0) + best.get("diff", 0.0)
        ):
            best = timings

    telemetry = run_ingest_bench(seed=seed, duration=duration)
    service = run_service_ingest_bench(log=log)
    return {
        "benchmark": "pipeline",
        "seed": seed,
        "duration_s": duration,
        "messages": len(log),
        "phases": {name: round(seconds, 6) for name, seconds in sorted(best.items())},
        "total_s": round(best.get("model", 0.0) + best.get("diff", 0.0), 6),
        "throughput": throughput_section(
            telemetry,
            best,
            len(baseline.app_signatures),
            FlowDiff().config.stability_parts,
            service=service,
        ),
        "obs_overhead": run_obs_overhead_bench(log=log),
        "profiler": run_profiler_overhead_bench(log=log),
        "qa_lint": run_qa_lint_bench(),
        "telemetry": telemetry,
        "parallel": run_parallel_cache_bench(),
        "python": platform.python_version(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def emit(path: str = DEFAULT_OUT, **kwargs: Any) -> str:
    """Write the pipeline benchmark JSON to ``path`` and return the path."""
    payload = run_pipeline_bench(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--duration", type=float, default=BENCH_DURATION)
    args = parser.parse_args()
    path = emit(args.out, seed=args.seed, duration=args.duration)
    with open(path, encoding="utf-8") as fh:
        print(fh.read())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
