"""Emit the machine-readable perf baseline: ``BENCH_pipeline.json``.

Runs the fixed seeded scenario (the same one the microbenchmarks use),
profiles a full model + diff pass with the :mod:`repro.obs` tracer, and
writes the phase timings as JSON at the repository root. Every PR from
this one onward regenerates the file, so the perf trajectory of the
pipeline is diffable commit to commit without parsing pytest-benchmark
output.

Run directly (``python benchmarks/emit.py [--out PATH]``) or let the
benchmark suite's ``pytest_sessionfinish`` hook produce it as a side
effect of a normal benchmark run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Any, Dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_pipeline.json")

#: The fixed scenario: seed and capture duration of the profiled run.
BENCH_SEED = 3
BENCH_DURATION = 30.0


def run_obs_overhead_bench(
    log: Any = None,
    seed: int = BENCH_SEED,
    duration: float = BENCH_DURATION,
    repeats: int = 5,
) -> Dict[str, Any]:
    """Time model+diff with observability off (no-ops) vs on (real
    registry + tracer); return both timings and the relative overhead.

    Best-of-``repeats`` on each side, pytest-benchmark style, so scheduler
    noise does not masquerade as instrumentation cost. The contract this
    guards: the instrumented path must stay within a few percent of the
    no-op path (asserted <5% by the microbench suite), because the
    sliding diagnoser runs instrumented in production.
    """
    from repro import FlowDiff
    from repro.obs import MetricsRegistry, Tracer
    from repro.scenarios import three_tier_lab

    if log is None:
        log = three_tier_lab(seed=seed).run(0.5, duration)

    def one_pass(fd: "FlowDiff") -> float:
        started = time.perf_counter()
        baseline = fd.model(log)
        current = fd.model(log, assess=False)
        fd.diff(baseline, current)
        return time.perf_counter() - started

    noop_s = min(one_pass(FlowDiff()) for _ in range(max(1, repeats)))
    instrumented_s = min(
        one_pass(FlowDiff(metrics=MetricsRegistry(), tracer=Tracer()))
        for _ in range(max(1, repeats))
    )
    overhead_pct = (instrumented_s / noop_s - 1.0) * 100.0 if noop_s else 0.0
    return {
        "noop_s": round(noop_s, 6),
        "instrumented_s": round(instrumented_s, 6),
        "overhead_pct": round(overhead_pct, 3),
        "repeats": repeats,
    }


def run_ingest_bench(
    seed: int = BENCH_SEED,
    duration: float = BENCH_DURATION,
    repeats: int = 5,
    raw_samples: int = 200_000,
) -> Dict[str, Any]:
    """Benchmark the data-plane telemetry path three ways.

    * ``raw_samples_per_s`` — tight-loop ingest into one held
      :class:`ComponentSeries` (the hot-path upper bound: one sample =
      one window fold, no dict lookup).
    * ``messages_per_s`` — end-to-end simulation throughput with the
      plane enabled, in control messages per wall second.
    * ``overhead_pct`` — telemetry-enabled vs ``NOOP_TELEMETRY``
      simulation time, best-of-``repeats`` interleaved (same discipline
      as :func:`run_obs_overhead_bench`); asserted <5% by the microbench
      suite, because :class:`NoopTelemetry` is the production default and
      turning the plane on must never be a scary decision.
    """
    from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
    from repro.scenarios import three_tier_lab

    def one_run(telemetry: Any) -> float:
        scenario = three_tier_lab(seed=seed, telemetry=telemetry)
        started = time.perf_counter()
        one_run.messages = len(scenario.run(0.5, duration))
        return time.perf_counter() - started

    one_run(NOOP_TELEMETRY)  # warm-up: imports, allocator, caches
    # Interleave so host noise lands on both legs (see parallel bench).
    off_s = on_s = float("inf")
    for _ in range(max(1, repeats)):
        off_s = min(off_s, one_run(NOOP_TELEMETRY))
        on_s = min(on_s, one_run(TelemetryPlane()))
    messages = one_run.messages

    plane = TelemetryPlane()
    series = plane.series("link", "a--b", "utilization")
    started = time.perf_counter()
    for i in range(raw_samples):
        series.record(i * 1e-3, 0.5)
    raw_s = time.perf_counter() - started

    return {
        "raw_samples_per_s": round(raw_samples / raw_s) if raw_s else 0,
        "messages": messages,
        "messages_per_s": round(messages / on_s) if on_s else 0,
        "telemetry_off_s": round(off_s, 6),
        "telemetry_on_s": round(on_s, 6),
        "overhead_pct": round((on_s / off_s - 1.0) * 100.0, 3) if off_s else 0.0,
        "repeats": repeats,
    }


def run_parallel_cache_bench(repeats: int = 7) -> Dict[str, Any]:
    """Benchmark the sharded parallel pipeline and the model cache.

    Uses a Figure-13-style capture (the 320-server tree with 9 random
    three-tier apps) so the modeling cost is dominated by extraction and
    signature building, the phases the sharded pipeline restructures.
    Records, commit to commit:

    * ``speedup``: best-of-``repeats`` ``jobs=1`` vs ``jobs=4`` modeling
      time. On a single-CPU runner the parallel path still wins by
      reusing shard work across the model and its stability intervals
      (the serial path re-extracts the log per interval); ``cpus`` is
      recorded so multi-core numbers are read in context.
    * ``dict_identical``: the exactness contract —
      ``model_to_dict(serial) == model_to_dict(parallel)``.
    * ``cache``: cold store vs warm load of the same request, and
      whether the warm path skipped remodeling entirely.
    """
    import gc
    import tempfile

    from repro import FlowDiff
    from repro.core.flowdiff import FlowDiffConfig
    from repro.core.persist import model_to_dict
    from repro.scenarios import scalability_sim

    network, workload = scalability_sim(9, seed=11)
    workload.start(0.0, 20.0)
    network.sim.run(until=23.0)
    log = network.log

    def timed_model(fd: "FlowDiff"):
        gc.collect()  # allocation noise from earlier benches skews the ratio
        started = time.perf_counter()
        model = fd.model(log)
        return time.perf_counter() - started, model

    # Interleave the repeats so transient host noise (shared CI runners)
    # lands on both legs instead of biasing whichever ran second.
    serial_fd = FlowDiff(FlowDiffConfig(jobs=1))
    parallel_fd = FlowDiff(FlowDiffConfig(jobs=4))
    serial_s = parallel_s = float("inf")
    serial_built = parallel_built = None
    for _ in range(max(1, repeats)):
        elapsed, serial_built = timed_model(serial_fd)
        serial_s = min(serial_s, elapsed)
        elapsed, parallel_built = timed_model(parallel_fd)
        parallel_s = min(parallel_s, elapsed)

    with tempfile.TemporaryDirectory() as cache_dir:
        fd = FlowDiff(FlowDiffConfig(jobs=4, cache_dir=cache_dir))
        started = time.perf_counter()
        cold_model = fd.model(log)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm_model = fd.model(log)
        warm_s = time.perf_counter() - started

    return {
        "scenario": "scalability_sim(9 apps, 20s)",
        "messages": len(log),
        "cpus": os.cpu_count(),
        "jobs1_s": round(serial_s, 6),
        "jobs4_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "dict_identical": model_to_dict(serial_built) == model_to_dict(parallel_built),
        "cache": {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "warm_skips_remodeling": warm_s < cold_s / 10.0,
            "warm_dict_identical": model_to_dict(warm_model)
            == model_to_dict(cold_model),
        },
        "repeats": repeats,
    }


def run_pipeline_bench(
    seed: int = BENCH_SEED, duration: float = BENCH_DURATION, repeats: int = 3
) -> Dict[str, Any]:
    """Profile model+diff on the seeded lab capture; return the payload.

    The simulation itself is *not* part of the timed region (it stands in
    for capture ingestion); each repeat re-runs the full modeling and
    diffing pipeline and the fastest repeat is reported, pytest-benchmark
    style, to suppress scheduler noise. The payload also records the
    observability on/off timing pair (see :func:`run_obs_overhead_bench`)
    so the enabled-path overhead is diffable commit to commit.
    """
    from repro import FlowDiff
    from repro.obs import Tracer, phase_timings
    from repro.scenarios import three_tier_lab

    log = three_tier_lab(seed=seed).run(0.5, duration)

    best: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        tracer = Tracer()
        fd = FlowDiff(tracer=tracer)
        baseline = fd.model(log)
        current = fd.model(log, assess=False)
        fd.diff(baseline, current)
        timings = phase_timings(tracer)
        if not best or timings.get("model", 0.0) + timings.get("diff", 0.0) < (
            best.get("model", 0.0) + best.get("diff", 0.0)
        ):
            best = timings

    return {
        "benchmark": "pipeline",
        "seed": seed,
        "duration_s": duration,
        "messages": len(log),
        "phases": {name: round(seconds, 6) for name, seconds in sorted(best.items())},
        "total_s": round(best.get("model", 0.0) + best.get("diff", 0.0), 6),
        "obs_overhead": run_obs_overhead_bench(log=log),
        "telemetry": run_ingest_bench(seed=seed, duration=duration),
        "parallel": run_parallel_cache_bench(),
        "python": platform.python_version(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def emit(path: str = DEFAULT_OUT, **kwargs: Any) -> str:
    """Write the pipeline benchmark JSON to ``path`` and return the path."""
    payload = run_pipeline_bench(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--duration", type=float, default=BENCH_DURATION)
    args = parser.parse_args()
    path = emit(args.out, seed=args.seed, duration=args.duration)
    with open(path, encoding="utf-8") as fh:
        print(fh.read())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
