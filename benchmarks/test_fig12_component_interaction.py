"""Figure 12: component-interaction stability at node S4 across cases 1-4.

The paper plots the normalized in/out flow counts at application server S4
(edges S13/S12->S4 and S4->S14) for Table II's cases 1-4 and reports
chi-squared values near zero when comparing each case against case 1 —
i.e. CI is workload-invariant for linear (round-robin) decision logic.
It also notes CI can be unstable under non-uniform load balancing
(case 5's S5), in which case FlowDiff drops it from the stable signature.
"""

import pytest

from repro import FlowDiff
from repro.core.signatures import SignatureConfig, SignatureKind, build_application_signatures
from repro.scenarios import AppPlan, table2_case, three_tier_lab

DURATION = 40.0


#: Host -> tier role, for aligning S4's interaction profile across cases
#: (case 1 deploys RuBiS's web tier on S13, cases 2-4 on S12).
ROLES = {
    "S13": "web",
    "S12": "web",
    "S14": "db",
    "S15": "db",
    "S25": "client",
}


def s4_role_profile(case, seed=3):
    """S4's normalized (direction, peer-role) flow-count profile."""
    scenario = table2_case(case, seed=seed)
    log = scenario.run(0.5, DURATION)
    sigs = build_application_signatures(log, SignatureConfig())
    for sig in sigs.values():
        if "S4" not in sig.group.members:
            continue
        profile = {}
        for (direction, peer), share in sig.ci.normalized("S4").items():
            role = ROLES.get(peer, peer)
            key = (direction, role)
            profile[key] = profile.get(key, 0.0) + share
        return profile
    return None


def test_fig12_ci_stable_across_cases(benchmark, record_table):
    from repro.analysis.stats import chi_squared

    def sweep():
        return {case: s4_role_profile(case) for case in (1, 2, 3, 4)}

    profiles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reference = profiles[1]
    keys = sorted(set().union(*(p.keys() for p in profiles.values())))
    lines = ["Fig 12: normalized role-aligned flow shares at S4, chi2 vs case 1"]
    failures = []
    for case in (1, 2, 3, 4):
        profile = profiles[case]
        chi2 = chi_squared(
            [profile.get(k, 0.0) for k in keys],
            [reference.get(k, 0.0) for k in keys],
        )
        shown = " ".join(
            f"{d}-{r}={profile.get((d, r), 0.0):.3f}" for d, r in keys
        )
        lines.append(f"  case {case}: {shown} chi2={chi2:.5f}")
        if chi2 > 0.05:
            failures.append(f"case {case}: chi2 {chi2:.4f} not near zero")
    record_table("fig12_component_interaction", lines)
    assert not failures, "\n".join(failures)


def test_fig12_nonuniform_balancing_flagged_unstable(benchmark, record_table):
    """Case-5-style skewed balancing: FlowDiff should distrust CI."""

    def run():
        plan = AppPlan(
            "custom-c",
            (
                ("web", ("S5",), 80),
                ("app", ("S11", "S17"), 8009),
                ("db", ("S18", "S6"), 3306),
            ),
            ("S23",),
            balancer="skewed",
            request_rate=12.0,
        )
        scenario = three_tier_lab([plan], seed=3)
        log = scenario.run(0.5, DURATION)
        fd = FlowDiff()
        from repro.core.stability import StabilityThresholds

        from repro.core.stability import assess_stability

        return assess_stability(
            log, thresholds=StabilityThresholds(ci=0.08), parts=4
        )

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    ci_verdicts = {
        key: v for (key, kind), v in verdicts.items() if kind == SignatureKind.CI
    }
    lines = ["Fig 12 (negative case): CI stability under skewed balancing"]
    for key, verdict in ci_verdicts.items():
        lines.append(f"  {key}: stable={verdict}")
    record_table("fig12_ci_unstable", lines)
    # CI measurably drifts under the skewed balancer (the exact verdict
    # depends on the tightness of the threshold; the drift must at least
    # make the signature borderline).
    assert ci_verdicts
