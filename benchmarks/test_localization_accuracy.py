"""Localization accuracy sweep (quantifying Section V-A's effectiveness).

The paper reports that FlowDiff detects each injected problem and
implicates the right components; this benchmark quantifies that over a
sweep: the same fault type injected at *every* eligible server, measuring
how often the true target ranks first / in the top-3 of the suspect list.
"""

import pytest

from repro import FlowDiff
from repro.faults import AppCrash, HighCPU, LoggingMisconfig
from repro.scenarios import AppPlan, three_tier_lab

DURATION = 30.0

#: Deploy two disjoint apps so localization must pick the right group too.
PLANS = (
    AppPlan(
        "alpha",
        (("web", ("S1",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
        ("S22",),
    ),
    AppPlan(
        "beta",
        (("web", ("S5",), 80), ("app", ("S11",), 8009), ("db", ("S18",), 3306)),
        ("S23",),
    ),
)
TARGETS = ("S1", "S3", "S8", "S5", "S11", "S18")


def capture(fault=None, seed=3):
    scenario = three_tier_lab(PLANS, seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    return scenario.run(0.5, DURATION)


def test_localization_accuracy(benchmark, record_table):
    fd = FlowDiff()
    baseline = fd.model(capture())

    fault_kinds = [
        ("logging", lambda t: LoggingMisconfig(t, 0.05)),
        ("high_cpu", lambda t: HighCPU(t, 6.0)),
        ("app_crash", lambda t: AppCrash(t)),
    ]

    def sweep():
        rows = []
        for name, factory in fault_kinds:
            top1 = 0
            top3 = 0
            detected = 0
            for target in TARGETS:
                report = fd.diff(baseline, fd.model(capture(fault=factory(target))))
                hosts = [c for c, _ in report.component_ranking if "--" not in c]
                if not report.healthy:
                    detected += 1
                if hosts[:1] == [target]:
                    top1 += 1
                if target in hosts[:3]:
                    top3 += 1
            rows.append((name, detected, top1, top3))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    n = len(TARGETS)
    lines = [f"{'fault':<12} {'detected':>9} {'top-1':>6} {'top-3':>6}   (over {n} targets)"]
    for name, detected, top1, top3 in rows:
        lines.append(f"{name:<12} {detected:>7}/{n} {top1:>4}/{n} {top3:>4}/{n}")
    record_table("localization_accuracy", lines)

    for name, detected, _top1, top3 in rows:
        assert detected == n, f"{name}: missed detections"
        assert top3 >= 0.8 * n, f"{name}: top-3 localization below 80%"
    total_top1 = sum(top1 for _, _, top1, _ in rows)
    assert total_top1 >= 0.5 * n * len(rows), "top-1 localization below 50%"
