"""Figure 10: delay-distribution robustness across workloads and reuse.

The paper drives Table II's case-5 custom application with P(x, y) Poisson
workloads across two web servers and R(m, n) connection-reuse ratios at the
application server, then shows the inter-flow delay peak between S2-S3 and
S3-S8 staying within [40, 60] ms (60 ms ground truth) across all settings.

We sweep the same (workload, reuse) grid and assert the dominant peak of
the S2->S3 / S3->S8 delay histogram stays within one 20 ms bin of the
60 ms ground truth in every configuration.
"""

import pytest

from repro.core.signatures import SignatureConfig, build_application_signatures
from repro.scenarios import AppPlan, three_tier_lab

DURATION = 60.0
GROUND_TRUTH = 0.06  # the app server's processing delay
PAIR = (("S2", "S3"), ("S3", "S8"))

#: (label, rate for S1's client, rate for S2's client, reuse at app server)
SETTINGS = [
    ("P(5,5) R(0,0)", 5.0, 5.0, 0.0),
    ("P(5,1) R(0,20)", 5.0, 1.0, 0.2),
    ("P(1,5) R(0,90)", 1.0, 5.0, 0.9),
    ("P(1,5) R(50,50)", 1.0, 5.0, 0.5),
    ("P(5,1) R(0,50)", 5.0, 1.0, 0.5),
    ("P(1,5) R(90,10)", 1.0, 5.0, 0.9),
]


def run_setting(rate1, rate2, reuse, seed=3):
    plans = (
        AppPlan(
            "custom-a",
            (("web", ("S1",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
            ("S22",),
            request_rate=rate1,
            reuse=reuse,
        ),
        AppPlan(
            "custom-b",
            (("web", ("S2",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
            ("S21",),
            request_rate=rate2,
            reuse=reuse,
        ),
    )
    scenario = three_tier_lab(plans, seed=seed)
    log = scenario.run(0.5, DURATION)
    sigs = build_application_signatures(log, SignatureConfig())
    # Both custom apps share S3/S8, so they form one group.
    return next(iter(sigs.values()))


def test_fig10_delay_peak_robustness(benchmark, record_table):
    def sweep():
        rows = []
        for label, r1, r2, reuse in SETTINGS:
            sig = run_setting(r1, r2, reuse)
            peak = sig.dd.dominant_peak(PAIR)
            n = len(sig.dd.samples_for(PAIR))
            rows.append((label, peak, n))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Fig 10: DD peak for S2->S3 / S3->S8 across workload x reuse "
        f"(ground truth {GROUND_TRUTH * 1000:.0f} ms, 20 ms bins)"
    ]
    lines.append(f"{'setting':<18} {'peak (ms)':>10} {'samples':>8}")
    failures = []
    for label, peak, n in rows:
        lines.append(f"{label:<18} {peak * 1000:>10.0f} {n:>8}")
        # Paper: the peak persists within [40, 60] ms of ground truth;
        # our bins are 20 ms, so allow one bin around 60-70 ms.
        if not (GROUND_TRUTH - 0.02) <= peak <= (GROUND_TRUTH + 0.03):
            failures.append(f"{label}: peak {peak * 1000:.0f}ms off ground truth")
    record_table("fig10_delay_robustness", lines)
    assert not failures, "\n".join(failures)
