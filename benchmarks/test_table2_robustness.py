"""Table II / Section V-B1: application-signature robustness case studies.

The paper deploys five application-mix cases (Table II), runs each several
times with varying workloads and connection-reuse settings, and checks
that the signatures FlowDiff builds are stable: connectivity graphs do not
depend on the input traffic at all, and the other signatures stay within
tolerance across runs.

We run every case twice (different workload seed) and assert:

* CG identical across runs of the same case (the paper's strongest claim);
* per-case stability assessment passes for CG and DD;
* the expected application groups are recovered.
"""

import pytest

from repro import FlowDiff
from repro.core.signatures import SignatureKind
from repro.scenarios import TABLE2_CASES, table2_case

DURATION = 30.0


def capture(case, seed):
    scenario = table2_case(case, seed=seed)
    return scenario.run(0.5, DURATION), scenario


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def case_models(fd):
    """Per case: (model seed 3 with stability, model seed 23 without)."""
    out = {}
    for case in sorted(TABLE2_CASES):
        log_a, _ = capture(case, seed=3)
        log_b, _ = capture(case, seed=23)
        out[case] = (fd.model(log_a), fd.model(log_b, assess=False))
    return out


def test_table2_signature_robustness(benchmark, fd, case_models, record_table):
    lines = [
        f"{'case':>5} {'groups':>7} {'CG stable':>10} {'DD stable':>10} "
        f"{'CG identical across seeds':>26}"
    ]
    failures = []

    def run_all():
        rows = []
        for case in sorted(TABLE2_CASES):
            model_a, model_b = case_models[case]

            cg_stable = all(
                v
                for (k, kind), v in model_a.stability.items()
                if kind == SignatureKind.CG
            )
            dd_stable = all(
                v
                for (k, kind), v in model_a.stability.items()
                if kind == SignatureKind.DD
            )
            edges_a = {
                key: sig.cg.edges for key, sig in model_a.app_signatures.items()
            }
            edges_b = {
                key: sig.cg.edges for key, sig in model_b.app_signatures.items()
            }
            cg_identical = edges_a == edges_b
            rows.append((case, len(model_a.app_signatures), cg_stable, dd_stable, cg_identical))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for case, n_groups, cg_stable, dd_stable, cg_identical in rows:
        lines.append(
            f"{case:>5} {n_groups:>7} {str(cg_stable):>10} {str(dd_stable):>10} "
            f"{str(cg_identical):>26}"
        )
        if not cg_stable:
            failures.append(f"case {case}: CG unstable")
        if not cg_identical:
            failures.append(f"case {case}: CG varied with workload")
    record_table("table2_robustness", lines)
    assert not failures, "\n".join(failures)


def test_table2_groups_recovered(benchmark, fd, case_models, record_table):
    """Every case's deployed applications appear as expected groups."""

    def check():
        results = []
        for case, plans in sorted(TABLE2_CASES.items()):
            model = case_models[case][0]
            all_members = set()
            for sig in model.app_signatures.values():
                all_members |= sig.group.members
            deployed = set()
            for plan in plans:
                deployed.update(plan.client_hosts)
                for _, servers, _ in plan.tiers:
                    deployed.update(servers)
            results.append((case, deployed <= all_members, len(model.app_signatures)))
        return results

    results = benchmark.pedantic(check, rounds=1, iterations=1)
    lines = [f"{'case':>5} {'all hosts seen':>15} {'groups':>7}"]
    for case, covered, n in results:
        lines.append(f"{case:>5} {str(covered):>15} {n:>7}")
    record_table("table2_groups", lines)
    assert all(covered for _, covered, _ in results)
