"""Section V-A, "in the wild": detecting VM startup from single-VM traces.

The paper's first effectiveness result: with tcpdump inserted into the
boot sequence of four EC2 VMs, FlowDiff's task signatures "successfully
detect a startup event using the generated task automata" for all four —
even though only the single VM's vantage point is available.

We reproduce this end to end and additionally embed the startup in
background noise (an in-the-wild capture is never clean) to show detection
still works and reports a sensible event span.
"""

import pytest

from repro.core.tasks import TaskLibrary
from repro.workload.traces import TraceConfig, VMTraceSynthesizer


def test_ec2_startup_detected_for_all_vms(benchmark, record_table):
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)

    def run():
        results = {}
        for vm in sorted(synth.vms):
            library = TaskLibrary(service_names=synth.service_names())
            library.learn(
                "vm_startup", synth.training_runs(vm, 50), min_sup=0.6, masked=True
            )
            hits = 0
            spans = []
            for i in range(200, 210):
                events = library.detect(synth.startup_run(vm, i))
                startup = [e for e in events if e.name == "vm_startup"]
                if startup:
                    hits += 1
                    spans.append(startup[0].t_end - startup[0].t_start)
            results[vm] = (hits, spans)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["EC2-style startup detection (10 fresh boots per VM)"]
    for vm, (hits, spans) in sorted(results.items()):
        mean_span = sum(spans) / len(spans) if spans else 0.0
        lines.append(f"  {vm}: detected {hits}/10, mean event span {mean_span:.2f}s")
    record_table("ec2_startup_detection", lines)
    for vm, (hits, _) in results.items():
        assert hits >= 6, f"{vm}: startup detection too weak ({hits}/10)"


def test_ec2_startup_detected_in_noise(benchmark, record_table):
    clean = VMTraceSynthesizer.ec2_quartet(seed=7)
    noisy = VMTraceSynthesizer.ec2_quartet(
        seed=7, config=TraceConfig(noise_rate=10.0)
    )
    vm = "i-3486634d"

    def run():
        library = TaskLibrary(service_names=clean.service_names())
        library.learn(
            "vm_startup", clean.training_runs(vm, 50), min_sup=0.6, masked=True
        )
        hits = 0
        for i in range(300, 312):
            events = library.detect(noisy.startup_run(vm, i))
            hits += any(e.name == "vm_startup" for e in events)
        return hits

    hits = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ec2_startup_in_noise",
        [f"startup detection under 10 flows/s background noise: {hits}/12"],
    )
    assert hits >= 6
