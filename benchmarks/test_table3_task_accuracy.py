"""Table III: accuracy of task-signature matching (the EC2 experiment).

Four VMs (three sharing the Amazon-AMI base image, one Ubuntu), ~50
training boots each. For every VM we learn a startup automaton with and
without IP masking, then measure:

* TP: fresh boots of the same VM recognized;
* FP: boots of *other* VMs wrongly recognized.

Paper shape: TP(not masked) high (17-20/20); TP(masked) slightly lower;
FP(masked) small but non-zero between AMI VMs and zero against Ubuntu;
FP(not masked) zero everywhere.
"""

import pytest

from repro.core.tasks import TaskLibrary
from repro.workload.traces import VMTraceSynthesizer

TRAIN_RUNS = 50
TEST_RUNS = 20
UBUNTU = "i-c5ebf1a3"


@pytest.fixture(scope="module")
def synth():
    return VMTraceSynthesizer.ec2_quartet(seed=7)


def build_matrix(synth, masked):
    vms = sorted(synth.vms)
    libraries = {}
    for vm in vms:
        library = TaskLibrary(service_names=synth.service_names())
        library.learn(
            f"startup:{vm}",
            synth.training_runs(vm, TRAIN_RUNS),
            min_sup=0.6,
            masked=masked,
        )
        libraries[vm] = library
    matrix = {}
    for learned in vms:
        matrix[learned] = {}
        for tested in vms:
            hits = 0
            for i in range(100, 100 + TEST_RUNS):
                events = libraries[learned].detect(synth.startup_run(tested, i))
                hits += any(e.name == f"startup:{learned}" for e in events)
            matrix[learned][tested] = hits
    return matrix


def test_table3_task_signature_accuracy(benchmark, synth, record_table):
    def run():
        return build_matrix(synth, masked=True), build_matrix(synth, masked=False)

    masked, unmasked = benchmark.pedantic(run, rounds=1, iterations=1)
    vms = sorted(synth.vms)
    amis = [vm for vm in vms if vm != UBUNTU]

    lines = [
        f"{'VM':<14} {'TP (not masked)':>16} {'TP (masked)':>12} {'FP (masked)':>12} {'FP (not masked)':>16}"
    ]
    for vm in vms:
        fp_masked = sum(masked[other][vm] for other in vms if other != vm)
        fp_unmasked = sum(unmasked[other][vm] for other in vms if other != vm)
        lines.append(
            f"{vm:<14} {unmasked[vm][vm]:>11}/{TEST_RUNS} {masked[vm][vm]:>7}/{TEST_RUNS} "
            f"{fp_masked:>7}/{3 * TEST_RUNS} {fp_unmasked:>11}/{3 * TEST_RUNS}"
        )
    record_table("table3_task_accuracy", lines)

    for vm in vms:
        # Near-perfect true positives (the paper's worst is 14/20 masked).
        assert unmasked[vm][vm] >= 0.65 * TEST_RUNS, f"unmasked TP low for {vm}"
        assert masked[vm][vm] >= 0.6 * TEST_RUNS, f"masked TP low for {vm}"
        # Unmasked automata never cross-match.
        for other in vms:
            if other != vm:
                assert unmasked[vm][other] == 0, (
                    f"unmasked {vm} matched {other}"
                )
    # Masked AMI automata occasionally cross-match each other...
    ami_cross = sum(masked[a][b] for a in amis for b in amis if a != b)
    assert 0 < ami_cross <= 0.5 * TEST_RUNS * len(amis) * (len(amis) - 1)
    # ...but never the Ubuntu VM (distinct base image), nor vice versa.
    for ami in amis:
        assert masked[ami][UBUNTU] == 0
        assert masked[UBUNTU][ami] == 0


def test_task_learning_latency(benchmark, synth):
    """Learning a 50-run automaton is interactive-speed."""
    runs = synth.training_runs("i-3486634d", TRAIN_RUNS)

    def learn():
        library = TaskLibrary(service_names=synth.service_names())
        return library.learn("startup", runs, min_sup=0.6, masked=True)

    signature = benchmark(learn)
    assert signature.automaton.n_states >= 1
