"""Ablations over the design choices DESIGN.md calls out.

* **Flow-entry timeouts** (Section III-A / VI): shorter soft timeouts
  produce more control traffic (better visibility, more load).
* **Wildcard vs microflow rules** (Section VI): wildcards reduce control
  traffic but coarsen the measurements FlowDiff can build.
* **Proactive deployment** (Section VI): no control traffic, FlowDiff
  goes blind — "FlowDiff would not be suitable for OpenFlow operational
  modes that remove ... the control traffic".
* **min_sup** for task mining: lower support admits more states (bigger
  automata); higher support compresses but can drop legitimate variants.
* **Interleaving threshold**: too small kills matchers mid-task; the
  paper's 1 s bound sits on the plateau.
* **PC epoch length**: epochs far larger than the inter-arrival time
  wash out the correlation signal.
"""

import pytest

from repro.core.signatures import SignatureConfig, build_application_signatures
from repro.core.tasks import TaskDetector, TaskLibrary
from repro.netsim.network import Network, NetworkConfig
from repro.openflow.controller import ControllerConfig
from repro.scenarios import three_tier_lab
from repro.workload.traces import VMTraceSynthesizer

DURATION = 30.0


def lab_log(idle_timeout=5.0, microflow=True, proactive=False, seed=3):
    cfg = NetworkConfig(
        controller=ControllerConfig(
            idle_timeout=idle_timeout, use_microflow_rules=microflow
        )
    )
    scenario = three_tier_lab(seed=seed, network_config=cfg)
    if proactive:
        scenario.network.proactive_install_all_pairs()
    return scenario.run(0.5, DURATION)


def test_ablation_idle_timeout(benchmark, record_table):
    """Soft timeout trades control-message volume against visibility.

    The timeout only matters when 5-tuples recur (connection reuse): an
    entry outliving the inter-request gap absorbs the next request
    silently, while a shorter timeout forces a fresh PacketIn. The sweep
    therefore drives a reuse-heavy, low-rate workload.
    """
    from repro.scenarios import AppPlan

    plan = AppPlan(
        "reusey",
        (("web", ("S1",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
        ("S22",),
        request_rate=0.5,  # ~2 s between requests
        reuse=0.9,
    )

    def capture(idle_timeout):
        cfg = NetworkConfig(
            controller=ControllerConfig(idle_timeout=idle_timeout)
        )
        scenario = three_tier_lab([plan], seed=3, network_config=cfg)
        return scenario.run(0.5, 60.0, drain=2 * idle_timeout + 5.0)

    def sweep():
        return {t: capture(t) for t in (1.0, 5.0, 30.0)}

    logs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["idle timeout sweep: control-plane load (reuse=0.9, 0.5 req/s)"]
    pins = {}
    for timeout, log in sorted(logs.items()):
        pins[timeout] = len(log.packet_ins())
        lines.append(
            f"  idle={timeout:>5.1f}s: {pins[timeout]:>6} PacketIn, "
            f"{len(log.flow_removed()):>6} FlowRemoved"
        )
    record_table("ablation_idle_timeout", lines)
    # Shorter timeouts -> entries expire between requests -> more misses.
    assert pins[1.0] > pins[5.0] > pins[30.0]


def test_ablation_wildcard_and_proactive(benchmark, record_table):
    """Wildcard rules shrink, proactive rules eliminate, the signal."""

    def sweep():
        return (
            lab_log(microflow=True),
            lab_log(microflow=False),
            lab_log(proactive=True),
        )

    micro, wild, proactive = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sig_micro = build_application_signatures(micro, SignatureConfig())
    sig_wild = build_application_signatures(wild, SignatureConfig())
    sig_pro = build_application_signatures(proactive, SignatureConfig())

    lines = ["deployment-mode ablation"]
    for name, log, sigs in (
        ("microflow", micro, sig_micro),
        ("wildcard", wild, sig_wild),
        ("proactive", proactive, sig_pro),
    ):
        edges = sum(len(s.cg.edges) for s in sigs.values())
        lines.append(
            f"  {name:<10} PacketIn={len(log.packet_ins()):>6} "
            f"groups={len(sigs)} cg_edges={edges}"
        )
    record_table("ablation_deployment_modes", lines)

    assert len(wild.packet_ins()) < len(micro.packet_ins())
    # Wildcard visibility loss: fewer distinct observations but the CG
    # survives (destination granularity keeps endpoints); proactive mode
    # removes the signal entirely.
    assert len(proactive.packet_ins()) == 0
    assert not sig_pro  # FlowDiff is blind in proactive deployments
    assert sig_micro  # and fully sighted in reactive ones


def test_ablation_min_sup(benchmark, record_table):
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)
    runs = synth.training_runs("i-3486634d", 50)

    def sweep():
        sizes = {}
        for min_sup in (0.3, 0.6, 0.9):
            library = TaskLibrary(service_names=synth.service_names())
            sig = library.learn("s", runs, min_sup=min_sup, masked=True)
            hits = sum(
                1
                for i in range(100, 115)
                if any(
                    e.name == "s"
                    for e in library.detect(synth.startup_run("i-3486634d", i))
                )
            )
            sizes[min_sup] = (sig.automaton.n_states, hits)
        return sizes

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["min_sup ablation (states, TP/15)"]
    for min_sup, (states, hits) in sorted(sizes.items()):
        lines.append(f"  min_sup={min_sup}: states={states} TP={hits}/15")
    record_table("ablation_min_sup", lines)
    # Lower support admits more (rarer) patterns.
    assert sizes[0.3][0] >= sizes[0.9][0]
    # The paper's 0.6 keeps detection strong.
    assert sizes[0.6][1] >= 10


def test_ablation_interleave_threshold(benchmark, record_table):
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)
    library = TaskLibrary(service_names=synth.service_names())
    library.learn(
        "s", synth.training_runs("i-3486634d", 50), min_sup=0.6, masked=True
    )
    automata = {
        name: sig.automaton for name, sig in library.signatures.items()
    }

    def sweep():
        out = {}
        for threshold in (0.01, 0.2, 1.0, 5.0):
            detector = TaskDetector(
                automata,
                service_names=synth.service_names(),
                interleave_threshold=threshold,
            )
            hits = sum(
                1
                for i in range(100, 115)
                if any(
                    e.name == "s"
                    for e in detector.detect(synth.startup_run("i-3486634d", i))
                )
            )
            out[threshold] = hits
        return out

    hits = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["interleaving-threshold ablation (TP/15)"]
    for threshold, h in sorted(hits.items()):
        lines.append(f"  threshold={threshold:>5.2f}s: TP={h}/15")
    record_table("ablation_interleave", lines)
    # Tiny thresholds kill matchers between legitimately spaced flows;
    # the paper's 1 s sits on the plateau.
    assert hits[0.01] < hits[1.0]
    assert hits[1.0] == hits[5.0]


def test_ablation_pc_epoch(benchmark, record_table):
    log = lab_log()

    def sweep():
        out = {}
        for epoch in (0.25, 1.0, 10.0):
            sigs = build_application_signatures(
                log, SignatureConfig(epoch=epoch)
            )
            sig = next(iter(sigs.values()))
            pair = (("S1", "S3"), ("S3", "S8"))
            out[epoch] = (sig.pc.value(pair), len(sig.pc.pairs()))
        return out

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["PC epoch-length ablation for S1->S3 / S3->S8"]
    for epoch, (r, pairs) in sorted(values.items()):
        lines.append(f"  epoch={epoch:>5.2f}s: r={r:.3f} ({pairs} pairs)")
    record_table("ablation_pc_epoch", lines)
    # Mid-scale epochs capture the dependency strongly.
    assert values[1.0][0] > 0.6


def test_ablation_hybrid_deployment(benchmark, record_table):
    """Section VI, incremental deployment: only aggregation switches are
    OpenFlow-enabled. Detection still works at path granularity, but
    localization coarsens — fewer per-flow observations, fewer inferable
    physical links."""
    from repro import FlowDiff
    from repro.faults import LoggingMisconfig
    from repro.netsim.topology import lab_testbed
    from repro.scenarios import LabScenario, three_tier_lab
    from repro.apps.servers import ServerFarm
    from repro.apps.multitier import MultiTierApp, TierSpec
    from repro.apps.client import WorkloadClient
    from repro.workload.arrivals import PoissonProcess
    import random as _random

    def build(hybrid, fault=False):
        topo = lab_testbed(hybrid=hybrid)
        net = Network(topo)
        farm = ServerFarm()
        farm.set_delay("S3", 0.06, 0.005)
        farm.set_delay("S1", 0.01, 0.001)
        farm.set_delay("S8", 0.005, 0.001)
        app = MultiTierApp(
            "hyb",
            [
                TierSpec("web", ("S1",), 80),
                TierSpec("app", ("S3",), 8009),
                TierSpec("db", ("S8",), 3306),
            ],
            net,
            farm,
            seed=5,
        )
        client = WorkloadClient("S22", app, PoissonProcess(10.0, _random.Random(3)))
        if fault:
            LoggingMisconfig("S3", 0.05).inject_at(net, 0.0, farm)
        client.run(0.5, DURATION)
        net.sim.run(until=DURATION + 15.0)
        return net.log

    def run():
        out = {}
        fd = FlowDiff()
        for hybrid in (False, True):
            base = build(hybrid)
            faulty = build(hybrid, fault=True)
            model = fd.model(base)
            report = fd.diff(model, fd.model(faulty))
            out[hybrid] = (
                len(base.packet_ins()),
                len(model.infrastructure.pt.switch_links),
                [k.value for k in report.changed_kinds()],
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["hybrid-deployment ablation (only aggregation switches OpenFlow)"]
    for hybrid, (pins, links, kinds) in sorted(results.items()):
        mode = "hybrid" if hybrid else "full"
        lines.append(
            f"  {mode:<7} PacketIn={pins:>6} inferred_switch_links={links} "
            f"detected={kinds}"
        )
    record_table("ablation_hybrid_deployment", lines)
    full_pins, full_links, full_kinds = results[False]
    hyb_pins, hyb_links, hyb_kinds = results[True]
    # Less control traffic and a coarser inferred topology...
    assert hyb_pins < full_pins
    assert hyb_links < full_links
    # ...but the DD-based problem detection still fires at path granularity.
    assert "DD" in hyb_kinds
