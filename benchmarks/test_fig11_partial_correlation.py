"""Figure 11: partial-correlation stability.

(a) The PC between dependent flows S13-S4 and S4-S14 of the RuBiS group
    stays high and stable across Table II's cases 1-4.
(b) For case 5 under varying workloads and connection reuse, the PC between
    S2-S3 and S3-S8 stays relatively stable across 10 log intervals.
"""

import pytest

from repro.analysis.timeseries import split_intervals
from repro.core.signatures import SignatureConfig, build_application_signatures
from repro.scenarios import AppPlan, table2_case, three_tier_lab

DURATION = 45.0
RUBIS_PAIR = (("S13", "S4"), ("S4", "S14"))
CASE5_PAIR = (("S2", "S3"), ("S3", "S8"))


def rubis_pc(case, seed=3):
    """PC between web->app and app->db edges of the RuBiS-style group."""
    scenario = table2_case(case, seed=seed)
    log = scenario.run(0.5, DURATION)
    sigs = build_application_signatures(log, SignatureConfig())
    for sig in sigs.values():
        # Cases 2-4 place RuBiS's web on S12; case 1 on S13. Accept both.
        for pair, value in sig.pc.correlations:
            (a, n1), (n2, b) = pair
            if n1 == "S4" and b in ("S14", "S15"):
                return value
    return None


def test_fig11a_pc_across_cases(benchmark, record_table):
    def sweep():
        return {case: rubis_pc(case) for case in (1, 2, 3, 4)}

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Fig 11(a): PC of web->S4 / S4->db across cases 1-4"]
    for case, value in sorted(values.items()):
        lines.append(f"  case {case}: r = {value:.3f}")
    record_table("fig11a_pc_cases", lines)
    usable = [v for v in values.values() if v is not None]
    assert len(usable) == 4
    # Stable and strongly positive across cases.
    assert all(v > 0.7 for v in usable)
    assert max(usable) - min(usable) < 0.3


def test_fig11b_pc_across_intervals_with_reuse(benchmark, record_table):
    # Reuse applies at the app server's database connections (tier index
    # 1 -> 2), per the paper's R(m, n) definition.
    settings = [
        ("P(8,8) R(0,0)", 8.0, 8.0, 0.0),
        ("P(8,3) R(0,20)", 8.0, 3.0, 0.2),
        ("P(3,8) R(50,50)", 3.0, 8.0, 0.5),
        ("P(3,8) R(90,10)", 3.0, 8.0, 0.9),
    ]

    def one_setting(rate1, rate2, reuse):
        plans = (
            AppPlan(
                "custom-a",
                (("web", ("S1",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
                ("S22",),
                request_rate=rate1,
                reuse=(0.0, reuse, 0.0),
            ),
            AppPlan(
                "custom-b",
                (("web", ("S2",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
                ("S21",),
                request_rate=rate2,
                reuse=(0.0, reuse, 0.0),
            ),
        )
        scenario = three_tier_lab(plans, seed=3)
        log = scenario.run(0.5, DURATION)
        t0, t1 = log.time_span
        series = []
        for a, b in split_intervals(t0, t1, 10):
            sigs = build_application_signatures(
                log.window(a, b), SignatureConfig(epoch=0.25), window=(a, b)
            )
            for sig in sigs.values():
                value = sig.pc.value(CASE5_PAIR)
                if CASE5_PAIR in sig.pc.pairs():
                    series.append(value)
        return series

    def sweep():
        return {
            label: one_setting(r1, r2, reuse)
            for label, r1, r2, reuse in settings
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Fig 11(b): PC of S2->S3 / S3->S8 across 10 intervals"]
    failures = []
    for label, series in results.items():
        shown = " ".join(f"{v:.2f}" for v in series)
        lines.append(f"  {label:<18} {shown}")
        if len(series) < 5:
            failures.append(f"{label}: only {len(series)} usable intervals")
            continue
        mean = sum(series) / len(series)
        # The dependency must remain visible in every setting; connection
        # reuse thins the downstream flow counts, so the bar is lower for
        # the reuse-heavy settings (matching Fig 11(b)'s wider spread).
        floor = 0.4 if label.endswith("R(0,0)") else 0.15
        if mean < floor:
            failures.append(f"{label}: mean PC {mean:.2f} below {floor}")
    record_table("fig11b_pc_intervals", lines)
    assert not failures, "\n".join(failures)
