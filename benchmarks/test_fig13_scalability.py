"""Figure 13: scalability of FlowDiff on the 320-server simulation.

(a) PacketIn arrival rate at the controller as the number of random
    three-tier applications grows from 1 to 19 (ON/OFF lognormal periods,
    0.6 connection reuse) — load grows with applications.
(b) FlowDiff's processing (modeling) time for those logs — the paper
    reports sub-linear growth in the number of applications; our shape
    assertion is that time per control message stays bounded (no
    super-linear blow-up) while total load scales an order of magnitude.
"""

import time

import pytest

from repro import FlowDiff
from repro.scenarios import scalability_sim
from repro.workload.traffic import WorkloadStats

SIM_SECONDS = 20.0
APP_COUNTS = (1, 3, 5, 9, 13, 19)


def run_point(n_apps):
    network, workload = scalability_sim(n_apps, seed=11)
    workload.start(0.0, SIM_SECONDS)
    network.sim.run(until=SIM_SECONDS + 3.0)
    log = network.log
    rates = WorkloadStats.packet_in_rate(log, bucket=1.0)
    mean_rate = sum(rates) / len(rates) if rates else 0.0

    fd = FlowDiff()
    # Best-of-3: single-shot wall time is hostage to whatever else the
    # machine is doing; the minimum approximates the true cost.
    elapsed = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        model = fd.model(log, assess=False)
        elapsed = min(elapsed, time.perf_counter() - t0)
    return {
        "apps": n_apps,
        "rate": mean_rate,
        "pins": len(log.packet_ins()),
        "time": elapsed,
        "groups": len(model.app_signatures),
    }


def test_fig13_scalability(benchmark, record_table):
    def sweep():
        return [run_point(n) for n in APP_COUNTS]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'apps':>5} {'PacketIn/s':>11} {'total pins':>11} "
        f"{'model time (s)':>15} {'us/message':>11} {'groups':>7}"
    ]
    for p in points:
        per_msg = p["time"] / max(p["pins"], 1) * 1e6
        lines.append(
            f"{p['apps']:>5} {p['rate']:>11.0f} {p['pins']:>11} "
            f"{p['time']:>15.3f} {per_msg:>11.1f} {p['groups']:>7}"
        )
    from repro.analysis.plotting import ascii_series

    lines.append("")
    lines.append("PacketIn/s vs apps:")
    lines.append(
        ascii_series([(p["apps"], p["rate"]) for p in points], y_label="PacketIn/s")
    )
    lines.append("model time (s) vs apps:")
    lines.append(
        ascii_series([(p["apps"], p["time"]) for p in points], y_label="seconds")
    )
    record_table("fig13_scalability", lines)

    first, last = points[0], points[-1]
    # (a) Control-plane load grows with the number of applications.
    assert last["rate"] > 5 * first["rate"]
    rates = [p["rate"] for p in points]
    assert rates == sorted(rates), "PacketIn rate should grow monotonically"

    # (b) Processing scales with the message volume, not faster: the cost
    # per control message stays within a narrow band across an
    # order-of-magnitude load increase (a quadratic component would blow
    # the largest point out of the band).
    per_msg = [p["time"] / max(p["pins"], 1) for p in points]
    assert max(per_msg) <= 5.0 * min(per_msg), (
        f"per-message cost not bounded: {[f'{v * 1e6:.1f}us' for v in per_msg]}"
    )
    # Every group was recovered (grouping correctness at scale).
    assert last["groups"] == 19


def test_fig13_connection_reuse_effect(benchmark, record_table):
    """Reuse 0.6 must visibly suppress PacketIns vs reuse 0 (Section V-C)."""

    def run(reuse):
        network, workload = scalability_sim(9, seed=11, reuse_prob=reuse)
        workload.start(0.0, SIM_SECONDS)
        network.sim.run(until=SIM_SECONDS + 3.0)
        return len(network.log.packet_ins()), workload.stats

    (pins_reuse, stats_reuse), (pins_fresh, stats_fresh) = benchmark.pedantic(
        lambda: (run(0.6), run(0.0)), rounds=1, iterations=1
    )
    lines = [
        "connection reuse effect on control load (9 apps)",
        f"  reuse=0.6: {pins_reuse} PacketIns "
        f"({stats_reuse.reused_connections} reused bursts)",
        f"  reuse=0.0: {pins_fresh} PacketIns "
        f"({stats_fresh.reused_connections} reused bursts)",
    ]
    record_table("fig13_reuse_effect", lines)
    assert pins_reuse < 0.7 * pins_fresh
