"""Figure 9: fault effects on byte-count and delay CDFs.

The paper injects (a) 1% loss on both links connecting the web and
application servers and (b) verbose logging on the application server of a
four-node three-tier app, then plots:

* Fig 9(a): the CDF of per-flow byte counts — loss shifts it right
  (retransmissions inflate counters);
* Fig 9(b): the CDF of delays between incoming and outgoing flows at the
  application server — both logging and loss shift it right.

We reproduce both CDFs from the control-plane measurements and assert the
shift directions and visibility (KS distance).
"""

import pytest

from repro.core.signatures import SignatureConfig, build_application_signatures
from repro.faults import LinkLoss, LoggingMisconfig
from repro.scenarios import AppPlan, three_tier_lab

DURATION = 60.0
APP_PAIR = (("S1", "S3"), ("S3", "S8"))  # web->app incoming, app->db outgoing

FOUR_NODE = AppPlan(
    "fig9",
    (("web", ("S1",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
    ("S22",),
    request_rate=5.0,
)


def run_case(fault=None, seed=3):
    scenario = three_tier_lab([FOUR_NODE], seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    log = scenario.run(0.5, DURATION)
    sigs = build_application_signatures(log, SignatureConfig())
    return next(iter(sigs.values()))


@pytest.fixture(scope="module")
def signatures():
    vanilla = run_case()
    loss = run_case(LinkLoss([("S1", "ofs3"), ("S3", "ofs5")], 0.03))
    logging_sig = run_case(LoggingMisconfig("S3", overhead=0.05))
    return vanilla, loss, logging_sig


def cdf_rows(cdf, points=10):
    rows = []
    samples = cdf.points()
    step = max(1, len(samples) // points)
    for value, frac in samples[::step]:
        rows.append(f"  {value:12.1f}  {frac:6.3f}")
    return rows


def test_fig9a_byte_count_cdf(benchmark, signatures, record_table):
    vanilla, loss, _ = signatures

    def build_cdfs():
        return vanilla.fs.byte_cdf(), loss.fs.byte_cdf()

    v_cdf, l_cdf = benchmark.pedantic(build_cdfs, rounds=1, iterations=1)

    from repro.analysis.plotting import ascii_cdf

    lines = ["Fig 9(a): per-flow byte count CDF (value, fraction)"]
    lines.append("vanilla:")
    lines.extend(cdf_rows(v_cdf))
    lines.append("loss (1-2% on web-app links):")
    lines.extend(cdf_rows(l_cdf))
    ks = v_cdf.ks_distance(l_cdf)
    lines.append(f"KS distance vanilla vs loss: {ks:.3f}")
    lines.append("")
    lines.append(ascii_cdf({"vanilla": v_cdf, "loss": l_cdf}, x_label="bytes"))
    record_table("fig9a_byte_cdf", lines)

    # Shape: loss shifts mass to larger byte counts — the mean and the
    # extreme quantiles move right, and the distributions visibly differ.
    assert max(l_cdf.samples) > max(v_cdf.samples)
    assert sum(l_cdf.samples) / len(l_cdf.samples) > sum(v_cdf.samples) / len(
        v_cdf.samples
    )
    assert ks > 0.005


def test_fig9b_delay_cdf(benchmark, signatures, record_table):
    vanilla, loss, logging_sig = signatures

    def build_cdfs():
        return (
            vanilla.dd.delay_cdf(APP_PAIR),
            logging_sig.dd.delay_cdf(APP_PAIR),
            loss.dd.delay_cdf(APP_PAIR),
        )

    v_cdf, g_cdf, l_cdf = benchmark.pedantic(build_cdfs, rounds=1, iterations=1)

    from repro.analysis.plotting import ascii_cdf

    lines = ["Fig 9(b): web->app->db inter-flow delay CDF at app server S3 (seconds)"]
    for name, cdf in (("vanilla", v_cdf), ("logging", g_cdf), ("loss", l_cdf)):
        lines.append(f"{name}: median={cdf.quantile(0.5)*1000:.1f}ms "
                     f"p95={cdf.quantile(0.95)*1000:.1f}ms n={len(cdf.samples)}")
    lines.append("")
    lines.append(
        ascii_cdf(
            {"vanilla": v_cdf, "logging": g_cdf, "loss": l_cdf},
            x_label="delay (s)",
        )
    )
    record_table("fig9b_delay_cdf", lines)

    # Logging shifts the whole distribution (median moves by ~overhead).
    assert g_cdf.quantile(0.5) > v_cdf.quantile(0.5) + 0.03
    # Loss shifts the tail (retransmission delays), median roughly holds.
    assert l_cdf.quantile(0.95) > v_cdf.quantile(0.95)
    assert abs(l_cdf.quantile(0.5) - v_cdf.quantile(0.5)) < 0.03
