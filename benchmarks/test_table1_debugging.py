"""Table I: debugging with FlowDiff — seven injected operational problems.

For each problem the paper lists which signature components change and the
problem type an operator infers. We run each fault against the same
baseline, diff, and assert:

* the paper's changed-signature set is a subset of what FlowDiff flags;
* a matching problem class appears among the top inferences;
* the faulty component ranks among the top suspects (localization).

Also regenerates the Figure 8 dependency matrices for congestion and
switch failure.
"""

import pytest

from repro import FlowDiff
from repro.core.signatures import SignatureKind
from repro.faults import (
    AppCrash,
    BackgroundTraffic,
    FirewallBlock,
    HighCPU,
    HostShutdown,
    LinkLoss,
    LoggingMisconfig,
    SwitchFailure,
)
from repro.scenarios import three_tier_lab

DURATION = 40.0

#: (id, fault factory, expected signature kinds (subset), acceptable
#: problem classes, component expected among top suspects)
PROBLEMS = [
    (1, lambda: LoggingMisconfig("S3", 0.05), {"DD"},
     {"host_or_app_problem", "application_performance", "host_performance"}, "S3"),
    (2, lambda: LinkLoss([("S1", "ofs3"), ("S3", "ofs5")], 0.03), {"DD", "FS"},
     {"host_performance", "congestion", "application_performance"}, None),
    (3, lambda: HighCPU("S3", 3.0), {"DD"},
     {"host_or_app_problem", "application_performance", "host_performance"}, "S3"),
    (4, lambda: AppCrash("S3"), {"CG", "CI"},
     {"application_failure", "host_failure"}, "S3"),
    (5, lambda: HostShutdown("S8"), {"CG", "CI"},
     {"host_failure", "application_failure", "network_disconnectivity"}, "S8"),
    (6, lambda: FirewallBlock("S8", 3306), {"CG", "CI"},
     {"host_or_app_problem", "host_failure", "application_failure",
      "network_disconnectivity"}, "S8"),
    (7, lambda: BackgroundTraffic("S24", "S25", rate_bytes=200_000_000,
                                  duration=DURATION), {"ISL", "FS", "DD"},
     {"congestion", "switch_misconfiguration"}, None),
]


def capture(fault=None, seed=3):
    scenario = three_tier_lab(seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    return scenario.run(0.5, DURATION)


@pytest.fixture(scope="module")
def fd():
    return FlowDiff()


@pytest.fixture(scope="module")
def baseline(fd):
    return fd.model(capture())


@pytest.fixture(scope="module")
def reports(fd, baseline):
    out = {}
    for pid, factory, _, _, _ in PROBLEMS:
        out[pid] = fd.diff(baseline, fd.model(capture(fault=factory())))
    return out


def test_table1_debugging(benchmark, fd, baseline, reports, record_table):
    benchmark.pedantic(
        lambda: fd.diff(baseline, baseline), rounds=1, iterations=1
    )
    lines = [
        f"{'ID':>3} {'problem':<22} {'signature impact':<22} {'inference':<26} {'top suspects'}"
    ]
    failures = []
    for pid, factory, expected_kinds, expected_classes, component in PROBLEMS:
        report = reports[pid]
        kinds = {k.value for k in report.changed_kinds()}
        classes = [p.problem for p in report.problems]
        suspects = [c for c, _ in report.component_ranking if "--" not in c][:3]
        lines.append(
            f"{pid:>3} {factory().name:<22} {','.join(sorted(kinds)):<22} "
            f"{classes[0] if classes else '-':<26} {','.join(suspects)}"
        )
        if not expected_kinds <= kinds:
            failures.append(f"#{pid}: expected kinds {expected_kinds} ⊄ {kinds}")
        if not (set(classes[:2]) & expected_classes):
            failures.append(f"#{pid}: classes {classes[:2]} ∉ {expected_classes}")
        if component is not None and component not in suspects:
            failures.append(f"#{pid}: {component} not in top suspects {suspects}")
    record_table("table1_debugging", lines)
    assert not failures, "\n".join(failures)


def test_fig8_dependency_matrices(benchmark, fd, baseline, reports, record_table):
    congestion = reports[7].dependency
    lines = ["Fig 8(a): congestion dependency matrix"]
    lines.append(congestion.render())
    # The paper's congestion matrix: DD/PC/FS rows light up against ISL.
    assert congestion.at(SignatureKind.DD, SignatureKind.ISL) == 1
    assert congestion.at(SignatureKind.FS, SignatureKind.ISL) == 1
    assert congestion.at(SignatureKind.CI, SignatureKind.CRT) == 0

    # Switch failure: run separately (not one of Table I's seven).
    report = benchmark.pedantic(
        lambda: fd.diff(
            baseline, fd.model(capture(fault=SwitchFailure("ofs5")))
        ),
        rounds=1,
        iterations=1,
    )
    lines.append("")
    lines.append("Fig 8(b): switch-failure dependency matrix")
    lines.append(report.dependency.render())
    record_table("fig8_dependency_matrices", lines)
    assert report.dependency.at(SignatureKind.CG, SignatureKind.PT) == 1
    assert report.dependency.at(SignatureKind.DD, SignatureKind.CRT) == 0
