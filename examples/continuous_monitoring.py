#!/usr/bin/env python3
"""Continuous monitoring: watch a live log and pinpoint a problem's onset.

FlowDiff in production runs as a loop: model a healthy baseline once, then
periodically diff the newest log window against it. This example runs a
data center for two minutes, silently degrades the application server
halfway through, and shows the sliding diagnoser catching the onset
window — while a VM-stop operator task performed earlier is recognized
and *not* flagged.

Run:  python examples/continuous_monitoring.py
"""

import random

from repro.core.monitor import SlidingDiagnoser
from repro.core.tasks import TaskLibrary
from repro.faults import HighCPU
from repro.ops import VMStopTask
from repro.scenarios import three_tier_lab

FAULT_AT = 80.0
TASK_AT = 45.0
TOTAL = 120.0


def main():
    print("running 120 s of data center activity...")
    scenario = three_tier_lab(seed=3)
    # A planned operator task: VM1 is shut down at t=45 (stores to S20).
    task = VMStopTask("VM1", "S20")
    task.run(scenario.network, at=TASK_AT)
    # An unplanned problem: CPU contention on S3 starting at t=80.
    scenario.inject(HighCPU("S3", factor=3.0), at=FAULT_AT)
    log = scenario.run(0.5, TOTAL)

    print("teaching the diagnoser the vm_stop task signature...")
    library = TaskLibrary()
    library.learn(
        "vm_stop",
        [VMStopTask("VM1", "S20").flow_sequence(random.Random(i)) for i in range(20)],
        masked=True,
    )

    diagnoser = SlidingDiagnoser(window=15.0, task_library=library)
    diagnoser.set_baseline(log, 0.0, 30.0)
    reports = diagnoser.advance(log)

    print(f"\n{'window':<16} {'status':<10} {'problems':<30} explained-by-task")
    for entry in reports:
        problems = ",".join(p.problem for p in entry.report.problems[:1]) or "-"
        tasks = ",".join(
            sorted({e.name for _, e in entry.report.known_changes})
        ) or "-"
        status = "healthy" if entry.healthy else "PROBLEM"
        print(
            f"[{entry.t_start:5.0f},{entry.t_end:5.0f})  {status:<10} "
            f"{problems:<30} {tasks}"
        )

    first_bad = diagnoser.first_unhealthy()
    assert first_bad is not None, "the CPU fault should have been caught"
    assert first_bad.t_end > FAULT_AT, "onset must not precede the fault"
    suspects = [
        c for c, _ in first_bad.report.component_ranking if "--" not in c
    ]
    print(f"\nproblem onset: window [{first_bad.t_start:.0f}, {first_bad.t_end:.0f})s "
          f"(fault injected at t={FAULT_AT:.0f}s); top suspects: {suspects[:2]}")
    assert "S3" in suspects[:2]
    print("OK: onset localized to the right window and server; "
          "the planned VM stop raised no alarm.")


if __name__ == "__main__":
    main()
