#!/usr/bin/env python3
"""Diagnose network congestion caused by a noisy neighbour (Table I, #7).

An iperf-style bulk transfer between two unrelated hosts congests the
shared core links. FlowDiff sees the *application's* signatures degrade
(delay distribution, flow statistics) together with the *infrastructure's*
inter-switch latency — the co-occurrence pattern of the congestion
dependency matrix (Figure 8(a)) — without instrumenting a single server.

Run:  python examples/diagnose_congestion.py
"""

from repro import FlowDiff
from repro.core.signatures import SignatureKind
from repro.faults import BackgroundTraffic
from repro.scenarios import three_tier_lab

DURATION = 40.0


def capture(fault=None, seed=3):
    scenario = three_tier_lab(seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    return scenario.run(start=0.5, stop=DURATION)


def main():
    fd = FlowDiff()

    print("baseline run (no background traffic)...")
    baseline = fd.model(capture())

    print("faulty run: 200 MB/s iperf between S24 and S25 across the core...\n")
    hog = BackgroundTraffic(
        "S24", "S25", rate_bytes=200_000_000, duration=DURATION
    )
    report = fd.diff(baseline, fd.model(capture(fault=hog)))

    print(report.render())

    kinds = set(report.changed_kinds())
    assert SignatureKind.ISL in kinds, "congestion must surface in inter-switch latency"
    assert kinds & {SignatureKind.DD, SignatureKind.FS}, (
        "application-level symptoms expected alongside the ISL shift"
    )
    assert any(p.problem == "congestion" for p in report.problems), (
        f"expected congestion among candidates, got {[p.problem for p in report.problems]}"
    )

    print("\nDependency-matrix cells lit for congestion (app kind x ISL):")
    for app_kind in (SignatureKind.DD, SignatureKind.PC, SignatureKind.FS):
        cell = report.dependency.at(app_kind, SignatureKind.ISL)
        print(f"  {app_kind.value} x ISL = {cell}")

    print("\nOK: congestion detected from control traffic alone.")


if __name__ == "__main__":
    main()
