#!/usr/bin/env python3
"""Quickstart: detect a misconfigured server in a simulated data center.

This is the paper's core workflow (Figure 1) in ~40 lines:

1. run a three-tier application on the simulated lab data center and
   capture the OpenFlow control traffic (log L1, known-good);
2. re-run with a fault injected — verbose logging on the application
   server adds ~50 ms to every request (Table I, problem 1);
3. model both logs and diff them: FlowDiff flags the delay-distribution
   shift and points at the faulty server.

Run:  python examples/quickstart.py
"""

from repro import FlowDiff
from repro.faults import LoggingMisconfig
from repro.scenarios import three_tier_lab


def capture_log(fault=None, seed=3):
    """Run the default lab scenario (client S22 -> web S1 -> app S3 -> db S8)."""
    scenario = three_tier_lab(seed=seed)
    if fault is not None:
        scenario.inject(fault, at=0.0)
    return scenario.run(start=0.5, stop=30.0)


def main():
    fd = FlowDiff()

    print("capturing baseline control traffic (L1)...")
    baseline_log = capture_log()
    baseline = fd.model(baseline_log)
    print(
        f"  {len(baseline_log)} control messages, "
        f"{len(baseline.app_signatures)} application group(s)\n"
    )

    print("injecting fault: verbose logging on app server S3 (+50 ms/request)")
    faulty_log = capture_log(fault=LoggingMisconfig("S3", overhead=0.05))
    current = fd.model(faulty_log)

    report = fd.diff(baseline, current)
    print()
    print(report.render())

    suspects = [c for c, _ in report.component_ranking if "--" not in c]
    assert not report.healthy, "expected the fault to be detected"
    assert "S3" in suspects[:2], f"expected S3 among top suspects, got {suspects[:2]}"
    print("\nOK: FlowDiff flagged the DD shift and localized it to S3.")


if __name__ == "__main__":
    main()
