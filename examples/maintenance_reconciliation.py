#!/usr/bin/env python3
"""Maintenance reconciliation: planned work vs what control traffic shows.

A change window schedules three operator tasks. One of them silently
fails to execute, and an operator also performs an *unscheduled* task.
FlowDiff's task detection turns the controller log into a task time
series; reconciliation against the schedule surfaces both discrepancies
— the operational loop the paper's task signatures enable.

Run:  python examples/maintenance_reconciliation.py
"""

import random

from repro.core.tasks import TaskLibrary
from repro.netsim.network import Network
from repro.netsim.topology import lab_testbed
from repro.ops import (
    MaintenanceWindow,
    MountNFSTask,
    UnmountNFSTask,
    VMStopTask,
)


def main():
    net = Network(lab_testbed())

    # The plan: stop VM1, mount storage on S5, unmount storage on S7.
    window = MaintenanceWindow()
    window.add(VMStopTask("VM1", "S20"), at=5.0)
    window.add(MountNFSTask("S5", "S20"), at=20.0)
    window.add(UnmountNFSTask("S7", "S20"), at=35.0)

    # Reality: the unmount never runs (ticket executed against the wrong
    # host list), and someone stops VM2 without a ticket.
    executed = MaintenanceWindow(window.items[:2])
    executed.run(net, seed=7)
    VMStopTask("VM2", "S20").run(net, at=50.0, rng=random.Random(99))
    net.sim.run(until=70.0)

    # Teach the detector each task type from synthetic training runs.
    library = TaskLibrary()
    training = {
        "vm_stop": VMStopTask("VM1", "S20"),
        "mount_nfs": MountNFSTask("S5", "S20"),
        "unmount_nfs": UnmountNFSTask("S7", "S20"),
    }
    for name, task in training.items():
        library.learn(
            name,
            [task.flow_sequence(random.Random(i)) for i in range(20)],
            masked=True,
        )

    detected = library.detect_in_log(net.log)
    print(f"detected task events: {[(e.name, round(e.t_start, 1)) for e in detected]}\n")

    reconciliation = window.reconcile(detected)
    print(reconciliation.render())

    assert len(reconciliation.matched) == 2
    assert len(reconciliation.missed) == 1
    assert reconciliation.missed[0].task.name == "unmount_nfs"
    assert len(reconciliation.unexpected) >= 1
    assert any("VM2" in e.hosts for e in reconciliation.unexpected)
    print(
        "\nOK: the skipped unmount and the unscheduled VM stop were both "
        "surfaced from control traffic alone."
    )


if __name__ == "__main__":
    main()
