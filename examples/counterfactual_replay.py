#!/usr/bin/env python3
"""Counterfactual replay: re-run yesterday's traffic under tomorrow's fault.

Capture once, experiment many times: a controller log fixes the
application-level flow arrivals, so the same traffic can be replayed
through fresh simulated networks with different conditions —

* a *clean* replay validates fidelity (same connectivity graph);
* a *lossy* replay answers "what would these flows' counters have looked
  like if that link were dropping 10% of packets?";
* a *double-speed* replay stresses the controller with the same traffic
  mix at twice the arrival rate.

Run:  python examples/counterfactual_replay.py
"""

from repro.core.signatures import build_application_signatures
from repro.netsim.network import Network
from repro.netsim.topology import lab_testbed
from repro.scenarios import three_tier_lab
from repro.workload.replay import replay_log


def replay(source_log, loss=0.0, time_scale=1.0):
    net = Network(lab_testbed())
    if loss:
        net.set_link_loss("S1", "ofs3", loss)
        net.set_link_loss("S3", "ofs5", loss)
    stats = replay_log(source_log, net, time_scale=time_scale)
    net.sim.run(until=120.0)
    return net.log, stats


def main():
    print("capturing 20 s of three-tier traffic...")
    source_log = three_tier_lab(seed=3).run(0.5, 20.0)
    source_sigs = build_application_signatures(source_log)
    source_edges = {e for s in source_sigs.values() for e in s.cg.edges}

    print("replaying clean...")
    clean_log, stats = replay(source_log)
    print(f"  {stats.flows} flows replayed ({stats.with_counters} with observed counters)")
    clean_sigs = build_application_signatures(clean_log)
    clean_edges = {e for s in clean_sigs.values() for e in s.cg.edges}
    assert clean_edges == source_edges, "replay must reproduce the CG"
    clean_mean = next(iter(clean_sigs.values())).fs.byte_mean

    print("replaying with 10% loss on the web/app access links...")
    lossy_log, _ = replay(source_log, loss=0.1)
    lossy_mean = next(
        iter(build_application_signatures(lossy_log).values())
    ).fs.byte_mean
    inflation = (lossy_mean / clean_mean - 1) * 100
    print(f"  per-flow byte mean: {clean_mean:.0f} -> {lossy_mean:.0f} "
          f"(+{inflation:.1f}% retransmission overhead)")
    assert lossy_mean > clean_mean

    print("replaying at double speed...")
    fast_log, _ = replay(source_log, time_scale=0.5)
    clean_span = clean_log.time_span[1] - clean_log.time_span[0]
    fast_span = fast_log.time_span[1] - fast_log.time_span[0]
    print(f"  capture span {clean_span:.1f}s -> {fast_span:.1f}s; "
          f"same {len(fast_log.packet_ins())} PacketIns in half the time")
    assert fast_span < clean_span

    print("\nOK: one capture, three experiments — fidelity, counterfactual "
          "loss, and load scaling.")


if __name__ == "__main__":
    main()
