#!/usr/bin/env python3
"""Deployment considerations (Section VI): how capture modes change FlowDiff.

Four ways to operate the same data center, same workload, same fault:

* **reactive / microflow** — full visibility, most control traffic;
* **wildcard rules** — less control traffic, coarser measurements;
* **hybrid** — only aggregation switches are OpenFlow (the incremental
  deployment "already in production" per the paper's operators);
* **proactive** — rules pre-installed, no control traffic: FlowDiff is
  blind, which is Section VI's explicit caveat.

For each mode the script reports the control-plane load and whether the
injected fault (verbose logging on S3) is still detected.

Run:  python examples/deployment_modes.py
"""

import random

from repro import FlowDiff
from repro.apps.client import WorkloadClient
from repro.apps.multitier import MultiTierApp, TierSpec
from repro.apps.servers import ServerFarm
from repro.faults import LoggingMisconfig
from repro.netsim.network import Network, NetworkConfig
from repro.netsim.topology import lab_testbed
from repro.openflow.controller import ControllerConfig
from repro.workload.arrivals import PoissonProcess

DURATION = 30.0


def capture(mode, fault=False):
    hybrid = mode == "hybrid"
    microflow = mode != "wildcard"
    topo = lab_testbed(hybrid=hybrid)
    net = Network(
        topo,
        config=NetworkConfig(
            controller=ControllerConfig(use_microflow_rules=microflow)
        ),
    )
    if mode == "proactive":
        net.proactive_install_all_pairs()
    farm = ServerFarm()
    farm.set_delay("S3", 0.06, 0.005)
    farm.set_delay("S1", 0.01, 0.001)
    farm.set_delay("S8", 0.005, 0.001)
    app = MultiTierApp(
        "app",
        [
            TierSpec("web", ("S1",), 80),
            TierSpec("app", ("S3",), 8009),
            TierSpec("db", ("S8",), 3306),
        ],
        net,
        farm,
        seed=5,
    )
    client = WorkloadClient("S22", app, PoissonProcess(10.0, random.Random(3)))
    if fault:
        LoggingMisconfig("S3", 0.05).inject_at(net, 0.0, farm)
    client.run(0.5, DURATION)
    net.sim.run(until=DURATION + 15.0)
    return net.log


def main():
    fd = FlowDiff()
    print(f"{'mode':<11} {'PacketIn':>9} {'groups':>7} {'fault detected':>15}")
    results = {}
    for mode in ("reactive", "wildcard", "hybrid", "proactive"):
        base_log = capture(mode)
        fault_log = capture(mode, fault=True)
        baseline = fd.model(base_log)
        detected = "-"
        groups = len(baseline.app_signatures)
        if groups:
            report = fd.diff(baseline, fd.model(fault_log, assess=False))
            detected = "yes" if not report.healthy else "no"
        results[mode] = (len(base_log.packet_ins()), groups, detected)
        print(
            f"{mode:<11} {results[mode][0]:>9} {groups:>7} {detected:>15}"
        )

    assert results["reactive"][2] == "yes"
    assert results["wildcard"][0] < results["reactive"][0]
    assert results["hybrid"][0] < results["reactive"][0]
    assert results["hybrid"][2] == "yes", "path-level detection should survive"
    assert results["proactive"][0] == 0 and results["proactive"][1] == 0
    print(
        "\nOK: visibility degrades reactive > hybrid > proactive exactly as "
        "Section VI describes; detection survives everywhere control "
        "traffic still flows."
    )


if __name__ == "__main__":
    main()
