#!/usr/bin/env python3
"""Scalability walkthrough: the paper's 320-server simulation (Section V-C).

Builds the 16-rack tree, places random three-tier applications on it, and
drives every inter-tier VM pair with ON/OFF lognormal(100 ms, 30 ms)
traffic at 0.6 connection reuse. Reports the control-plane load
(PacketIn/s — Figure 13(a)) and how long FlowDiff takes to model the
resulting log (Figure 13(b)'s quantity) as applications scale.

Run:  python examples/scalability_walkthrough.py
"""

import time

from repro import FlowDiff
from repro.scenarios import scalability_sim
from repro.workload.traffic import WorkloadStats

SIM_SECONDS = 20.0


def run_point(n_apps):
    network, workload = scalability_sim(n_apps, seed=11)
    workload.start(0.0, SIM_SECONDS)
    network.sim.run(until=SIM_SECONDS + 3.0)
    log = network.log

    rates = WorkloadStats.packet_in_rate(log, bucket=1.0)
    mean_rate = sum(rates) / len(rates) if rates else 0.0

    fd = FlowDiff()
    t0 = time.perf_counter()
    model = fd.model(log, assess=False)
    elapsed = time.perf_counter() - t0
    return mean_rate, len(log.packet_ins()), elapsed, len(model.app_signatures)


def main():
    print(f"{'apps':>5} {'PacketIn/s':>11} {'total pins':>11} "
          f"{'model time (s)':>15} {'groups':>7}")
    prev_elapsed = None
    points = []
    for n_apps in (1, 5, 9, 15, 19):
        rate, pins, elapsed, groups = run_point(n_apps)
        points.append((n_apps, rate, elapsed))
        print(f"{n_apps:>5} {rate:>11.0f} {pins:>11} {elapsed:>15.3f} {groups:>7}")

    # Load grows with apps; processing stays sub-linear in apps
    # (the paper's Figure 13(b) claim).
    assert points[-1][1] > points[0][1], "PacketIn rate should grow with apps"
    apps_ratio = points[-1][0] / points[0][0]
    time_ratio = points[-1][2] / max(points[0][2], 1e-9)
    print(f"\napps grew {apps_ratio:.0f}x; modeling time grew {time_ratio:.1f}x")


if __name__ == "__main__":
    main()
