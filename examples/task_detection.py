#!/usr/bin/env python3
"""Learn and detect operator-task signatures (Section III-D / Table III).

Reproduces the paper's EC2 experiment with synthetic captures: learn a
VM-startup automaton per VM from 50 boot traces, then try to recognize
fresh boots — of the same VM and of different VMs — with masked
(generalized) and unmasked (VM-specific) automata.

Expected shape (Table III): near-perfect true positives on the learned
VM; masked automata occasionally cross-match VMs sharing a base image;
never match the Ubuntu VM from an Amazon-AMI automaton; unmasked
automata never cross-match at all.

Run:  python examples/task_detection.py
"""

from repro.core.tasks import TaskLibrary
from repro.workload.traces import VMTraceSynthesizer

TRAIN_RUNS = 50
TEST_RUNS = 20


def detection_matrix(synth, masked):
    """hits[learned_vm][tested_vm] = detections out of TEST_RUNS."""
    vms = sorted(synth.vms)
    libraries = {}
    for vm in vms:
        library = TaskLibrary(service_names=synth.service_names())
        library.learn(
            f"startup:{vm}",
            synth.training_runs(vm, TRAIN_RUNS),
            min_sup=0.6,
            masked=masked,
        )
        libraries[vm] = library

    matrix = {}
    for learned in vms:
        matrix[learned] = {}
        for tested in vms:
            hits = 0
            for i in range(100, 100 + TEST_RUNS):
                run = synth.startup_run(tested, i)
                events = libraries[learned].detect(run)
                if any(e.name == f"startup:{learned}" for e in events):
                    hits += 1
            matrix[learned][tested] = hits
    return matrix


def print_matrix(title, matrix):
    vms = sorted(matrix)
    print(f"\n{title}")
    print("  learned \\ tested   " + "  ".join(vm[:10].rjust(10) for vm in vms))
    for learned in vms:
        row = "  ".join(str(matrix[learned][t]).rjust(10) for t in vms)
        print(f"  {learned[:16].ljust(18)} {row}")


def main():
    synth = VMTraceSynthesizer.ec2_quartet(seed=7)
    ubuntu = "i-c5ebf1a3"
    amis = [vm for vm in sorted(synth.vms) if vm != ubuntu]

    masked = detection_matrix(synth, masked=True)
    unmasked = detection_matrix(synth, masked=False)
    print_matrix(f"masked automata (hits / {TEST_RUNS} boots)", masked)
    print_matrix(f"unmasked automata (hits / {TEST_RUNS} boots)", unmasked)

    # Table III's qualitative claims.
    for vm in sorted(synth.vms):
        assert masked[vm][vm] >= 0.6 * TEST_RUNS, f"masked TP too low for {vm}"
        assert unmasked[vm][vm] >= 0.6 * TEST_RUNS, f"unmasked TP too low for {vm}"
    for ami in amis:
        assert masked[ami][ubuntu] == 0, "AMI automaton must never match Ubuntu"
    cross = sum(masked[a][b] for a in amis for b in amis if a != b)
    assert cross > 0, "masked AMI automata should occasionally cross-match"
    cross_unmasked = sum(
        unmasked[a][b] for a in sorted(synth.vms) for b in sorted(synth.vms) if a != b
    )
    assert cross_unmasked == 0, "unmasked automata must never cross-match"

    print("\nOK: Table III's structure reproduced "
          "(high TP, rare masked AMI cross-matches, zero unmasked FP).")


if __name__ == "__main__":
    main()
