"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires building an editable wheel; on offline machines
without `wheel`, `python setup.py develop` installs the same editable
package using only setuptools.
"""

from setuptools import setup

setup()
