"""A reactive centralized controller in the style of NOX's routing module.

The controller receives ``PacketIn`` table-miss reports, consults a routing
function supplied by the network (shortest path over the current topology),
and replies with a ``FlowMod`` installing the forwarding entry plus a
``PacketOut`` releasing the buffered packet — the reactive deployment the
paper assumes (Section III-A, Figure 3).

Response-time model
-------------------

The controller response time (CRT) is itself a FlowDiff infrastructure
signature, so the model must be controllable: a base service time, a
jitter term, and an M/M/1-style load factor that grows with the recent
PacketIn arrival rate. The controller-overload fault simply scales the
service time, which shifts CRT without touching any application signature —
exactly the separation Figure 2(b) relies on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

import random

from repro._compat import DATACLASS_KW
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowMod, PacketIn, PacketOut
from repro.openflow.switch import TableMiss

#: A routing function: (dpid, flow) -> output port, or None to drop.
RouteFn = Callable[[str, FlowKey], Optional[int]]


@dataclass
class ControllerConfig:
    """Tunable parameters of the reactive controller.

    Attributes:
        base_response: intrinsic PacketIn service time in seconds.
        response_jitter: uniform jitter added to each response, in seconds.
        capacity: PacketIn messages per second the controller can sustain;
            the load factor of the response time grows as the recent arrival
            rate approaches this capacity (Section V-C cites ~100K req/s for
            production controllers; the lab default is far smaller so load
            effects are observable in small simulations).
        idle_timeout: soft timeout given to installed entries.
        hard_timeout: hard timeout given to installed entries (0 = none).
        use_microflow_rules: install exact-match entries when True; install
            destination-wildcard entries when False (Section VI trade-off).
        load_window: seconds of PacketIn history used to estimate load.
    """

    base_response: float = 0.001
    response_jitter: float = 0.0005
    capacity: float = 10000.0
    idle_timeout: float = 5.0
    hard_timeout: float = 0.0
    use_microflow_rules: bool = True
    load_window: float = 1.0


@dataclass(**DATACLASS_KW)
class ControllerReply:
    """The controller's reaction to one table miss.

    Attributes:
        flow_mod: the installation instruction (None when the route is
            unknown and the packet is dropped).
        packet_out: the buffered-packet release (paired with the flow mod).
        ready_at: the time the reply reaches the switch (PacketIn arrival
            plus response time); the network resumes packet forwarding then.
    """

    flow_mod: Optional[FlowMod]
    packet_out: Optional[PacketOut]
    ready_at: float


class Controller:
    """A logically centralized reactive OpenFlow controller.

    Every message the controller sends or receives is recorded in
    :attr:`log` with its controller-side timestamp; that log is what
    FlowDiff consumes.
    """

    def __init__(
        self,
        route_fn: RouteFn,
        config: Optional[ControllerConfig] = None,
        rng: Optional[random.Random] = None,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        telemetry: TelemetryPlane = NOOP_TELEMETRY,
        name: str = "c0",
    ) -> None:
        self.route_fn = route_fn
        self.name = name
        self.config = config or ControllerConfig()
        self.rng = rng or random.Random(0)
        self.log = ControllerLog()
        self.live = True
        #: Multiplier applied to the service time; the overload fault
        #: raises it, and recovery restores it to 1.0.
        self.overload_factor = 1.0
        self._recent_arrivals: Deque[float] = deque()
        self._busy_until = 0.0
        # Message-mix counters plus the two live-health signals the paper's
        # CRT signature models: service latency and load inflation.
        self.metrics = metrics
        self._m_packet_in = metrics.counter("controller_messages_total", kind="packet_in")
        self._m_flow_mod = metrics.counter("controller_messages_total", kind="flow_mod")
        self._m_packet_out = metrics.counter("controller_messages_total", kind="packet_out")
        self._m_dropped = metrics.counter("controller_unroutable_total")
        self._m_dead = metrics.counter("controller_dead_misses_total")
        self._m_response = metrics.histogram("controller_response_seconds")
        self._m_load = metrics.gauge("controller_load_factor")
        # Telemetry: PacketIn arrivals as a windowed rate, reply latency as
        # a level series (null objects under NOOP_TELEMETRY).
        self._t_packet_in = telemetry.series(
            "controller", name, "packet_in", counter=True
        )
        self._t_reply_latency = telemetry.series("controller", name, "reply_latency")

    # ------------------------------------------------------------------
    # Response-time model
    # ------------------------------------------------------------------

    def _load_factor(self, now: float) -> float:
        """Estimate the M/M/1-style service-time inflation at ``now``."""
        window_start = now - self.config.load_window
        while self._recent_arrivals and self._recent_arrivals[0] < window_start:
            self._recent_arrivals.popleft()
        rate = len(self._recent_arrivals) / self.config.load_window
        utilization = min(0.95, rate / self.config.capacity)
        factor = 1.0 / (1.0 - utilization)
        self._m_load.set(factor)
        return factor

    def response_time(self, now: float) -> float:
        """Sample the time to service one PacketIn arriving at ``now``."""
        base = self.config.base_response * self.overload_factor
        jitter = self.rng.uniform(0.0, self.config.response_jitter)
        return (base + jitter) * self._load_factor(now)

    # ------------------------------------------------------------------
    # PacketIn handling
    # ------------------------------------------------------------------

    def handle_miss(self, miss: TableMiss, arrived_at: float) -> ControllerReply:
        """Service a table miss that reached the controller at ``arrived_at``.

        Logs the ``PacketIn`` immediately and, after the modeled response
        time (plus any queueing behind an in-flight request), logs and
        returns the ``FlowMod`` + ``PacketOut`` pair. A dead controller logs
        the PacketIn arrival attempt but never replies, which surfaces as a
        vanishing control-message stream — the controller-failure problem
        class of Figure 2(b).
        """
        packet_in = PacketIn(
            timestamp=arrived_at,
            dpid=miss.dpid,
            flow=miss.flow,
            in_port=miss.in_port,
            buffer_id=self.log_seq(),
            corr_id=miss.corr_id,
        )
        if not self.live:
            self._m_dead.inc()
            return ControllerReply(flow_mod=None, packet_out=None, ready_at=float("inf"))
        self.log.append(packet_in)
        self._m_packet_in.inc()
        self._recent_arrivals.append(arrived_at)

        start = max(arrived_at, self._busy_until)
        done = start + self.response_time(arrived_at)
        self._busy_until = done
        self._m_response.observe(done - arrived_at)
        self._t_packet_in.record(arrived_at, 1.0)
        self._t_reply_latency.record(done, done - arrived_at)

        out_port = self.route_fn(miss.dpid, miss.flow)
        if out_port is None:
            # Unknown destination: drop (no rule installed). Still counts
            # as controller work, hence the busy-time update above.
            self._m_dropped.inc()
            return ControllerReply(flow_mod=None, packet_out=None, ready_at=done)

        match = (
            Match.exact(miss.flow)
            if self.config.use_microflow_rules
            else Match.destination(miss.flow.dst)
        )
        flow_mod = FlowMod(
            timestamp=done,
            dpid=miss.dpid,
            match=match,
            out_port=out_port,
            idle_timeout=self.config.idle_timeout,
            hard_timeout=self.config.hard_timeout,
            in_reply_to=packet_in.buffer_id,
            corr_id=miss.corr_id,
        )
        packet_out = PacketOut(
            timestamp=done,
            dpid=miss.dpid,
            flow=miss.flow,
            out_port=out_port,
            buffer_id=packet_in.buffer_id,
            corr_id=miss.corr_id,
        )
        self.log.append(flow_mod)
        self.log.append(packet_out)
        self._m_flow_mod.inc()
        self._m_packet_out.inc()
        return ControllerReply(flow_mod=flow_mod, packet_out=packet_out, ready_at=done)

    def log_seq(self) -> int:
        """A monotonically increasing id used to pair requests and replies."""
        return len(self.log)

    def fail(self) -> None:
        """Crash the controller: misses go unanswered until recovery."""
        self.live = False

    def recover(self) -> None:
        """Restore the controller."""
        self.live = True
