"""OpenFlow control-plane substrate.

FlowDiff's only measurement input is the stream of control messages between
programmable switches and a logically centralized controller (Section III-A
of the paper). This package implements that substrate from scratch:

* :mod:`repro.openflow.match` -- flow keys (5-tuples) and match structures,
  including wildcard matches and the IP-masking used by task signatures.
* :mod:`repro.openflow.messages` -- the control messages FlowDiff consumes:
  ``PacketIn``, ``PacketOut``, ``FlowMod``, and ``FlowRemoved``, plus port
  status and stats replies for completeness.
* :mod:`repro.openflow.flowtable` -- flow tables with priorities and
  soft (idle) / hard timeouts, the two knobs the paper highlights for
  trading measurement granularity against control-channel load.
* :mod:`repro.openflow.switch` -- a programmable switch: table lookup,
  miss detection, counter updates, expiry.
* :mod:`repro.openflow.controller` -- a reactive controller in the style of
  NOX's routing module, with a configurable response-time model, that
  records every control message into a :class:`~repro.openflow.log.ControllerLog`.
* :mod:`repro.openflow.log` -- the timestamped controller log plus
  windowing/filtering helpers; this is the artifact FlowDiff diffs.
"""

from repro.openflow.match import FlowKey, Match, MaskedFlow, mask_flows
from repro.openflow.messages import (
    ControlMessage,
    EchoRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsReply,
    PacketIn,
    PacketOut,
    PortStatus,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.switch import OpenFlowSwitch
from repro.openflow.controller import Controller, ControllerConfig
from repro.openflow.log import ControllerLog

__all__ = [
    "FlowKey",
    "Match",
    "MaskedFlow",
    "mask_flows",
    "ControlMessage",
    "EchoRequest",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "FlowRemovedReason",
    "FlowStatsReply",
    "PacketIn",
    "PacketOut",
    "PortStatus",
    "FlowEntry",
    "FlowTable",
    "OpenFlowSwitch",
    "Controller",
    "ControllerConfig",
    "ControllerLog",
]
