"""Control messages exchanged between switches and the controller.

FlowDiff captures ``PacketIn``, ``FlowMod``, and ``FlowRemoved`` messages at
the controller and uses them to build data-center-wide signatures
(Section III-A). ``PacketOut`` appears in the inter-switch latency model of
Figure 3. All messages carry the *controller-side* timestamp, which is the
only clock the paper assumes (it never requires synchronized switch clocks).

Messages are immutable records; the :class:`~repro.openflow.log.ControllerLog`
orders them by timestamp with a sequence number as tie-breaker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro._compat import DATACLASS_KW
from repro.openflow.match import FlowKey, Match


class FlowModCommand(enum.Enum):
    """The subset of OpenFlow flow-mod commands the substrate uses."""

    ADD = "add"
    DELETE = "delete"


class FlowRemovedReason(enum.Enum):
    """Why a flow entry was evicted from a switch table."""

    IDLE_TIMEOUT = "idle_timeout"
    HARD_TIMEOUT = "hard_timeout"
    DELETE = "delete"


@dataclass(frozen=True, **DATACLASS_KW)
class ControlMessage:
    """Base class for all control messages.

    Attributes:
        timestamp: controller-side wall-clock time in seconds.
        dpid: datapath identifier of the switch the message concerns.
        corr_id: flight-recorder correlation id. Every flow instance
            injected into the simulated network is assigned one id at its
            source; the id rides along the PacketIn raised at each hop,
            the FlowMod/PacketOut replies, and the eventual FlowRemoved,
            so the full causal chain of one flow can be reconstructed from
            the log alone (:mod:`repro.obs.flightrec`). ``None`` for
            messages outside any flow's causal chain (e.g. PortStatus) and
            for captures taken from controllers that do not stamp ids.
    """

    timestamp: float
    dpid: str
    corr_id: Optional[int] = None


@dataclass(frozen=True, **DATACLASS_KW)
class PacketIn(ControlMessage):
    """A table-miss notification from a switch to the controller.

    Sent when a packet arrives at a switch with no matching flow-table
    entry. Carries the flow metadata FlowDiff mines: the 5-tuple and the
    ingress port (used for physical-topology inference, Section III-C).
    """

    flow: FlowKey = field(default=None)  # type: ignore[assignment]
    in_port: int = 0
    buffer_id: int = 0


@dataclass(frozen=True, **DATACLASS_KW)
class PacketOut(ControlMessage):
    """A controller instruction to release a buffered packet out a port."""

    flow: FlowKey = field(default=None)  # type: ignore[assignment]
    out_port: int = 0
    buffer_id: int = 0


@dataclass(frozen=True, **DATACLASS_KW)
class FlowMod(ControlMessage):
    """A controller instruction installing (or deleting) a flow entry.

    The output port recorded here combines with the ``PacketIn`` ingress
    port to reconstruct the order in which a flow traversed switches and
    hence the physical topology (Section III-C).
    """

    match: Match = field(default=None)  # type: ignore[assignment]
    out_port: int = 0
    idle_timeout: float = 5.0
    hard_timeout: float = 0.0
    priority: int = 0
    command: FlowModCommand = FlowModCommand.ADD
    #: The PacketIn this FlowMod responds to, if any; lets consumers pair the
    #: two for controller-response-time estimation without heuristics.
    in_reply_to: Optional[int] = None


@dataclass(frozen=True, **DATACLASS_KW)
class FlowRemoved(ControlMessage):
    """An expiry notification carrying the entry's final counters.

    The paper uses the byte count and duration reported here as the
    flow-statistics signature input and as the per-link utilization proxy
    (Sections III-A and III-B).
    """

    match: Match = field(default=None)  # type: ignore[assignment]
    duration: float = 0.0
    byte_count: int = 0
    packet_count: int = 0
    reason: FlowRemovedReason = FlowRemovedReason.IDLE_TIMEOUT


@dataclass(frozen=True, **DATACLASS_KW)
class PortStatus(ControlMessage):
    """A link up/down notification for a switch port."""

    port: int = 0
    live: bool = True


@dataclass(frozen=True, **DATACLASS_KW)
class FlowStatsReply(ControlMessage):
    """A polled per-entry counter snapshot (OFPST_FLOW style).

    The controller "can also poll flow counters on switches to learn
    utilization" (Section I); the network simulator supports periodic
    polling which yields these records.
    """

    match: Match = field(default=None)  # type: ignore[assignment]
    byte_count: int = 0
    packet_count: int = 0
    duration: float = 0.0


@dataclass(frozen=True, **DATACLASS_KW)
class EchoRequest(ControlMessage):
    """A liveness probe; its absence of reply signals switch failure."""

    replied: bool = True
