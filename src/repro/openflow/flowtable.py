"""Switch flow tables: entries, priorities, and soft/hard timeouts.

Each flow entry carries two timeouts (Section III-A): a *soft* (idle)
timeout counted from the last matched packet, and a *hard* timeout counted
from the first matched packet. When an entry expires the switch emits a
``FlowRemoved`` with the matched byte/packet totals and the entry duration.
Tuning these timeouts is the operator's lever for balancing control-channel
load against measurement visibility, which the ablation benchmarks explore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowRemovedReason


@dataclass
class FlowEntry:
    """A single flow-table entry with counters and timeout bookkeeping.

    Attributes:
        match: the match structure (microflow or wildcard).
        out_port: the forwarding action's output port.
        priority: higher wins on overlapping matches; ties broken by
            match specificity, then recency.
        idle_timeout: soft timeout in seconds; 0 disables idle expiry.
        hard_timeout: hard timeout in seconds; 0 disables hard expiry.
        created_at: installation time.
        send_flow_removed: whether expiry emits a ``FlowRemoved``
            (Section VI notes entries may be set up not to).
        corr_id: flight-recorder correlation id of the flow whose miss
            installed this entry; stamped onto the expiry ``FlowRemoved``
            so the causal chain closes (None for proactive installs).
    """

    match: Match
    out_port: int
    priority: int = 0
    idle_timeout: float = 5.0
    hard_timeout: float = 0.0
    created_at: float = 0.0
    send_flow_removed: bool = True
    byte_count: int = 0
    packet_count: int = 0
    last_matched_at: float = field(default=0.0)
    corr_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.last_matched_at < self.created_at:
            self.last_matched_at = self.created_at

    def record_match(self, now: float, nbytes: int, npackets: int = 1) -> None:
        """Update counters and the idle-timeout clock for a matched packet."""
        self.byte_count += nbytes
        self.packet_count += npackets
        if now > self.last_matched_at:
            self.last_matched_at = now

    def expiry_time(self) -> float:
        """The earliest time this entry can expire, given current counters.

        Returns ``inf`` when both timeouts are disabled.
        """
        candidates = []
        if self.idle_timeout > 0:
            candidates.append(self.last_matched_at + self.idle_timeout)
        if self.hard_timeout > 0:
            candidates.append(self.created_at + self.hard_timeout)
        return min(candidates) if candidates else float("inf")

    def expired_reason(self, now: float) -> Optional[FlowRemovedReason]:
        """Return the expiry reason if the entry has expired by ``now``."""
        if self.hard_timeout > 0 and now >= self.created_at + self.hard_timeout:
            return FlowRemovedReason.HARD_TIMEOUT
        if self.idle_timeout > 0 and now >= self.last_matched_at + self.idle_timeout:
            return FlowRemovedReason.IDLE_TIMEOUT
        return None

    @property
    def duration(self) -> float:
        """Active lifetime of the entry so far (last match - creation)."""
        return max(0.0, self.last_matched_at - self.created_at)


class FlowTable:
    """A priority-ordered flow table with lazy and eager expiry.

    Lookups check expiry lazily (an expired entry never matches); the
    network simulator additionally calls :meth:`collect_expired` on timer
    events so that ``FlowRemoved`` messages fire close to their true expiry
    times rather than on the next lookup.

    With a real registry the table reports lookups, misses, installs,
    expiries (all labeled by owning ``dpid``), and its current occupancy —
    the miss rate and table-pressure view the scalability experiments
    need. The default :data:`NOOP_REGISTRY` keeps lookups on the
    uninstrumented fast path.
    """

    def __init__(
        self,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        dpid: str = "",
        telemetry: TelemetryPlane = NOOP_TELEMETRY,
    ) -> None:
        self._entries: List[FlowEntry] = []
        labels = {"dpid": dpid} if dpid else {}
        self._m_lookups = metrics.counter("flowtable_lookups_total", **labels)
        self._m_misses = metrics.counter("flowtable_misses_total", **labels)
        self._m_installs = metrics.counter("flowtable_installs_total", **labels)
        self._m_expired = metrics.counter("flowtable_expired_total", **labels)
        self._m_occupancy = metrics.gauge("flowtable_entries", **labels)
        # Held series (null objects under NOOP_TELEMETRY): per-switch table
        # occupancy over time, and evictions as a windowed counter.
        self._t_occupancy = telemetry.series("switch", dpid, "flowtable_occupancy")
        self._t_evictions = telemetry.series("switch", dpid, "evictions", counter=True)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def install(self, entry: FlowEntry) -> None:
        """Add an entry; an identical match at equal priority is replaced."""
        self._entries = [
            e
            for e in self._entries
            if not (e.match == entry.match and e.priority == entry.priority)
        ]
        self._entries.append(entry)
        self._m_installs.inc()
        self._m_occupancy.set(len(self._entries))
        self._t_occupancy.record(entry.created_at, float(len(self._entries)))

    def delete(self, match: Match) -> List[FlowEntry]:
        """Remove and return all entries whose match equals ``match``."""
        removed = [e for e in self._entries if e.match == match]
        self._entries = [e for e in self._entries if e.match != match]
        self._m_occupancy.set(len(self._entries))
        return removed

    def lookup(self, key: FlowKey, now: float) -> Optional[FlowEntry]:
        """Return the best live entry matching ``key``, or None on a miss.

        "Best" means highest priority, then most specific match, then most
        recently installed — the standard OpenFlow resolution order.
        Expired entries are skipped (but not removed; see
        :meth:`collect_expired`).
        """
        self._m_lookups.inc()
        best: Optional[Tuple[int, int, float, FlowEntry]] = None
        for entry in self._entries:
            if entry.expired_reason(now) is not None:
                continue
            if not entry.match.matches(key):
                continue
            rank = (entry.priority, entry.match.specificity, entry.created_at, entry)
            if best is None or rank[:3] > best[:3]:
                best = rank
        if best is None:
            self._m_misses.inc()
            return None
        return best[3]

    def collect_expired(
        self, now: float
    ) -> List[Tuple[FlowEntry, FlowRemovedReason]]:
        """Remove and return every entry expired by ``now`` with its reason."""
        expired: List[Tuple[FlowEntry, FlowRemovedReason]] = []
        live: List[FlowEntry] = []
        for entry in self._entries:
            reason = entry.expired_reason(now)
            if reason is None:
                live.append(entry)
            else:
                expired.append((entry, reason))
        self._entries = live
        if expired:
            self._m_expired.inc(len(expired))
            self._m_occupancy.set(len(live))
            self._t_evictions.record(now, float(len(expired)))
            self._t_occupancy.record(now, float(len(live)))
        return expired

    def next_expiry(self) -> float:
        """The earliest expiry time across live entries (``inf`` if none)."""
        return min((e.expiry_time() for e in self._entries), default=float("inf"))

    def stats(self) -> Dict[str, int]:
        """Aggregate table counters, handy for scalability experiments."""
        return {
            "entries": len(self._entries),
            "bytes": sum(e.byte_count for e in self._entries),
            "packets": sum(e.packet_count for e in self._entries),
        }
