"""Switch flow tables: entries, priorities, and soft/hard timeouts.

Each flow entry carries two timeouts (Section III-A): a *soft* (idle)
timeout counted from the last matched packet, and a *hard* timeout counted
from the first matched packet. When an entry expires the switch emits a
``FlowRemoved`` with the matched byte/packet totals and the entry duration.
Tuning these timeouts is the operator's lever for balancing control-channel
load against measurement visibility, which the ablation benchmarks explore.

The table is structured for per-packet cost that does not grow with
occupancy: microflow entries (every match field concrete) live in a dict
keyed by their 5-tuple, wildcard entries in a small side list, and expiry
candidates in a lazily re-keyed min-heap so the periodic sweep pops only
what actually expired instead of scanning every entry per tick. Resolution
semantics — highest (priority, specificity, created_at) wins, ties to the
earliest install — are identical to the previous linear-scan table and are
cross-checked against a brute-force reference by the stateful property
tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro._compat import DATACLASS_KW
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowRemovedReason

#: The concrete 5-tuple a microflow match (or a flow key) indexes under.
ExactKey = Tuple[str, str, int, int, str]


@dataclass(**DATACLASS_KW)
class FlowEntry:
    """A single flow-table entry with counters and timeout bookkeeping.

    Attributes:
        match: the match structure (microflow or wildcard).
        out_port: the forwarding action's output port.
        priority: higher wins on overlapping matches; ties broken by
            match specificity, then recency.
        idle_timeout: soft timeout in seconds; 0 disables idle expiry.
        hard_timeout: hard timeout in seconds; 0 disables hard expiry.
        created_at: installation time.
        send_flow_removed: whether expiry emits a ``FlowRemoved``
            (Section VI notes entries may be set up not to).
        corr_id: flight-recorder correlation id of the flow whose miss
            installed this entry; stamped onto the expiry ``FlowRemoved``
            so the causal chain closes (None for proactive installs).
    """

    match: Match
    out_port: int
    priority: int = 0
    idle_timeout: float = 5.0
    hard_timeout: float = 0.0
    created_at: float = 0.0
    send_flow_removed: bool = True
    byte_count: int = 0
    packet_count: int = 0
    last_matched_at: float = field(default=0.0)
    corr_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.last_matched_at < self.created_at:
            self.last_matched_at = self.created_at

    def record_match(self, now: float, nbytes: int, npackets: int = 1) -> None:
        """Update counters and the idle-timeout clock for a matched packet."""
        self.byte_count += nbytes
        self.packet_count += npackets
        if now > self.last_matched_at:
            self.last_matched_at = now

    def expiry_time(self) -> float:
        """The earliest time this entry can expire, given current counters.

        Returns ``inf`` when both timeouts are disabled.
        """
        candidates = []
        if self.idle_timeout > 0:
            candidates.append(self.last_matched_at + self.idle_timeout)
        if self.hard_timeout > 0:
            candidates.append(self.created_at + self.hard_timeout)
        return min(candidates) if candidates else float("inf")

    def expired_reason(self, now: float) -> Optional[FlowRemovedReason]:
        """Return the expiry reason if the entry has expired by ``now``."""
        if self.hard_timeout > 0 and now >= self.created_at + self.hard_timeout:
            return FlowRemovedReason.HARD_TIMEOUT
        if self.idle_timeout > 0 and now >= self.last_matched_at + self.idle_timeout:
            return FlowRemovedReason.IDLE_TIMEOUT
        return None

    @property
    def duration(self) -> float:
        """Active lifetime of the entry so far (last match - creation)."""
        return max(0.0, self.last_matched_at - self.created_at)


class FlowTable:
    """An indexed flow table with lazy and eager expiry.

    Lookups check expiry lazily (an expired entry never matches); the
    network simulator additionally calls :meth:`collect_expired` on timer
    events so that ``FlowRemoved`` messages fire close to their true expiry
    times rather than on the next lookup.

    Internally the table keeps three views of the same entries:

    * ``_exact`` — microflow entries keyed by their concrete 5-tuple, so
      the common reactive-install case resolves a lookup with one dict
      probe instead of a scan over the whole table;
    * ``_wild`` — the (typically few) wildcard entries, scanned linearly;
    * ``_heap`` — a min-heap of ``(expiry_time, install_seq, entry)``
      pushed at install time. Idle-timeout refreshes only ever move an
      expiry *later*, so a pushed key is a valid lower bound: the sweep
      pops candidates up to ``now`` and re-pushes any whose clock was
      refreshed. Replaced or deleted entries are dropped lazily when
      their stale heap node surfaces.

    ``_order`` (an insertion-ordered dict keyed by install sequence) is
    the authoritative live set and preserves the install-order iteration
    and ``FlowRemoved`` emission order the deterministic captures assert.

    With a real registry the table reports lookups, misses, installs,
    expiries (all labeled by owning ``dpid``), and its current occupancy —
    the miss rate and table-pressure view the scalability experiments
    need. The default :data:`NOOP_REGISTRY` keeps lookups on the
    uninstrumented fast path.
    """

    def __init__(
        self,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        dpid: str = "",
        telemetry: TelemetryPlane = NOOP_TELEMETRY,
    ) -> None:
        #: install seq -> entry; dict insertion order == install order.
        self._order: Dict[int, FlowEntry] = {}
        self._exact: Dict[ExactKey, List[Tuple[int, FlowEntry]]] = {}
        self._wild: List[Tuple[int, FlowEntry]] = []
        self._heap: List[Tuple[float, int, FlowEntry]] = []
        self._next_seq = 0
        labels = {"dpid": dpid} if dpid else {}
        self._m_lookups = metrics.counter("flowtable_lookups_total", **labels)
        self._m_misses = metrics.counter("flowtable_misses_total", **labels)
        self._m_installs = metrics.counter("flowtable_installs_total", **labels)
        self._m_expired = metrics.counter("flowtable_expired_total", **labels)
        self._m_occupancy = metrics.gauge("flowtable_entries", **labels)
        # Held series (null objects under NOOP_TELEMETRY): per-switch table
        # occupancy over time, and evictions as a windowed counter.
        self._t_occupancy = telemetry.series("switch", dpid, "flowtable_occupancy")
        self._t_evictions = telemetry.series("switch", dpid, "evictions", counter=True)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._order.values())

    @staticmethod
    def _exact_key(match: Match) -> ExactKey:
        # Only called for microflow matches, whose fields are all concrete.
        return (match.src, match.dst, match.src_port, match.dst_port, match.proto)

    def _bucket(self, match: Match) -> Optional[List[Tuple[int, FlowEntry]]]:
        """The container any entry with this match must live in."""
        if match.is_microflow:
            return self._exact.get(self._exact_key(match))
        return self._wild

    def install(self, entry: FlowEntry) -> None:
        """Add an entry; an identical match at equal priority is replaced."""
        match = entry.match
        if match.is_microflow:
            key = self._exact_key(match)
            bucket = self._exact.get(key)
            if bucket is None:
                bucket = self._exact[key] = []
        else:
            bucket = self._wild
        for i, (seq, existing) in enumerate(bucket):
            if existing.priority == entry.priority and existing.match == match:
                del bucket[i]
                del self._order[seq]
                break
        seq = self._next_seq
        self._next_seq += 1
        bucket.append((seq, entry))
        self._order[seq] = entry
        heapq.heappush(self._heap, (entry.expiry_time(), seq, entry))
        self._m_installs.inc()
        self._m_occupancy.set(len(self._order))
        self._t_occupancy.record(entry.created_at, float(len(self._order)))

    def delete(self, match: Match) -> List[FlowEntry]:
        """Remove and return all entries whose match equals ``match``."""
        bucket = self._bucket(match)
        removed: List[Tuple[int, FlowEntry]] = []
        if bucket:
            removed = [(seq, e) for seq, e in bucket if e.match == match]
            if removed:
                gone = {seq for seq, _ in removed}
                bucket[:] = [pair for pair in bucket if pair[0] not in gone]
                for seq, _ in removed:
                    del self._order[seq]
                if match.is_microflow and not bucket:
                    del self._exact[self._exact_key(match)]
        self._m_occupancy.set(len(self._order))
        return [e for _, e in removed]

    def lookup(self, key: FlowKey, now: float) -> Optional[FlowEntry]:
        """Return the best live entry matching ``key``, or None on a miss.

        "Best" means highest priority, then most specific match, then most
        recently installed — the standard OpenFlow resolution order.
        Expired entries are skipped (but not removed; see
        :meth:`collect_expired`). A microflow entry can only tie a
        microflow entry (specificity 5 vs at most 4 for wildcards), so
        probing the exact bucket first and the wildcard list second
        resolves ties to the earliest install exactly as a single
        install-order scan would.
        """
        self._m_lookups.inc()
        best: Optional[FlowEntry] = None
        best_rank: Optional[Tuple[int, int, float]] = None
        bucket = self._exact.get(
            (key.src, key.dst, key.src_port, key.dst_port, key.proto)
        )
        if bucket is not None:
            for _, entry in bucket:
                if entry.expired_reason(now) is not None:
                    continue
                rank = (entry.priority, 5, entry.created_at)
                if best_rank is None or rank > best_rank:
                    best, best_rank = entry, rank
        for _, entry in self._wild:
            if entry.expired_reason(now) is not None:
                continue
            if not entry.match.matches(key):
                continue
            rank = (entry.priority, entry.match.specificity, entry.created_at)
            if best_rank is None or rank > best_rank:
                best, best_rank = entry, rank
        if best is None:
            self._m_misses.inc()
            return None
        return best

    def _unlink(self, seq: int, entry: FlowEntry) -> None:
        """Drop one entry from its bucket (``_order`` already updated)."""
        match = entry.match
        if match.is_microflow:
            key = self._exact_key(match)
            bucket = self._exact[key]
            for i, (s, _) in enumerate(bucket):
                if s == seq:
                    del bucket[i]
                    break
            if not bucket:
                del self._exact[key]
        else:
            for i, (s, _) in enumerate(self._wild):
                if s == seq:
                    del self._wild[i]
                    break

    def collect_expired(
        self, now: float
    ) -> List[Tuple[FlowEntry, FlowRemovedReason]]:
        """Remove and return every entry expired by ``now`` with its reason.

        One heap-ordered sweep: only entries whose (lower-bound) expiry
        key has passed are examined, entries whose idle clock was
        refreshed since the push are re-keyed, and the results come back
        in install order — the ``FlowRemoved`` emission order of the
        previous full-scan implementation.
        """
        heap = self._heap
        order = self._order
        hits: List[Tuple[int, FlowEntry, FlowRemovedReason]] = []
        while heap and heap[0][0] <= now:
            _, seq, entry = heapq.heappop(heap)
            if seq not in order:
                continue  # replaced or deleted since the push
            reason = entry.expired_reason(now)
            if reason is None:
                # Idle-timeout clock refreshed after the push; the true
                # expiry is strictly in the future, so re-key and move on.
                heapq.heappush(heap, (entry.expiry_time(), seq, entry))
                continue
            hits.append((seq, entry, reason))
        if not hits:
            return []
        hits.sort()
        expired: List[Tuple[FlowEntry, FlowRemovedReason]] = []
        for seq, entry, reason in hits:
            del order[seq]
            self._unlink(seq, entry)
            expired.append((entry, reason))
        self._m_expired.inc(len(expired))
        self._m_occupancy.set(len(order))
        self._t_evictions.record(now, float(len(expired)))
        self._t_occupancy.record(now, float(len(order)))
        return expired

    def next_expiry(self) -> float:
        """The earliest expiry time across live entries (``inf`` if none)."""
        heap = self._heap
        while heap:
            pushed, seq, entry = heap[0]
            if seq not in self._order:
                heapq.heappop(heap)
                continue
            actual = entry.expiry_time()
            if actual > pushed:
                heapq.heapreplace(heap, (actual, seq, entry))
                continue
            return pushed
        return float("inf")

    def stats(self) -> Dict[str, int]:
        """Aggregate table counters, handy for scalability experiments."""
        entries = self._order.values()
        return {
            "entries": len(self._order),
            "bytes": sum(e.byte_count for e in entries),
            "packets": sum(e.packet_count for e in entries),
        }
