"""The programmable switch: lookup, miss detection, counters, expiry.

A switch is deliberately thin: all policy lives in the controller. The
switch model exposes exactly the behaviours FlowDiff's measurements depend
on — table misses produce ``PacketIn`` metadata, matched packets update
entry counters (feeding ``FlowRemoved`` totals), and expiry surfaces entries
with their reasons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._compat import DATACLASS_KW
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import FlowRemovedReason


@dataclass(frozen=True, **DATACLASS_KW)
class TableMiss:
    """The metadata a switch reports to the controller on a table miss.

    ``corr_id`` is the flight-recorder correlation id of the flow instance
    whose packet missed; the controller copies it onto the PacketIn and
    its FlowMod/PacketOut replies so the causal chain stays linked.
    """

    dpid: str
    flow: FlowKey
    in_port: int
    corr_id: Optional[int] = None


class OpenFlowSwitch:
    """A programmable switch identified by a datapath id (dpid).

    Ports are integers; the mapping from port number to attached neighbour
    (another switch or a host) is owned by the network simulator's topology
    — the switch itself only knows port numbers, as real OpenFlow switches
    do.

    Attributes:
        dpid: datapath identifier, unique within a network.
        table: the switch's single flow table.
        live: False once the switch has failed (it then drops everything
            and emits nothing, which is how switch failure becomes visible
            to FlowDiff as missing control traffic and topology changes).
    """

    def __init__(
        self,
        dpid: str,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        telemetry: TelemetryPlane = NOOP_TELEMETRY,
    ) -> None:
        self.dpid = dpid
        self.metrics = metrics
        self.telemetry = telemetry
        self.table = FlowTable(metrics=metrics, dpid=dpid, telemetry=telemetry)
        self.live = True
        #: Per-port cumulative byte counters, used by stats polling.
        self.port_bytes: Dict[int, int] = {}
        #: Count of PacketIn events raised, for control-load accounting.
        self.miss_count = 0

    def process_packet(
        self,
        key: FlowKey,
        in_port: int,
        now: float,
        nbytes: int,
        npackets: int = 1,
        corr_id: Optional[int] = None,
    ) -> Tuple[Optional[int], Optional[TableMiss]]:
        """Process an arriving packet (or packet burst) at ``now``.

        Returns ``(out_port, miss)``: on a table hit, the entry's output
        port and ``None``; on a miss, ``(None, TableMiss)`` which the
        network forwards to the controller as a ``PacketIn``. A dead switch
        returns ``(None, None)`` — the packet is silently dropped.
        """
        if not self.live:
            return None, None
        entry = self.table.lookup(key, now)
        if entry is None:
            self.miss_count += 1
            return None, TableMiss(
                dpid=self.dpid, flow=key, in_port=in_port, corr_id=corr_id
            )
        entry.record_match(now, nbytes, npackets)
        self.port_bytes[entry.out_port] = (
            self.port_bytes.get(entry.out_port, 0) + nbytes
        )
        return entry.out_port, None

    def install(
        self,
        match: Match,
        out_port: int,
        now: float,
        idle_timeout: float = 5.0,
        hard_timeout: float = 0.0,
        priority: int = 0,
        send_flow_removed: bool = True,
        corr_id: Optional[int] = None,
    ) -> FlowEntry:
        """Install a flow entry, returning it for counter inspection."""
        entry = FlowEntry(
            match=match,
            out_port=out_port,
            priority=priority,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            created_at=now,
            send_flow_removed=send_flow_removed,
            corr_id=corr_id,
        )
        self.table.install(entry)
        return entry

    def expire(self, now: float) -> List[Tuple[FlowEntry, FlowRemovedReason]]:
        """Evict expired entries, returning those that must emit FlowRemoved."""
        if not self.live:
            return []
        return [
            (entry, reason)
            for entry, reason in self.table.collect_expired(now)
            if entry.send_flow_removed
        ]

    def fail(self) -> None:
        """Take the switch down; its table contents are lost."""
        self.live = False
        self.table = FlowTable(
            metrics=self.metrics, dpid=self.dpid, telemetry=self.telemetry
        )

    def recover(self) -> None:
        """Bring the switch back with an empty table."""
        self.live = True
