"""Controller-log (de)serialization: JSON-lines capture files.

FlowDiff's workflow separates capture from analysis — a log recorded
today is the baseline diffed against next week's capture — so logs must
round-trip through storage. The format is one JSON object per line with a
``type`` tag, append-friendly and greppable, in the spirit of the text
logs the paper's Figure 3 sketches.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, Optional, Type

from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import (
    ControlMessage,
    EchoRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsReply,
    PacketIn,
    PacketOut,
    PortStatus,
)

#: Capture-format version. The format itself is versionless on the wire
#: (each line is a self-describing message object — old captures must stay
#: loadable), but the schema manifest checked by the ``schema-drift`` lint
#: rule of :mod:`repro.qa` is keyed by this constant: changing any
#: serialized field of :func:`message_to_json` without bumping it fails
#: ``repro lint``.
FORMAT_VERSION = 1

_TYPES: Dict[str, Type[ControlMessage]] = {
    "packet_in": PacketIn,
    "packet_out": PacketOut,
    "flow_mod": FlowMod,
    "flow_removed": FlowRemoved,
    "port_status": PortStatus,
    "flow_stats": FlowStatsReply,
    "echo": EchoRequest,
}
_NAMES = {cls: name for name, cls in _TYPES.items()}


def _flow_to_json(flow: Optional[FlowKey]) -> Optional[Dict[str, Any]]:
    if flow is None:
        return None
    return {
        "src": flow.src,
        "dst": flow.dst,
        "sport": flow.src_port,
        "dport": flow.dst_port,
        "proto": flow.proto,
    }


def _flow_from_json(data: Optional[Dict[str, Any]]) -> Optional[FlowKey]:
    if data is None:
        return None
    return FlowKey(
        src=data["src"],
        dst=data["dst"],
        src_port=data["sport"],
        dst_port=data["dport"],
        proto=data.get("proto", "tcp"),
    )


def _match_to_json(match: Optional[Match]) -> Optional[Dict[str, Any]]:
    if match is None:
        return None
    return {
        "src": match.src,
        "dst": match.dst,
        "sport": match.src_port,
        "dport": match.dst_port,
        "proto": match.proto,
    }


def _match_from_json(data: Optional[Dict[str, Any]]) -> Optional[Match]:
    if data is None:
        return None
    return Match(
        src=data.get("src"),
        dst=data.get("dst"),
        src_port=data.get("sport"),
        dst_port=data.get("dport"),
        proto=data.get("proto"),
    )


def message_to_json(message: ControlMessage) -> Dict[str, Any]:
    """Encode one control message as a JSON-able dict.

    Raises:
        TypeError: for unknown message classes.
    """
    name = _NAMES.get(type(message))
    if name is None:
        raise TypeError(f"cannot serialize {type(message).__name__}")
    out: Dict[str, Any] = {
        "type": name,
        "ts": message.timestamp,
        "dpid": message.dpid,
    }
    if message.corr_id is not None:
        out["corr"] = message.corr_id
    if isinstance(message, PacketIn):
        out.update(
            flow=_flow_to_json(message.flow),
            in_port=message.in_port,
            buffer_id=message.buffer_id,
        )
    elif isinstance(message, PacketOut):
        out.update(
            flow=_flow_to_json(message.flow),
            out_port=message.out_port,
            buffer_id=message.buffer_id,
        )
    elif isinstance(message, FlowMod):
        out.update(
            match=_match_to_json(message.match),
            out_port=message.out_port,
            idle=message.idle_timeout,
            hard=message.hard_timeout,
            priority=message.priority,
            command=message.command.value,
            in_reply_to=message.in_reply_to,
        )
    elif isinstance(message, FlowRemoved):
        out.update(
            match=_match_to_json(message.match),
            duration=message.duration,
            bytes=message.byte_count,
            packets=message.packet_count,
            reason=message.reason.value,
        )
    elif isinstance(message, PortStatus):
        out.update(port=message.port, live=message.live)
    elif isinstance(message, FlowStatsReply):
        out.update(
            match=_match_to_json(message.match),
            bytes=message.byte_count,
            packets=message.packet_count,
            duration=message.duration,
        )
    elif isinstance(message, EchoRequest):
        out.update(replied=message.replied)
    return out


def message_from_json(data: Dict[str, Any]) -> ControlMessage:
    """Decode one control message.

    Raises:
        ValueError: for an unknown ``type`` tag.
    """
    name = data.get("type")
    ts = data["ts"]
    dpid = data["dpid"]
    corr = data.get("corr")
    if name == "packet_in":
        return PacketIn(
            timestamp=ts,
            dpid=dpid,
            corr_id=corr,
            flow=_flow_from_json(data["flow"]),
            in_port=data.get("in_port", 0),
            buffer_id=data.get("buffer_id", 0),
        )
    if name == "packet_out":
        return PacketOut(
            timestamp=ts,
            dpid=dpid,
            corr_id=corr,
            flow=_flow_from_json(data["flow"]),
            out_port=data.get("out_port", 0),
            buffer_id=data.get("buffer_id", 0),
        )
    if name == "flow_mod":
        return FlowMod(
            timestamp=ts,
            dpid=dpid,
            corr_id=corr,
            match=_match_from_json(data["match"]),
            out_port=data.get("out_port", 0),
            idle_timeout=data.get("idle", 5.0),
            hard_timeout=data.get("hard", 0.0),
            priority=data.get("priority", 0),
            command=FlowModCommand(data.get("command", "add")),
            in_reply_to=data.get("in_reply_to"),
        )
    if name == "flow_removed":
        return FlowRemoved(
            timestamp=ts,
            dpid=dpid,
            corr_id=corr,
            match=_match_from_json(data["match"]),
            duration=data.get("duration", 0.0),
            byte_count=data.get("bytes", 0),
            packet_count=data.get("packets", 0),
            reason=FlowRemovedReason(data.get("reason", "idle_timeout")),
        )
    if name == "port_status":
        return PortStatus(
            timestamp=ts,
            dpid=dpid,
            corr_id=corr,
            port=data.get("port", 0),
            live=data.get("live", True),
        )
    if name == "flow_stats":
        return FlowStatsReply(
            timestamp=ts,
            dpid=dpid,
            corr_id=corr,
            match=_match_from_json(data["match"]),
            byte_count=data.get("bytes", 0),
            packet_count=data.get("packets", 0),
            duration=data.get("duration", 0.0),
        )
    if name == "echo":
        return EchoRequest(
            timestamp=ts, dpid=dpid, corr_id=corr, replied=data.get("replied", True)
        )
    raise ValueError(f"unknown control message type {name!r}")


def dump_log(log: ControllerLog, fh: IO[str]) -> int:
    """Write a log as JSON lines; returns the number of messages written."""
    count = 0
    for message in log:
        fh.write(json.dumps(message_to_json(message)) + "\n")
        count += 1
    return count


def load_log(fh: IO[str]) -> ControllerLog:
    """Read a JSON-lines capture back into a :class:`ControllerLog`.

    Blank lines are skipped so hand-edited captures stay loadable.

    Raises:
        ValueError: on malformed JSON or unknown message types.
    """
    log = ControllerLog()
    for line_no, line in enumerate(fh, 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_no}: invalid JSON ({exc})") from exc
        log.append(message_from_json(data))
    return log


def save_log(log: ControllerLog, path: str) -> int:
    """Write a log to ``path``; returns the message count."""
    with open(path, "w", encoding="utf-8") as fh:
        return dump_log(log, fh)


def read_log(path: str) -> ControllerLog:
    """Load a capture file from ``path``.

    The file's byte-level SHA-256 is cached on the returned log as its
    content digest, so model caching (:mod:`repro.core.persist`) can key
    on log content without re-hashing the message stream.
    """
    import hashlib
    import io

    with open(path, "rb") as fh:
        raw = fh.read()
    log = load_log(io.StringIO(raw.decode("utf-8")))
    log.set_content_digest(hashlib.sha256(raw).hexdigest())
    return log
