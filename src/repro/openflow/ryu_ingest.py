"""Ingest Ryu-style OpenFlow event dumps into a :class:`ControllerLog`.

FlowDiff's natural real-world deployment captures control traffic with a
small Ryu (or POX/NOX) app on a Mininet or hardware OpenFlow network. A
typical capture app serializes each ``EventOFPPacketIn`` /
``EventOFPFlowRemoved`` as one JSON object per line, in the shape Ryu's
``ofctl`` utilities use for matches::

    {"event": "packet_in", "time": 12.345, "dpid": 1,
     "in_port": 3, "buffer_id": 256,
     "match": {"ipv4_src": "10.0.0.1", "ipv4_dst": "10.0.0.2",
               "tcp_src": 43210, "tcp_dst": 80, "ip_proto": 6}}

    {"event": "flow_removed", "time": 19.001, "dpid": 1,
     "duration_sec": 5, "duration_nsec": 120000000,
     "byte_count": 1234, "packet_count": 3, "reason": 0,
     "match": {...}}

    {"event": "flow_mod", "time": 12.347, "dpid": 1, "out_port": 2,
     "idle_timeout": 5, "hard_timeout": 0, "priority": 1,
     "match": {...}}

This module converts such dumps. Unknown event types are skipped (Ryu
apps log many events FlowDiff does not need); malformed lines raise with
their line number so broken captures fail loudly.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Optional

from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey, Match
from repro.openflow.messages import (
    FlowMod,
    FlowRemoved,
    FlowRemovedReason,
    PacketIn,
)

#: OFPRR_* reason codes of OpenFlow 1.0/1.3.
_REASONS = {
    0: FlowRemovedReason.IDLE_TIMEOUT,
    1: FlowRemovedReason.HARD_TIMEOUT,
    2: FlowRemovedReason.DELETE,
}

#: ip_proto values to protocol names.
_PROTOS = {6: "tcp", 17: "udp"}


def _ports_from_match(match: Dict[str, Any]) -> tuple:
    """Extract (src_port, dst_port, proto) from an OXM-style match dict."""
    proto = _PROTOS.get(match.get("ip_proto", 6), "tcp")
    if proto == "udp":
        return match.get("udp_src", 0), match.get("udp_dst", 0), proto
    return match.get("tcp_src", 0), match.get("tcp_dst", 0), proto


def _flow_key(match: Dict[str, Any]) -> Optional[FlowKey]:
    src = match.get("ipv4_src") or match.get("eth_src")
    dst = match.get("ipv4_dst") or match.get("eth_dst")
    if src is None or dst is None:
        return None
    sport, dport, proto = _ports_from_match(match)
    return FlowKey(src=str(src), dst=str(dst), src_port=sport, dst_port=dport, proto=proto)


def _match_struct(match: Dict[str, Any]) -> Match:
    sport, dport, proto = _ports_from_match(match)
    return Match(
        src=match.get("ipv4_src"),
        dst=match.get("ipv4_dst"),
        src_port=sport or None,
        dst_port=dport or None,
        proto=proto if ("ip_proto" in match) else None,
    )


def _dpid(raw: Any) -> str:
    """Ryu dumps dpids as integers; FlowDiff uses opaque strings."""
    if isinstance(raw, int):
        return f"dpid:{raw:016x}"
    return str(raw)


def event_to_message(data: Dict[str, Any]):
    """Convert one Ryu event dict to a control message (or None to skip).

    Raises:
        ValueError: when a known event type is missing required fields.
    """
    event = data.get("event")
    if event not in ("packet_in", "flow_removed", "flow_mod"):
        return None
    try:
        ts = float(data["time"])
        dpid = _dpid(data["dpid"])
        match = data.get("match", {})
    except KeyError as exc:
        raise ValueError(f"{event} event missing field {exc}") from exc

    if event == "packet_in":
        flow = _flow_key(match)
        if flow is None:
            return None  # non-IP packet (ARP, LLDP, ...)
        return PacketIn(
            timestamp=ts,
            dpid=dpid,
            flow=flow,
            in_port=int(data.get("in_port", 0)),
            buffer_id=int(data.get("buffer_id", 0)),
        )
    if event == "flow_mod":
        return FlowMod(
            timestamp=ts,
            dpid=dpid,
            match=_match_struct(match),
            out_port=int(data.get("out_port", 0)),
            idle_timeout=float(data.get("idle_timeout", 0)),
            hard_timeout=float(data.get("hard_timeout", 0)),
            priority=int(data.get("priority", 0)),
        )
    # flow_removed
    duration = float(data.get("duration_sec", 0)) + float(
        data.get("duration_nsec", 0)
    ) / 1e9
    return FlowRemoved(
        timestamp=ts,
        dpid=dpid,
        match=_match_struct(match),
        duration=duration,
        byte_count=int(data.get("byte_count", 0)),
        packet_count=int(data.get("packet_count", 0)),
        reason=_REASONS.get(int(data.get("reason", 0)), FlowRemovedReason.IDLE_TIMEOUT),
    )


def load_ryu_log(fh: IO[str]) -> ControllerLog:
    """Parse a Ryu JSONL capture stream.

    Raises:
        ValueError: on malformed JSON or incomplete known events, with the
            offending line number.
    """
    log = ControllerLog()
    for line_no, line in enumerate(fh, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_no}: invalid JSON ({exc})") from exc
        try:
            message = event_to_message(data)
        except ValueError as exc:
            raise ValueError(f"line {line_no}: {exc}") from exc
        if message is not None:
            log.append(message)
    return log


def read_ryu_log(path: str) -> ControllerLog:
    """Load a Ryu JSONL capture file."""
    with open(path, encoding="utf-8") as fh:
        return load_ryu_log(fh)
