"""Flow keys, wildcard matches, and the IP masking used by task signatures.

The paper defines a flow "by the source-destination IPs and ports"
(Section III-D). :class:`FlowKey` is that identity. :class:`Match` is the
OpenFlow-style match structure installed into switch flow tables; it is
either a *microflow* (every field concrete) or contains wildcards, which is
the paper's Section VI lever for reducing control traffic at the cost of
measurement granularity.

Task signatures additionally need *masked* flows (Table III): concrete host
IPs are replaced with positional placeholders (``#1``, ``#2``, ...) so an
automaton learned on one VM generalizes to any VM, while well-known service
endpoints (e.g. ``NFS:2049``) stay concrete. Ephemeral source ports are
wildcarded to ``*`` exactly as in the paper's Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Source ports at or above this value are treated as ephemeral (client-side)
#: and wildcarded when building task-signature flow templates.
EPHEMERAL_PORT_FLOOR = 10000


@dataclass(frozen=True, order=True)
class FlowKey:
    """The identity of a network flow: a 5-tuple.

    Attributes:
        src: source endpoint identifier (an IP address or a host name; the
            substrate treats it as an opaque string).
        dst: destination endpoint identifier.
        src_port: transport-layer source port.
        dst_port: transport-layer destination port.
        proto: transport protocol, ``"tcp"`` or ``"udp"``.
    """

    src: str
    dst: str
    src_port: int
    dst_port: int
    proto: str = "tcp"

    def reversed(self) -> "FlowKey":
        """Return the key of the reverse-direction flow (e.g. the response)."""
        return FlowKey(
            src=self.dst,
            dst=self.src,
            src_port=self.dst_port,
            dst_port=self.src_port,
            proto=self.proto,
        )

    def endpoints(self) -> Tuple[str, str]:
        """Return the ``(src, dst)`` endpoint pair."""
        return self.src, self.dst

    def __str__(self) -> str:
        return (
            f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port}/{self.proto}"
        )


@dataclass(frozen=True)
class Match:
    """An OpenFlow match: concrete fields match exactly, ``None`` wildcards.

    A match with every field concrete is a *microflow* entry; any ``None``
    field makes it a wildcard entry that aggregates multiple flows under one
    table entry (Section VI, "Wildcard rules").
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    proto: Optional[str] = None

    @classmethod
    def exact(cls, key: FlowKey) -> "Match":
        """Build the microflow match for ``key``."""
        return cls(
            src=key.src,
            dst=key.dst,
            src_port=key.src_port,
            dst_port=key.dst_port,
            proto=key.proto,
        )

    @classmethod
    def destination(cls, dst: str) -> "Match":
        """Build a destination-only wildcard match (L2-learning style)."""
        return cls(dst=dst)

    def matches(self, key: FlowKey) -> bool:
        """Return True if ``key`` falls under this match."""
        return (
            (self.src is None or self.src == key.src)
            and (self.dst is None or self.dst == key.dst)
            and (self.src_port is None or self.src_port == key.src_port)
            and (self.dst_port is None or self.dst_port == key.dst_port)
            and (self.proto is None or self.proto == key.proto)
        )

    @property
    def is_microflow(self) -> bool:
        """True when every field is concrete (matches a single flow)."""
        return None not in (
            self.src,
            self.dst,
            self.src_port,
            self.dst_port,
            self.proto,
        )

    @property
    def specificity(self) -> int:
        """The number of concrete fields; used for priority tie-breaking."""
        return sum(
            f is not None
            for f in (self.src, self.dst, self.src_port, self.dst_port, self.proto)
        )

    def __str__(self) -> str:
        def show(v: object) -> str:
            return "*" if v is None else str(v)

        return (
            f"{show(self.src)}:{show(self.src_port)}->"
            f"{show(self.dst)}:{show(self.dst_port)}/{show(self.proto)}"
        )


@dataclass(frozen=True, order=True)
class MaskedFlow:
    """A flow template with host placeholders and wildcarded ephemeral ports.

    This is the representation in the paper's Figure 4: e.g.
    ``[#1:*-NFS:2049]`` becomes ``MaskedFlow("#1", "*", "NFS", "2049")``.
    Ports are strings so that the wildcard ``"*"`` coexists with concrete
    values.
    """

    src: str
    src_port: str
    dst: str
    dst_port: str

    def __str__(self) -> str:
        return f"[{self.src}:{self.src_port}-{self.dst}:{self.dst_port}]"


def mask_flows(
    flows: Sequence[FlowKey],
    service_names: Optional[Mapping[str, str]] = None,
    well_known_ports: Iterable[int] = (),
    mask_hosts: bool = True,
) -> List[MaskedFlow]:
    """Convert concrete flows into generalized :class:`MaskedFlow` templates.

    Host identifiers are replaced by ``#k`` placeholders in order of first
    appearance, except for hosts listed in ``service_names`` (e.g. the NFS
    server), which keep their service name. Source ports at or above
    :data:`EPHEMERAL_PORT_FLOOR` become ``"*"``; destination ports and
    well-known source ports stay concrete. With ``mask_hosts=False`` only
    the port generalization is applied, which reproduces the paper's
    "not masked" task-automaton variant (Table III).

    Args:
        flows: the flow sequence of one task run, in time order.
        service_names: mapping from concrete host identifier to a stable
            service label (``{"10.0.0.9": "NFS"}``).
        well_known_ports: extra source ports to keep concrete even if they
            fall in the ephemeral range.
        mask_hosts: whether to replace non-service hosts with placeholders.

    Returns:
        One :class:`MaskedFlow` per input flow, preserving order.
    """
    services = dict(service_names or {})
    keep_ports = set(well_known_ports)
    placeholders: Dict[str, str] = {}

    def host_label(host: str) -> str:
        if host in services:
            return services[host]
        if not mask_hosts:
            return host
        if host not in placeholders:
            placeholders[host] = f"#{len(placeholders) + 1}"
        return placeholders[host]

    def port_label(port: int) -> str:
        if port in keep_ports or port < EPHEMERAL_PORT_FLOOR:
            return str(port)
        return "*"

    masked = []
    for flow in flows:
        masked.append(
            MaskedFlow(
                src=host_label(flow.src),
                src_port=port_label(flow.src_port),
                dst=host_label(flow.dst),
                dst_port=str(flow.dst_port),
            )
        )
    return masked
