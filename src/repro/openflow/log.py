"""The controller log: FlowDiff's sole measurement artifact.

A :class:`ControllerLog` is an append-ordered collection of timestamped
control messages (Section III-A). FlowDiff never inspects data-plane
payloads; every signature is derived from a window of this log. The class
therefore provides the windowing and type filtering the modeling phase
needs, plus (de)serialization so logs can be stored and replayed.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Type, TypeVar

from repro.openflow.messages import (
    ControlMessage,
    FlowMod,
    FlowRemoved,
    PacketIn,
    PacketOut,
)

M = TypeVar("M", bound=ControlMessage)


class ControllerLog:
    """A time-ordered log of control messages captured at the controller.

    Messages may be appended slightly out of order (e.g. when several
    simulated switches report within the same scheduler step); the log keeps
    itself sorted by ``(timestamp, arrival sequence)`` so window queries are
    binary searches.
    """

    def __init__(self, messages: Optional[Iterable[ControlMessage]] = None) -> None:
        self._messages: List[Tuple[float, int, ControlMessage]] = []
        self._seq = 0
        self._content_digest: Optional[str] = None
        self._digest_seq = -1
        for msg in messages or ():
            self.append(msg)

    def set_content_digest(self, digest: str) -> None:
        """Cache this log's content fingerprint (hex digest).

        Set by :func:`~repro.openflow.serialize.read_log` (hash of the
        capture file's bytes) or by
        :func:`~repro.core.persist.log_fingerprint` (hash of the canonical
        message stream). The cache is invalidated automatically when the
        log grows — :meth:`cached_content_digest` compares the append
        sequence it was recorded at.
        """
        self._content_digest = digest
        self._digest_seq = self._seq

    def cached_content_digest(self) -> Optional[str]:
        """The cached content fingerprint, or None if unset/stale."""
        if self._content_digest is not None and self._digest_seq == self._seq:
            return self._content_digest
        return None

    def append(self, message: ControlMessage) -> None:
        """Record a control message (stable-ordered by timestamp)."""
        item = (message.timestamp, self._seq, message)
        self._seq += 1
        if self._messages and item[:2] < self._messages[-1][:2]:
            bisect.insort(self._messages, item)
        else:
            self._messages.append(item)

    def extend(self, messages: Iterable[ControlMessage]) -> None:
        """Record several control messages."""
        for message in messages:
            self.append(message)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[ControlMessage]:
        return (msg for _, _, msg in self._messages)

    @property
    def time_span(self) -> Tuple[float, float]:
        """``(first, last)`` message timestamps; ``(0.0, 0.0)`` when empty."""
        if not self._messages:
            return 0.0, 0.0
        return self._messages[0][0], self._messages[-1][0]

    def window(self, t_start: float, t_end: float) -> "ControllerLog":
        """Return a sub-log of messages with ``t_start <= ts < t_end``.

        This is the primitive behind the paper's L1/L2 comparison: L1 and L2
        are two windows of the same underlying capture (or two captures).
        """
        lo = bisect.bisect_left(self._messages, (t_start, -1, None))  # type: ignore[list-item]
        hi = bisect.bisect_left(self._messages, (t_end, -1, None))  # type: ignore[list-item]
        sub = ControllerLog()
        for _ts, _, msg in self._messages[lo:hi]:
            sub.append(msg)
        return sub

    def of_type(self, message_type: Type[M]) -> List[M]:
        """Return all messages of exactly the given type, in time order."""
        return [msg for _, _, msg in self._messages if type(msg) is message_type]

    def packet_ins(self) -> List[PacketIn]:
        """All ``PacketIn`` messages, the richest signal FlowDiff mines."""
        return self.of_type(PacketIn)

    def flow_mods(self) -> List[FlowMod]:
        """All ``FlowMod`` messages."""
        return self.of_type(FlowMod)

    def flow_removed(self) -> List[FlowRemoved]:
        """All ``FlowRemoved`` messages."""
        return self.of_type(FlowRemoved)

    def packet_outs(self) -> List[PacketOut]:
        """All ``PacketOut`` messages."""
        return self.of_type(PacketOut)

    def correlation_ids(self) -> List[int]:
        """Distinct flight-recorder correlation ids, in first-seen order.

        Messages without a correlation id (old captures, PortStatus, ...)
        are skipped; :mod:`repro.obs.flightrec` groups those heuristically.
        """
        seen: List[int] = []
        known = set()
        for _, _, msg in self._messages:
            cid = msg.corr_id
            if cid is not None and cid not in known:
                known.add(cid)
                seen.append(cid)
        return seen

    def correlated(self, corr_id: int) -> "ControllerLog":
        """The sub-log of one flow's causal chain (messages with this id)."""
        return self.filter(lambda msg: msg.corr_id == corr_id)

    def filter(self, predicate: Callable[[ControlMessage], bool]) -> "ControllerLog":
        """Return a sub-log of messages satisfying ``predicate``."""
        sub = ControllerLog()
        for _, _, msg in self._messages:
            if predicate(msg):
                sub.append(msg)
        return sub

    def merged_with(self, other: "ControllerLog") -> "ControllerLog":
        """Combine two captures (e.g. from a distributed controller pair).

        Section VI notes that distributing the controller requires
        synchronizing captured information across controllers; this is that
        synchronization for offline logs.
        """
        merged = ControllerLog()
        for msg in self:
            merged.append(msg)
        for msg in other:
            merged.append(msg)
        return merged
