"""Workload generation: arrival processes, traffic patterns, trace synthesis.

* :mod:`repro.workload.arrivals` -- Poisson and ON/OFF-lognormal
  inter-arrival processes (the latter per Benson et al.'s data center
  measurement study, used by the paper's scalability simulation).
* :mod:`repro.workload.traffic` -- the Section V-C simulation workload:
  randomly generated three-tier applications placed on the 320-server tree
  with all-pairs inter-tier ON/OFF traffic and 0.6 connection reuse.
* :mod:`repro.workload.traces` -- synthetic VM lifecycle traces (startup,
  stop, migration, NFS mount/unmount) with run-to-run variation, standing
  in for the paper's EC2 tcpdump captures (Table III).
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    FixedProcess,
    OnOffProcess,
    PoissonProcess,
    lognormal_params,
)
from repro.workload.traffic import (
    RandomThreeTierWorkload,
    WorkloadStats,
)
from repro.workload.replay import ReplayStats, replay_log
from repro.workload.traces import (
    TraceConfig,
    VMImage,
    VMTraceSynthesizer,
)

__all__ = [
    "ArrivalProcess",
    "FixedProcess",
    "OnOffProcess",
    "PoissonProcess",
    "lognormal_params",
    "RandomThreeTierWorkload",
    "WorkloadStats",
    "TraceConfig",
    "VMImage",
    "VMTraceSynthesizer",
    "ReplayStats",
    "replay_log",
]
