"""The Section V-C scalability workload: random three-tier apps, ON/OFF pairs.

The paper "randomly generate[s] a set of three-tier applications and
randomly place[s] their VMs on the network ... every VM in the same tier
communicates with every VM in the next tier", with ON/OFF traffic whose
periods are lognormal(mean 100 ms, std 30 ms) and a TCP connection-reuse
probability of 0.6 (reused connections do not trigger new ``PacketIn``
requests).

:class:`RandomThreeTierWorkload` reproduces this: each inter-tier VM pair
runs an independent ON/OFF loop; each ON period is one traffic burst that
either reuses the pair's previous 5-tuple (probability ``reuse_prob``) or
opens a fresh connection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netsim.network import FlowRequest, Network
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey
from repro.workload.arrivals import lognormal_params


@dataclass
class WorkloadStats:
    """Counters accumulated while a workload runs."""

    bursts: int = 0
    new_connections: int = 0
    reused_connections: int = 0

    @staticmethod
    def packet_in_rate(log: ControllerLog, bucket: float = 1.0) -> List[int]:
        """Per-bucket ``PacketIn`` counts over the log's span (Fig. 13(a))."""
        pins = log.packet_ins()
        if not pins:
            return []
        t0 = pins[0].timestamp
        t1 = pins[-1].timestamp
        n = int((t1 - t0) // bucket) + 1
        counts = [0] * n
        for p in pins:
            counts[int((p.timestamp - t0) // bucket)] += 1
        return counts


@dataclass(frozen=True)
class _AppPlacement:
    """One randomly generated three-tier application's VM placement."""

    name: str
    web: Tuple[str, ...]
    app: Tuple[str, ...]
    db: Tuple[str, ...]

    def pairs(self) -> List[Tuple[str, str, int]]:
        """All inter-tier (src, dst, dst_port) communicating pairs."""
        out = []
        for w in self.web:
            for a in self.app:
                out.append((w, a, 8009))
        for a in self.app:
            for d in self.db:
                out.append((a, d, 3306))
        return out


class RandomThreeTierWorkload:
    """Randomly placed three-tier applications with all-pairs ON/OFF traffic.

    Args:
        network: the substrate (usually built on
            :func:`repro.netsim.topology.paper_tree`).
        n_apps: number of applications to generate.
        seed: RNG seed controlling placement and traffic.
        reuse_prob: probability an ON burst reuses the previous connection
            (the paper uses 0.6).
        on_mean/on_std/off_mean/off_std: lognormal period moments (s).
        rate_bytes: traffic rate during ON periods, bytes/second.
        tier_sizes: inclusive (min, max) VM counts for web/app/db tiers.
    """

    def __init__(
        self,
        network: Network,
        n_apps: int,
        seed: int = 11,
        reuse_prob: float = 0.6,
        on_mean: float = 0.1,
        on_std: float = 0.03,
        off_mean: float = 0.1,
        off_std: float = 0.03,
        rate_bytes: float = 1_000_000.0,
        tier_sizes: Tuple[Tuple[int, int], ...] = ((1, 2), (1, 3), (1, 2)),
    ) -> None:
        self.network = network
        self.rng = random.Random(seed)
        self.reuse_prob = reuse_prob
        self.rate_bytes = rate_bytes
        self._on = lognormal_params(on_mean, on_std)
        self._off = lognormal_params(off_mean, off_std)
        self.stats = WorkloadStats()
        self.apps = self._place(n_apps, tier_sizes)
        self._conn: Dict[Tuple[str, str, int], FlowKey] = {}
        self._next_port = 20000

    def _place(
        self, n_apps: int, tier_sizes: Tuple[Tuple[int, int], ...]
    ) -> List[_AppPlacement]:
        hosts = list(self.network.topology.hosts())
        self.rng.shuffle(hosts)
        apps: List[_AppPlacement] = []
        cursor = 0
        for i in range(n_apps):
            sizes = [self.rng.randint(lo, hi) for lo, hi in tier_sizes]
            need = sum(sizes)
            if cursor + need > len(hosts):
                # Wrap around: co-locating tenants is realistic at scale.
                self.rng.shuffle(hosts)
                cursor = 0
            chunk = hosts[cursor : cursor + need]
            cursor += need
            apps.append(
                _AppPlacement(
                    name=f"app{i + 1}",
                    web=tuple(chunk[: sizes[0]]),
                    app=tuple(chunk[sizes[0] : sizes[0] + sizes[1]]),
                    db=tuple(chunk[sizes[0] + sizes[1] :]),
                )
            )
        return apps

    def _sample(self, params: Tuple[float, float]) -> float:
        mu, sigma = params
        return self.rng.lognormvariate(mu, sigma)

    def _burst_key(self, src: str, dst: str, dst_port: int) -> FlowKey:
        pair = (src, dst, dst_port)
        existing = self._conn.get(pair)
        if existing is not None and self.rng.random() < self.reuse_prob:
            self.stats.reused_connections += 1
            return existing
        self.stats.new_connections += 1
        self._next_port += 1
        if self._next_port > 60000:
            self._next_port = 20000
        key = FlowKey(src=src, dst=dst, src_port=self._next_port, dst_port=dst_port)
        self._conn[pair] = key
        return key

    def start(self, t_start: float, t_end: float) -> None:
        """Schedule all pair loops over ``[t_start, t_end)``."""
        for app in self.apps:
            for src, dst, port in app.pairs():
                # Stagger pair start times so bursts do not synchronize.
                offset = self.rng.uniform(0.0, 0.2)
                self._schedule_pair(src, dst, port, t_start + offset, t_end)

    def _schedule_pair(
        self, src: str, dst: str, port: int, at: float, t_end: float
    ) -> None:
        if at >= t_end:
            return

        def burst() -> None:
            on_len = self._sample(self._on)
            off_len = self._sample(self._off)
            self.stats.bursts += 1
            key = self._burst_key(src, dst, port)
            size = max(1, int(self.rate_bytes * on_len))
            self.network.send_flow(
                FlowRequest(key=key, size_bytes=size, duration=on_len)
            )
            nxt = self.network.sim.now + on_len + off_len
            if nxt < t_end:
                self.network.sim.schedule_at(nxt, burst)

        self.network.sim.schedule_at(at, burst)
