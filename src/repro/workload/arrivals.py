"""Inter-arrival processes for request and traffic generation.

Two processes matter to the paper:

* **Poisson** arrivals with configurable mean drive the lab applications
  (the P(x, y) workloads of Figure 10 — Poisson with statistical means x
  and y across two web servers).
* **ON/OFF** with lognormally distributed period lengths (mean 100 ms,
  standard deviation 30 ms) reproduces Benson et al.'s data center traffic
  characterization and drives the Section V-C scalability simulation.
"""

from __future__ import annotations

import math
import random
from typing import Protocol, Tuple


class ArrivalProcess(Protocol):
    """Anything that yields successive inter-arrival gaps in seconds."""

    def next_interarrival(self) -> float:
        """The gap until the next arrival."""
        ...


def lognormal_params(mean: float, std: float) -> Tuple[float, float]:
    """Convert a distribution's (mean, std) into lognormal (mu, sigma).

    The paper specifies ON/OFF periods "following log normal distribution
    with mean 100ms and standard deviation 30ms" — i.e. moments of the
    distribution itself, which must be mapped to the underlying normal's
    parameters: ``sigma^2 = ln(1 + std^2/mean^2)``,
    ``mu = ln(mean) - sigma^2/2``.

    Raises:
        ValueError: if ``mean`` is not positive or ``std`` is negative.
    """
    if mean <= 0:
        raise ValueError(f"lognormal mean must be positive, got {mean}")
    if std < 0:
        raise ValueError(f"lognormal std must be non-negative, got {std}")
    sigma2 = math.log(1.0 + (std / mean) ** 2)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)


class PoissonProcess:
    """Exponential inter-arrivals at a given mean rate.

    Args:
        rate: arrivals per second.
        rng: seeded random source (determinism across runs).

    Raises:
        ValueError: if ``rate`` is not positive.
    """

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.rng = rng

    def next_interarrival(self) -> float:
        return self.rng.expovariate(self.rate)


class FixedProcess:
    """Deterministic arrivals at a fixed period (for tests and baselines)."""

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period

    def next_interarrival(self) -> float:
        return self.period


class OnOffProcess:
    """ON/OFF arrivals with lognormal period lengths (Benson et al. style).

    During an ON period, arrivals fire at ``on_rate``; OFF periods produce
    none. Periods alternate with independently sampled lognormal lengths.
    The process is expressed as an inter-arrival stream: when the next
    within-ON gap crosses the ON period boundary, the remaining OFF time is
    added and a new ON period begins.

    Args:
        on_mean/on_std: moments of the ON period length distribution (s).
        off_mean/off_std: moments of the OFF period length distribution (s).
        on_rate: arrivals per second while ON.
        rng: seeded random source.
    """

    def __init__(
        self,
        rng: random.Random,
        on_mean: float = 0.1,
        on_std: float = 0.03,
        off_mean: float = 0.1,
        off_std: float = 0.03,
        on_rate: float = 50.0,
    ) -> None:
        if on_rate <= 0:
            raise ValueError(f"on_rate must be positive, got {on_rate}")
        self.rng = rng
        self._on_mu, self._on_sigma = lognormal_params(on_mean, on_std)
        self._off_mu, self._off_sigma = lognormal_params(off_mean, off_std)
        self.on_rate = on_rate
        self._remaining_on = self._sample_on()

    def _sample_on(self) -> float:
        return self.rng.lognormvariate(self._on_mu, self._on_sigma)

    def _sample_off(self) -> float:
        return self.rng.lognormvariate(self._off_mu, self._off_sigma)

    def next_interarrival(self) -> float:
        gap = self.rng.expovariate(self.on_rate)
        total = 0.0
        # Burn through ON/OFF boundaries until the gap fits inside ON time.
        while gap > self._remaining_on:
            gap -= self._remaining_on
            total += self._remaining_on + self._sample_off()
            self._remaining_on = self._sample_on()
        self._remaining_on -= gap
        return total + gap
