"""Trace-driven replay: re-run a captured log's flows through a simulator.

A controller log (simulated, or ingested from a real Ryu/Mininet network)
fully determines the application-level flow arrivals: who talked to whom,
when, and — via the ``FlowRemoved`` counters — how much. Replaying those
arrivals into a fresh simulated network enables *counterfactual*
experiments on real traffic:

* replay yesterday's production capture with 2% loss injected on a
  suspect link — would FlowDiff have caught it?
* replay onto a different topology (capacity planning);
* replay at a different time scale (stress the controller).

Replay is flow-faithful, not byte-faithful: the first packet timing and
the flow identity are reproduced exactly; sizes and durations come from
the original ``FlowRemoved`` counters where available, else defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.events import extract_flow_records
from repro.netsim.network import FlowRequest, Network
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class ReplayStats:
    """What a replay scheduled and how it fared.

    Attributes:
        flows: arrivals scheduled.
        with_counters: arrivals whose size/duration came from observed
            FlowRemoved counters (the rest used defaults).
        skipped: arrivals whose endpoints do not exist in the target
            topology (replaying onto a different network).
    """

    flows: int
    with_counters: int
    skipped: int


def replay_log(
    log: ControllerLog,
    network: Network,
    time_scale: float = 1.0,
    start_offset: float = 0.0,
    default_size: int = 1000,
    default_duration: float = 0.01,
    occurrence_gap: float = 1.0,
) -> ReplayStats:
    """Schedule every flow arrival of ``log`` into ``network``.

    Args:
        log: the source capture.
        network: target network; its simulator must not have advanced past
            the first replayed arrival time.
        time_scale: multiply inter-arrival spacing (0.5 = replay at double
            speed — more controller load per second).
        start_offset: shift all arrivals by this many seconds.
        default_size/default_duration: used for arrivals without observed
            counters.
        occurrence_gap: flow-occurrence split threshold (as in
            :func:`repro.core.events.extract_flow_records`).

    Returns:
        A :class:`ReplayStats` summary. The caller runs the simulator.

    Raises:
        ValueError: if ``time_scale`` is not positive.
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    records = extract_flow_records(log, occurrence_gap)
    if not records:
        return ReplayStats(flows=0, with_counters=0, skipped=0)
    t0 = records[0].arrival.time

    flows = 0
    with_counters = 0
    skipped = 0
    for record in records:
        key = record.arrival.flow
        if (
            network.host_for_ip(key.src) is None
            or network.host_for_ip(key.dst) is None
        ):
            skipped += 1
            continue
        if record.byte_count > 0:
            size = record.byte_count
            duration = max(record.duration, 1e-3) * time_scale
            with_counters += 1
        else:
            size = default_size
            duration = default_duration * time_scale
        at = start_offset + (record.arrival.time - t0) * time_scale
        network.sim.schedule_at(
            max(at, network.sim.now),
            lambda k=key, s=size, d=duration: network.send_flow(
                FlowRequest(key=k, size_bytes=s, duration=d)
            ),
        )
        flows += 1
    return ReplayStats(flows=flows, with_counters=with_counters, skipped=skipped)
