"""Synthetic VM lifecycle traces: the stand-in for the paper's EC2 captures.

The paper inserts ``tcpdump`` into four EC2 VMs' boot sequences and records
the flows each startup generates, then learns task automata from ~50 runs
per VM (Table III). We have no EC2, so this module synthesizes equivalent
captures: each :class:`VMImage` defines the startup flow sequence of an OS
image (DHCP, DNS, metadata service, NTP, package mirror, ...), and the
:class:`VMTraceSynthesizer` produces per-run variations through exactly the
mechanisms the paper names (Section III-D): caching skips flows,
retransmissions duplicate them, packet reordering swaps neighbours, and
configuration differences add VM-specific flows.

Three of the four modeled VMs share the Amazon-AMI base image (so their
*masked* automata can cross-match — the paper's false-positive source)
while the Ubuntu image has a distinct sequence (never cross-matches).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey
from repro.openflow.messages import PacketIn

#: A timestamped flow observation, the unit task mining consumes.
TimedFlow = Tuple[float, FlowKey]


@dataclass(frozen=True)
class _FlowSpec:
    """One step of a lifecycle sequence, in role space.

    ``src``/``dst`` are roles (``"vm"``, a service label, or a concrete
    peer); ``sport=None`` means an ephemeral source port is sampled per
    run. ``prob`` below 1.0 marks flows that caching or configuration can
    omit.
    """

    src: str
    dst: str
    dport: int
    sport: Optional[int] = None
    proto: str = "tcp"
    prob: float = 1.0


@dataclass(frozen=True)
class VMImage:
    """An OS image: its startup flow sequence plus image-specific extras."""

    name: str
    sequence: Tuple[_FlowSpec, ...]

    @staticmethod
    def amazon_ami(variant: int = 0) -> "VMImage":
        """The Amazon-Linux-style startup sequence.

        All AMI VMs share the same base flow order (so their *masked*
        automata can occasionally cross-match, the paper's false-positive
        source). ``variant`` selects which of three instance-configuration
        flows is always present on this VM; the other two appear only
        rarely (residual cloud-init modules), so another AMI VM's automaton
        matches this VM's startup only when its required variant flow
        happens to occur.
        """
        variant_ports = (8443, 9418, 873)
        seq: List[_FlowSpec] = [
            _FlowSpec("vm", "DHCP", 67, sport=68, proto="udp"),
            _FlowSpec("vm", "METADATA", 80),
            _FlowSpec("vm", "METADATA", 80),
            _FlowSpec("vm", "DNS", 53, proto="udp"),
            _FlowSpec("vm", "NTP", 123, proto="udp"),
            _FlowSpec("vm", "MIRROR", 80),
            _FlowSpec("vm", "DNS", 53, proto="udp", prob=0.5),
            _FlowSpec("vm", "MIRROR", 443),
        ]
        for i, port in enumerate(variant_ports):
            prob = 1.0 if i == variant % len(variant_ports) else 0.12
            seq.append(_FlowSpec("vm", "MIRROR", port, prob=prob))
        seq.append(_FlowSpec("vm", "METADATA", 80))
        return VMImage(name=f"amazon-ami-v{variant}", sequence=tuple(seq))

    @staticmethod
    def ubuntu() -> "VMImage":
        """An Ubuntu cloud-image startup sequence (distinct base order)."""
        return VMImage(
            name="ubuntu",
            sequence=(
                _FlowSpec("vm", "DHCP", 67, sport=68, proto="udp"),
                _FlowSpec("vm", "DNS", 53, proto="udp"),
                _FlowSpec("vm", "NTP", 123, sport=123, proto="udp"),
                _FlowSpec("vm", "MIRROR", 80),
                _FlowSpec("vm", "MIRROR", 80, prob=0.5),
                _FlowSpec("vm", "DNS", 53, proto="udp", prob=0.45),
                _FlowSpec("vm", "KEYSERVER", 11371),
                _FlowSpec("vm", "METADATA", 80),
            ),
        )


@dataclass
class TraceConfig:
    """Per-run variation knobs.

    Attributes:
        dup_prob: probability a flow is duplicated (retransmission).
        swap_prob: probability two adjacent flows swap (reordering).
        gap_mean: mean gap between consecutive flows, seconds.
        noise_rate: background flows per second interleaved into the trace
            (zero for clean training captures; positive for in-the-wild
            detection tests).
    """

    dup_prob: float = 0.04
    swap_prob: float = 0.015
    gap_mean: float = 0.05
    noise_rate: float = 0.0


#: Default concrete endpoints for the service roles appearing in sequences.
DEFAULT_SERVICE_HOSTS = {
    "DHCP": "10.0.0.1",
    "DNS": "10.0.0.2",
    "NTP": "10.0.0.3",
    "METADATA": "169.254.169.254",
    "MIRROR": "10.0.0.4",
    "KEYSERVER": "10.0.0.5",
    "NFS": "10.0.0.9",
}


class VMTraceSynthesizer:
    """Generates per-run startup captures for a set of VMs.

    Args:
        vms: mapping from VM identifier (e.g. the paper's
            ``i-3486634d``) to its :class:`VMImage`.
        vm_ips: mapping from VM identifier to its IP; defaults to
            ``10.1.0.<k>``.
        service_hosts: role-to-IP mapping for the shared services.
        config: variation knobs.
        seed: base RNG seed; each run derives its own stream.
    """

    def __init__(
        self,
        vms: Dict[str, VMImage],
        vm_ips: Optional[Dict[str, str]] = None,
        service_hosts: Optional[Dict[str, str]] = None,
        config: Optional[TraceConfig] = None,
        seed: int = 101,
    ) -> None:
        self.vms = dict(vms)
        self.service_hosts = dict(service_hosts or DEFAULT_SERVICE_HOSTS)
        self.config = config or TraceConfig()
        self.seed = seed
        self.vm_ips = vm_ips or {
            vm: f"10.1.0.{i + 10}" for i, vm in enumerate(sorted(self.vms))
        }

    @classmethod
    def ec2_quartet(cls, seed: int = 101, config: Optional[TraceConfig] = None) -> "VMTraceSynthesizer":
        """The paper's four EC2 VMs: three Amazon-AMI variants, one Ubuntu."""
        return cls(
            vms={
                "i-3486634d": VMImage.amazon_ami(variant=0),
                "i-5d021f3b": VMImage.amazon_ami(variant=1),
                "i-d55066b3": VMImage.amazon_ami(variant=2),
                "i-c5ebf1a3": VMImage.ubuntu(),
            },
            seed=seed,
            config=config,
        )

    def service_names(self) -> Dict[str, str]:
        """Host-to-label mapping for masking (``{"10.0.0.2": "DNS"}``)."""
        return {ip: label for label, ip in self.service_hosts.items()}

    def _resolve(self, role: str, vm: str) -> str:
        if role == "vm":
            return self.vm_ips[vm]
        return self.service_hosts.get(role, role)

    def startup_run(
        self, vm: str, run_index: int, start_time: float = 0.0
    ) -> List[TimedFlow]:
        """Synthesize one startup capture for ``vm``.

        Deterministic given ``(seed, vm, run_index)``.

        Raises:
            KeyError: for an unknown VM identifier.
        """
        image = self.vms[vm]
        rng = random.Random(f"{self.seed}:{vm}:{run_index}")
        cfg = self.config

        chosen = [spec for spec in image.sequence if rng.random() < spec.prob]
        # Adjacent reordering (packet/daemon scheduling variation).
        specs = list(chosen)
        i = 0
        while i < len(specs) - 1:
            if rng.random() < cfg.swap_prob:
                specs[i], specs[i + 1] = specs[i + 1], specs[i]
                i += 2
            else:
                i += 1

        flows: List[TimedFlow] = []
        t = start_time
        for spec in specs:
            t += rng.expovariate(1.0 / cfg.gap_mean)
            sport = spec.sport if spec.sport is not None else rng.randint(32768, 60999)
            key = FlowKey(
                src=self._resolve(spec.src, vm),
                dst=self._resolve(spec.dst, vm),
                src_port=sport,
                dst_port=spec.dport,
                proto=spec.proto,
            )
            flows.append((t, key))
            if rng.random() < cfg.dup_prob:
                # Retransmission shows the same 5-tuple again shortly after.
                flows.append((t + rng.uniform(0.001, 0.02), key))

        if cfg.noise_rate > 0 and flows:
            flows = self._interleave_noise(flows, rng)
        flows.sort(key=lambda tf: tf[0])
        return flows

    def _interleave_noise(
        self, flows: List[TimedFlow], rng: random.Random
    ) -> List[TimedFlow]:
        t0, t1 = flows[0][0], flows[-1][0]
        out = list(flows)
        t = t0
        while True:
            t += rng.expovariate(self.config.noise_rate)
            if t >= t1:
                break
            out.append(
                (
                    t,
                    FlowKey(
                        src=f"10.9.{rng.randint(0, 9)}.{rng.randint(1, 250)}",
                        dst=f"10.9.{rng.randint(0, 9)}.{rng.randint(1, 250)}",
                        src_port=rng.randint(32768, 60999),
                        dst_port=rng.choice([80, 443, 3306, 8080]),
                    ),
                )
            )
        return out

    def training_runs(
        self, vm: str, n_runs: int = 50
    ) -> List[List[TimedFlow]]:
        """``n_runs`` independent startup captures for automaton learning."""
        return [self.startup_run(vm, i) for i in range(n_runs)]

    @staticmethod
    def to_log(flows: Sequence[TimedFlow], dpid: str = "tap0") -> ControllerLog:
        """Wrap a raw capture as a single-switch controller log.

        Models the paper's tcpdump-at-boot trick: every first packet of a
        flow appears as a ``PacketIn`` from a virtual tap switch.
        """
        log = ControllerLog()
        for t, key in flows:
            log.append(PacketIn(timestamp=t, dpid=dpid, flow=key, in_port=1))
        return log
