"""FlowDiff: diagnosing data center behavior flow by flow.

A from-scratch reproduction of the ICDCS 2013 paper. The package layers:

* :mod:`repro.openflow` -- the OpenFlow control-plane substrate (messages,
  flow tables, switches, a reactive controller, the controller log).
* :mod:`repro.netsim` -- a discrete-event flow-level network simulator that
  stands in for the paper's testbed.
* :mod:`repro.apps` / :mod:`repro.workload` -- multi-tier applications,
  workload generators, and synthetic VM lifecycle traces.
* :mod:`repro.faults` / :mod:`repro.ops` -- operational-problem injectors
  and operator tasks.
* :mod:`repro.core` -- FlowDiff itself: behavioral signatures, task
  automata, and signature diffing into diagnosis reports.

Quickstart::

    from repro import FlowDiff, FlowDiffConfig
    fd = FlowDiff(FlowDiffConfig.with_special_nodes(["svc-dns"]))
    baseline = fd.model(log_good)
    report = fd.diff(baseline, fd.model(log_bad), task_library=tasks,
                     current_log=log_bad)
    print(report.render())
"""

from repro.core import (
    BehaviorModel,
    FlowDiff,
    FlowDiffConfig,
    TaskEvent,
    TaskLibrary,
)
from repro.openflow import ControllerLog, FlowKey

__version__ = "1.0.0"

__all__ = [
    "BehaviorModel",
    "FlowDiff",
    "FlowDiffConfig",
    "TaskEvent",
    "TaskLibrary",
    "ControllerLog",
    "FlowKey",
    "__version__",
]
