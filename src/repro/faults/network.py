"""Network-layer faults: loss, congestion, link and switch failure."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.apps.servers import ServerFarm
from repro.faults.base import Fault
from repro.netsim.network import FlowRequest, Network
from repro.openflow.match import FlowKey


class LinkLoss(Fault):
    """Problem 2: packet loss on specific links (the paper's ``tc`` fault).

    Retransmissions inflate flow byte counts (FS) and delay dependent
    flows (DD) — Figure 9's mechanism.
    """

    name = "link_loss"
    expected_impacts = frozenset({"DD", "FS"})
    problem_class = "congestion"

    def __init__(self, links: List[Tuple[str, str]], loss_rate: float = 0.01) -> None:
        self.links = list(links)
        self.loss_rate = loss_rate

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        for a, b in self.links:
            network.set_link_loss(a, b, self.loss_rate)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        for a, b in self.links:
            network.set_link_loss(a, b, 0.0)


class BackgroundTraffic(Fault):
    """Problem 7: iperf-style bulk transfers congest shared links.

    Raises link utilization so queueing delay inflates inter-switch latency
    (ISL) and skews DD/PC/FS for the applications sharing the path.
    """

    name = "background_traffic"
    expected_impacts = frozenset({"ISL", "FS", "PC", "DD"})
    problem_class = "congestion"

    def __init__(
        self,
        src: str,
        dst: str,
        rate_bytes: float = 100_000_000.0,
        burst_period: float = 0.05,
        duration: float = 10.0,
        seed: int = 23,
    ) -> None:
        self.src = src
        self.dst = dst
        self.rate_bytes = rate_bytes
        self.burst_period = burst_period
        self.duration = duration
        self.rng = random.Random(seed)
        self._active = False

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        self._active = True
        stop_at = network.sim.now + self.duration
        burst_bytes = int(self.rate_bytes * self.burst_period)

        def burst() -> None:
            if not self._active or network.sim.now >= stop_at:
                return
            key = FlowKey(
                src=self.src,
                dst=self.dst,
                src_port=self.rng.randint(32768, 60999),
                dst_port=5001,
            )
            network.send_flow(
                FlowRequest(
                    key=key, size_bytes=burst_bytes, duration=self.burst_period
                )
            )
            network.sim.schedule_in(self.burst_period, burst)

        burst()

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        self._active = False


class LinkFailure(Fault):
    """A severed link: reroute if possible, else disconnectivity."""

    name = "link_failure"
    expected_impacts = frozenset({"PT", "ISL"})
    problem_class = "network_disconnectivity"

    def __init__(self, a: str, b: str) -> None:
        self.a = a
        self.b = b

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.fail_link(self.a, self.b)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.recover_link(self.a, self.b)


class SwitchFailure(Fault):
    """A dead switch: flows reroute (new physical paths) or black-hole."""

    name = "switch_failure"
    expected_impacts = frozenset({"PT"})
    problem_class = "switch_failure"

    def __init__(self, switch: str) -> None:
        self.switch = switch

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.fail_switch(self.switch)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.recover_switch(self.switch)
