"""The fault abstraction: apply/revert hooks plus expected-impact metadata."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Optional

from repro.apps.servers import ServerFarm
from repro.netsim.network import Network


class Fault(ABC):
    """An injectable operational problem.

    Attributes:
        name: human-readable fault label.
        expected_impacts: signature kinds (``"CG"``, ``"DD"``, ...) the
            paper's Table I / Figure 2(b) says this fault perturbs; used as
            ground truth by the effectiveness benchmarks.
        problem_class: the problem-type label the dependency-matrix
            classifier should infer.
    """

    name: str = "fault"
    expected_impacts: FrozenSet[str] = frozenset()
    problem_class: str = "unknown"

    @abstractmethod
    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        """Activate the fault now."""

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        """Deactivate the fault (default: irreversible)."""

    def inject_at(
        self,
        network: Network,
        at: float,
        farm: Optional[ServerFarm] = None,
        until: Optional[float] = None,
    ) -> None:
        """Schedule activation at ``at`` and optional reversion at ``until``."""
        network.sim.schedule_at(at, lambda: self.apply(network, farm))
        if until is not None:
            network.sim.schedule_at(until, lambda: self.revert(network, farm))
