"""Unauthorized access: unexpected flows from an intruder host.

FlowDiff's connectivity-graph diff flags edges that exist in the current
log but not in the baseline and that no operator task explains — the
"unauthorized access" problem class of Figure 2(b). This injector models a
host probing or exfiltrating from application servers it has no business
talking to.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.apps.servers import ServerFarm
from repro.faults.base import Fault
from repro.netsim.network import FlowRequest, Network
from repro.openflow.match import FlowKey


class UnauthorizedAccess(Fault):
    """An intruder opens flows to targets it never contacted in the baseline."""

    name = "unauthorized_access"
    expected_impacts = frozenset({"CG", "CI", "FS"})
    problem_class = "unauthorized_access"

    def __init__(
        self,
        intruder: str,
        targets: List[str],
        dst_port: int = 22,
        n_flows: int = 20,
        period: float = 0.2,
        flow_size: int = 2000,
        seed: int = 31,
    ) -> None:
        self.intruder = intruder
        self.targets = list(targets)
        self.dst_port = dst_port
        self.n_flows = n_flows
        self.period = period
        self.flow_size = flow_size
        self.rng = random.Random(seed)

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        for i in range(self.n_flows):
            target = self.rng.choice(self.targets)
            key = FlowKey(
                src=self.intruder,
                dst=target,
                src_port=self.rng.randint(32768, 60999),
                dst_port=self.dst_port,
            )
            network.sim.schedule_in(
                i * self.period,
                lambda k=key: network.send_flow(
                    FlowRequest(key=k, size_bytes=self.flow_size, duration=0.01)
                ),
            )
