"""Control-plane faults: controller overload and failure (Figure 2(b))."""

from __future__ import annotations

from typing import Optional

from repro.apps.servers import ServerFarm
from repro.faults.base import Fault
from repro.netsim.network import Network


class ControllerOverload(Fault):
    """The controller's service time inflates (e.g. CPU contention, load).

    Every new flow's setup stalls, so the controller-response-time (CRT)
    signature shifts while data-plane signatures stay put — the separation
    that lets FlowDiff localize the problem to the control plane.
    """

    name = "controller_overload"
    expected_impacts = frozenset({"CRT"})
    problem_class = "controller_overhead"

    def __init__(self, factor: float = 10.0) -> None:
        self.factor = factor

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        for controller in network.controllers:
            controller.overload_factor = self.factor

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        for controller in network.controllers:
            controller.overload_factor = 1.0


class ControllerFailure(Fault):
    """The controller crashes: table misses go unanswered.

    New flows black-hole and the control-message stream dries up — the
    controller-failure problem class.
    """

    name = "controller_failure"
    expected_impacts = frozenset({"CRT", "FS", "CG"})
    problem_class = "controller_failure"

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        for controller in network.controllers:
            controller.fail()

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        for controller in network.controllers:
            controller.recover()
