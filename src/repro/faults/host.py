"""Host- and application-level faults (Table I, problems 1, 3-6)."""

from __future__ import annotations

from typing import Optional

from repro.apps.servers import ServerFarm
from repro.faults.base import Fault
from repro.netsim.network import Network


class LoggingMisconfig(Fault):
    """Problem 1: verbose (INFO) logging enabled on an application server.

    Adds a fixed per-request overhead, shifting the delay-distribution
    signature at that server without touching connectivity or volume.
    """

    name = "logging_misconfig"
    expected_impacts = frozenset({"DD"})
    problem_class = "host_or_app_problem"

    def __init__(self, server: str, overhead: float = 0.04) -> None:
        self.server = server
        self.overhead = overhead

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        if farm is None:
            raise ValueError("LoggingMisconfig needs the server farm")
        farm.enable_logging_fault(self.server, self.overhead)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        if farm is not None:
            farm.behavior(self.server).logging_overhead = 0.0


class HighCPU(Fault):
    """Problem 3: a background process contends for CPU on a server."""

    name = "high_cpu"
    expected_impacts = frozenset({"DD"})
    problem_class = "host_or_app_problem"

    def __init__(self, server: str, factor: float = 3.0) -> None:
        self.server = server
        self.factor = factor

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        if farm is None:
            raise ValueError("HighCPU needs the server farm")
        farm.enable_cpu_fault(self.server, self.factor)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        if farm is not None:
            farm.behavior(self.server).cpu_factor = 1.0


class AppCrash(Fault):
    """Problem 4: the application process dies; the host stays up.

    Requests reaching the server go unanswered and downstream flows stop,
    removing the server's outgoing edges from the connectivity graph.
    """

    name = "app_crash"
    expected_impacts = frozenset({"CG", "CI"})
    problem_class = "application_failure"

    def __init__(self, server: str) -> None:
        self.server = server

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        if farm is None:
            raise ValueError("AppCrash needs the server farm")
        farm.crash(self.server)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        if farm is not None:
            farm.behavior(self.server).crashed = False


class HostShutdown(Fault):
    """Problem 5: a host or VM powers off entirely."""

    name = "host_shutdown"
    expected_impacts = frozenset({"CG", "CI"})
    problem_class = "host_failure"

    def __init__(self, host: str) -> None:
        self.host = host

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.shutdown_host(self.host)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.boot_host(self.host)


class FirewallBlock(Fault):
    """Problem 6: a firewall rule blocks a service port on a host."""

    name = "firewall_block"
    expected_impacts = frozenset({"CG", "CI"})
    problem_class = "host_or_app_problem"

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    def apply(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.block_port(self.host, self.port)

    def revert(self, network: Network, farm: Optional[ServerFarm] = None) -> None:
        network.unblock_port(self.host, self.port)
