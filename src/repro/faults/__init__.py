"""Operational-problem injectors (the paper's Table I fault matrix).

Each fault declares the signature components it is expected to perturb and
the problem class an operator should infer, so the Table I benchmark can
assert FlowDiff's detections against ground truth:

====  =================================  ==================  =======================
ID    Fault                              Changed signatures  Inferred problem
====  =================================  ==================  =======================
1     Logging misconfiguration           DD                  host/application problem
2     Link loss (tc)                     DD, FS              host network / congestion
3     High CPU background process        DD                  host/application problem
4     Application crash                  CG, CI              application failure
5     Host/VM shutdown                   CG, CI              host failure
6     Firewall port block                CG, CI              host/application problem
7     Background traffic (iperf)         ISL, FS, PC, DD     network congestion
====  =================================  ==================  =======================

Plus the wider problem classes of Figure 2(b): switch failure, controller
overload/failure, and unauthorized access.
"""

from repro.faults.base import Fault
from repro.faults.host import (
    AppCrash,
    FirewallBlock,
    HighCPU,
    HostShutdown,
    LoggingMisconfig,
)
from repro.faults.network import (
    BackgroundTraffic,
    LinkFailure,
    LinkLoss,
    SwitchFailure,
)
from repro.faults.controller import ControllerFailure, ControllerOverload
from repro.faults.unauthorized import UnauthorizedAccess

__all__ = [
    "Fault",
    "AppCrash",
    "FirewallBlock",
    "HighCPU",
    "HostShutdown",
    "LoggingMisconfig",
    "BackgroundTraffic",
    "LinkFailure",
    "LinkLoss",
    "SwitchFailure",
    "ControllerFailure",
    "ControllerOverload",
    "UnauthorizedAccess",
]
