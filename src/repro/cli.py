"""Command-line interface: capture, model, diff, and profile controller logs.

Usage (also via ``python -m repro``):

* ``repro simulate --out baseline.jsonl`` — run the lab scenario and
  store its controller log (optionally with a fault injected), standing
  in for a live capture.
* ``repro inspect baseline.jsonl`` — summarize a capture: message counts,
  span, application groups, signature digests.
* ``repro stats baseline.jsonl`` — fast telemetry-only summary (message
  mix, rates, top talkers) without modeling anything.
* ``repro diff baseline.jsonl current.jsonl`` — the paper's workflow:
  model both captures and print the diagnosis report (``--evidence``
  attaches flight-recorder causal chains to the top suspects).
* ``repro trace capture.jsonl`` — reconstruct per-flow causal timelines
  (PacketIn -> FlowMod -> ... -> FlowRemoved) from the flight recorder.
* ``repro monitor capture.jsonl --alerts-out alerts.jsonl`` — replay a
  capture through the sliding diagnoser + alert engine and export the
  fired alerts.
* ``repro telemetry --html heatmap.html`` — run the lab scenario with the
  data-plane telemetry plane on, print per-component tables, evaluate
  the telemetry alert rules, and optionally export JSONL/Prometheus,
  write a topology heatmap, or serve the read-only ops HTTP endpoint.
* ``repro serve --tenants prod=capture.jsonl`` — the always-on streaming
  diagnosis daemon: tail one capture per tenant, maintain each open
  window incrementally, diff every closed window against the learned
  baseline, and serve reports/alerts/traces/health over HTTP.
* ``repro profile --flame flame.svg`` — run the pipeline under the
  span-scoped function profiler: per-phase timings (min-of-repeats),
  the hot-function table, a collapsed-stack file, a deterministic SVG
  flamegraph, and optionally a run-ledger record (``--ledger-dir``).
* ``repro runs list|show|compare|gate`` — the run ledger: list stored
  perf records, show one, diff two phase by phase, or gate the newest
  against a baseline (a record id or ``BENCH_pipeline.json``), exiting
  nonzero on a regression beyond tolerance.
* ``repro lint`` — flowlint, the domain-invariant static analysis pass
  (sim-clock discipline, determinism, schema drift, signature contract,
  fork safety, metric hygiene); ``--update-schemas`` regenerates the
  serialized-schema manifest after a ``FORMAT_VERSION`` bump.

``simulate``, ``model``, and ``diff`` accept ``--profile`` (print a
per-phase timing table) and ``--metrics-out FILE.jsonl`` (export the full
metrics registry plus trace spans as JSON lines); ``-v/-vv`` raises the
root logging level for every module at once.

The CLI exists so stored captures can be analyzed without writing Python;
every command maps 1:1 onto the library API.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import List, Optional, Tuple

from repro.core.flowdiff import FlowDiff, FlowDiffConfig
from repro.core.signatures.application import SignatureConfig
from repro.obs.export import write_jsonl
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.profile import render_phase_table
from repro.obs.stats import record_log_metrics, render_summary, summarize_log
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.openflow.ryu_ingest import read_ryu_log
from repro.openflow.serialize import read_log, save_log

logger = logging.getLogger(__name__)


def _read(path: str, fmt: str):
    """Load a capture in the requested format (native JSONL or Ryu dump)."""
    logger.debug("reading %s capture from %s", fmt, path)
    if fmt == "ryu":
        return read_ryu_log(path)
    return read_log(path)


def _obs_context(args: argparse.Namespace) -> Tuple[MetricsRegistry, Tracer]:
    """Real instruments when the run wants telemetry, no-ops otherwise."""
    if getattr(args, "profile", False) or getattr(args, "metrics_out", None):
        return MetricsRegistry(), Tracer()
    return NOOP_REGISTRY, NOOP_TRACER


def _finish_obs(
    args: argparse.Namespace, metrics: MetricsRegistry, tracer: Tracer, command: str
) -> None:
    """Print the profile table and/or write the JSONL export, if asked."""
    if getattr(args, "profile", False):
        print(render_phase_table(tracer))
    out = getattr(args, "metrics_out", None)
    if out:
        lines = write_jsonl(out, metrics, tracer, extra={"command": command})
        print(f"wrote {lines} telemetry events to {out}")

#: Faults injectable from the command line (name -> factory taking a target).
_CLI_FAULTS = {
    "logging": lambda target: _host_fault("LoggingMisconfig", target),
    "cpu": lambda target: _host_fault("HighCPU", target),
    "crash": lambda target: _host_fault("AppCrash", target),
    "shutdown": lambda target: _host_fault("HostShutdown", target),
    "linkloss": lambda target: _link_fault(target),
}


def _host_fault(kind: str, target: str):
    import repro.faults as faults

    return getattr(faults, kind)(target)


def _link_fault(target: str, loss_rate: float = 0.08):
    """A lossy-link fault; the target names an edge as ``a--b``."""
    from repro.faults.network import LinkLoss

    a, sep, b = target.partition("--")
    if not sep or not a or not b:
        raise SystemExit(
            f"linkloss target must name an edge as 'a--b', got {target!r}"
        )
    return LinkLoss([(a, b)], loss_rate=loss_rate)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.scenarios import three_tier_lab

    metrics, tracer = _obs_context(args)
    scenario = three_tier_lab(seed=args.seed, metrics=metrics)
    if args.fault:
        factory = _CLI_FAULTS.get(args.fault)
        if factory is None:
            print(f"unknown fault {args.fault!r}; choices: {sorted(_CLI_FAULTS)}")
            return 2
        scenario.inject(factory(args.target), at=args.fault_at)
    with tracer.span("simulate", seed=args.seed, duration=args.duration):
        log = scenario.run(0.5, args.duration)
    record_log_metrics(metrics, log, role="capture")
    logger.info("simulated %.1fs -> %d control messages", args.duration, len(log))
    count = save_log(log, args.out)
    print(f"wrote {count} control messages to {args.out}")
    _finish_obs(args, metrics, tracer, "simulate")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    log = _read(args.log, args.format)
    t0, t1 = log.time_span
    print(f"{args.log}: {len(log)} messages over [{t0:.2f}, {t1:.2f}]s")
    print(
        f"  PacketIn={len(log.packet_ins())} FlowMod={len(log.flow_mods())} "
        f"FlowRemoved={len(log.flow_removed())}"
    )
    fd = FlowDiff(_config(args))
    model = fd.model(log, assess=not args.no_stability)
    for key, sig in sorted(model.app_signatures.items()):
        members = ", ".join(sorted(sig.group.members))
        print(f"  group [{members}]")
        print(f"    edges={len(sig.cg.edges)} flows={sig.fs.flow_count}")
        for (kind_key, kind), verdict in sorted(model.stability.items()):
            if kind_key == key and not verdict:
                print(f"    unstable signature: {kind.value}")
    infra = model.infrastructure
    print(
        f"  infrastructure: {len(infra.pt.switch_links)} switch links, "
        f"CRT {infra.crt.mean * 1000:.2f}ms (n={infra.crt.count})"
    )
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from repro.core.persist import save_model

    metrics, tracer = _obs_context(args)
    fd = FlowDiff(_config(args), tracer=tracer, metrics=metrics)
    log = _read(args.log, args.format)
    record_log_metrics(metrics, log, role="baseline")
    model = fd.model(log)
    save_model(model, args.out)
    print(
        f"wrote baseline model ({len(model.app_signatures)} group(s), "
        f"window [{model.window[0]:.1f}, {model.window[1]:.1f}]s) to {args.out}"
    )
    _finish_obs(args, metrics, tracer, "model")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    log = _read(args.log, args.format)
    summary = summarize_log(log, top=args.top)
    print(render_summary(summary, name=args.log))
    if args.metrics_out:
        metrics = MetricsRegistry()
        record_log_metrics(metrics, log, role="capture")
        lines = write_jsonl(args.metrics_out, metrics, extra={"command": "stats"})
        print(f"wrote {lines} telemetry events to {args.metrics_out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.core.persist import load_model

    metrics, tracer = _obs_context(args)
    fd = FlowDiff(_config(args), tracer=tracer, metrics=metrics)
    if args.baseline_model:
        baseline = load_model(args.baseline)
    else:
        baseline_log = _read(args.baseline, args.format)
        record_log_metrics(metrics, baseline_log, role="baseline")
        baseline = fd.model(baseline_log)
    current_log = _read(args.current, args.format)
    record_log_metrics(metrics, current_log, role="current")
    current = fd.model(current_log, assess=False)
    task_library = None
    if args.tasks:
        from repro.core.tasks.serialize import load_library

        task_library = load_library(args.tasks)
    report = fd.diff(
        baseline, current, task_library=task_library, current_log=current_log
    )
    if args.evidence:
        from repro.core.diff.evidence import attach_evidence

        report = attach_evidence(
            report,
            current_log,
            metrics=metrics if metrics is not NOOP_REGISTRY else None,
        )
    if args.html:
        from repro.core.diff.html import save_html_report

        save_html_report(report, args.html)
        print(f"wrote HTML report to {args.html}")
    if args.json:
        print(report.to_json())
    elif not args.html:
        print(report.render())
    _finish_obs(args, metrics, tracer, "diff")
    return 0 if report.healthy else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.flightrec import FlightRecorder

    log = _read(args.log, args.format)
    recorder = FlightRecorder.from_log(log, occurrence_gap=args.gap)
    timelines = recorder.timelines
    if args.corr is not None:
        match = recorder.timeline(args.corr)
        timelines = [match] if match is not None else []
    if args.flow:
        timelines = [
            t for t in timelines if t.flow is not None and args.flow in str(t.flow)
        ]
    if args.incomplete:
        timelines = [t for t in timelines if not t.complete]
    if args.json:
        print(json.dumps([t.to_dict() for t in timelines], indent=2))
    else:
        for timeline in timelines:
            print(timeline.render())
            print()
        s = recorder.summary()
        print(
            f"{len(timelines)} of {s['flows']} flow(s) shown; "
            f"{s['complete']} complete, {s['incomplete']} incomplete, "
            f"{s['synthetic']} heuristic, {s['reordered']} reordered"
        )
    filtered = args.corr is not None or args.flow or args.incomplete
    return 1 if filtered and not timelines else 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.monitor import SlidingDiagnoser
    from repro.obs.alerts import AlertEngine, default_rules

    metrics, tracer = _obs_context(args)
    log = _read(args.log, args.format)
    engine = AlertEngine(
        default_rules(
            consecutive_critical=args.escalate_after, cooldown=args.cooldown
        ),
        metrics=metrics,
    )
    diagnoser = SlidingDiagnoser(
        _config(args),
        window=args.window,
        metrics=metrics,
        tracer=tracer,
        alert_engine=engine,
    )
    t0, _ = log.time_span
    baseline = args.baseline if args.baseline is not None else args.window
    diagnoser.set_baseline(log, t0, t0 + baseline)
    diagnoser.advance(log)
    if args.alerts_out:
        count = engine.write_jsonl(args.alerts_out)
        print(f"wrote {count} alert(s) to {args.alerts_out}")
    if args.json:
        print(json.dumps([a.to_dict() for a in engine.alerts], indent=2))
    else:
        for alert in engine.alerts:
            print(f"[{alert.severity}] t={alert.timestamp:g}s {alert.rule}: {alert.message}")
        healthy = sum(1 for entry in diagnoser.history if entry.healthy)
        print(
            f"{len(diagnoser.history)} window(s) diagnosed ({healthy} healthy), "
            f"{len(engine.alerts)} alert(s) fired, {engine.suppressed} suppressed"
        )
    _finish_obs(args, metrics, tracer, "monitor")
    return 1 if engine.alerts else 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.obs.alerts import AlertEngine, telemetry_rules
    from repro.obs.heatmap import save_heatmap
    from repro.obs.httpd import ObsHTTPServer, ObsState
    from repro.obs.telemetry import (
        TelemetryPlane,
        render_tables,
        telemetry_registry,
    )
    from repro.scenarios import three_tier_lab

    plane = TelemetryPlane(window=args.window, capacity=args.retain)
    metrics = MetricsRegistry()
    scenario = three_tier_lab(seed=args.seed, metrics=metrics, telemetry=plane)
    if args.fault:
        factory = _CLI_FAULTS.get(args.fault)
        if factory is None:
            print(f"unknown fault {args.fault!r}; choices: {sorted(_CLI_FAULTS)}")
            return 2
        scenario.inject(factory(args.target), at=args.fault_at)
    scenario.run(stop=args.duration)
    plane.flush(scenario.network.now)

    engine = AlertEngine(telemetry_rules())
    engine.observe_telemetry(plane)

    print(render_tables(plane, top=args.top))
    for alert in engine.alerts[: args.top]:
        print(f"[{alert.severity}] t={alert.timestamp:g}s {alert.rule}: {alert.message}")
    if len(engine.alerts) > args.top:
        print(f"... and {len(engine.alerts) - args.top} more alert(s)")

    if args.out:
        lines = write_jsonl(
            args.out, metrics, telemetry=plane, extra={"command": "telemetry"}
        )
        print(f"wrote {lines} telemetry events to {args.out}")
    if args.prom:
        from repro.obs.export import render_prometheus

        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(metrics))
            fh.write(render_prometheus(telemetry_registry(plane)))
        print(f"wrote Prometheus exposition to {args.prom}")
    if args.html:
        save_heatmap(
            args.html, scenario.network.topology, plane, alerts=engine.alerts
        )
        print(f"wrote topology heatmap to {args.html}")
    if args.serve_for is not None:
        import time

        state = ObsState(registry=metrics, telemetry=plane, engine=engine)
        server = ObsHTTPServer(state, port=args.port)
        server.start()
        print(f"serving read-only ops endpoint at {server.url('/healthz')}")
        try:
            time.sleep(args.serve_for)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.httpd import ObsHTTPServer
    from repro.service import FileTailSource, ServiceState, StreamService

    tenants: List[Tuple[str, str]] = []
    for part in args.tenants.split(","):
        name, sep, path = part.partition("=")
        if not sep or not name or not path:
            raise SystemExit(
                f"--tenants entries must be name=capture.jsonl, got {part!r}"
            )
        tenants.append((name, path))
    host, sep, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not sep or not host or port < 0:
        raise SystemExit(f"--listen must be host:port, got {args.listen!r}")

    service = StreamService(
        _config(args),
        window=args.window,
        baseline_span=args.baseline,
        slices=args.slices,
        checkpoint_dir=args.checkpoint_dir,
        max_pending=args.max_pending,
        rebaseline_after=args.rebaseline_after,
    )
    for name, _path in tenants:
        service.add_tenant(name)
    state = ServiceState(service)
    server = ObsHTTPServer(state, host=host, port=port)
    server.start()
    print(f"serving streaming diagnosis endpoint at {server.url('/healthz')}")
    service.start()
    sources = [
        FileTailSource(service, name, path, follow=args.follow)
        for name, path in tenants
    ]
    for source in sources:
        source.start()
    try:
        if args.follow:
            # A live tail has no natural end; serve until told to stop.
            _time.sleep(args.serve_for if args.serve_for is not None else 86400.0)
        else:
            for source in sources:
                source.join()
            service.drain()
            if args.serve_for is not None:
                _time.sleep(args.serve_for)
    except KeyboardInterrupt:
        pass
    finally:
        for source in sources:
            source.stop()
        service.stop()
        for _name, tenant in service.tenant_items():
            row = tenant.summary()
            print(
                f"tenant {tenant.name}: {row['windows']} windows "
                f"{row['statuses']}, {row['alerts']} alert(s), "
                f"worst={row['worst_severity']}"
            )
        if args.report_out:
            payload = {
                "healthz": state.health(),
                "alerts": state.alerts_json(),
            }
            with open(args.report_out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote service report to {args.report_out}")
        server.stop()
    return 0


def _profile_log(args: argparse.Namespace):
    """Build the capture the profiled pipeline runs over.

    Returns ``(log, scenario, sim_wall_s)`` — the simulation wall time
    rides along so the ledger record can carry the measured ingest rate
    (``messages_per_s``), which is what the throughput floor of
    ``repro runs gate`` checks against the committed benchmark baseline.
    """
    import time as _time

    if args.scenario == "scalability":
        from repro.scenarios import scalability_sim

        network, workload = scalability_sim(args.apps, seed=args.seed)
        workload.start(0.0, args.duration)
        started = _time.perf_counter()
        network.sim.run(until=args.duration + 3.0)
        elapsed = _time.perf_counter() - started
        return (
            network.log,
            f"scalability_sim({args.apps} apps, {args.duration:g}s)",
            elapsed,
        )
    from repro.scenarios import three_tier_lab

    started = _time.perf_counter()
    log = three_tier_lab(seed=args.seed).run(0.5, args.duration)
    elapsed = _time.perf_counter() - started
    return log, f"three_tier_lab({args.duration:g}s)", elapsed


def _profile_pass(config: FlowDiffConfig, log, tracer: Tracer):
    """One full model+diff pass — the same shape the benchmarks time."""
    fd = FlowDiff(config, tracer=tracer)
    baseline = fd.model(log)
    current = fd.model(log, assess=False)
    return fd.diff(baseline, current)


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.persist import run_fingerprint
    from repro.obs.profile import phase_timings
    from repro.obs.profiler import (
        attach_profiler,
        deterministic_timer,
        render_function_table,
    )

    config = _config(args)
    log, scenario, sim_wall_s = _profile_log(args)

    # Timing pass(es): instrumented with spans only, no profiler, so the
    # recorded phase numbers are comparable with BENCH_pipeline.json and
    # with unprofiled production runs. Min-of-repeats per phase.
    samples: dict = {}
    report = None
    for _ in range(max(1, args.repeats)):
        tracer = Tracer()
        report = _profile_pass(config, log, tracer)
        for phase, seconds in phase_timings(tracer).items():
            samples.setdefault(phase, []).append(seconds)
    phases = {phase: min(times) for phase, times in samples.items()}
    total_s = phases.get("model", 0.0) + phases.get("diff", 0.0)
    noise_floor_pct = max(
        (
            (max(times) - min(times)) / min(times) * 100.0
            for times in samples.values()
            if min(times) >= 0.005
        ),
        default=0.0,
    )

    # Profiled pass: the span profiler rides the tracer hooks; its
    # cProfile overhead stays out of the ledger numbers above.
    timer = deterministic_timer() if args.deterministic else None
    prof_tracer = Tracer()
    profiler = attach_profiler(prof_tracer, timer=timer)
    _profile_pass(config, log, prof_tracer)
    folded = profiler.folded()

    if args.deterministic:
        scale, unit = 1.0, "events"
    else:
        scale, unit = 1e6, "µs"
    print(render_phase_table(prof_tracer if args.deterministic else tracer))
    print()
    print(
        render_function_table(
            profiler,
            phase=args.phase,
            top=args.top,
            unit="events" if args.deterministic else "ms",
        )
    )
    if args.folded:
        lines = profiler.write_folded(args.folded, scale=scale)
        print(f"wrote {lines} folded stack(s) to {args.folded}")
    if args.flame:
        from repro.obs.flamegraph import save_flamegraph

        scaled = {stack: value * scale for stack, value in folded.items()}
        save_flamegraph(
            args.flame,
            scaled,
            title=f"repro pipeline — {scenario} seed={args.seed}",
            unit=unit,
        )
        print(f"wrote flamegraph to {args.flame}")
    if args.ledger_dir:
        from repro.obs.ledger import RunLedger, RunRecord

        record = RunLedger(args.ledger_dir).append(
            RunRecord(
                run_id=run_fingerprint(log, config, seed=args.seed),
                command="profile",
                scenario=scenario,
                seed=args.seed,
                messages=len(log),
                phases=phases,
                total_s=total_s,
                metrics={
                    "unknown_changes": len(report.unknown_changes),
                    "known_changes": len(report.known_changes),
                    # Measured ingest rate of the scenario simulation
                    # that produced this capture — the current side of
                    # the gate's throughput floor.
                    "messages_per_s": (
                        round(len(log) / sim_wall_s) if sim_wall_s else 0
                    ),
                },
                folded=None if args.no_ledger_profile else folded,
                repeats=max(1, args.repeats),
                noise_floor_pct=noise_floor_pct,
            )
        )
        print(
            f"appended ledger record {record.record_id} "
            f"(run {record.run_id}) to {args.ledger_dir}"
        )
    return 0


def _runs_ledger(args: argparse.Namespace):
    from repro.obs.ledger import RunLedger

    return RunLedger(args.ledger_dir)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.obs.ledger import render_records_table

    records = _runs_ledger(args).records()
    if args.json:
        print(json.dumps([r.summary() for r in records], indent=2))
    else:
        print(render_records_table(records))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    try:
        record = _runs_ledger(args).get(args.record)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    if args.json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    for key, value in record.summary().items():
        print(f"{key}: {value}")
    print(f"noise_floor_pct: {record.noise_floor_pct:g}")
    print("phases:")
    for phase, seconds in sorted(record.phases.items()):
        print(f"  {phase:<28} {seconds * 1000:>10.2f}ms")
    for key, value in sorted(record.metrics.items()):
        print(f"metric {key}: {value:g}")
    return 0


def _cmd_runs_compare(args: argparse.Namespace) -> int:
    from repro.obs.ledger import compare_records, render_compare_table

    ledger = _runs_ledger(args)
    try:
        baseline = ledger.get(args.baseline)
        current = ledger.get(args.current)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    rows = compare_records(baseline, current)
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(f"baseline {baseline.record_id} -> current {current.record_id}")
        print(render_compare_table(rows))
    return 0


def _runs_baseline(spec: str, ledger):
    """Resolve a gate baseline: a ledger record id, a stored record
    JSON, or a ``BENCH_pipeline.json``-shaped benchmark payload."""
    from repro.obs.ledger import RunRecord

    if os.path.exists(spec):
        with open(spec, encoding="utf-8") as fh:
            payload = json.load(fh)
        if "record_id" in payload:
            return RunRecord.from_dict(payload)
        return RunRecord.from_bench(payload, source=spec)
    return ledger.get(spec)


def _cmd_runs_gate(args: argparse.Namespace) -> int:
    from repro.obs.ledger import gate_records

    ledger = _runs_ledger(args)
    try:
        if args.record:
            current = ledger.get(args.record)
        else:
            current = ledger.latest(run_id=args.run)
        if current is None:
            print(f"no records in ledger {args.ledger_dir}")
            return 2
        baseline = _runs_baseline(args.baseline, ledger)
    except (KeyError, ValueError) as exc:
        print(exc.args[0])
        return 2
    result = gate_records(
        current,
        baseline,
        tolerance_pct=args.tol_pct,
        floor_s=args.floor_ms / 1000.0,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(f"current {current.record_id} vs baseline {baseline.scenario}")
        print(result.render())
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import repro
    import repro.qa as qa

    paths = args.paths or [os.path.dirname(repro.__file__)]
    project = qa.Project.load(paths)
    if args.update_schemas:
        schemas = qa.update_manifest(project)
        print(
            f"wrote {len(schemas)} schema(s) to the manifest; "
            f"review and commit the change"
        )
        return 0
    rules = qa.default_rules()
    if args.concurrency:
        rules = rules + qa.concurrency_rules()
    engine = qa.LintEngine(rules)
    result = engine.run(project)
    if args.format == "json":
        sys.stdout.write(qa.render_json(result))
    else:
        sys.stdout.write(qa.render_text(result))
    return 0 if result.ok else 1


def _config(args: argparse.Namespace) -> FlowDiffConfig:
    special = tuple(args.special_nodes.split(",")) if args.special_nodes else ()
    return FlowDiffConfig(
        signature=SignatureConfig(special_nodes=special),
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
    )


def _add_model_flags(sub_parser: argparse.ArgumentParser) -> None:
    """The shared modeling-performance surface of model/diff/monitor."""
    sub_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="modeling parallelism: 1 = serial (default), N = sharded "
        "pipeline with up to N workers, 0 = one worker per CPU; the "
        "result is identical to serial either way",
    )
    sub_parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache built models in DIR keyed by capture content and "
        "config, so re-modeling an unchanged capture is skipped",
    )


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    """The shared observability surface of simulate/model/diff."""
    sub_parser.add_argument(
        "--profile",
        action="store_true",
        help="run instrumented and print a per-phase timing table",
    )
    sub_parser.add_argument(
        "--metrics-out",
        metavar="FILE.jsonl",
        help="export metrics (and trace spans) as JSON lines to this path",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlowDiff: diagnose data center behavior flow by flow",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise logging verbosity (-v INFO, -vv DEBUG) for all modules",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run the lab scenario, store its log")
    sim.add_argument("--out", required=True, help="output capture path (.jsonl)")
    sim.add_argument("--duration", type=float, default=30.0)
    sim.add_argument("--seed", type=int, default=3)
    sim.add_argument("--fault", help=f"inject a fault: {sorted(_CLI_FAULTS)}")
    sim.add_argument("--target", default="S3", help="fault target host")
    sim.add_argument(
        "--fault-at",
        type=float,
        default=0.0,
        help="simulation time at which the fault is injected (default 0 = "
        "faulty from the start; set mid-run to capture a healthy prefix)",
    )
    _add_obs_flags(sim)
    sim.set_defaults(fn=_cmd_simulate)

    stats = sub.add_parser(
        "stats", help="summarize a capture's telemetry without modeling it"
    )
    stats.add_argument("log")
    stats.add_argument(
        "--top", type=int, default=5, help="how many talkers/switches to list"
    )
    stats.add_argument(
        "--metrics-out",
        metavar="FILE.jsonl",
        help="also export the message-mix counters as JSON lines",
    )
    stats.add_argument(
        "--format",
        choices=("native", "ryu"),
        default="native",
        help="capture format: native JSONL or a Ryu event dump",
    )
    stats.set_defaults(fn=_cmd_stats)

    insp = sub.add_parser("inspect", help="summarize a stored capture")
    insp.add_argument("log")
    insp.add_argument("--special-nodes", default="", help="comma-separated service hosts")
    insp.add_argument("--no-stability", action="store_true")
    insp.add_argument(
        "--format",
        choices=("native", "ryu"),
        default="native",
        help="capture format: native JSONL or a Ryu event dump",
    )
    insp.set_defaults(fn=_cmd_inspect)

    mdl = sub.add_parser("model", help="precompute and store a baseline model")
    mdl.add_argument("log", help="capture to model")
    mdl.add_argument("--out", required=True, help="output model path (.json)")
    mdl.add_argument("--special-nodes", default="", help="comma-separated service hosts")
    mdl.add_argument(
        "--format",
        choices=("native", "ryu"),
        default="native",
        help="capture format: native JSONL or a Ryu event dump",
    )
    _add_model_flags(mdl)
    _add_obs_flags(mdl)
    mdl.set_defaults(fn=_cmd_model)

    diff = sub.add_parser("diff", help="diff two captures (L1 baseline, L2 current)")
    diff.add_argument("baseline", help="baseline capture, or a stored model with --baseline-model")
    diff.add_argument("current")
    diff.add_argument(
        "--baseline-model",
        action="store_true",
        help="treat BASELINE as a stored model file rather than a capture",
    )
    diff.add_argument("--special-nodes", default="", help="comma-separated service hosts")
    diff.add_argument(
        "--evidence",
        action="store_true",
        help="attach flight-recorder causal chains to the top suspects",
    )
    diff.add_argument("--json", action="store_true", help="emit the report as JSON")
    diff.add_argument("--html", help="also write a standalone HTML report to this path")
    diff.add_argument(
        "--tasks",
        help="stored task library (JSON) used to explain planned changes",
    )
    diff.add_argument(
        "--format",
        choices=("native", "ryu"),
        default="native",
        help="capture format: native JSONL or a Ryu event dump",
    )
    _add_model_flags(diff)
    _add_obs_flags(diff)
    diff.set_defaults(fn=_cmd_diff)

    trace = sub.add_parser(
        "trace", help="reconstruct per-flow causal timelines from a capture"
    )
    trace.add_argument("log")
    trace.add_argument(
        "--flow",
        help="only flows whose 5-tuple rendering contains this substring "
        "(a host name, ':80', '->S8', ...)",
    )
    trace.add_argument(
        "--corr", type=int, help="only the flow with this correlation id"
    )
    trace.add_argument(
        "--incomplete",
        action="store_true",
        help="only chains with missing stages (the broken flows)",
    )
    trace.add_argument(
        "--gap",
        type=float,
        default=10.0,
        help="occurrence gap (s) for heuristic grouping of id-less captures",
    )
    trace.add_argument("--json", action="store_true", help="emit timelines as JSON")
    trace.add_argument(
        "--format",
        choices=("native", "ryu"),
        default="native",
        help="capture format: native JSONL or a Ryu event dump",
    )
    trace.set_defaults(fn=_cmd_trace)

    mon = sub.add_parser(
        "monitor",
        help="replay a capture through the sliding diagnoser + alert engine",
    )
    mon.add_argument("log")
    mon.add_argument(
        "--window", type=float, default=30.0, help="seconds diagnosed per step"
    )
    mon.add_argument(
        "--baseline",
        type=float,
        help="seconds of leading log modeled as the healthy baseline "
        "(default: one window)",
    )
    mon.add_argument(
        "--alerts-out",
        metavar="FILE.jsonl",
        help="write fired alerts as JSON lines to this path",
    )
    mon.add_argument(
        "--cooldown",
        type=float,
        default=0.0,
        help="stream-time seconds a (rule, labels) pair stays silent after firing",
    )
    mon.add_argument(
        "--escalate-after",
        type=int,
        default=3,
        help="consecutive unhealthy windows before the CRITICAL escalation",
    )
    mon.add_argument("--special-nodes", default="", help="comma-separated service hosts")
    mon.add_argument("--json", action="store_true", help="emit alerts as JSON")
    mon.add_argument(
        "--format",
        choices=("native", "ryu"),
        default="native",
        help="capture format: native JSONL or a Ryu event dump",
    )
    _add_model_flags(mon)
    _add_obs_flags(mon)
    mon.set_defaults(fn=_cmd_monitor)

    tel = sub.add_parser(
        "telemetry",
        help="run the lab scenario with the data-plane telemetry plane on",
    )
    tel.add_argument("--duration", type=float, default=30.0)
    tel.add_argument("--seed", type=int, default=3)
    tel.add_argument(
        "--window",
        type=float,
        default=1.0,
        help="rollup window length in simulation seconds",
    )
    tel.add_argument(
        "--retain",
        type=int,
        default=120,
        help="closed windows retained per series (the ring-buffer bound)",
    )
    tel.add_argument("--fault", help=f"inject a fault: {sorted(_CLI_FAULTS)}")
    tel.add_argument(
        "--target",
        default="ofs1--ofs5",
        help="fault target (a host, or an 'a--b' edge for linkloss)",
    )
    tel.add_argument(
        "--fault-at",
        type=float,
        default=15.0,
        help="simulation time at which the fault is injected",
    )
    tel.add_argument(
        "--top", type=int, default=10, help="rows per table / alerts printed"
    )
    tel.add_argument(
        "--out",
        metavar="FILE.jsonl",
        help="export metrics + telemetry series as JSON lines to this path",
    )
    tel.add_argument(
        "--prom",
        metavar="FILE.prom",
        help="export the combined Prometheus text exposition to this path",
    )
    tel.add_argument(
        "--html",
        metavar="FILE.html",
        help="write the standalone topology-heatmap report to this path",
    )
    tel.add_argument(
        "--serve-for",
        type=float,
        metavar="SECONDS",
        help="after the run, serve the read-only ops HTTP endpoint this long",
    )
    tel.add_argument(
        "--port",
        type=int,
        default=0,
        help="ops endpoint port (default 0 = ephemeral, printed at start)",
    )
    tel.set_defaults(fn=_cmd_telemetry)

    srv = sub.add_parser(
        "serve",
        help="run the always-on streaming diagnosis daemon over captures",
    )
    srv.add_argument(
        "--tenants",
        required=True,
        metavar="NAME=FILE[,NAME=FILE...]",
        help="comma-separated tenant streams, each a name=capture.jsonl pair",
    )
    srv.add_argument(
        "--window",
        type=float,
        default=10.0,
        help="diagnosis window length in stream seconds",
    )
    srv.add_argument(
        "--baseline",
        type=float,
        metavar="SECONDS",
        help="baseline learning span (default: one window)",
    )
    srv.add_argument(
        "--slices",
        type=int,
        default=4,
        help="per-window merge slices on the incremental path",
    )
    srv.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="checkpoint each closed window into DIR so a restart resumes "
        "at the last closed window instead of remodeling from scratch",
    )
    srv.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="ops endpoint address (port 0 = ephemeral, printed at start)",
    )
    srv.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the capture files for appended messages",
    )
    srv.add_argument(
        "--serve-for",
        type=float,
        metavar="SECONDS",
        help="after the captures drain, keep serving HTTP this long",
    )
    srv.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="ingest queue bound in batches; full queue pushes back on "
        "feeders (or drops, with accounting, for non-blocking feeds)",
    )
    srv.add_argument(
        "--rebaseline-after",
        type=int,
        default=0,
        help="healthy-window streak that re-learns the baseline (0 = never)",
    )
    srv.add_argument(
        "--report-out",
        metavar="FILE.json",
        help="write the final health + alerts report as JSON to this path",
    )
    srv.add_argument(
        "--special-nodes", default="", help="comma-separated service hosts"
    )
    srv.set_defaults(fn=_cmd_serve)

    prof = sub.add_parser(
        "profile",
        help="profile the pipeline function by function; emit flamegraphs "
        "and ledger records",
    )
    prof.add_argument(
        "--scenario",
        choices=("lab", "scalability"),
        default="lab",
        help="capture source: the three-tier lab or the Section V-C "
        "scalability fabric",
    )
    prof.add_argument("--seed", type=int, default=3)
    prof.add_argument("--duration", type=float, default=30.0)
    prof.add_argument(
        "--apps",
        type=int,
        default=3,
        help="random three-tier apps for --scenario scalability",
    )
    prof.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="unprofiled timing passes; the ledger keeps min-of-repeats "
        "per phase and the spread as its noise floor",
    )
    prof.add_argument(
        "--phase",
        help="restrict the hot-function table to one span path "
        "(e.g. model/stability)",
    )
    prof.add_argument(
        "--top", type=int, default=15, help="rows in the hot-function table"
    )
    prof.add_argument(
        "--flame", metavar="FILE.svg", help="write the SVG flamegraph here"
    )
    prof.add_argument(
        "--folded",
        metavar="FILE",
        help="write the collapsed-stack profile here",
    )
    prof.add_argument(
        "--deterministic",
        action="store_true",
        help="profile in event counts instead of wall time: same seed and "
        "input then yield byte-identical folded output and SVG",
    )
    prof.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="append this run's record to the ledger in DIR",
    )
    prof.add_argument(
        "--no-ledger-profile",
        action="store_true",
        help="keep the folded profile out of the ledger record",
    )
    prof.add_argument("--special-nodes", default="", help="comma-separated service hosts")
    prof.set_defaults(fn=_cmd_profile)

    runs = sub.add_parser(
        "runs",
        help="inspect, compare, and gate run-ledger perf records",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _runs_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger-dir",
            required=True,
            metavar="DIR",
            help="the run-ledger directory (as written by repro profile)",
        )
        p.add_argument("--json", action="store_true", help="emit JSON")

    runs_list = runs_sub.add_parser("list", help="list every ledger record")
    _runs_common(runs_list)
    runs_list.set_defaults(fn=_cmd_runs_list)

    runs_show = runs_sub.add_parser("show", help="show one record in full")
    runs_show.add_argument("record", help="record id (unambiguous prefix ok)")
    _runs_common(runs_show)
    runs_show.set_defaults(fn=_cmd_runs_show)

    runs_cmp = runs_sub.add_parser(
        "compare", help="phase-by-phase delta between two records"
    )
    runs_cmp.add_argument("baseline", help="baseline record id")
    runs_cmp.add_argument("current", help="current record id")
    _runs_common(runs_cmp)
    runs_cmp.set_defaults(fn=_cmd_runs_compare)

    runs_gate = runs_sub.add_parser(
        "gate",
        help="fail (exit 1) when the current record regressed past "
        "tolerance against a baseline",
    )
    runs_gate.add_argument(
        "record",
        nargs="?",
        help="record to gate (default: the newest in the ledger)",
    )
    runs_gate.add_argument(
        "--baseline",
        required=True,
        help="baseline: a ledger record id, a stored record JSON, or "
        "BENCH_pipeline.json",
    )
    runs_gate.add_argument(
        "--run",
        help="with no RECORD: gate the newest record of this run id",
    )
    runs_gate.add_argument(
        "--tol-pct",
        type=float,
        default=25.0,
        help="per-phase regression tolerance in percent (raised to the "
        "records' own noise floors when those are larger)",
    )
    runs_gate.add_argument(
        "--floor-ms",
        type=float,
        default=5.0,
        help="phases faster than this on both sides are never gated",
    )
    _runs_common(runs_gate)
    runs_gate.set_defaults(fn=_cmd_runs_gate)

    lint = sub.add_parser(
        "lint",
        help="run flowlint, the domain-invariant static analysis pass",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro "
        "package source)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human-readable text or the CI JSON artifact",
    )
    lint.add_argument(
        "--update-schemas",
        action="store_true",
        help="regenerate the serialized-schema manifest instead of linting "
        "(run AFTER bumping the owning FORMAT_VERSION)",
    )
    lint.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the interprocedural concurrency rules "
        "(lock-discipline, blocking-under-lock, lock-order, "
        "unmanaged-thread) over the thread-reachability call graph",
    )
    lint.set_defaults(fn=_cmd_lint)
    return parser


def _configure_logging(verbosity: int) -> None:
    """Set the root logging level once for every ``repro.*`` module.

    Replaces ad-hoc per-module setup: modules only ever call
    ``logging.getLogger(__name__)`` and this single switch decides what
    surfaces. Safe to call repeatedly (tests invoke ``main`` many times).
    """
    if verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    root = logging.getLogger()
    if root.handlers:
        root.setLevel(level)
    else:
        logging.basicConfig(
            level=level, format="%(levelname)s %(name)s: %(message)s"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
