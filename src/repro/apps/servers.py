"""Server processing behaviour and its fault hooks.

A server's externally observable behaviour, from the control plane's
vantage point, is the *time between its incoming and outgoing flows* — the
processing delay. The delay-distribution signature peaks at this value
(Section III-B; the custom app's 60 ms is Figure 10's ground truth).

Faults perturb exactly this quantity:

* mis-configured INFO logging adds a fixed overhead per request (Table I,
  problem 1);
* a background CPU hog multiplies service time (problem 3);
* a crash stops the server from producing downstream flows at all
  (problem 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class DelayModel:
    """A processing-delay distribution: truncated Gaussian.

    Attributes:
        mean: mean service time in seconds.
        std: standard deviation in seconds.
        floor: minimum service time (samples are clamped here).
    """

    mean: float = 0.06
    std: float = 0.005
    floor: float = 0.0005

    def sample(self, rng: random.Random) -> float:
        """Draw one service time."""
        return max(self.floor, rng.gauss(self.mean, self.std))


@dataclass
class ServerBehavior:
    """Mutable per-server state: the delay model plus fault modifiers.

    Attributes:
        delay: the healthy processing-delay model.
        logging_overhead: additive seconds per request (logging fault).
        cpu_factor: multiplicative service-time factor (CPU-contention
            fault); 1.0 when healthy.
        crashed: a crashed server consumes requests without responding or
            producing downstream flows.
    """

    delay: DelayModel = field(default_factory=DelayModel)
    logging_overhead: float = 0.0
    cpu_factor: float = 1.0
    crashed: bool = False

    def service_time(self, rng: random.Random) -> float:
        """Sample the effective service time with all faults applied."""
        return self.delay.sample(rng) * self.cpu_factor + self.logging_overhead

    def reset_faults(self) -> None:
        """Clear every fault modifier, restoring healthy behaviour."""
        self.logging_overhead = 0.0
        self.cpu_factor = 1.0
        self.crashed = False


class ServerFarm:
    """A registry of per-host server behaviours.

    Hosts not explicitly configured get a default healthy behaviour on
    first access, so fault injectors can target any host by name.
    """

    def __init__(self, default_delay: Optional[DelayModel] = None) -> None:
        self._default_delay = default_delay or DelayModel()
        self._behaviors: Dict[str, ServerBehavior] = {}

    def behavior(self, host: str) -> ServerBehavior:
        """The behaviour record for ``host`` (created lazily)."""
        if host not in self._behaviors:
            self._behaviors[host] = ServerBehavior(
                delay=DelayModel(
                    mean=self._default_delay.mean,
                    std=self._default_delay.std,
                    floor=self._default_delay.floor,
                )
            )
        return self._behaviors[host]

    def set_delay(self, host: str, mean: float, std: float = 0.0) -> None:
        """Set the healthy processing delay for ``host``."""
        behavior = self.behavior(host)
        behavior.delay.mean = mean
        behavior.delay.std = std

    def enable_logging_fault(self, host: str, overhead: float = 0.04) -> None:
        """Inject the logging-misconfiguration fault (Table I, problem 1)."""
        self.behavior(host).logging_overhead = overhead

    def enable_cpu_fault(self, host: str, factor: float = 3.0) -> None:
        """Inject the high-CPU background-process fault (problem 3)."""
        self.behavior(host).cpu_factor = factor

    def crash(self, host: str) -> None:
        """Crash the application process on ``host`` (problem 4)."""
        self.behavior(host).crashed = True

    def clear_faults(self, host: Optional[str] = None) -> None:
        """Clear faults on one host, or everywhere when ``host`` is None."""
        targets = [host] if host else list(self._behaviors)
        for h in targets:
            if h in self._behaviors:
                self._behaviors[h].reset_faults()
