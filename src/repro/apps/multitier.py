"""Multi-tier applications: the request pipeline over the simulated network.

A request enters the front tier (e.g. a web server), which after its
processing delay opens (or reuses) a connection to the next tier, and so on
to the deepest tier; responses then flow back up the chain. Every new
connection is a fresh 5-tuple and therefore a new flow, which triggers the
``PacketIn`` cascade FlowDiff mines. A *reused* connection re-sends data on
an existing 5-tuple — a switch-table hit that produces **no** control
traffic while the entry is alive, which is exactly how connection reuse
erodes measurement completeness in the paper (Section V-B1).

The per-tier parameters mirror the paper's experimental knobs:

* ``reuse_prob`` -- the R(m, n) connection-reuse ratios of Figure 10;
* per-server processing delays (via :class:`~repro.apps.servers.ServerFarm`)
  -- the 60 ms ground-truth delay;
* ``balancer`` -- linear (round-robin) versus non-linear (random skew)
  decision logic, which is what makes the component-interaction signature
  stable or unstable (Section III-B).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.servers import ServerFarm
from repro.apps.services import ServiceDirectory
from repro.netsim.network import FlowRequest, FlowResult, Network
from repro.openflow.match import FlowKey

#: First ephemeral port handed out by the per-host allocator.
EPHEMERAL_BASE = 20000


@dataclass(frozen=True)
class TierSpec:
    """One tier of a multi-tier application.

    Attributes:
        name: human-readable tier role (``"web"``, ``"app"``, ``"db"``).
        servers: host node names serving this tier.
        port: the tier's listen port.
        reuse_prob: probability that a request to the *next* tier reuses an
            existing connection instead of opening a new one.
        balancer: ``"round_robin"`` (linear decision logic, stable CI) or
            ``"random"`` / ``"skewed"`` (unstable CI).
        request_size: bytes sent downstream per request.
        response_size: bytes returned upstream per response.
    """

    name: str
    servers: Tuple[str, ...]
    port: int
    reuse_prob: float = 0.0
    balancer: str = "round_robin"
    request_size: int = 500
    response_size: int = 2000


@dataclass(frozen=True)
class RequestOutcome:
    """The end-to-end outcome of one client request.

    Attributes:
        completed: whether the response made it back to the client.
        started_at: request start time.
        finished_at: response completion time (equals ``started_at`` when
            the request died).
        hops: the server chain the request traversed.
    """

    completed: bool
    started_at: float
    finished_at: float
    hops: Tuple[str, ...]

    @property
    def response_time(self) -> float:
        """Client-perceived latency in seconds."""
        return self.finished_at - self.started_at


@dataclass
class _Connection:
    """A pooled connection: the concrete 5-tuple between two endpoints."""

    key: FlowKey
    last_used: float = 0.0


class MultiTierApp:
    """A multi-tier application bound to a simulated network.

    Args:
        name: application name (used in diagnostics only).
        tiers: front-to-back tier specifications.
        network: the substrate carrying the flows.
        farm: per-server behaviour registry (processing delays, faults).
        seed: RNG seed for balancing, reuse, and service-time sampling.
        services: optional service directory; when provided together with
            ``dns_lookup_prob``, requests are preceded by a DNS flow,
            creating the shared-service edges the grouping step must not
            merge on.
        flow_duration: body-streaming time of each hop's flow.
    """

    def __init__(
        self,
        name: str,
        tiers: Sequence[TierSpec],
        network: Network,
        farm: Optional[ServerFarm] = None,
        seed: int = 7,
        services: Optional[ServiceDirectory] = None,
        dns_lookup_prob: float = 0.0,
        flow_duration: float = 0.002,
    ) -> None:
        if not tiers:
            raise ValueError("an application needs at least one tier")
        self.name = name
        self.tiers = list(tiers)
        self.network = network
        self.farm = farm or ServerFarm()
        self.rng = random.Random(seed)
        self.services = services
        self.dns_lookup_prob = dns_lookup_prob
        self.flow_duration = flow_duration
        self._rr_index: Dict[int, int] = {}
        self._next_port: Dict[str, int] = {}
        self._pools: Dict[Tuple[str, str, int], List[_Connection]] = {}
        self.requests_started = 0
        self.requests_completed = 0

    # ------------------------------------------------------------------
    # Server selection and connection management
    # ------------------------------------------------------------------

    def _pick_server(self, tier_idx: int) -> str:
        tier = self.tiers[tier_idx]
        servers = [
            s
            for s in tier.servers
            if self.network.host_is_up(s) and not self.farm.behavior(s).crashed
        ]
        if not servers:
            # All down: requests will target the first configured server and
            # fail there, which is what a real client would experience.
            return tier.servers[0]
        if tier.balancer == "round_robin":
            idx = self._rr_index.get(tier_idx, 0)
            self._rr_index[tier_idx] = idx + 1
            return servers[idx % len(servers)]
        if tier.balancer == "skewed":
            # Non-linear decision logic: heavily favour the first server but
            # drift over time — the CI-unstable case of Section V-B1.
            weights = [2.0 ** (len(servers) - i) for i in range(len(servers))]
            return self.rng.choices(servers, weights=weights, k=1)[0]
        return self.rng.choice(servers)

    def _ephemeral_port(self, host: str) -> int:
        port = self._next_port.get(host, EPHEMERAL_BASE)
        self._next_port[host] = port + 1 if port < 60000 else EPHEMERAL_BASE
        return port

    def _connection(
        self, src: str, dst: str, dst_port: int, reuse_prob: float
    ) -> FlowKey:
        """Return the 5-tuple for one downstream hop, pooling connections."""
        pool = self._pools.setdefault((src, dst, dst_port), [])
        if pool and self.rng.random() < reuse_prob:
            conn = self.rng.choice(pool)
            conn.last_used = self.network.now
            return conn.key
        key = FlowKey(
            src=src,
            dst=dst,
            src_port=self._ephemeral_port(src),
            dst_port=dst_port,
        )
        pool.append(_Connection(key=key, last_used=self.network.now))
        if len(pool) > 32:
            pool.pop(0)
        return key

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------

    def handle_request(
        self,
        client_host: str,
        client_reuse: float = 0.0,
        on_done: Optional[Callable[[RequestOutcome], None]] = None,
    ) -> None:
        """Issue one client request at the current simulation time.

        The request cascades through every tier and the response returns to
        the client; ``on_done`` receives the end-to-end outcome.
        """
        self.requests_started += 1
        started = self.network.now
        hops: List[str] = [client_host]

        def fail() -> None:
            self._note_outcome(started, hops, completed=False)
            if on_done is not None:
                on_done(
                    RequestOutcome(
                        completed=False,
                        started_at=started,
                        finished_at=self.network.now,
                        hops=tuple(hops),
                    )
                )

        def begin_front_tier() -> None:
            front = self.tiers[0]
            server = self._pick_server(0)
            hops.append(server)
            key = self._connection(client_host, server, front.port, client_reuse)
            self._send(
                key,
                size=front.request_size,
                on_complete=lambda res: self._at_tier(
                    res, tier_idx=0, chain=[key], hops=hops, fail=fail, done=finish
                ),
            )

        def finish() -> None:
            self.requests_completed += 1
            self._note_outcome(started, hops, completed=True)
            if on_done is not None:
                on_done(
                    RequestOutcome(
                        completed=True,
                        started_at=started,
                        finished_at=self.network.now,
                        hops=tuple(hops),
                    )
                )

        if (
            self.services is not None
            and self.dns_lookup_prob > 0
            and self.rng.random() < self.dns_lookup_prob
        ):
            dns_key = FlowKey(
                src=client_host,
                dst=self.services.host("DNS"),
                src_port=self._ephemeral_port(client_host),
                dst_port=self.services.port("DNS"),
                proto="udp",
            )
            self._send(dns_key, size=120, on_complete=lambda _res: begin_front_tier())
        else:
            begin_front_tier()

    def _note_outcome(
        self, started: float, hops: List[str], completed: bool
    ) -> None:
        """Record the request's end-to-end latency into the telemetry plane.

        One level series per app (client-perceived RPC latency) plus one
        per front-tier server, so a slow or faulted server stands out from
        its healthy peers in the per-host tables.
        """
        telemetry = self.network.telemetry
        if not telemetry.enabled:
            return
        now = self.network.now
        latency = now - started
        telemetry.record("app", self.name, "rpc_latency", now, latency)
        telemetry.record("app", self.name, "requests", now, 1.0, counter=True)
        if not completed:
            telemetry.record("app", self.name, "failures", now, 1.0, counter=True)
        if len(hops) > 1:
            telemetry.record("host", hops[1], "rpc_latency", now, latency)

    def _send(
        self, key: FlowKey, size: int, on_complete: Callable[[FlowResult], None]
    ) -> None:
        self.network.send_flow(
            FlowRequest(key=key, size_bytes=size, duration=self.flow_duration),
            on_complete=on_complete,
        )

    def _at_tier(
        self,
        result: FlowResult,
        tier_idx: int,
        chain: List[FlowKey],
        hops: List[str],
        fail: Callable[[], None],
        done: Callable[[], None],
    ) -> None:
        """The request has arrived at tier ``tier_idx``'s server."""
        if not result.delivered:
            fail()
            return
        server = result.request.key.dst
        behavior = self.farm.behavior(server)
        if behavior.crashed or not self.network.host_is_up(server):
            fail()
            return
        service_time = behavior.service_time(self.rng)

        if tier_idx + 1 < len(self.tiers):

            def forward() -> None:
                nxt = self.tiers[tier_idx + 1]
                nxt_server = self._pick_server(tier_idx + 1)
                hops.append(nxt_server)
                key = self._connection(
                    server, nxt_server, nxt.port, self.tiers[tier_idx].reuse_prob
                )
                chain.append(key)
                self._send(
                    key,
                    size=nxt.request_size,
                    on_complete=lambda res: self._at_tier(
                        res, tier_idx + 1, chain, hops, fail, done
                    ),
                )

            self.network.sim.schedule_in(service_time, forward)
        else:

            def respond() -> None:
                self._respond(chain, len(chain) - 1, fail, done)

            self.network.sim.schedule_in(service_time, respond)

    def _respond(
        self,
        chain: List[FlowKey],
        hop_idx: int,
        fail: Callable[[], None],
        done: Callable[[], None],
    ) -> None:
        """Send the response for hop ``hop_idx`` back upstream."""
        if hop_idx < 0:
            done()
            return
        tier = self.tiers[min(hop_idx, len(self.tiers) - 1)]
        reverse = chain[hop_idx].reversed()

        def next_up(result: FlowResult) -> None:
            if not result.delivered:
                fail()
                return
            self._respond(chain, hop_idx - 1, fail, done)

        self._send(reverse, size=tier.response_size, on_complete=next_up)

    # ------------------------------------------------------------------
    # Introspection helpers used by experiments
    # ------------------------------------------------------------------

    def all_servers(self) -> List[str]:
        """Every server across the app's tiers, front to back."""
        servers: List[str] = []
        for tier in self.tiers:
            servers.extend(tier.servers)
        return servers

    def expected_edges(self) -> List[Tuple[str, str]]:
        """Server-to-server edges the connectivity graph should contain."""
        edges = []
        for a, b in zip(self.tiers, self.tiers[1:]):
            for sa in a.servers:
                for sb in b.servers:
                    edges.append((sa, sb))
        return edges
