"""Workload clients: drive requests into an application from an arrival process.

The paper's experiments drive each application with "standard http client
emulators ... with different workload" — Poisson request arrivals with
per-case means (the P(x, y) notation of Figure 10). A
:class:`WorkloadClient` binds one client host to one application and
schedules requests from any arrival process in
:mod:`repro.workload.arrivals`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.apps.multitier import MultiTierApp, RequestOutcome
from repro.workload.arrivals import ArrivalProcess


class WorkloadClient:
    """A request generator attached to one client host.

    Args:
        host: the client's host node.
        app: the target application.
        arrivals: the inter-arrival process (Poisson, ON/OFF, ...).
        reuse_prob: probability a request reuses the client's existing
            connection to the front tier.
    """

    def __init__(
        self,
        host: str,
        app: MultiTierApp,
        arrivals: ArrivalProcess,
        reuse_prob: float = 0.0,
    ) -> None:
        self.host = host
        self.app = app
        self.arrivals = arrivals
        self.reuse_prob = reuse_prob
        self.outcomes: List[RequestOutcome] = []
        self._stop_at: Optional[float] = None
        self._on_outcome: Optional[Callable[[RequestOutcome], None]] = None

    def run(
        self,
        start: float,
        stop: float,
        on_outcome: Optional[Callable[[RequestOutcome], None]] = None,
    ) -> None:
        """Schedule request generation over ``[start, stop)``.

        Outcomes are accumulated in :attr:`outcomes` and also forwarded to
        ``on_outcome`` when given.
        """
        if stop < start:
            raise ValueError(f"inverted window [{start}, {stop}]")
        self._stop_at = stop
        self._on_outcome = on_outcome
        sim = self.app.network.sim
        first = start + self.arrivals.next_interarrival()
        if first < stop:
            sim.schedule_at(first, self._fire)

    def _fire(self) -> None:
        sim = self.app.network.sim
        self.app.handle_request(
            self.host, client_reuse=self.reuse_prob, on_done=self._record
        )
        nxt = sim.now + self.arrivals.next_interarrival()
        if self._stop_at is not None and nxt < self._stop_at:
            sim.schedule_at(nxt, self._fire)

    def _record(self, outcome: RequestOutcome) -> None:
        self.outcomes.append(outcome)
        if self._on_outcome is not None:
            self._on_outcome(outcome)

    @property
    def completed(self) -> int:
        """Number of successfully completed requests so far."""
        return sum(1 for o in self.outcomes if o.completed)

    @property
    def failed(self) -> int:
        """Number of failed requests so far."""
        return sum(1 for o in self.outcomes if not o.completed)
