"""Special-purpose data center services: DNS, NFS, NTP, DHCP, metadata.

The paper's grouping step needs "domain knowledge to mark the special
purpose nodes inside the data center" (Section III-B): application groups
connected only through a shared DNS or NFS server are separate groups. The
:class:`ServiceDirectory` is that domain knowledge — it names the service
hosts, their well-known ports, and provides the label mapping used when
masking task-signature flows (``NFS:2049`` stays concrete while ordinary
hosts become ``#k`` placeholders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

#: Conventional well-known ports for the modeled services.
SERVICE_PORTS = {
    "DNS": 53,
    "NFS": 2049,
    "NTP": 123,
    "DHCP": 67,
    "METADATA": 80,
}


@dataclass
class ServiceDirectory:
    """The set of special-purpose service nodes in a data center.

    Attributes:
        hosts: mapping from service label (``"DNS"``, ``"NFS"``, ...) to
            the host node providing it.
    """

    hosts: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def standard(cls, prefix: str = "svc") -> "ServiceDirectory":
        """A directory with one host per standard service (``svc-dns``...)."""
        return cls(
            hosts={label: f"{prefix}-{label.lower()}" for label in SERVICE_PORTS}
        )

    def host(self, label: str) -> str:
        """The host providing service ``label``.

        Raises:
            KeyError: if the service is not in the directory.
        """
        return self.hosts[label]

    def port(self, label: str) -> int:
        """The well-known port of service ``label`` (default 0 if unknown)."""
        return SERVICE_PORTS.get(label, 0)

    def special_nodes(self) -> FrozenSet[str]:
        """The hosts FlowDiff's grouping must treat as shared services."""
        return frozenset(self.hosts.values())

    def service_names(self) -> Dict[str, str]:
        """Host-to-label mapping for task-signature IP masking."""
        return {host: label for label, host in self.hosts.items()}

    def label_of(self, host: str) -> Optional[str]:
        """The service label of ``host``, or None for ordinary hosts."""
        for label, h in self.hosts.items():
            if h == host:
                return label
        return None

    def register_into(self, topology, attach_to: str, latency: float = 0.0001) -> None:
        """Add every service host to ``topology``, attached to one switch.

        Convenience for experiment setup; services live on their own hosts
        off a given (usually core-adjacent) switch.
        """
        for host in self.hosts.values():
            if host not in topology.graph:
                topology.add_host(host)
                topology.add_link(host, attach_to, latency=latency)
