"""Data center application models.

The paper's testbed runs multi-tier web applications (Petstore, RuBiS,
RUBBoS, osCommerce, plus a custom app with controllable logic); this
package models them at flow level:

* :mod:`repro.apps.servers` -- per-server processing-delay behaviour with
  fault hooks (logging overhead, CPU contention, crash).
* :mod:`repro.apps.multitier` -- the multi-tier request pipeline: a client
  request enters the front tier and cascades tier by tier, each hop a
  network flow, with per-tier connection reuse and load balancing.
* :mod:`repro.apps.services` -- special-purpose data center services
  (DNS, NFS, NTP, DHCP) that multiple application groups share and that
  FlowDiff's grouping must not conflate.
* :mod:`repro.apps.client` -- workload clients driving requests from an
  arrival process.
"""

from repro.apps.servers import DelayModel, ServerBehavior, ServerFarm
from repro.apps.services import ServiceDirectory
from repro.apps.multitier import MultiTierApp, RequestOutcome, TierSpec
from repro.apps.client import WorkloadClient

__all__ = [
    "DelayModel",
    "ServerBehavior",
    "ServerFarm",
    "ServiceDirectory",
    "MultiTierApp",
    "RequestOutcome",
    "TierSpec",
    "WorkloadClient",
]
