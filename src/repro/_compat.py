"""Version-gated language features shared across the package.

The project floor is Python 3.9 (the CI matrix runs 3.9 and 3.12), so
features that arrived later are applied conditionally here rather than
sprinkled behind ``sys.version_info`` checks at every use site.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

#: Extra ``@dataclass(...)`` keywords for hot-path record classes.
#: ``slots=True`` (3.10+) removes the per-instance ``__dict__``, which
#: cuts both memory and attribute-access time for the per-message and
#: per-entry objects the simulator allocates millions of at scale. On
#: 3.9 the dict layout is kept — behavior is identical, only slower.
DATACLASS_KW: Dict[str, Any] = (
    {"slots": True} if sys.version_info >= (3, 10) else {}
)
