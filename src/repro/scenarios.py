"""Prebuilt experiment scenarios shared by examples, tests, and benchmarks.

The paper's evaluation revolves around a handful of recurring setups:

* the lab data center running one or more three-tier applications driven
  by Poisson clients (Sections V-A and V-B), including the five deployment
  cases of Table II;
* the 320-server simulation with N random three-tier apps under ON/OFF
  traffic (Section V-C).

This module packages those so an experiment is three lines: build the
scenario, optionally inject a fault, run and model the log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.client import WorkloadClient
from repro.apps.multitier import MultiTierApp, TierSpec
from repro.apps.servers import ServerFarm
from repro.apps.services import ServiceDirectory
from repro.faults.base import Fault
from repro.netsim.network import Network, NetworkConfig
from repro.netsim.topology import lab_testbed, paper_tree
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.telemetry import NOOP_TELEMETRY, TelemetryPlane
from repro.openflow.log import ControllerLog
from repro.workload.arrivals import PoissonProcess
from repro.workload.traffic import RandomThreeTierWorkload


@dataclass
class LabScenario:
    """A running lab-testbed deployment: network, apps, clients, services.

    Attributes:
        network: the simulated data center.
        farm: per-server behaviours (fault injection target).
        apps: the deployed applications by name.
        clients: the workload clients driving them.
        services: the shared-service directory (None when not deployed).
    """

    network: Network
    farm: ServerFarm
    apps: Dict[str, MultiTierApp] = field(default_factory=dict)
    clients: List[WorkloadClient] = field(default_factory=list)
    services: Optional[ServiceDirectory] = None

    def special_nodes(self) -> Tuple[str, ...]:
        """The service hosts FlowDiff's grouping must be told about."""
        if self.services is None:
            return ()
        return tuple(sorted(self.services.special_nodes()))

    def run(self, start: float = 0.5, stop: float = 40.0, drain: float = 15.0) -> ControllerLog:
        """Drive every client over ``[start, stop)`` and return the log.

        ``drain`` extra seconds let in-flight requests finish and flow
        entries expire so FlowRemoved counters land in the log.
        """
        for client in self.clients:
            client.run(start, stop)
        self.network.sim.run(until=stop + drain)
        return self.network.log

    def inject(self, fault: Fault, at: float = 0.0, until: Optional[float] = None) -> None:
        """Schedule a fault (relative to simulation time zero)."""
        fault.inject_at(self.network, at, self.farm, until=until)


@dataclass(frozen=True)
class AppPlan:
    """Declarative plan for one application in a lab scenario.

    Attributes:
        name: application name.
        tiers: ``(tier_name, servers, port)`` triples front to back.
        client_hosts: hosts running workload clients.
        request_rate: Poisson request rate per client (req/s).
        reuse: downstream connection-reuse probability — a single float for
            every tier (and the client), or a tuple with one value per tier
            (clients then never reuse), matching the paper's R(m, n)
            notation where reuse applies at specific servers.
        balancer: load-balancing policy for multi-server tiers.
    """

    name: str
    tiers: Tuple[Tuple[str, Tuple[str, ...], int], ...]
    client_hosts: Tuple[str, ...]
    request_rate: float = 10.0
    reuse: object = 0.0
    balancer: str = "round_robin"

    def tier_reuse(self, index: int) -> float:
        """The reuse probability applied at tier ``index``."""
        if isinstance(self.reuse, tuple):
            return self.reuse[index] if index < len(self.reuse) else 0.0
        return float(self.reuse)

    def client_reuse(self) -> float:
        """The client-side connection-reuse probability."""
        return 0.0 if isinstance(self.reuse, tuple) else float(self.reuse)


#: The five deployment cases of Table II (server numbers as in the paper).
TABLE2_CASES: Dict[int, Tuple[AppPlan, ...]] = {
    1: (
        AppPlan(
            "rubbis-a",
            (("web", ("S13",), 80), ("app", ("S4",), 8009), ("db", ("S14", "S15"), 3306)),
            ("S25",),
        ),
        AppPlan(
            "rubbis-b",
            (("web", ("S12",), 80), ("app", ("S10",), 8009), ("db", ("S20",), 3306)),
            ("S24",),
        ),
        AppPlan(
            "oscommerce",
            (("web", ("S7",), 80), ("app", ("S10",), 8010), ("db", ("S20",), 3307)),
            ("S23",),
        ),
    ),
    2: (
        AppPlan(
            "rubbis",
            (("web", ("S12",), 80), ("app", ("S4",), 8009), ("db", ("S14", "S15"), 3306)),
            ("S25",),
        ),
        AppPlan(
            "oscommerce",
            (("web", ("S7",), 80), ("app", ("S10",), 8010), ("db", ("S20",), 3307)),
            ("S23",),
        ),
    ),
    3: (
        AppPlan(
            "rubbis",
            (("web", ("S12",), 80), ("app", ("S4",), 8009), ("db", ("S14", "S15"), 3306)),
            ("S25",),
        ),
        AppPlan(
            "rubbos",
            (("web", ("S12",), 81), ("app", ("S10",), 8011), ("db", ("S20",), 3308)),
            ("S24",),
        ),
    ),
    4: (
        AppPlan(
            "rubbis",
            (("web", ("S12",), 80), ("app", ("S4",), 8009), ("db", ("S14", "S15"), 3306)),
            ("S25",),
        ),
        AppPlan(
            "petstore",
            (("web", ("S16",), 80), ("app", ("S25",), 8009), ("db", ("S19",), 3306)),
            ("S24",),
        ),
    ),
    5: (
        AppPlan(
            "custom-a",
            (("web", ("S1",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
            ("S22",),
        ),
        AppPlan(
            "custom-b",
            (("web", ("S2",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
            ("S21",),
        ),
        AppPlan(
            "custom-c",
            (("web", ("S5",), 80), ("app", ("S11", "S17"), 8009), ("db", ("S18", "S6"), 3306)),
            ("S23",),
        ),
    ),
}


def three_tier_lab(
    plans: Sequence[AppPlan] = (),
    seed: int = 3,
    app_delay: float = 0.06,
    web_delay: float = 0.01,
    db_delay: float = 0.005,
    with_services: bool = False,
    network_config: Optional[NetworkConfig] = None,
    response_sizes: Tuple[int, int, int] = (16000, 8000, 6000),
    metrics: MetricsRegistry = NOOP_REGISTRY,
    telemetry: TelemetryPlane = NOOP_TELEMETRY,
) -> LabScenario:
    """Build the lab testbed with the given application plans.

    Args:
        plans: applications to deploy (defaults to Table II case 5's first
            custom app when empty).
        seed: base RNG seed; apps and clients derive their own streams.
        app_delay: mean processing delay at middle-tier servers (the 60 ms
            ground truth of Figure 10).
        web_delay / db_delay: front/back tier processing delays.
        with_services: also deploy the shared DNS/NFS/NTP/DHCP services.
        network_config: optional substrate tuning.
        response_sizes: per-tier response sizes (web, app, db).
        metrics: observability registry threaded into the simulator,
            switches, and controller (defaults to the no-op registry).
        telemetry: data-plane telemetry plane threaded into the network,
            switches, controller, and apps (defaults to the no-op plane).
    """
    if not plans:
        plans = (
            AppPlan(
                "custom",
                (("web", ("S1",), 80), ("app", ("S3",), 8009), ("db", ("S8",), 3306)),
                ("S22",),
            ),
        )
    topo = lab_testbed()
    services = None
    if with_services:
        services = ServiceDirectory.standard()
        services.register_into(topo, attach_to="ofs1")
    network = Network(topo, config=network_config, metrics=metrics, telemetry=telemetry)
    farm = ServerFarm()
    scenario = LabScenario(network=network, farm=farm, services=services)

    tier_delays = {"web": web_delay, "app": app_delay, "db": db_delay}
    for i, plan in enumerate(plans):
        tier_specs = []
        for j, (tier_name, servers, port) in enumerate(plan.tiers):
            for server in servers:
                farm.set_delay(
                    server,
                    tier_delays.get(tier_name, app_delay),
                    tier_delays.get(tier_name, app_delay) / 12.0,
                )
            tier_specs.append(
                TierSpec(
                    name=tier_name,
                    servers=tuple(servers),
                    port=port,
                    reuse_prob=plan.tier_reuse(j),
                    balancer=plan.balancer,
                    response_size=response_sizes[min(j, len(response_sizes) - 1)],
                )
            )
        app = MultiTierApp(
            plan.name,
            tier_specs,
            network,
            farm,
            seed=seed + 101 * i,
            services=services,
            dns_lookup_prob=0.1 if with_services else 0.0,
        )
        scenario.apps[plan.name] = app
        for k, host in enumerate(plan.client_hosts):
            scenario.clients.append(
                WorkloadClient(
                    host,
                    app,
                    PoissonProcess(
                        plan.request_rate, random.Random(seed + 13 * i + k)
                    ),
                    reuse_prob=plan.client_reuse(),
                )
            )
    return scenario


def table2_case(case: int, seed: int = 3, **kwargs) -> LabScenario:
    """The lab deployment for one of Table II's five cases.

    Raises:
        KeyError: for a case number outside 1..5.
    """
    return three_tier_lab(TABLE2_CASES[case], seed=seed, **kwargs)


def scalability_sim(
    n_apps: int,
    seed: int = 11,
    reuse_prob: float = 0.6,
    racks: int = 16,
    servers_per_rack: int = 20,
    metrics: MetricsRegistry = NOOP_REGISTRY,
    telemetry: TelemetryPlane = NOOP_TELEMETRY,
) -> Tuple[Network, RandomThreeTierWorkload]:
    """The Section V-C setup: the 320-server tree plus N random apps.

    ECMP is enabled so flows spread across the tree's dual aggregation
    and core switches as they would in a production multi-rooted fabric.
    """
    topo = paper_tree(racks=racks, servers_per_rack=servers_per_rack)
    network = Network(
        topo,
        config=NetworkConfig(seed=seed, ecmp=True),
        metrics=metrics,
        telemetry=telemetry,
    )
    workload = RandomThreeTierWorkload(
        network, n_apps=n_apps, seed=seed, reuse_prob=reuse_prob
    )
    return network, workload
