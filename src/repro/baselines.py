"""Naive baseline detectors, for head-to-head comparisons with FlowDiff.

The paper argues that layer-local, volume-centric monitoring misses
problems whose signature is *structural* or *temporal* rather than
volumetric. To make that argument measurable, this module implements the
obvious straw-men an operator might deploy on the same controller log:

* :class:`RateThresholdDetector` — alarm when the global PacketIn rate
  deviates from the baseline by more than N sigmas (the classic NOC
  "traffic looks weird" monitor). Cheap, but it cannot localize and is
  blind to anything that leaves total volume unchanged.
* :class:`PerHostVolumeDetector` — alarm per host whose flow count
  changes by more than a relative threshold; localizes crude volume
  shifts, but cannot see delay problems at all and mislocalizes
  structural ones.

The ``benchmarks/test_baseline_comparison.py`` harness sweeps Table I's
faults over FlowDiff and these baselines and reports who detects and who
localizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import mean_std
from repro.analysis.timeseries import epoch_counts
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class BaselineVerdict:
    """What a baseline detector concluded about a log.

    Attributes:
        alarmed: whether the detector raised an alarm.
        suspects: hosts implicated, best first (empty when the detector
            cannot localize).
        detail: human-readable reasoning.
    """

    alarmed: bool
    suspects: Tuple[str, ...]
    detail: str


class RateThresholdDetector:
    """Global PacketIn-rate z-score alarm (no localization).

    Args:
        sigmas: alarm when the current mean rate deviates from the
            baseline mean by more than this many baseline standard
            deviations.
        relative: alternatively alarm when the mean rate changes by more
            than this fraction of the baseline mean (robust to bursty
            baselines whose standard deviation is large).
        epoch: rate-estimation bucket width in seconds.
    """

    name = "rate_threshold"

    def __init__(
        self, sigmas: float = 3.0, relative: float = 0.4, epoch: float = 1.0
    ) -> None:
        self.sigmas = sigmas
        self.relative = relative
        self.epoch = epoch
        self._baseline: Optional[Tuple[float, float]] = None

    def _rates(self, log: ControllerLog) -> List[float]:
        t0, t1 = log.time_span
        if t1 <= t0:
            return []
        times = [p.timestamp for p in log.packet_ins()]
        return [
            c / self.epoch for c in epoch_counts(times, t0, t1, self.epoch)
        ]

    def fit(self, baseline_log: ControllerLog) -> None:
        """Learn the healthy rate profile."""
        self._baseline = mean_std(self._rates(baseline_log))

    def check(self, log: ControllerLog) -> BaselineVerdict:
        """Compare a log's rate against the fitted baseline.

        Raises:
            RuntimeError: when :meth:`fit` has not run.
        """
        if self._baseline is None:
            raise RuntimeError("fit() must run before check()")
        base_mean, base_std = self._baseline
        cur_mean, _ = mean_std(self._rates(log))
        denom = max(base_std, base_mean * 0.05, 1e-9)
        score = abs(cur_mean - base_mean) / denom
        rel = abs(cur_mean - base_mean) / max(base_mean, 1e-9)
        alarmed = score > self.sigmas or rel > self.relative
        return BaselineVerdict(
            alarmed=alarmed,
            suspects=(),
            detail=(
                f"PacketIn rate {cur_mean:.1f}/s vs baseline "
                f"{base_mean:.1f}/s ({score:.1f} sigma, {rel * 100:.0f}%)"
            ),
        )


class PerHostVolumeDetector:
    """Per-host flow-count change alarm (crude localization).

    Args:
        relative_threshold: alarm on hosts whose flow count changed by
            more than this fraction of the larger of the two counts.
        min_flows: ignore hosts with fewer baseline flows than this
            (their relative change is noise).
    """

    name = "per_host_volume"

    def __init__(self, relative_threshold: float = 0.5, min_flows: int = 10) -> None:
        self.relative_threshold = relative_threshold
        self.min_flows = min_flows
        self._baseline: Optional[Dict[str, int]] = None
        self._baseline_span: float = 1.0

    @staticmethod
    def _host_counts(log: ControllerLog) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for pin in log.packet_ins():
            for host in (pin.flow.src, pin.flow.dst):
                counts[host] = counts.get(host, 0) + 1
        return counts

    def fit(self, baseline_log: ControllerLog) -> None:
        """Learn per-host flow counts (normalized per second)."""
        self._baseline = self._host_counts(baseline_log)
        t0, t1 = baseline_log.time_span
        self._baseline_span = max(t1 - t0, 1e-9)

    def check(self, log: ControllerLog) -> BaselineVerdict:
        """Flag hosts whose normalized flow count moved beyond threshold.

        Raises:
            RuntimeError: when :meth:`fit` has not run.
        """
        if self._baseline is None:
            raise RuntimeError("fit() must run before check()")
        t0, t1 = log.time_span
        span = max(t1 - t0, 1e-9)
        current = self._host_counts(log)
        flagged: List[Tuple[str, float]] = []
        for host in set(self._baseline) | set(current):
            base = self._baseline.get(host, 0) / self._baseline_span
            cur = current.get(host, 0) / span
            if max(self._baseline.get(host, 0), current.get(host, 0)) < self.min_flows:
                continue
            denom = max(base, cur, 1e-9)
            rel = abs(cur - base) / denom
            if rel > self.relative_threshold:
                flagged.append((host, rel))
        flagged.sort(key=lambda kv: (-kv[1], kv[0]))
        return BaselineVerdict(
            alarmed=bool(flagged),
            suspects=tuple(host for host, _ in flagged),
            detail=f"{len(flagged)} host(s) over volume threshold",
        )
