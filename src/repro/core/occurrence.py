"""The occurrence-gap boundary rule, in one place.

A 5-tuple can recur (connection reuse, periodic jobs); reports of the
same flow key separated by more than ``occurrence_gap`` seconds belong to
distinct occurrences. Signature extraction (:mod:`repro.core.events`) and
the flight recorder's heuristic trace grouping
(:mod:`repro.obs.flightrec`) both consume this predicate, so the two can
never disagree on whether a boundary-case report splits.

This module is intentionally dependency-free: it sits below both
``repro.core`` and ``repro.obs`` in the import graph.
"""

from __future__ import annotations


def splits_occurrence(previous_ts: float, ts: float, occurrence_gap: float) -> bool:
    """True when a report at ``ts`` starts a *new* occurrence of a flow
    whose previous report was at ``previous_ts``.

    The boundary is strictly greater-than: a report at exactly
    ``previous_ts + occurrence_gap`` still belongs to the same
    occurrence. No epsilon is applied — both callers feed raw float
    timestamps, so applying the same exact comparison on both sides is
    what keeps them consistent.
    """
    return ts - previous_ts > occurrence_gap
