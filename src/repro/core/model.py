"""The behavior model: everything FlowDiff learns from one log window."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.groups import ApplicationGroup
from repro.core.signatures.application import ApplicationSignature
from repro.core.signatures.base import SignatureKind
from repro.core.signatures.infrastructure import InfrastructureSignature


@dataclass(frozen=True)
class BehaviorModel:
    """The modeled behavior of the data center over one log window.

    Attributes:
        app_signatures: per-group application signature bundles, keyed by
            the group's deterministic key.
        infrastructure: the data-center-wide infrastructure bundle.
        window: the ``[t_start, t_end)`` interval modeled.
        stability: per (group key, signature kind), whether the signature
            was stable across sub-intervals of the window; unstable
            signatures are excluded from problem detection "to avoid false
            positives in raising debugging flags" (Section III-B). An
            absent entry means stability was not assessed (treated as
            stable).
    """

    app_signatures: Dict[str, ApplicationSignature]
    infrastructure: InfrastructureSignature
    window: Tuple[float, float]
    stability: Dict[Tuple[str, SignatureKind], bool] = field(default_factory=dict)

    def groups(self) -> List[ApplicationGroup]:
        """The application groups, in key order."""
        return [
            self.app_signatures[k].group for k in sorted(self.app_signatures)
        ]

    def is_stable(self, group_key: str, kind: SignatureKind) -> bool:
        """Whether a signature may participate in diffing."""
        return self.stability.get((group_key, kind), True)

    @property
    def duration(self) -> float:
        """Length of the modeled window in seconds."""
        return self.window[1] - self.window[0]
