"""Behavior-model persistence: store baselines, diff against them later.

The paper's workflow keeps a "previously computed, stable, and correct"
model around to diff new behavior against (Section I). Recomputing it from
the raw log every time is wasteful and, worse, requires keeping the raw
log; this module serializes a :class:`~repro.core.model.BehaviorModel` to
JSON so the *model* is the retained artifact.

Raw delay/byte samples are not persisted — only the derived signature
content diffing needs (edges, counts, peaks, first-pairing means/SEs,
moments). A reloaded model therefore diffs identically but cannot re-plot
sample-level CDFs; keep the log too if you need those.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Tuple

from repro.core.groups import ApplicationGroup
from repro.core.model import BehaviorModel
from repro.core.signatures.application import ApplicationSignature
from repro.core.signatures.base import SignatureKind
from repro.core.signatures.connectivity import ConnectivityGraph
from repro.core.signatures.correlation import PartialCorrelation
from repro.core.signatures.delay import DelayDistribution
from repro.core.signatures.flowstats import FlowStats, RateSummary
from repro.core.signatures.infrastructure import (
    ControllerResponseTime,
    InfrastructureSignature,
    InterSwitchLatency,
    PhysicalTopology,
)
from repro.core.signatures.interaction import ComponentInteraction

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _edge(e: Tuple[str, str]) -> List[str]:
    return [e[0], e[1]]


def _pair(p) -> List[List[str]]:
    return [_edge(p[0]), _edge(p[1])]


def _encode_signature(sig: ApplicationSignature) -> Dict[str, Any]:
    return {
        "group": {
            "members": sorted(sig.group.members),
            "services": sorted(sig.group.services),
        },
        "cg": {
            "edges": [_edge(e) for e in sorted(sig.cg.edges)],
            "first_seen": [[_edge(e), t] for e, t in sig.cg.first_seen],
        },
        "fs": {
            "flow_count": sig.fs.flow_count,
            "byte_mean": sig.fs.byte_mean,
            "byte_std": sig.fs.byte_std,
            "duration_mean": sig.fs.duration_mean,
            "duration_std": sig.fs.duration_std,
            "packet_mean": sig.fs.packet_mean,
            "flows_per_sec": [
                sig.fs.flows_per_sec.maximum,
                sig.fs.flows_per_sec.minimum,
                sig.fs.flows_per_sec.average,
            ],
            "bytes_per_sec": [
                sig.fs.bytes_per_sec.maximum,
                sig.fs.bytes_per_sec.minimum,
                sig.fs.bytes_per_sec.average,
            ],
            "per_edge_bytes": [[_edge(e), b] for e, b in sig.fs.per_edge_bytes],
        },
        "ci": {
            "counts": [
                [node, [[list(k), v] for k, v in items]]
                for node, items in sig.ci.counts
            ]
        },
        "dd": {
            "bin_width": sig.dd.bin_width,
            # Persist summaries, not raw samples: peaks plus the
            # first-pairing mean/SE/count per pair.
            "pairs": [
                {
                    "pair": _pair(pair),
                    "peaks": [list(p) for p in dict(sig.dd.peaks).get(pair, ())],
                    "mean": sig.dd.mean_delay(pair),
                    "stderr": _finite(sig.dd.mean_standard_error(pair)),
                    "n": len(sig.dd.samples_for(pair)),
                    "n_first": len(sig.dd.first_samples_for(pair)),
                }
                for pair in sig.dd.pairs()
            ],
        },
        "pc": {
            "epoch": sig.pc.epoch,
            "correlations": [[_pair(p), r] for p, r in sig.pc.correlations],
        },
    }


def _finite(value: float) -> float:
    return value if value != float("inf") else -1.0


def _encode_infrastructure(infra: InfrastructureSignature) -> Dict[str, Any]:
    return {
        "pt": {
            "links": [_edge(l) for l in sorted(infra.pt.switch_links)],
            "attachment": [list(a) for a in infra.pt.host_attachment],
            "observations": [list(o) for o in infra.pt.switch_observations],
        },
        "isl": {
            "stats": [
                [_edge(pair), [mean, std, n]]
                for pair, (mean, std, n) in infra.isl.stats
            ]
        },
        "crt": {
            "mean": infra.crt.mean,
            "std": infra.crt.std,
            "count": infra.crt.count,
        },
        "port_down_events": [list(e) for e in infra.port_down_events],
    }


def model_to_dict(model: BehaviorModel) -> Dict[str, Any]:
    """Encode a behavior model as a JSON-able dict."""
    return {
        "version": FORMAT_VERSION,
        "window": list(model.window),
        "stability": [
            [key, kind.value, verdict]
            for (key, kind), verdict in sorted(model.stability.items())
        ],
        "app_signatures": {
            key: _encode_signature(sig)
            for key, sig in model.app_signatures.items()
        },
        "infrastructure": _encode_infrastructure(model.infrastructure),
    }


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


class _PersistedDelayDistribution(DelayDistribution):
    """A DelayDistribution reloaded from summaries (no raw samples).

    Overrides the sample-derived accessors to return the persisted
    mean/SE; ``samples``/``first_samples`` hold placeholder tuples sized
    to the original sample counts so length-based guards (e.g. the
    structure-collapse detector's minimum-sample check) behave the same.
    """

    def __init__(self, pairs: List[Dict[str, Any]], bin_width: float) -> None:
        samples = []
        first_samples = []
        peaks = []
        self._means = {}
        self._stderrs = {}
        for entry in pairs:
            pair = _pair_from(entry["pair"])
            samples.append((pair, (0.0,) * entry["n"]))
            first_samples.append((pair, (0.0,) * entry["n_first"]))
            peaks.append((pair, tuple(tuple(p) for p in entry["peaks"])))
            self._means[pair] = entry["mean"]
            stderr = entry["stderr"]
            self._stderrs[pair] = float("inf") if stderr < 0 else stderr
        object.__setattr__(self, "samples", tuple(samples))
        object.__setattr__(self, "first_samples", tuple(first_samples))
        object.__setattr__(self, "peaks", tuple(peaks))
        object.__setattr__(self, "bin_width", bin_width)

    def mean_delay(self, pair):  # noqa: D102 - inherited semantics
        return self._means.get(pair, -1.0)

    def mean_standard_error(self, pair):  # noqa: D102 - inherited semantics
        return self._stderrs.get(pair, float("inf"))

    def delay_cdf(self, pair):  # noqa: D102 - inherited semantics
        raise NotImplementedError(
            "raw delay samples are not persisted; rebuild from the log"
        )


def _pair_from(data: List[List[str]]):
    return (tuple(data[0]), tuple(data[1]))


def _decode_signature(data: Dict[str, Any]) -> ApplicationSignature:
    group = ApplicationGroup(
        members=frozenset(data["group"]["members"]),
        services=frozenset(data["group"]["services"]),
    )
    cg = ConnectivityGraph(
        edges=frozenset(tuple(e) for e in data["cg"]["edges"]),
        first_seen=tuple((tuple(e), t) for e, t in data["cg"]["first_seen"]),
    )
    fs_data = data["fs"]
    fs = FlowStats(
        flow_count=fs_data["flow_count"],
        byte_mean=fs_data["byte_mean"],
        byte_std=fs_data["byte_std"],
        duration_mean=fs_data["duration_mean"],
        duration_std=fs_data["duration_std"],
        packet_mean=fs_data["packet_mean"],
        flows_per_sec=RateSummary(*fs_data["flows_per_sec"]),
        bytes_per_sec=RateSummary(*fs_data["bytes_per_sec"]),
        per_edge_bytes=tuple(
            (tuple(e), b) for e, b in fs_data["per_edge_bytes"]
        ),
        byte_samples=(),
    )
    ci = ComponentInteraction(
        counts=tuple(
            (node, tuple((tuple(k), v) for k, v in items))
            for node, items in data["ci"]["counts"]
        )
    )
    dd = _PersistedDelayDistribution(
        data["dd"]["pairs"], data["dd"]["bin_width"]
    )
    pc = PartialCorrelation(
        correlations=tuple(
            (_pair_from(p), r) for p, r in data["pc"]["correlations"]
        ),
        epoch=data["pc"]["epoch"],
    )
    return ApplicationSignature(group=group, cg=cg, fs=fs, ci=ci, dd=dd, pc=pc)


def _decode_infrastructure(data: Dict[str, Any]) -> InfrastructureSignature:
    return InfrastructureSignature(
        pt=PhysicalTopology(
            switch_links=frozenset(tuple(l) for l in data["pt"]["links"]),
            host_attachment=tuple(tuple(a) for a in data["pt"]["attachment"]),
            switch_observations=tuple(
                (o[0], int(o[1])) for o in data["pt"].get("observations", [])
            ),
        ),
        isl=InterSwitchLatency(
            stats=tuple(
                (tuple(pair), tuple(stats)) for pair, stats in data["isl"]["stats"]
            )
        ),
        crt=ControllerResponseTime(
            mean=data["crt"]["mean"],
            std=data["crt"]["std"],
            count=data["crt"]["count"],
        ),
        port_down_events=tuple(
            (float(t), str(d), int(p))
            for t, d, p in data.get("port_down_events", [])
        ),
    )


def model_from_dict(data: Dict[str, Any]) -> BehaviorModel:
    """Decode a behavior model.

    Raises:
        ValueError: on an unsupported format version.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return BehaviorModel(
        app_signatures={
            key: _decode_signature(sig)
            for key, sig in data["app_signatures"].items()
        },
        infrastructure=_decode_infrastructure(data["infrastructure"]),
        window=tuple(data["window"]),
        stability={
            (key, SignatureKind(kind)): verdict
            for key, kind, verdict in data.get("stability", [])
        },
    )


def save_model(model: BehaviorModel, path: str) -> None:
    """Write a behavior model to a JSON file."""
    with open(path, "w") as fh:
        json.dump(model_to_dict(model), fh)


def load_model(path: str) -> BehaviorModel:
    """Read a behavior model from a JSON file."""
    with open(path) as fh:
        return model_from_dict(json.load(fh))
