"""Behavior-model persistence: store baselines, diff against them later.

The paper's workflow keeps a "previously computed, stable, and correct"
model around to diff new behavior against (Section I). Recomputing it from
the raw log every time is wasteful and, worse, requires keeping the raw
log; this module serializes a :class:`~repro.core.model.BehaviorModel` to
JSON so the *model* is the retained artifact.

Raw delay/byte samples are not persisted — only the derived signature
content diffing needs (edges, counts, peaks, first-pairing means/SEs,
moments). A reloaded model therefore diffs identically but cannot re-plot
sample-level CDFs; keep the log too if you need those.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.core.model import BehaviorModel
from repro.core.signatures.application import ApplicationSignature
from repro.core.signatures.base import SignatureKind
from repro.core.signatures.infrastructure import InfrastructureSignature

if TYPE_CHECKING:
    from repro.core.flowdiff import FlowDiffConfig
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Tracer
    from repro.openflow.log import ControllerLog

FORMAT_VERSION = 1

#: Version of the streaming-service checkpoint envelope (the per-tenant
#: resume state written by :mod:`repro.service`). Independent of the
#: model :data:`FORMAT_VERSION`: the envelope only *references* models by
#: content digest, so either format can evolve without invalidating the
#: other's artifacts.
CHECKPOINT_FORMAT_VERSION = 1


class ModelLoadError(ValueError):
    """A persisted model could not be decoded.

    Raised (instead of the opaque ``KeyError``/``TypeError`` the raw
    decoders would surface) when a model file is truncated, corrupt, or
    written by an incompatible format version. ``path`` names the
    offending file when the model came from disk.
    """

    def __init__(self, reason: str, path: Optional[str] = None) -> None:
        self.reason = reason
        self.path = path
        where = f"{path}: " if path else ""
        super().__init__(f"{where}{reason}")


# ----------------------------------------------------------------------
# Encoding / decoding
#
# The per-signature JSON formats are owned by the signature classes
# themselves (``to_dict``/``from_dict`` — the contract every
# :class:`~repro.core.signatures.base.Signature` subclass implements);
# this module only frames them with version/window/stability metadata.
# ----------------------------------------------------------------------


def model_to_dict(model: BehaviorModel) -> Dict[str, Any]:
    """Encode a behavior model as a JSON-able dict."""
    return {
        "version": FORMAT_VERSION,
        "window": list(model.window),
        "stability": [
            [key, kind.value, verdict]
            for (key, kind), verdict in sorted(model.stability.items())
        ],
        "app_signatures": {
            key: sig.to_dict() for key, sig in model.app_signatures.items()
        },
        "infrastructure": model.infrastructure.to_dict(),
    }


def model_from_dict(data: Dict[str, Any], source: Optional[str] = None) -> BehaviorModel:
    """Decode a behavior model.

    The payload is validated up front — wrong top-level shape, missing
    sections, or a version skew raise a :class:`ModelLoadError` naming
    ``source`` (the file the dict came from, when known) instead of an
    opaque ``KeyError``/``TypeError`` from deep inside the decoders.

    Raises:
        ModelLoadError: on any malformed or version-skewed payload.
    """
    if not isinstance(data, dict):
        raise ModelLoadError(
            f"model payload must be a JSON object, got {type(data).__name__}",
            source,
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ModelLoadError(
            f"unsupported model format version {version!r} "
            f"(expected {FORMAT_VERSION})",
            source,
        )
    for section, kind in (
        ("window", list),
        ("app_signatures", dict),
        ("infrastructure", dict),
    ):
        if section not in data:
            raise ModelLoadError(f"missing required section {section!r}", source)
        if not isinstance(data[section], kind):
            raise ModelLoadError(
                f"section {section!r} must be a {kind.__name__}, "
                f"got {type(data[section]).__name__}",
                source,
            )
    if len(data["window"]) != 2:
        raise ModelLoadError(
            f"window must have 2 bounds, got {len(data['window'])}", source
        )
    try:
        return BehaviorModel(
            app_signatures={
                key: ApplicationSignature.from_dict(sig)
                for key, sig in data["app_signatures"].items()
            },
            infrastructure=InfrastructureSignature.from_dict(
                data["infrastructure"]
            ),
            window=tuple(data["window"]),
            stability={
                (key, SignatureKind(kind)): verdict
                for key, kind, verdict in data.get("stability", [])
            },
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        if isinstance(exc, ModelLoadError):
            raise
        raise ModelLoadError(
            f"truncated or corrupt model payload ({type(exc).__name__}: {exc})",
            source,
        ) from exc


def save_model(model: BehaviorModel, path: str) -> None:
    """Write a behavior model to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(model_to_dict(model), fh)


def load_model(path: str) -> BehaviorModel:
    """Read a behavior model from a JSON file.

    Raises:
        ModelLoadError: when the file is not valid JSON or does not
            decode to a supported model payload; the error names ``path``.
        OSError: when the file cannot be read at all.
    """
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ModelLoadError(f"invalid JSON ({exc})", path) from exc
    return model_from_dict(data, source=path)


# ----------------------------------------------------------------------
# Content-addressed model cache
# ----------------------------------------------------------------------


def log_fingerprint(log: "ControllerLog") -> str:
    """SHA-256 fingerprint of a log's content.

    Logs loaded via :func:`~repro.openflow.serialize.read_log` carry the
    capture file's byte hash; for in-memory logs the canonical JSON
    encoding of every message is hashed (and cached on the log until it
    grows). The two schemes differ for equal logs — fingerprints are
    only compared with fingerprints produced the same way, which holds
    within any one workflow.
    """
    cached = log.cached_content_digest()
    if cached is not None:
        return cached
    from repro.openflow.serialize import message_to_json

    digest = hashlib.sha256()
    for msg in log:
        digest.update(
            json.dumps(message_to_json(msg), sort_keys=True).encode("utf-8")
        )
        digest.update(b"\n")
    out = digest.hexdigest()
    log.set_content_digest(out)
    return out


def config_fingerprint(config: "FlowDiffConfig") -> str:
    """SHA-256 fingerprint of a config's *model-relevant* fields.

    Only knobs that change the produced model participate: the signature
    construction parameters, the stability thresholds, and the interval
    count. Execution knobs (``jobs``, ``cache_dir``) and diff-phase knobs
    (compare thresholds, task explanations) are deliberately excluded —
    changing them must not invalidate cached models.
    """
    sig = config.signature
    st = config.stability
    payload = {
        "signature": {
            "epoch": sig.epoch,
            "dd_window": sig.dd_window,
            "dd_bin_width": sig.dd_bin_width,
            "occurrence_gap": sig.occurrence_gap,
            "special_nodes": sorted(sig.special_nodes),
        },
        "stability": {
            "cg": st.cg,
            "fs": st.fs,
            "ci": st.ci,
            "dd": st.dd,
            "pc": st.pc,
        },
        "stability_parts": config.stability_parts,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def model_cache_key(
    log: "ControllerLog",
    config: "FlowDiffConfig",
    window: Tuple[float, float],
    assess: bool,
) -> str:
    """The content-addressed cache key for one modeling request.

    Combines the log content fingerprint, the model-relevant config
    fingerprint, the requested window and assessment flag, and
    :data:`FORMAT_VERSION` (a format bump invalidates every cached
    model). Any change to any component yields a different key — stale
    entries are never *read*, only left behind.
    """
    payload = "\n".join(
        (
            f"format:{FORMAT_VERSION}",
            f"log:{log_fingerprint(log)}",
            f"config:{config_fingerprint(config)}",
            f"window:{window[0]!r},{window[1]!r}",
            f"assess:{assess}",
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def model_digest(model: BehaviorModel) -> str:
    """SHA-256 content digest of a model's canonical JSON encoding.

    Two models that :func:`model_to_dict` identically share a digest, so
    storing by digest dedups naturally (a restart that re-learns the same
    baseline writes the same object).
    """
    return hashlib.sha256(
        json.dumps(model_to_dict(model), sort_keys=True).encode("utf-8")
    ).hexdigest()


def run_fingerprint(
    log: "ControllerLog", config: "FlowDiffConfig", seed: Optional[int] = None
) -> str:
    """The run-ledger identity of one (capture, config, seed) workload.

    Two pipeline runs over the same log bytes with the same
    model-relevant config and seed share this id, which is what lets the
    ledger (:mod:`repro.obs.ledger`) line their records up commit to
    commit. Sixteen hex chars: short enough for CLI output, collision
    room far beyond any ledger's record count.
    """
    payload = "\n".join(
        (
            f"log:{log_fingerprint(log)}",
            f"config:{config_fingerprint(config)}",
            f"seed:{seed!r}",
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class _CacheEntry:
    """One (log, config, window, assess) slot of a :class:`ModelCache`."""

    def __init__(self, cache: "ModelCache", key: str) -> None:
        self._cache = cache
        self.key = key
        self.path = os.path.join(cache.root, f"{key}.model.json")

    def load(self) -> Optional[BehaviorModel]:
        """The cached model, or None on a miss (including corrupt files)."""
        cache = self._cache
        with cache.tracer.span("model-cache-load"):
            if not os.path.exists(self.path):
                cache._m_miss.inc()
                return None
            try:
                model = load_model(self.path)
            except (ModelLoadError, OSError) as exc:
                warnings.warn(
                    f"ignoring unreadable cached model {self.path}: {exc}",
                    stacklevel=2,
                )
                cache._m_miss.inc()
                return None
        cache._m_hit.inc()
        return model

    def store(self, model: BehaviorModel) -> None:
        """Persist a model under this key (atomic write-then-rename)."""
        cache = self._cache
        with cache.tracer.span("model-cache-store"):
            os.makedirs(cache.root, exist_ok=True)
            tmp = f"{self.path}.tmp.{os.getpid()}"
            try:
                save_model(model, tmp)
                os.replace(tmp, self.path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        cache._m_store.inc()


class ModelCache:
    """Content-addressed on-disk cache of behavior models.

    Keyed by :func:`model_cache_key`, so ``repro diff`` against an
    unchanged baseline skips remodeling entirely while any change to the
    log bytes, the model-relevant config, the window, or the persistence
    format transparently misses. Cached models round-trip through
    :func:`model_to_dict` identically to freshly built ones (delay
    distributions carry persisted summaries rather than raw samples, as
    with any reloaded model).
    """

    def __init__(
        self,
        root: str,
        metrics: Optional["MetricsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        from repro.obs.metrics import NOOP_REGISTRY
        from repro.obs.tracing import NOOP_TRACER

        self.root = root
        self.metrics = metrics if metrics is not None else NOOP_REGISTRY
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._m_hit = self.metrics.counter("flowdiff_cache_total", status="hit")
        self._m_miss = self.metrics.counter("flowdiff_cache_total", status="miss")
        self._m_store = self.metrics.counter("flowdiff_cache_total", status="store")

    def entry(
        self,
        log: "ControllerLog",
        config: "FlowDiffConfig",
        window: Tuple[float, float],
        assess: bool = True,
    ) -> _CacheEntry:
        """The cache slot for one modeling request."""
        return _CacheEntry(self, model_cache_key(log, config, window, assess))

    # -- content-addressed objects (checkpoint references) --------------

    def store_object(self, model: BehaviorModel) -> str:
        """Store a model under its own content digest; return the digest.

        The streaming service checkpoints reference baseline models this
        way: the envelope carries only the digest, the bytes live here,
        and re-storing an identical model is a no-op overwrite of the
        same object.
        """
        digest = model_digest(model)
        _CacheEntry(self, digest).store(model)
        return digest

    def load_object(self, digest: str) -> Optional[BehaviorModel]:
        """The model stored under ``digest``, or None when absent/corrupt."""
        return _CacheEntry(self, digest).load()


# ----------------------------------------------------------------------
# Streaming-service checkpoints
# ----------------------------------------------------------------------


def save_checkpoint(path: str, state: Dict[str, Any]) -> None:
    """Atomically write a checkpoint envelope (version frame added here).

    ``state`` is the caller's resume payload — for the streaming service,
    the tenant cursor, window geometry, counters, and the baseline model
    digest (the model bytes themselves live in the
    :class:`ModelCache` via :meth:`ModelCache.store_object`). The write
    is write-then-rename like the cache's, so a crash mid-write leaves
    the previous checkpoint intact.
    """
    payload = dict(state)
    payload["version"] = CHECKPOINT_FORMAT_VERSION
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read a checkpoint envelope written by :func:`save_checkpoint`.

    Raises:
        ModelLoadError: when the file is not valid JSON, not an object,
            or carries an unsupported envelope version.
        OSError: when the file cannot be read at all.
    """
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ModelLoadError(f"invalid JSON ({exc})", path) from exc
    if not isinstance(data, dict):
        raise ModelLoadError(
            f"checkpoint payload must be a JSON object, "
            f"got {type(data).__name__}",
            path,
        )
    version = data.get("version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ModelLoadError(
            f"unsupported checkpoint format version {version!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})",
            path,
        )
    return data
