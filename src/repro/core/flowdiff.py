"""The FlowDiff facade: model a log, diff two models, diagnose.

This is the library's primary entry point, mirroring Figure 1::

    fd = FlowDiff(FlowDiffConfig(special_nodes=("svc-dns", "svc-nfs")))
    baseline = fd.model(log_l1)          # known-good behavior
    current = fd.model(log_l2)           # behavior when a problem is seen
    report = fd.diff(baseline, current, task_library=library,
                     current_log=log_l2)
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.diff.compare import CompareThresholds, compare_models
from repro.core.diff.dependency import DependencyMatrix, classify_problems
from repro.core.diff.ranking import rank_components
from repro.core.diff.report import DiagnosisReport
from repro.core.diff.validate import (
    DEFAULT_EXPLANATIONS,
    TaskExplanation,
    validate_changes,
)
from repro.core.events import extract_flow_records
from repro.core.model import BehaviorModel
from repro.core.signatures.application import (
    SignatureConfig,
    build_application_signatures,
)
from repro.core.signatures.infrastructure import build_infrastructure_signature
from repro.core.stability import StabilityThresholds, assess_stability
from repro.core.tasks.library import TaskLibrary
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class FlowDiffConfig:
    """All tunables of the modeling and diagnosing phases.

    Attributes:
        signature: application-signature construction knobs (epochs, DD
            window/bins, occurrence gap, special nodes).
        thresholds: significance thresholds for the diff comparators.
        stability: across-interval stability thresholds.
        stability_parts: number of sub-intervals for stability assessment;
            0 disables assessment (all signatures treated stable).
        explanations: task-type -> explainable-change-kind rules used
            during validation.
        jobs: modeling parallelism. 1 (the default) runs the serial
            pipeline; any other value routes :meth:`FlowDiff.model`
            through the sharded pipeline in :mod:`repro.core.parallel`
            (0 or negative means "one worker per CPU"). The parallel
            path produces a model identical to the serial one and falls
            back to serial when a log cannot be sharded exactly.
        cache_dir: when set, models are cached on disk keyed by log
            content, model-relevant config, and format version, so
            re-modeling an unchanged baseline is skipped.
    """

    signature: SignatureConfig = field(default_factory=SignatureConfig)
    thresholds: CompareThresholds = field(default_factory=CompareThresholds)
    stability: StabilityThresholds = field(default_factory=StabilityThresholds)
    stability_parts: int = 3
    explanations: Tuple[TaskExplanation, ...] = DEFAULT_EXPLANATIONS
    jobs: int = 1
    cache_dir: Optional[str] = None

    @classmethod
    def with_special_nodes(cls, special_nodes: Sequence[str]) -> "FlowDiffConfig":
        """Convenience constructor setting only the service-node list."""
        return cls(signature=SignatureConfig(special_nodes=tuple(special_nodes)))


class FlowDiff:
    """The diagnosis framework: modeling plus diffing (Figure 1).

    Args:
        config: modeling/diffing tunables.
        tracer: when given, every pipeline phase (extract, app-signature,
            infra-signature, stability, compare, validate, rank, ...) is
            recorded as a nested span — this is what ``--profile`` prints,
            what the run ledger records, and where a span-scoped
            :class:`~repro.obs.profiler.SpanProfiler` hook attributes
            function-level time.
        metrics: when given, per-call counters and latency histograms are
            recorded. Both default to shared no-op objects so the
            uninstrumented pipeline pays only one method call per *phase*.
    """

    def __init__(
        self,
        config: Optional[FlowDiffConfig] = None,
        tracer: Tracer = NOOP_TRACER,
        metrics: MetricsRegistry = NOOP_REGISTRY,
    ) -> None:
        self.config = config or FlowDiffConfig()
        self.tracer = tracer
        self.metrics = metrics
        self._m_models = metrics.counter("flowdiff_models_total")
        self._m_diffs = metrics.counter("flowdiff_diffs_total")
        self._m_changes = metrics.counter("flowdiff_changes_total", status="unknown")
        self._m_explained = metrics.counter("flowdiff_changes_total", status="explained")

    # ------------------------------------------------------------------
    # Modeling phase
    # ------------------------------------------------------------------

    def model(
        self,
        log: ControllerLog,
        window: Optional[Tuple[float, float]] = None,
        assess: bool = True,
        records: Optional[Sequence] = None,
    ) -> BehaviorModel:
        """Build the behavior model of one log window.

        With ``config.jobs != 1`` the sharded parallel pipeline
        (:mod:`repro.core.parallel`) is used; it yields a model identical
        to the serial path and falls back to it when the log cannot be
        sharded exactly. With ``config.cache_dir`` set, the model is
        served from / stored into the content-addressed cache.

        Args:
            log: the controller capture.
            window: explicit bounds; defaults to the log's span.
            assess: whether to run stability assessment (skippable for
                short logs or performance benchmarks).
            records: pre-extracted flow records for this log (as produced
                by :func:`~repro.core.events.extract_flow_records`);
                supplying them skips extraction — the sliding monitor
                uses this to model one window it already decoded.
        """
        if window is None:
            window = log.time_span
        cache = self._model_cache(log, window, assess) if records is None else None
        if cache is not None:
            cached = cache.load()
            if cached is not None:
                self._m_models.inc()
                return cached
        with self.tracer.span(
            "model", messages=len(log), window=list(window)
        ):
            model: Optional[BehaviorModel] = None
            if self.config.jobs != 1 and records is None:
                from repro.core.parallel import parallel_model

                model = parallel_model(self, log, window, assess)
            if model is None:
                model = self._model_serial(log, window, assess, records)
        self._m_models.inc()
        if cache is not None:
            cache.store(model)
        return model

    def _model_cache(
        self,
        log: ControllerLog,
        window: Tuple[float, float],
        assess: bool,
    ):
        """The cache entry handle for this request, or None when disabled."""
        if self.config.cache_dir is None:
            return None
        from repro.core.persist import ModelCache

        return ModelCache(
            self.config.cache_dir, metrics=self.metrics, tracer=self.tracer
        ).entry(log, self.config, window=window, assess=assess)

    def _model_serial(
        self,
        log: ControllerLog,
        window: Tuple[float, float],
        assess: bool,
        records: Optional[Sequence] = None,
    ) -> BehaviorModel:
        """The reference serial modeling pipeline."""
        if records is None:
            with self.tracer.span("extract"):
                records = extract_flow_records(
                    log, self.config.signature.occurrence_gap
                )
        with self.tracer.span("app-signature"):
            app_sigs = build_application_signatures(
                log, self.config.signature, window=window, records=records
            )
        with self.tracer.span("infra-signature"):
            from repro.openflow.messages import PortStatus

            port_down = [
                (msg.timestamp, msg.dpid, msg.port)
                for msg in log.of_type(PortStatus)
                if not msg.live
            ]
            infra = build_infrastructure_signature(
                [r.arrival for r in records], port_down_events=port_down
            )
        stability = {}
        if assess and self.config.stability_parts >= 2:
            with self.tracer.span("stability", parts=self.config.stability_parts):
                stability = assess_stability(
                    log,
                    self.config.signature,
                    parts=self.config.stability_parts,
                    thresholds=self.config.stability,
                    window=window,
                    # The full-window signatures and arrivals were just
                    # built above — don't let the assessment re-derive
                    # either from the log.
                    full=app_sigs,
                    arrivals=[r.arrival for r in records],
                )
        return BehaviorModel(
            app_signatures=app_sigs,
            infrastructure=infra,
            window=window,
            stability=stability,
        )

    # ------------------------------------------------------------------
    # Diagnosing phase
    # ------------------------------------------------------------------

    def diff(
        self,
        baseline: BehaviorModel,
        current: BehaviorModel,
        task_library: Optional[TaskLibrary] = None,
        current_log: Optional[ControllerLog] = None,
    ) -> DiagnosisReport:
        """Compare two models and produce the diagnosis report.

        Args:
            baseline: the known-good model (from L1).
            current: the model under suspicion (from L2).
            task_library: learned task signatures; when provided together
                with ``current_log``, tasks detected in the current log
                explain (and silence) matching changes.
            current_log: the log behind ``current``, needed for task
                detection.
        """
        with self.tracer.span("diff"):
            with self.tracer.span("compare"):
                changes = compare_models(baseline, current, self.config.thresholds)
            task_events = ()
            if task_library is not None and current_log is not None:
                with self.tracer.span("task-detect"):
                    task_events = tuple(task_library.detect_in_log(current_log))
            with self.tracer.span("validate"):
                unknown, known = validate_changes(
                    changes, task_events, self.config.explanations
                )
            with self.tracer.span("rank"):
                problems = tuple(classify_problems(unknown))
                dependency = DependencyMatrix.from_changes(unknown)
                ranking = tuple(rank_components(unknown))
        self._m_diffs.inc()
        self._m_changes.inc(len(unknown))
        self._m_explained.inc(len(known))
        return DiagnosisReport(
            unknown_changes=tuple(unknown),
            known_changes=tuple(known),
            task_events=task_events,
            problems=problems,
            dependency=dependency,
            component_ranking=ranking,
        )
