"""Component ranking for problem localization (Section IV-C).

"FlowDiff returns a set of edges and nodes that are related to each
infrastructure and application signature change. To localize the
operational problem that triggered these changes, we rank the components
based on the number of changes they are associated with."
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.signatures.base import ChangeRecord
from repro.obs.flightrec import FlowTimeline


def rank_components(
    changes: Sequence[ChangeRecord],
    weight_by_magnitude: bool = False,
) -> List[Tuple[str, float]]:
    """Rank implicated components by their change association count.

    Args:
        changes: the (unknown) changes to localize over.
        weight_by_magnitude: weight each association by the change's
            magnitude instead of counting 1 — an ablation knob; the paper
            uses plain counts.

    Returns:
        ``(component, score)`` pairs, highest score first; ties broken by
        component name for determinism.
    """
    scores: Dict[str, float] = {}
    for change in changes:
        weight = change.magnitude if weight_by_magnitude else 1.0
        for component in change.components:
            scores[component] = scores.get(component, 0.0) + weight
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))


def top_suspects(
    changes: Sequence[ChangeRecord],
    k: int = 3,
    hosts_only: bool = False,
) -> List[str]:
    """The ``k`` highest-ranked components (optionally hosts/switches only,
    excluding edge components like ``"a--b"``)."""
    ranked = rank_components(changes)
    if hosts_only:
        ranked = [(c, s) for c, s in ranked if "--" not in c]
    return [c for c, _ in ranked[:k]]


def select_evidence_flows(
    timelines: Sequence[FlowTimeline], limit: int = 3
) -> List[FlowTimeline]:
    """Order a suspect's implicated flows by evidential value, keep ``limit``.

    Most anomalous first: chains with missing stages (a broken flow is the
    strongest localization evidence), then non-monotone chains (capture
    reordering), then the slowest setups — the same "worst first" ordering
    the component ranking itself uses for changes.
    """
    ranked = sorted(
        timelines,
        key=lambda t: (
            t.complete,           # incomplete chains first
            t.monotone,           # then reordered captures
            -t.total_latency,     # then slowest setup
            t.corr_id,            # deterministic tie-break
        ),
    )
    return list(ranked[: max(0, limit)])
