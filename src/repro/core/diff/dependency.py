"""Dependency matrices and problem-type classification (Section IV-C).

The dependency matrix A has application-signature rows (CG, DD, CI, PC,
FS) and infrastructure-signature columns (PT, ISL, CRT); ``A[i][j] = 1``
when changes were detected in both the i-th application component and the
j-th infrastructure component. "Each combination of dependencies between
application and infrastructure signatures represents a type of problem" —
e.g. congestion lights up DD/PC/FS x ISL (Figure 8(a)) while switch
failure is CG x PT (Figure 8(b)).

Classification scores each known problem class by how well the observed
changed-signature set matches the class's expected set (Figure 2(b)),
rewarding covered expectations and penalizing both missing and spurious
components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.signatures.base import ChangeRecord, SignatureKind

APP_KINDS: Tuple[SignatureKind, ...] = (
    SignatureKind.CG,
    SignatureKind.DD,
    SignatureKind.CI,
    SignatureKind.PC,
    SignatureKind.FS,
)
INFRA_KINDS: Tuple[SignatureKind, ...] = (
    SignatureKind.PT,
    SignatureKind.ISL,
    SignatureKind.CRT,
)


@dataclass(frozen=True)
class DependencyMatrix:
    """The application x infrastructure co-change matrix of Section IV-C."""

    cells: Tuple[Tuple[int, ...], ...]

    @classmethod
    def from_changes(cls, changes: Sequence[ChangeRecord]) -> "DependencyMatrix":
        """Build the matrix from a set of (unknown) signature changes."""
        changed = {c.kind for c in changes}
        rows = []
        for app in APP_KINDS:
            row = []
            for infra in INFRA_KINDS:
                row.append(1 if app in changed and infra in changed else 0)
            rows.append(tuple(row))
        return cls(cells=tuple(rows))

    def at(self, app: SignatureKind, infra: SignatureKind) -> int:
        """The matrix cell for an (application, infrastructure) pair."""
        return self.cells[APP_KINDS.index(app)][INFRA_KINDS.index(infra)]

    def render(self) -> str:
        """ASCII rendering in the paper's row/column order."""
        header = "      " + "  ".join(k.value.rjust(3) for k in INFRA_KINDS)
        lines = [header]
        for app, row in zip(APP_KINDS, self.cells):
            lines.append(
                app.value.ljust(6) + "  ".join(str(v).rjust(3) for v in row)
            )
        return "\n".join(lines)


#: Expected changed-signature sets per problem class (Figure 2(b) /
#: Table I). Order matters only for deterministic tie-breaking.
PROBLEM_SIGNATURES: Tuple[Tuple[str, FrozenSet[SignatureKind]], ...] = (
    (
        "host_failure",
        frozenset(
            {SignatureKind.CG, SignatureKind.CI, SignatureKind.PC, SignatureKind.FS}
        ),
    ),
    (
        "host_performance",
        frozenset({SignatureKind.DD, SignatureKind.FS}),
    ),
    (
        "application_failure",
        frozenset({SignatureKind.CG, SignatureKind.CI}),
    ),
    (
        "application_performance",
        frozenset({SignatureKind.DD}),
    ),
    (
        "host_or_app_problem",
        frozenset({SignatureKind.DD}),
    ),
    (
        "network_disconnectivity",
        frozenset(
            {SignatureKind.CG, SignatureKind.CI, SignatureKind.FS, SignatureKind.PT}
        ),
    ),
    (
        "congestion",
        frozenset(
            {
                SignatureKind.DD,
                SignatureKind.PC,
                SignatureKind.FS,
                SignatureKind.ISL,
            }
        ),
    ),
    (
        "switch_misconfiguration",
        frozenset({SignatureKind.PT, SignatureKind.CG, SignatureKind.FS}),
    ),
    (
        "switch_overhead",
        frozenset({SignatureKind.ISL, SignatureKind.DD}),
    ),
    (
        "controller_overhead",
        frozenset(
            {
                SignatureKind.CRT,
                SignatureKind.FS,
                SignatureKind.DD,
                SignatureKind.PC,
            }
        ),
    ),
    (
        "switch_failure",
        frozenset({SignatureKind.PT}),
    ),
    (
        "controller_failure",
        frozenset({SignatureKind.CRT, SignatureKind.FS, SignatureKind.CG}),
    ),
    (
        "unauthorized_access",
        frozenset({SignatureKind.CG, SignatureKind.CI, SignatureKind.FS}),
    ),
)


#: First-response guidance per problem class — FlowDiff hands the operator
#: debugging information, not root causes (Section I); these hints say
#: where root-cause analysis should start.
PROBLEM_HINTS: Dict[str, str] = {
    "host_failure": "check power/connectivity of the top-ranked host; its flows vanished entirely",
    "host_performance": "inspect host-level metrics (disk, NIC errors, retransmissions) on the ranked hosts",
    "application_failure": "check the application process/logs on the top-ranked server; peers still reach it but it stopped responding downstream",
    "application_performance": "profile the top-ranked server: its request processing slowed while traffic volume held",
    "host_or_app_problem": "compare OS metrics vs application logs on the ranked server to split host from application cause",
    "network_disconnectivity": "verify the links/switches in the ranked components; paths through them disappeared",
    "congestion": "check utilization on the ranked switch links; co-resident bulk traffic is inflating latency",
    "switch_misconfiguration": "audit recent rule/route changes on the ranked switches",
    "switch_overhead": "inspect control/data-plane load on the ranked switches (table occupancy, CPU)",
    "controller_overhead": "the controller is slow to install rules; check its load and scale-out options",
    "switch_failure": "the ranked switch stopped reporting; check its liveness and fail over",
    "controller_failure": "the controller stopped answering table misses; restart or fail over immediately",
    "unauthorized_access": "the top-ranked host opened flows outside the baseline; isolate it and audit access",
}


@dataclass(frozen=True)
class ProblemInference:
    """One candidate problem type with its match score.

    Attributes:
        problem: the problem-class label.
        score: Jaccard similarity between observed and expected
            changed-signature sets, in [0, 1].
        matched: the expected kinds that were observed.
        missing: expected kinds not observed.
        unexpected: observed kinds the class does not predict.
    """

    problem: str
    score: float
    matched: FrozenSet[SignatureKind]
    missing: FrozenSet[SignatureKind]
    unexpected: FrozenSet[SignatureKind]

    @property
    def hint(self) -> str:
        """First-response guidance for this problem class."""
        return PROBLEM_HINTS.get(self.problem, "")


#: Problem classes that only make sense for *appearing* structure (new CG
#: edges) or *vanishing* structure (missing CG edges), respectively. An
#: intruder adds edges; a failed host removes them — the change-direction
#: evidence Figure 2(b) leaves implicit.
ADDITION_CLASSES = frozenset({"unauthorized_access"})
REMOVAL_CLASSES = frozenset(
    {"host_failure", "application_failure", "network_disconnectivity"}
)


def classify_problems(
    changes: Sequence[ChangeRecord],
    top_k: int = 3,
    min_score: float = 0.25,
) -> List[ProblemInference]:
    """Rank problem classes by fit to the observed change set.

    Returns at most ``top_k`` inferences with score >= ``min_score``,
    best first. An empty change set yields no inference (healthy).
    Direction-sensitive classes are gated on the CG change direction:
    unauthorized access needs added edges, failure classes need removed
    edges.
    """
    observed = frozenset(c.kind for c in changes)
    if not observed:
        return []
    cg_changes = [c for c in changes if c.kind == SignatureKind.CG]
    has_added = any(c.direction == "added" for c in cg_changes)
    has_removed = any(c.direction == "removed" for c in cg_changes)
    inferences = []
    for problem, expected in PROBLEM_SIGNATURES:
        matched = observed & expected
        if not matched:
            continue
        if SignatureKind.CG in expected:
            if problem in ADDITION_CLASSES and not has_added:
                continue
            if problem in REMOVAL_CLASSES and not has_removed:
                continue
        score = len(matched) / len(observed | expected)
        inferences.append(
            ProblemInference(
                problem=problem,
                score=score,
                matched=matched,
                missing=expected - observed,
                unexpected=observed - expected,
            )
        )
    inferences.sort(key=lambda p: (-p.score, p.problem))
    return [p for p in inferences[:top_k] if p.score >= min_score]
