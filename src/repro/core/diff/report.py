"""The operator-facing diagnosis report.

FlowDiff "does not try to identify the root-cause of the problem, rather
it provides debugging information to assist root-cause analyses"
(Section I): the known/unknown change split, candidate problem types, the
dependency matrix, and ranked suspect components.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.diff.dependency import DependencyMatrix, ProblemInference
from repro.core.signatures.base import ChangeRecord, SignatureKind
from repro.core.tasks.detector import TaskEvent
from repro.obs.flightrec import FlowTimeline


@dataclass(frozen=True)
class TelemetryRecord:
    """One data-plane telemetry reading backing a suspect component.

    The worst retained window of one per-component series — the congested
    link's peak utilization, the drop burst, the latency spike — so the
    behavioral verdict points at a concrete data-plane observation.

    Attributes:
        kind: series family (``link``/``switch``/``controller``/...).
        component: the sampled component (``a--b`` edge, dpid, app name).
        metric: the sampled quantity (``utilization``, ``drops``, ...).
        t_start / t_end: the peak window's bounds in stream time.
        value: the peak reading — window sum for counter series, window
            max for level series.
        mean: the peak window's sample mean.
        p95: the peak window's 95th-percentile sample.
        counter: True when the series counts increments per window.
    """

    kind: str
    component: str
    metric: str
    t_start: float
    t_end: float
    value: float
    mean: float
    p95: float
    counter: bool = False

    def describe(self) -> str:
        reading = (
            f"{self.value:g}/window"
            if self.counter
            else f"peak {self.value:g} (mean {self.mean:g}, p95 {self.p95:g})"
        )
        return (
            f"telemetry {self.kind} {self.metric}: {reading} "
            f"in [{self.t_start:g}, {self.t_end:g})s"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "component": self.component,
            "metric": self.metric,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "value": self.value,
            "mean": self.mean,
            "p95": self.p95,
            "counter": self.counter,
        }


@dataclass(frozen=True)
class EvidenceChain:
    """Flight-recorder evidence backing one ranked suspect component.

    007-style actionability: instead of only naming a suspect, the report
    attaches the causal timelines of the flows that implicate it, so the
    operator can read what those flows actually experienced (triggers,
    controller decisions, hops, expiries — and which stages went missing).

    Attributes:
        component: the suspect (host, switch, or ``"a--b"`` edge).
        score: the suspect's ranking score (change-association count).
        timelines: the selected per-flow causal chains (most anomalous
            first: incomplete chains, then slowest setups).
        telemetry: worst-window data-plane readings for the suspect
            (attached when a telemetry plane observed the run).
    """

    component: str
    score: float
    timelines: Tuple[FlowTimeline, ...] = ()
    telemetry: Tuple[TelemetryRecord, ...] = ()

    def render(self) -> str:
        lines = [f"{self.component} (score {self.score:g}):"]
        for timeline in self.timelines:
            lines.append("  " + timeline.describe())
        for record in self.telemetry:
            lines.append("  " + record.describe())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "score": self.score,
            "flows": [t.to_dict() for t in self.timelines],
            "telemetry": [r.to_dict() for r in self.telemetry],
        }


@dataclass(frozen=True)
class DiagnosisReport:
    """Everything FlowDiff hands the operator after a diff.

    Attributes:
        unknown_changes: signature changes no operator task explains — the
            debugging flags.
        known_changes: changes paired with the task events explaining them.
        task_events: the full task time series detected in the current log.
        problems: ranked candidate problem types.
        dependency: the application x infrastructure dependency matrix.
        component_ranking: suspect components, most implicated first.
        evidence: flight-recorder causal chains for the top suspects
            (attached by :func:`repro.core.diff.evidence.attach_evidence`;
            empty when no capture was available to reconstruct from).
    """

    unknown_changes: Tuple[ChangeRecord, ...]
    known_changes: Tuple[Tuple[ChangeRecord, TaskEvent], ...]
    task_events: Tuple[TaskEvent, ...]
    problems: Tuple[ProblemInference, ...]
    dependency: DependencyMatrix
    component_ranking: Tuple[Tuple[str, float], ...]
    evidence: Tuple[EvidenceChain, ...] = ()

    @property
    def healthy(self) -> bool:
        """True when every detected change was explained by a task."""
        return not self.unknown_changes

    def changed_kinds(self) -> Tuple[SignatureKind, ...]:
        """The distinct signature kinds among unknown changes, sorted."""
        return tuple(sorted({c.kind for c in self.unknown_changes}, key=lambda k: k.value))

    def changes_for(self, component: str) -> Tuple[ChangeRecord, ...]:
        """Drill down: every unexplained change implicating ``component``.

        The component may be a host, a switch, or an edge (``"a--b"``);
        edges also match when either endpoint is queried.
        """
        out = []
        for change in self.unknown_changes:
            if component in change.components:
                out.append(change)
                continue
            for c in change.components:
                if "--" in c and component in c.split("--"):
                    out.append(change)
                    break
        return tuple(out)

    def render(self, max_items: int = 12) -> str:
        """A human-readable multi-section report."""
        lines: List[str] = ["FlowDiff diagnosis", "=" * 18]
        if self.healthy:
            lines.append("No unexplained behavioral changes detected.")
        else:
            lines.append(f"Unexplained changes ({len(self.unknown_changes)}):")
            for change in self.unknown_changes[:max_items]:
                lines.append(f"  - {change.brief()}")
            if len(self.unknown_changes) > max_items:
                lines.append(
                    f"  ... and {len(self.unknown_changes) - max_items} more"
                )
        if self.known_changes:
            lines.append(f"Known changes explained by tasks ({len(self.known_changes)}):")
            for change, event in self.known_changes[:max_items]:
                lines.append(
                    f"  - {change.brief()}  [task {event.name} "
                    f"@{event.t_start:.2f}-{event.t_end:.2f}s]"
                )
        if self.problems:
            lines.append("Candidate problem types:")
            for p in self.problems:
                lines.append(
                    f"  - {p.problem} (score {p.score:.2f}; "
                    f"matched {sorted(k.value for k in p.matched)})"
                )
            top_hint = self.problems[0].hint
            if top_hint:
                lines.append(f"First response: {top_hint}")
        if self.component_ranking:
            lines.append("Suspect components:")
            for component, score in self.component_ranking[:max_items]:
                lines.append(f"  - {component}: {score:g}")
        if self.evidence:
            lines.append("Evidence chains (flight recorder):")
            for chain in self.evidence:
                for line in chain.render().splitlines():
                    lines.append("  " + line)
        lines.append("Dependency matrix:")
        lines.append(self.dependency.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able representation for downstream tooling."""

        def change_dict(change: ChangeRecord) -> Dict[str, Any]:
            return {
                "kind": change.kind.value,
                "scope": change.scope,
                "description": change.description,
                "components": sorted(change.components),
                "magnitude": change.magnitude,
                "timestamp": change.timestamp,
                "direction": change.direction,
            }

        return {
            "healthy": self.healthy,
            "unknown_changes": [change_dict(c) for c in self.unknown_changes],
            "known_changes": [
                {
                    "change": change_dict(c),
                    "task": {
                        "name": e.name,
                        "t_start": e.t_start,
                        "t_end": e.t_end,
                        "hosts": sorted(e.hosts),
                    },
                }
                for c, e in self.known_changes
            ],
            "task_events": [
                {
                    "name": e.name,
                    "t_start": e.t_start,
                    "t_end": e.t_end,
                    "hosts": sorted(e.hosts),
                }
                for e in self.task_events
            ],
            "problems": [
                {
                    "problem": p.problem,
                    "hint": p.hint,
                    "score": p.score,
                    "matched": sorted(k.value for k in p.matched),
                    "missing": sorted(k.value for k in p.missing),
                    "unexpected": sorted(k.value for k in p.unexpected),
                }
                for p in self.problems
            ],
            "component_ranking": [
                {"component": c, "score": s} for c, s in self.component_ranking
            ],
            "evidence": [chain.to_dict() for chain in self.evidence],
            "dependency": [list(row) for row in self.dependency.cells],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the report as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)
