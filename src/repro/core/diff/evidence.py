"""Attach flight-recorder evidence chains to a diagnosis report.

The diff pipeline ranks suspect components by change association
(Section IV-C); this module makes each verdict actionable by pairing the
top suspects with the causal timelines of the flows that implicate them —
the per-flow evidence chains 007 (Arzani et al.) argues localization
verdicts need. The operator reads, for each suspect, what its flows
actually experienced: trigger, controller decision, installs, hops,
expiry — and which stages went missing when the component broke.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from repro.core.diff.ranking import select_evidence_flows
from repro.core.diff.report import DiagnosisReport, EvidenceChain, TelemetryRecord
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryPlane
from repro.openflow.log import ControllerLog


def telemetry_records_for(
    plane: TelemetryPlane, component: str, limit: int = 4
) -> Tuple[TelemetryRecord, ...]:
    """The suspect's worst-window telemetry readings, most severe first.

    A bare node suspect also picks up its ``a--b`` link series (and vice
    versa), mirroring how the ranking step attributes edge changes to
    endpoints. The suspect's *own* series always rank above a neighbor's
    (peak magnitudes are not comparable across metrics — one busy
    neighbor's ``tx_bytes`` must not bury the suspect's drop burst);
    within each tier the highest peak reading leads.
    """
    wanted = frozenset(component.split("--"))
    records: List[Tuple[int, TelemetryRecord]] = []
    for series in plane.for_component(component):
        peak = series.peak_window()
        if peak is None or series.count == 0:
            continue
        exact = 0 if frozenset(series.component.split("--")) == wanted else 1
        value = peak.total if series.counter else peak.vmax
        records.append(
            (
                exact,
                TelemetryRecord(
                    kind=series.kind,
                    component=series.component,
                    metric=series.metric,
                    t_start=peak.t_start,
                    t_end=peak.t_end,
                    value=value,
                    mean=peak.mean,
                    p95=peak.p95,
                    counter=series.counter,
                ),
            )
        )
    records.sort(
        key=lambda e: (e[0], -e[1].value, e[1].kind, e[1].component, e[1].metric)
    )
    return tuple(r for _, r in records[: max(0, limit)])


def attach_evidence(
    report: DiagnosisReport,
    current_log: ControllerLog,
    metrics: Optional[MetricsRegistry] = None,
    max_components: int = 3,
    max_flows_per_component: int = 3,
    recorder: Optional[FlightRecorder] = None,
    telemetry: Optional[TelemetryPlane] = None,
    max_series_per_component: int = 4,
) -> DiagnosisReport:
    """Return a copy of ``report`` with evidence chains for top suspects.

    Args:
        report: the diagnosis to enrich.
        current_log: the capture behind the *current* model — evidence
            must come from the problem window, not the baseline.
        metrics: optional registry; occupancy samples annotate each chain.
        max_components: how many ranked suspects get evidence.
        max_flows_per_component: flows kept per suspect (worst first).
        recorder: reuse an already-reconstructed recorder (e.g. from the
            monitor loop) instead of re-reading the log.
        telemetry: optional data-plane telemetry plane from the same run;
            each suspect's chain then carries its worst-window readings
            (utilization spikes, drop bursts, latency peaks).
        max_series_per_component: telemetry records kept per suspect.

    A healthy report (no ranked suspects) is returned unchanged.
    """
    if not report.component_ranking:
        return report
    if recorder is None:
        recorder = FlightRecorder.from_log(current_log, metrics=metrics)
    chains = []
    for component, score in report.component_ranking[: max(0, max_components)]:
        implicated = recorder.for_component(component)
        records = (
            telemetry_records_for(telemetry, component, max_series_per_component)
            if telemetry is not None
            else ()
        )
        if not implicated and not records:
            continue
        chains.append(
            EvidenceChain(
                component=component,
                score=score,
                timelines=tuple(
                    select_evidence_flows(implicated, limit=max_flows_per_component)
                ),
                telemetry=records,
            )
        )
    return replace(report, evidence=tuple(chains))
