"""Attach flight-recorder evidence chains to a diagnosis report.

The diff pipeline ranks suspect components by change association
(Section IV-C); this module makes each verdict actionable by pairing the
top suspects with the causal timelines of the flows that implicate them —
the per-flow evidence chains 007 (Arzani et al.) argues localization
verdicts need. The operator reads, for each suspect, what its flows
actually experienced: trigger, controller decision, installs, hops,
expiry — and which stages went missing when the component broke.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.diff.ranking import select_evidence_flows
from repro.core.diff.report import DiagnosisReport, EvidenceChain
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.openflow.log import ControllerLog


def attach_evidence(
    report: DiagnosisReport,
    current_log: ControllerLog,
    metrics: Optional[MetricsRegistry] = None,
    max_components: int = 3,
    max_flows_per_component: int = 3,
    recorder: Optional[FlightRecorder] = None,
) -> DiagnosisReport:
    """Return a copy of ``report`` with evidence chains for top suspects.

    Args:
        report: the diagnosis to enrich.
        current_log: the capture behind the *current* model — evidence
            must come from the problem window, not the baseline.
        metrics: optional registry; occupancy samples annotate each chain.
        max_components: how many ranked suspects get evidence.
        max_flows_per_component: flows kept per suspect (worst first).
        recorder: reuse an already-reconstructed recorder (e.g. from the
            monitor loop) instead of re-reading the log.

    A healthy report (no ranked suspects) is returned unchanged.
    """
    if not report.component_ranking:
        return report
    if recorder is None:
        recorder = FlightRecorder.from_log(current_log, metrics=metrics)
    chains = []
    for component, score in report.component_ranking[: max(0, max_components)]:
        implicated = recorder.for_component(component)
        if not implicated:
            continue
        chains.append(
            EvidenceChain(
                component=component,
                score=score,
                timelines=tuple(
                    select_evidence_flows(implicated, limit=max_flows_per_component)
                ),
            )
        )
    return replace(report, evidence=tuple(chains))
