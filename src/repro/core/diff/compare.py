"""Comparing two behavior models signature by signature (Section IV-A).

``compare_models`` walks the matched application groups of a baseline and
a current model, applies each signature's comparator with operator-set
thresholds, and appends the infrastructure comparisons — yielding the flat
change list that validation, classification, and ranking consume.

Signatures marked unstable in the *baseline* model are skipped, per the
paper: "We do not use unstable signatures in the problem detection to
avoid false positives."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.groups import match_groups
from repro.core.model import BehaviorModel
from repro.core.signatures.base import ChangeRecord, SignatureKind


@dataclass(frozen=True)
class CompareThresholds:
    """Operator-defined significance thresholds (Section IV-A).

    Attributes:
        fs_relative: relative change for flow-statistics scalars.
        ci_chi2: chi-squared threshold for component interaction.
        dd_shift: delay-peak shift threshold in seconds (the paper bins at
            20 ms; shifts beyond one bin are significant).
        dd_mean_shift: delay mean-shift threshold in seconds (the
            first-pairing mean is a low-variance estimator, so a tighter
            threshold catches retransmission tails without peak movement).
        pc_delta: partial-correlation delta threshold.
        isl_sigmas: ISL mean shift in baseline standard deviations.
        crt_sigmas: CRT mean shift in baseline standard deviations.
    """

    fs_relative: float = 0.35
    ci_chi2: float = 10.0
    dd_shift: float = 0.03
    dd_mean_shift: float = 0.015
    pc_delta: float = 0.4
    isl_sigmas: float = 4.0
    crt_sigmas: float = 4.0


def compare_models(
    baseline: BehaviorModel,
    current: BehaviorModel,
    thresholds: Optional[CompareThresholds] = None,
) -> List[ChangeRecord]:
    """The ``diff`` of Figure 1: all significant signature changes L1 -> L2."""
    th = thresholds or CompareThresholds()
    changes: List[ChangeRecord] = []

    pairs = match_groups(baseline.groups(), current.groups())
    for base_group, cur_group in pairs:
        if base_group is None and cur_group is not None:
            sig = current.app_signatures[cur_group.key]
            first_time = min(
                (t for _, t in sig.cg.first_seen), default=None
            )
            changes.append(
                ChangeRecord(
                    kind=SignatureKind.CG,
                    scope=cur_group.key,
                    description=(
                        "new application group "
                        f"{{{', '.join(sorted(cur_group.members))}}}"
                    ),
                    components=frozenset(cur_group.members),
                    magnitude=float(len(cur_group.members)),
                    timestamp=first_time,
                    direction="added",
                )
            )
            continue
        if base_group is not None and cur_group is None:
            changes.append(
                ChangeRecord(
                    kind=SignatureKind.CG,
                    scope=base_group.key,
                    description=(
                        "application group disappeared "
                        f"{{{', '.join(sorted(base_group.members))}}}"
                    ),
                    components=frozenset(base_group.members),
                    magnitude=float(len(base_group.members)),
                    direction="removed",
                )
            )
            continue
        assert base_group is not None and cur_group is not None
        base_sig = baseline.app_signatures[base_group.key]
        cur_sig = current.app_signatures[cur_group.key]
        scope = base_group.key

        def stable(kind: SignatureKind) -> bool:
            return baseline.is_stable(base_group.key, kind)

        if stable(SignatureKind.CG):
            changes.extend(base_sig.cg.diff(cur_sig.cg, scope))
        if stable(SignatureKind.FS):
            changes.extend(
                base_sig.fs.diff(cur_sig.fs, scope, threshold=th.fs_relative)
            )
        if stable(SignatureKind.CI):
            changes.extend(
                base_sig.ci.diff(cur_sig.ci, scope, chi2_threshold=th.ci_chi2)
            )
        if stable(SignatureKind.DD):
            changes.extend(
                base_sig.dd.diff(
                    cur_sig.dd,
                    scope,
                    shift_threshold=th.dd_shift,
                    mean_threshold=th.dd_mean_shift,
                )
            )
        if stable(SignatureKind.PC):
            changes.extend(
                base_sig.pc.diff(cur_sig.pc, scope, delta_threshold=th.pc_delta)
            )

    infra_base = baseline.infrastructure
    infra_cur = current.infrastructure
    changes.extend(infra_base.pt.diff(infra_cur.pt))
    for ts, dpid, port in infra_cur.port_down_events:
        changes.append(
            ChangeRecord(
                kind=SignatureKind.PT,
                scope="infrastructure",
                description=f"switch {dpid} reported port {port} down",
                components=frozenset({dpid}),
                magnitude=1.0,
                timestamp=ts,
                direction="removed",
            )
        )
    changes.extend(
        infra_base.isl.diff(infra_cur.isl, sigma_threshold=th.isl_sigmas)
    )
    changes.extend(
        infra_base.crt.diff(infra_cur.crt, sigma_threshold=th.crt_sigmas)
    )
    return changes
