"""Self-contained HTML rendering of a diagnosis report.

One static file, no external assets or scripts — suitable for attaching to
an incident ticket. The layout mirrors :meth:`DiagnosisReport.render`:
problem candidates with hints, unexplained changes, task-explained
changes, suspect ranking, and the dependency matrix.
"""

from __future__ import annotations

import html
from typing import List

from repro.core.diff.dependency import APP_KINDS, INFRA_KINDS
from repro.core.diff.report import DiagnosisReport

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.5rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
td, th { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }
th { background: #f2f2f2; }
.healthy { color: #1a7f37; font-weight: 600; }
.problem { color: #b42318; font-weight: 600; }
.hint { background: #fff8e1; padding: 0.5rem 0.8rem; border-left: 3px solid #f4b400; }
.lit { background: #ffe0e0; font-weight: 600; text-align: center; }
.dark { color: #bbb; text-align: center; }
code { background: #f5f5f5; padding: 0 0.2rem; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text))


def report_to_html(report: DiagnosisReport, title: str = "FlowDiff diagnosis") -> str:
    """Render the report as a complete standalone HTML document."""
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]

    if report.healthy:
        out.append("<p class='healthy'>No unexplained behavioral changes detected.</p>")
    else:
        out.append(
            f"<p class='problem'>{len(report.unknown_changes)} unexplained "
            "change(s) detected.</p>"
        )

    if report.problems:
        out.append("<h2>Candidate problems</h2><table>")
        out.append("<tr><th>problem</th><th>score</th><th>matched signatures</th></tr>")
        for p in report.problems:
            matched = ", ".join(sorted(k.value for k in p.matched))
            out.append(
                f"<tr><td>{_esc(p.problem)}</td><td>{p.score:.2f}</td>"
                f"<td>{_esc(matched)}</td></tr>"
            )
        out.append("</table>")
        if report.problems[0].hint:
            out.append(
                f"<p class='hint'><b>First response:</b> "
                f"{_esc(report.problems[0].hint)}</p>"
            )

    if report.unknown_changes:
        out.append("<h2>Unexplained changes</h2><table>")
        out.append(
            "<tr><th>signature</th><th>scope</th><th>description</th>"
            "<th>components</th></tr>"
        )
        for change in report.unknown_changes:
            out.append(
                f"<tr><td>{_esc(change.kind.value)}</td>"
                f"<td><code>{_esc(change.scope)}</code></td>"
                f"<td>{_esc(change.description)}</td>"
                f"<td>{_esc(', '.join(sorted(change.components)))}</td></tr>"
            )
        out.append("</table>")

    if report.known_changes:
        out.append("<h2>Known changes (explained by operator tasks)</h2><table>")
        out.append("<tr><th>change</th><th>explained by</th></tr>")
        for change, event in report.known_changes:
            out.append(
                f"<tr><td>{_esc(change.description)}</td>"
                f"<td>{_esc(event.name)} @ {event.t_start:.1f}s</td></tr>"
            )
        out.append("</table>")

    if report.component_ranking:
        out.append("<h2>Suspect components</h2><table>")
        out.append("<tr><th>component</th><th>associated changes</th></tr>")
        for component, score in report.component_ranking[:12]:
            out.append(
                f"<tr><td><code>{_esc(component)}</code></td><td>{score:g}</td></tr>"
            )
        out.append("</table>")

    if report.evidence:
        out.append("<h2>Evidence chains (flight recorder)</h2>")
        for chain in report.evidence:
            out.append(
                f"<h3><code>{_esc(chain.component)}</code> "
                f"(score {chain.score:g})</h3>"
            )
            for timeline in chain.timelines:
                out.append(f"<p>{_esc(timeline.describe())}</p>")
                out.append("<table>")
                out.append(
                    "<tr><th>t (s)</th><th>stage</th><th>switch</th>"
                    "<th>+latency (ms)</th><th>detail</th></tr>"
                )
                for event in timeline.events:
                    out.append(
                        f"<tr><td>{event.timestamp:.6f}</td>"
                        f"<td>{_esc(event.stage)}</td>"
                        f"<td><code>{_esc(event.dpid)}</code></td>"
                        f"<td>{event.latency * 1e3:.3f}</td>"
                        f"<td>{_esc(event.detail)}</td></tr>"
                    )
                out.append("</table>")
            if chain.telemetry:
                out.append("<table>")
                out.append(
                    "<tr><th>telemetry series</th><th>window (s)</th>"
                    "<th>peak</th><th>mean</th><th>p95</th></tr>"
                )
                for record in chain.telemetry:
                    out.append(
                        f"<tr><td><code>{_esc(record.kind)}/"
                        f"{_esc(record.component)}/{_esc(record.metric)}"
                        f"</code></td>"
                        f"<td>[{record.t_start:g}, {record.t_end:g})</td>"
                        f"<td>{record.value:g}"
                        f"{'/window' if record.counter else ''}</td>"
                        f"<td>{record.mean:g}</td><td>{record.p95:g}</td></tr>"
                    )
                out.append("</table>")

    out.append("<h2>Dependency matrix</h2><table>")
    out.append(
        "<tr><th></th>"
        + "".join(f"<th>{k.value}</th>" for k in INFRA_KINDS)
        + "</tr>"
    )
    for app, row in zip(APP_KINDS, report.dependency.cells):
        cells = "".join(
            f"<td class='{'lit' if v else 'dark'}'>{v}</td>" for v in row
        )
        out.append(f"<tr><th>{app.value}</th>{cells}</tr>")
    out.append("</table>")

    out.append("</body></html>")
    return "\n".join(out)


def save_html_report(report: DiagnosisReport, path: str, title: str = "FlowDiff diagnosis") -> None:
    """Write the HTML rendering to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(report_to_html(report, title=title))
