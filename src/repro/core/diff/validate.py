"""Validating changes against the task time series (Section IV-B).

A detected change is **known** when a valid operational task explains it:
the change's timestamp falls within (or near) a detected task event whose
involved hosts intersect the change's components, and the task type is one
that can produce that kind of change. Everything else is **unknown** and
feeds problem classification.

Changes without a timestamp (absences — a missing edge has no "moment" in
the current log) are matched against any task event in the window whose
hosts overlap, since e.g. a VM-stop task explains the later absence of the
VM's edges anywhere in the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.signatures.base import ChangeRecord, SignatureKind
from repro.core.tasks.detector import TaskEvent


@dataclass(frozen=True)
class TaskExplanation:
    """What kinds of signature change a task type can legitimately cause.

    Attributes:
        task_name: the task-type label as learned by the task library.
        explains: the signature kinds the task may change (e.g. VM
            migration explains CG/CI/PT/FS changes; it does not excuse a
            controller response-time shift).
        require_component_overlap: when True (default), the task event's
            hosts must intersect the change's components.
        slack: extra seconds around the task event during which changes
            are still attributed to it (tasks have trailing effects, e.g.
            flow entries expiring after a migration).
    """

    task_name: str
    explains: FrozenSet[SignatureKind]
    require_component_overlap: bool = True
    slack: float = 5.0


#: Reasonable default explanations for the built-in operator tasks.
DEFAULT_EXPLANATIONS: Tuple[TaskExplanation, ...] = (
    TaskExplanation(
        "vm_migration",
        frozenset(
            {
                SignatureKind.CG,
                SignatureKind.CI,
                SignatureKind.FS,
                SignatureKind.PT,
                SignatureKind.PC,
            }
        ),
    ),
    TaskExplanation(
        "vm_startup",
        frozenset(
            {SignatureKind.CG, SignatureKind.CI, SignatureKind.FS, SignatureKind.PC}
        ),
    ),
    TaskExplanation(
        "vm_stop",
        frozenset(
            {SignatureKind.CG, SignatureKind.CI, SignatureKind.FS, SignatureKind.PC}
        ),
    ),
    TaskExplanation(
        "mount_nfs", frozenset({SignatureKind.CG, SignatureKind.CI, SignatureKind.FS})
    ),
    TaskExplanation(
        "unmount_nfs",
        frozenset({SignatureKind.CG, SignatureKind.CI, SignatureKind.FS}),
    ),
)


def validate_changes(
    changes: Sequence[ChangeRecord],
    task_events: Sequence[TaskEvent],
    explanations: Sequence[TaskExplanation] = DEFAULT_EXPLANATIONS,
) -> Tuple[List[ChangeRecord], List[Tuple[ChangeRecord, TaskEvent]]]:
    """Split changes into unknown and known (task-explained).

    Returns:
        ``(unknown, known)`` where ``known`` pairs each explained change
        with the task event that explains it.
    """
    rules: Dict[str, TaskExplanation] = {e.task_name: e for e in explanations}
    unknown: List[ChangeRecord] = []
    known: List[Tuple[ChangeRecord, TaskEvent]] = []

    for change in changes:
        explained_by: Optional[TaskEvent] = None
        for event in task_events:
            rule = rules.get(event.name)
            if rule is None or change.kind not in rule.explains:
                continue
            if change.timestamp is not None and not event.covers(
                change.timestamp, slack=rule.slack
            ):
                continue
            if rule.require_component_overlap:
                hosts_in_change = {
                    c for c in change.components if "--" not in c
                }
                if not (event.hosts & hosts_in_change):
                    continue
            explained_by = event
            break
        if explained_by is None:
            unknown.append(change)
        else:
            known.append((change, explained_by))
    return unknown, known
