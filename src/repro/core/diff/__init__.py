"""Signature diffing and diagnosis (Section IV).

* :mod:`repro.core.diff.compare` — per-signature comparators producing
  :class:`~repro.core.signatures.base.ChangeRecord` lists.
* :mod:`repro.core.diff.validate` — splitting changes into *known*
  (explained by a detected operator task) and *unknown*.
* :mod:`repro.core.diff.dependency` — the application x infrastructure
  dependency matrix and problem-type classification (Figures 2(b) and 8).
* :mod:`repro.core.diff.ranking` — component ranking for localization.
* :mod:`repro.core.diff.report` — the operator-facing diagnosis report.
"""

from repro.core.diff.compare import CompareThresholds, compare_models
from repro.core.diff.validate import TaskExplanation, validate_changes
from repro.core.diff.dependency import (
    DependencyMatrix,
    ProblemInference,
    classify_problems,
)
from repro.core.diff.ranking import rank_components
from repro.core.diff.report import DiagnosisReport

__all__ = [
    "CompareThresholds",
    "compare_models",
    "TaskExplanation",
    "validate_changes",
    "DependencyMatrix",
    "ProblemInference",
    "classify_problems",
    "rank_components",
    "DiagnosisReport",
]
