"""Continuous monitoring: sliding-window diagnosis over a live log.

The paper frames FlowDiff as an offline tool (compare L1 against L2), but
its deployment story is continuous: "FlowDiff frequently models the
behavior of a data center ... To detect problems, it compares the current
behavior with a previously computed, stable, and correct behavior"
(Section I). :class:`SlidingDiagnoser` packages that loop:

* a **baseline window** is modeled once (and can be re-anchored to any
  healthy period later);
* each call to :meth:`advance` models the most recent window of the
  growing log and diffs it against the baseline;
* consecutive reports expose *onset detection*: the first window where a
  problem class appears tells the operator roughly when the problem
  started, without re-reading old windows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.diff.report import DiagnosisReport
from repro.core.events import extract_flow_records
from repro.core.flowdiff import FlowDiff, FlowDiffConfig
from repro.core.model import BehaviorModel
from repro.core.tasks.library import TaskLibrary
from repro.obs.alerts import Alert, AlertEngine
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.tracing import NOOP_TRACER, Tracer
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class WindowReport:
    """One monitoring step: the window bounds and its diagnosis."""

    t_start: float
    t_end: float
    report: DiagnosisReport

    @property
    def healthy(self) -> bool:
        """Whether this window showed no unexplained changes."""
        return self.report.healthy


class SlidingDiagnoser:
    """Periodically diff the newest log window against a healthy baseline.

    Args:
        config: FlowDiff tunables (thresholds, special nodes, ...).
        window: seconds of log modeled per step.
        task_library: learned operator-task signatures used to silence
            planned changes in every window.
        metrics: observability registry; each diagnosed window records its
            wall-clock latency (``monitor_window_seconds``) and the
            current health gauges, making a long-running diagnoser
            scrape-able mid-flight.
        tracer: span tracer handed to the underlying :class:`FlowDiff`.
        alert_engine: when given, every produced window report streams
            through the engine's rules (and the registry is sampled at the
            window end, stream-time-stamped) so alerts fire the moment a
            window turns unhealthy — no separate polling loop.
    """

    def __init__(
        self,
        config: Optional[FlowDiffConfig] = None,
        window: float = 30.0,
        task_library: Optional[TaskLibrary] = None,
        rebaseline_after: int = 0,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        tracer: Tracer = NOOP_TRACER,
        alert_engine: Optional[AlertEngine] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.flowdiff = FlowDiff(config, tracer=tracer, metrics=metrics)
        self.metrics = metrics
        self._m_latency = metrics.histogram("monitor_window_seconds")
        self._m_windows = metrics.counter("monitor_windows_total")
        self._m_unhealthy = metrics.counter("monitor_unhealthy_windows_total")
        self._m_healthy_gauge = metrics.gauge("monitor_last_window_healthy")
        self._m_streak = metrics.gauge("monitor_healthy_streak")
        self.window = window
        self.task_library = task_library
        #: After this many consecutive healthy windows the newest healthy
        #: window becomes the baseline, so slow legitimate drift (workload
        #: growth, gradual redeployments) does not eventually alarm.
        #: 0 disables automatic re-anchoring.
        self.rebaseline_after = rebaseline_after
        self.baseline: Optional[BehaviorModel] = None
        self.history: List[WindowReport] = []
        self._cursor = 0.0
        self.rebaseline_count = 0
        self.alert_engine = alert_engine

    # ------------------------------------------------------------------

    def set_baseline(self, log: ControllerLog, t_start: float, t_end: float) -> None:
        """Model ``[t_start, t_end)`` of ``log`` as the healthy reference.

        Also positions the monitoring cursor at ``t_end`` so the first
        :meth:`advance` examines what follows the baseline.
        """
        sub = log.window(t_start, t_end)
        self.baseline = self.flowdiff.model(sub, window=(t_start, t_end))
        self._cursor = t_end
        self.history.clear()

    def advance(self, log: ControllerLog) -> List[WindowReport]:
        """Diagnose every complete window between the cursor and log end.

        Returns the newly produced window reports (also appended to
        :attr:`history`). Incomplete trailing windows wait for more log.

        Raises:
            RuntimeError: if no baseline has been set.
        """
        if self.baseline is None:
            raise RuntimeError("set_baseline() must run before advance()")
        _, log_end = log.time_span
        new_reports: List[WindowReport] = []
        while self._cursor + self.window <= log_end:
            t0 = self._cursor
            t1 = t0 + self.window
            started = time.perf_counter()
            sub = log.window(t0, t1)
            # Decode the window once; the same records feed the window
            # model and (below) a potential re-anchored baseline model.
            records = extract_flow_records(
                sub, self.flowdiff.config.signature.occurrence_gap
            )
            current = self.flowdiff.model(
                sub, window=(t0, t1), assess=False, records=records
            )
            report = self.flowdiff.diff(
                self.baseline,
                current,
                task_library=self.task_library,
                current_log=sub if self.task_library else None,
            )
            entry = WindowReport(t_start=t0, t_end=t1, report=report)
            self.history.append(entry)
            new_reports.append(entry)
            self._cursor = t1
            self._m_latency.observe(time.perf_counter() - started)
            self._m_windows.inc()
            if not entry.healthy:
                self._m_unhealthy.inc()
            self._m_healthy_gauge.set(1.0 if entry.healthy else 0.0)
            self._m_streak.set(self.healthy_streak())
            if self.alert_engine is not None:
                self.alert_engine.observe_window(entry)
                if self.metrics is not NOOP_REGISTRY:
                    self.alert_engine.observe_registry(self.metrics, at=t1)
            if (
                self.rebaseline_after > 0
                and entry.healthy
                and self.healthy_streak() >= self.rebaseline_after
            ):
                # Re-anchor on the most recent healthy window. A full
                # model (with stability assessment) replaces the baseline.
                self.baseline = self.flowdiff.model(
                    sub, window=(t0, t1), records=records
                )
                self.rebaseline_count += 1
        return new_reports

    # ------------------------------------------------------------------

    def problem_onset(self, problem: str) -> Optional[float]:
        """The start of the first window where ``problem`` was inferred."""
        for entry in self.history:
            if any(p.problem == problem for p in entry.report.problems):
                return entry.t_start
        return None

    def first_unhealthy(self) -> Optional[WindowReport]:
        """The earliest window with unexplained changes, if any."""
        for entry in self.history:
            if not entry.healthy:
                return entry
        return None

    @property
    def alerts(self) -> List[Alert]:
        """Alerts fired so far (empty without an attached engine)."""
        return self.alert_engine.alerts if self.alert_engine is not None else []

    def healthy_streak(self) -> int:
        """Number of consecutive healthy windows at the end of history."""
        streak = 0
        for entry in reversed(self.history):
            if not entry.healthy:
                break
            streak += 1
        return streak
