"""Continuous monitoring: sliding-window diagnosis over a live log.

The paper frames FlowDiff as an offline tool (compare L1 against L2), but
its deployment story is continuous: "FlowDiff frequently models the
behavior of a data center ... To detect problems, it compares the current
behavior with a previously computed, stable, and correct behavior"
(Section I). Two classes package that loop:

* :class:`DiagnosisStream` is the per-window bookkeeping engine — diff
  against the baseline, history, health metrics, alert wiring, and
  automatic re-anchoring. It does not care *how* the window model was
  produced, which is what lets the batch monitor below and the streaming
  service (:mod:`repro.service`) share one code path.
* :class:`SlidingDiagnoser` is the batch driver: each call to
  :meth:`~SlidingDiagnoser.advance` models the most recent window of a
  growing log from scratch and feeds it through the stream.

Consecutive reports expose *onset detection*: the first window where a
problem class appears tells the operator roughly when the problem
started, without re-reading old windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.diff.report import DiagnosisReport
from repro.core.events import extract_flow_records
from repro.core.flowdiff import FlowDiff, FlowDiffConfig
from repro.core.model import BehaviorModel
from repro.core.tasks.library import TaskLibrary
from repro.obs.alerts import Alert, AlertEngine
from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.tracing import NOOP_TRACER, Tracer, wall_now
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class WindowReport:
    """One monitoring step: the window bounds and its diagnosis."""

    t_start: float
    t_end: float
    report: DiagnosisReport

    @property
    def healthy(self) -> bool:
        """Whether this window showed no unexplained changes."""
        return self.report.healthy


class DiagnosisStream:
    """Diff successive window models against a baseline, with bookkeeping.

    One instance owns everything that happens *after* a window model
    exists: the diff, the report history, the ``monitor_*`` health
    metrics, alert-engine wiring, and baseline re-anchoring. Callers
    produce window models however they like — the batch
    :class:`SlidingDiagnoser` remodels each window from the log, the
    streaming service assembles them incrementally via signature
    ``merge()`` — and feed them through :meth:`observe`.

    Args:
        flowdiff: the configured pipeline used for diffs (and for the
            re-anchored baseline model when re-baselining triggers).
        task_library: learned operator-task signatures used to silence
            planned changes in every window.
        rebaseline_after: after this many consecutive healthy windows the
            newest healthy window becomes the baseline, so slow
            legitimate drift (workload growth, gradual redeployments)
            does not eventually alarm. 0 disables automatic re-anchoring.
        metrics: observability registry; each diagnosed window records
            its wall-clock latency (``monitor_window_seconds``) and the
            current health gauges.
        alert_engine: when given, every produced window report streams
            through the engine's rules (and the registry is sampled at
            the window end, stream-time-stamped) so alerts fire the
            moment a window turns unhealthy.
    """

    def __init__(
        self,
        flowdiff: FlowDiff,
        task_library: Optional[TaskLibrary] = None,
        rebaseline_after: int = 0,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        alert_engine: Optional[AlertEngine] = None,
    ) -> None:
        self.flowdiff = flowdiff
        self.metrics = metrics
        self._m_latency = metrics.histogram("monitor_window_seconds")
        self._m_windows = metrics.counter("monitor_windows_total")
        self._m_unhealthy = metrics.counter("monitor_unhealthy_windows_total")
        self._m_healthy_gauge = metrics.gauge("monitor_last_window_healthy")
        self._m_streak = metrics.gauge("monitor_healthy_streak")
        self.task_library = task_library
        self.rebaseline_after = rebaseline_after
        self.baseline: Optional[BehaviorModel] = None
        self.history: List[WindowReport] = []
        self.rebaseline_count = 0
        self.alert_engine = alert_engine

    def set_baseline_model(self, model: BehaviorModel) -> None:
        """Install the healthy reference model and reset history."""
        self.baseline = model
        self.history.clear()

    def observe(
        self,
        t0: float,
        t1: float,
        current: BehaviorModel,
        window_log: Optional[ControllerLog] = None,
        records=None,
        started: Optional[float] = None,
    ) -> WindowReport:
        """Diff one window model against the baseline and record it.

        Args:
            t0/t1: the window bounds.
            current: the window's behavior model.
            window_log: the log slice the model came from — needed for
                task-library matching and for the re-anchored baseline
                model (re-baselining silently waits when it is absent).
            records: the window's decoded flow records, reused by a
                potential re-anchored baseline model.
            started: a :func:`~repro.obs.tracing.wall_now` reading taken
                when work on the window began; when given, the window's
                wall-clock latency lands in ``monitor_window_seconds``.

        Raises:
            RuntimeError: if no baseline has been installed.
        """
        if self.baseline is None:
            raise RuntimeError("a baseline model must be set before observe()")
        report = self.flowdiff.diff(
            self.baseline,
            current,
            task_library=self.task_library,
            current_log=window_log if self.task_library else None,
        )
        entry = WindowReport(t_start=t0, t_end=t1, report=report)
        self.history.append(entry)
        if started is not None:
            self._m_latency.observe(wall_now() - started)
        self._m_windows.inc()
        if not entry.healthy:
            self._m_unhealthy.inc()
        self._m_healthy_gauge.set(1.0 if entry.healthy else 0.0)
        self._m_streak.set(self.healthy_streak())
        if self.alert_engine is not None:
            self.alert_engine.observe_window(entry)
            if self.metrics is not NOOP_REGISTRY:
                self.alert_engine.observe_registry(self.metrics, at=t1)
        if (
            self.rebaseline_after > 0
            and entry.healthy
            and self.healthy_streak() >= self.rebaseline_after
            and window_log is not None
        ):
            # Re-anchor on the most recent healthy window. A full model
            # (with stability assessment) replaces the baseline.
            self.baseline = self.flowdiff.model(
                window_log, window=(t0, t1), records=records
            )
            self.rebaseline_count += 1
        return entry

    # -- introspection --------------------------------------------------

    def problem_onset(self, problem: str) -> Optional[float]:
        """The start of the first window where ``problem`` was inferred."""
        for entry in self.history:
            if any(p.problem == problem for p in entry.report.problems):
                return entry.t_start
        return None

    def first_unhealthy(self) -> Optional[WindowReport]:
        """The earliest window with unexplained changes, if any."""
        for entry in self.history:
            if not entry.healthy:
                return entry
        return None

    @property
    def alerts(self) -> List[Alert]:
        """Alerts fired so far (empty without an attached engine)."""
        return self.alert_engine.alerts if self.alert_engine is not None else []

    def healthy_streak(self) -> int:
        """Number of consecutive healthy windows at the end of history."""
        streak = 0
        for entry in reversed(self.history):
            if not entry.healthy:
                break
            streak += 1
        return streak


class SlidingDiagnoser:
    """Periodically diff the newest log window against a healthy baseline.

    Args:
        config: FlowDiff tunables (thresholds, special nodes, ...).
        window: seconds of log modeled per step.
        task_library: learned operator-task signatures used to silence
            planned changes in every window.
        metrics: observability registry; each diagnosed window records its
            wall-clock latency (``monitor_window_seconds``) and the
            current health gauges, making a long-running diagnoser
            scrape-able mid-flight.
        tracer: span tracer handed to the underlying :class:`FlowDiff`.
        alert_engine: when given, every produced window report streams
            through the engine's rules (and the registry is sampled at the
            window end, stream-time-stamped) so alerts fire the moment a
            window turns unhealthy — no separate polling loop.
    """

    def __init__(
        self,
        config: Optional[FlowDiffConfig] = None,
        window: float = 30.0,
        task_library: Optional[TaskLibrary] = None,
        rebaseline_after: int = 0,
        metrics: MetricsRegistry = NOOP_REGISTRY,
        tracer: Tracer = NOOP_TRACER,
        alert_engine: Optional[AlertEngine] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.flowdiff = FlowDiff(config, tracer=tracer, metrics=metrics)
        self.metrics = metrics
        self.stream = DiagnosisStream(
            self.flowdiff,
            task_library=task_library,
            rebaseline_after=rebaseline_after,
            metrics=metrics,
            alert_engine=alert_engine,
        )
        self.window = window
        self._cursor = 0.0

    # -- delegated state (one source of truth: the stream) ---------------

    @property
    def baseline(self) -> Optional[BehaviorModel]:
        return self.stream.baseline

    @baseline.setter
    def baseline(self, model: Optional[BehaviorModel]) -> None:
        self.stream.baseline = model

    @property
    def history(self) -> List[WindowReport]:
        return self.stream.history

    @property
    def task_library(self) -> Optional[TaskLibrary]:
        return self.stream.task_library

    @property
    def rebaseline_after(self) -> int:
        return self.stream.rebaseline_after

    @property
    def rebaseline_count(self) -> int:
        return self.stream.rebaseline_count

    @property
    def alert_engine(self) -> Optional[AlertEngine]:
        return self.stream.alert_engine

    # ------------------------------------------------------------------

    def set_baseline(self, log: ControllerLog, t_start: float, t_end: float) -> None:
        """Model ``[t_start, t_end)`` of ``log`` as the healthy reference.

        Also positions the monitoring cursor at ``t_end`` so the first
        :meth:`advance` examines what follows the baseline.
        """
        sub = log.window(t_start, t_end)
        self.stream.set_baseline_model(
            self.flowdiff.model(sub, window=(t_start, t_end))
        )
        self._cursor = t_end

    def advance(self, log: ControllerLog) -> List[WindowReport]:
        """Diagnose every complete window between the cursor and log end.

        Returns the newly produced window reports (also appended to
        :attr:`history`). Incomplete trailing windows wait for more log.

        Raises:
            RuntimeError: if no baseline has been set.
        """
        if self.baseline is None:
            raise RuntimeError("set_baseline() must run before advance()")
        _, log_end = log.time_span
        new_reports: List[WindowReport] = []
        while self._cursor + self.window <= log_end:
            t0 = self._cursor
            t1 = t0 + self.window
            started = wall_now()
            sub = log.window(t0, t1)
            # Decode the window once; the same records feed the window
            # model and (in the stream) a potential re-anchored baseline.
            records = extract_flow_records(
                sub, self.flowdiff.config.signature.occurrence_gap
            )
            current = self.flowdiff.model(
                sub, window=(t0, t1), assess=False, records=records
            )
            entry = self.stream.observe(
                t0, t1, current, window_log=sub, records=records, started=started
            )
            new_reports.append(entry)
            self._cursor = t1
        return new_reports

    # ------------------------------------------------------------------

    def problem_onset(self, problem: str) -> Optional[float]:
        """The start of the first window where ``problem`` was inferred."""
        return self.stream.problem_onset(problem)

    def first_unhealthy(self) -> Optional[WindowReport]:
        """The earliest window with unexplained changes, if any."""
        return self.stream.first_unhealthy()

    @property
    def alerts(self) -> List[Alert]:
        """Alerts fired so far (empty without an attached engine)."""
        return self.stream.alerts

    def healthy_streak(self) -> int:
        """Number of consecutive healthy windows at the end of history."""
        return self.stream.healthy_streak()
