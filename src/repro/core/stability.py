"""Signature stability assessment (Section III-B, last paragraph).

"To determine whether a signature is stable, FlowDiff partitions the log
into several time intervals and computes the application signatures for
each interval. If a signature does not change significantly across all
intervals, we consider it stable and use it during problem detection."

Unstable signatures (e.g. component interaction under non-linear load
balancing, Section V-B1) are excluded from diffing so they cannot raise
false debugging flags.

Two raw-speed paths keep this from dominating serial modeling time, both
guarded by bit-identical equivalence tests against the original code:

* **Interval building** reuses the parallel pipeline's single-pass log
  partition (:func:`repro.core.events.partition_log`) instead of
  re-decoding the log once per sub-interval; logs that cannot be
  partitioned exactly (``FlowMod`` replies without ``in_reply_to``,
  duplicate reply ids) fall back to the per-interval ``log.window``
  rebuilds.
* **Distance folding** batches each matched interval sequence through
  the numpy kernels in :mod:`repro.core.vectorized` when numpy is
  importable; the pure Python fold remains both the fallback and the
  oracle the kernels are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.timeseries import split_intervals
from repro.core import vectorized
from repro.core.events import (
    FlowArrival,
    build_occurrence_runs,
    interval_flow_records,
    interval_flow_records_from_arrivals,
    partition_log,
)
from repro.core.signatures.application import (
    ApplicationSignature,
    SignatureConfig,
    build_application_signatures,
)
from repro.core.signatures.base import SignatureKind
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class StabilityThresholds:
    """Maximum across-interval distance for a signature to count as stable.

    Distances use each signature's ``distance`` semantics: normalized edge
    churn for CG, normalized-share drift for CI, dominant-peak shift in
    seconds for DD, correlation delta for PC, and max relative scalar
    change for FS. FS and PC tolerate more because short intervals carry
    sampling noise.
    """

    cg: float = 0.35
    fs: float = 0.6
    ci: float = 0.3
    dd: float = 0.03
    pc: float = 0.5


def _match_interval_signature(
    group_members: frozenset,
    interval_sigs: Dict[str, ApplicationSignature],
) -> Optional[ApplicationSignature]:
    """The interval signature whose group overlaps ``group_members`` most.

    Ties on overlap break to the smallest group key, never to dict
    insertion order, so the verdict is independent of how the interval
    dict happened to be assembled (the pipeline emits sorted-key dicts,
    for which this is the historical behavior; persisted or hand-built
    dicts may not be sorted).
    """
    best_key: Optional[str] = None
    best_overlap = 0
    for key, sig in interval_sigs.items():
        overlap = len(sig.group.members & group_members)
        if overlap == 0:
            continue
        if overlap > best_overlap or (
            overlap == best_overlap and best_key is not None and key < best_key
        ):
            best_key, best_overlap = key, overlap
    return interval_sigs[best_key] if best_key is not None else None


def _member_index(
    interval_sigs: Dict[str, ApplicationSignature],
) -> Dict[str, List[str]]:
    """Inverted index: member node -> group keys containing it."""
    index: Dict[str, List[str]] = {}
    for key, sig in interval_sigs.items():
        for member in sig.group.members:
            index.setdefault(member, []).append(key)
    return index


def _match_with_index(
    group_members: frozenset,
    interval_sigs: Dict[str, ApplicationSignature],
    index: Dict[str, List[str]],
) -> Optional[ApplicationSignature]:
    """Index-accelerated :func:`_match_interval_signature`.

    Visits only the groups that actually share a member instead of
    intersecting every interval group — the full scan is
    O(groups x |members|) per query and dominated ``assess_stability``
    on wide windows. Tie-breaking is identical: most overlap, then
    smallest group key.
    """
    overlaps: Dict[str, int] = {}
    for member in group_members:
        for key in index.get(member, ()):
            overlaps[key] = overlaps.get(key, 0) + 1
    if not overlaps:
        return None
    best_key = min(overlaps, key=lambda key: (-overlaps[key], key))
    return interval_sigs[best_key]


def _fast_interval_signatures(
    log: ControllerLog,
    config: SignatureConfig,
    intervals: List[Tuple[float, float]],
    arrivals: Optional[List[FlowArrival]] = None,
) -> Optional[List[Dict[str, ApplicationSignature]]]:
    """Per-interval signatures from one log pass, or None to fall back.

    The serial twin of the parallel pipeline's aligned-shard path: the
    log is partitioned once, each interval's ``PacketIn`` runs are built
    from its own bucket against the global reply map, and the interval
    view truncates runs and pairings at the bounds exactly like a
    ``log.window(a, b)`` rebuild would (equivalence is test-asserted).

    With full-window ``arrivals`` supplied (the caller has already run
    extraction — ``FlowDiff._model_serial`` always has), the interval
    views are sliced out of them instead of regrouping each interval's
    ``PacketIn`` bucket, skipping the per-interval run rebuilds
    entirely. Both forms require the :func:`partition_log` reply-id
    precondition and return None when the log fails it.
    """
    partition, _reason = partition_log(
        log, intervals, collect_pins=arrivals is None
    )
    if partition is None:
        return None
    out: List[Dict[str, ApplicationSignature]] = []
    for i, (a, b) in enumerate(intervals):
        if arrivals is not None:
            records = interval_flow_records_from_arrivals(
                arrivals, partition.removed_by_interval[i], a, b
            )
        else:
            runs = build_occurrence_runs(
                partition.pins_by_interval[i],
                partition.mods_by_reply,
                config.occurrence_gap,
            )
            records = interval_flow_records(
                runs, partition.removed_by_interval[i], a, b
            )
        out.append(
            build_application_signatures(
                None, config, window=(a, b), records=records
            )
        )
    return out


def _worst_distances_pure(
    matched: List[ApplicationSignature],
) -> Dict[SignatureKind, float]:
    """The original pairwise fold — fallback and oracle for the kernels."""
    worst = {
        SignatureKind.CG: 0.0,
        SignatureKind.FS: 0.0,
        SignatureKind.CI: 0.0,
        SignatureKind.DD: 0.0,
        SignatureKind.PC: 0.0,
    }
    for a, b in zip(matched, matched[1:]):
        worst[SignatureKind.CG] = max(worst[SignatureKind.CG], a.cg.distance(b.cg))
        worst[SignatureKind.FS] = max(worst[SignatureKind.FS], a.fs.distance(b.fs))
        worst[SignatureKind.CI] = max(worst[SignatureKind.CI], a.ci.distance(b.ci))
        worst[SignatureKind.DD] = max(worst[SignatureKind.DD], a.dd.distance(b.dd))
        worst[SignatureKind.PC] = max(worst[SignatureKind.PC], a.pc.distance(b.pc))
    return worst


def assess_stability(
    log: ControllerLog,
    config: Optional[SignatureConfig] = None,
    parts: int = 3,
    thresholds: Optional[StabilityThresholds] = None,
    window: Optional[Tuple[float, float]] = None,
    full: Optional[Dict[str, ApplicationSignature]] = None,
    per_interval: Optional[List[Dict[str, ApplicationSignature]]] = None,
    arrivals: Optional[List[FlowArrival]] = None,
    vectorize: Optional[bool] = None,
) -> Dict[Tuple[str, SignatureKind], bool]:
    """Per (group, kind) stability verdicts over ``parts`` sub-intervals.

    Signatures observed in fewer than two sub-intervals are left unjudged
    (absent from the result, treated as stable by the behavior model) —
    sparse data is not evidence of instability.

    Args:
        full: precomputed full-window application signatures (what
            ``FlowDiff.model`` already built); when omitted they are
            rebuilt here from the log.
        per_interval: precomputed per-sub-interval signatures, one dict
            per interval of ``split_intervals(t_start, t_end, parts)`` —
            the sharded parallel pipeline supplies these from its shard
            work instead of re-windowing the log ``parts`` times.
        arrivals: the full-window flow arrivals, when the caller already
            extracted them; interval views are then sliced out of them
            instead of regrouping the log's ``PacketIn`` buckets. Only
            consulted when ``per_interval`` is absent and the window is
            the log's full span.
        vectorize: force the numpy distance kernels on (True) or off
            (False); default (None) uses them whenever numpy imports.
            Verdicts are identical either way — the pure fold is the
            kernels' tested oracle.

    Raises:
        ValueError: if ``parts`` < 2, or ``per_interval`` has the wrong
            number of entries.
        RuntimeError: if ``vectorize=True`` but numpy is unavailable.
    """
    if parts < 2:
        raise ValueError(f"stability assessment needs >= 2 parts, got {parts}")
    config = config or SignatureConfig()
    thresholds = thresholds or StabilityThresholds()
    if window is None:
        window = log.time_span
    t_start, t_end = window
    if t_end <= t_start:
        return {}
    use_vectorized = vectorized.HAVE_NUMPY if vectorize is None else vectorize

    if full is None:
        full = build_application_signatures(log, config, window=window)
    intervals = split_intervals(t_start, t_end, parts)
    if per_interval is None and tuple(window) == tuple(log.time_span):
        # Single-pass partition; None on the unpartitionable log shapes,
        # for which the per-interval rebuild below stays authoritative.
        per_interval = _fast_interval_signatures(log, config, intervals, arrivals)
    if per_interval is None:
        per_interval = [
            build_application_signatures(log.window(a, b), config, window=(a, b))
            for a, b in intervals
        ]
    elif len(per_interval) != len(intervals):
        raise ValueError(
            f"per_interval has {len(per_interval)} entries for "
            f"{len(intervals)} intervals"
        )

    indexes = [_member_index(sigs) for sigs in per_interval]
    verdicts: Dict[Tuple[str, SignatureKind], bool] = {}
    for key, signature in full.items():
        matched = [
            m
            for m in (
                _match_with_index(signature.group.members, sigs, index)
                for sigs, index in zip(per_interval, indexes)
            )
            if m is not None
        ]
        if len(matched) < 2:
            continue
        if use_vectorized:
            worst = vectorized.worst_distances(matched)
        else:
            worst = _worst_distances_pure(matched)
        verdicts[(key, SignatureKind.CG)] = worst[SignatureKind.CG] <= thresholds.cg
        verdicts[(key, SignatureKind.FS)] = worst[SignatureKind.FS] <= thresholds.fs
        verdicts[(key, SignatureKind.CI)] = worst[SignatureKind.CI] <= thresholds.ci
        verdicts[(key, SignatureKind.DD)] = worst[SignatureKind.DD] <= thresholds.dd
        verdicts[(key, SignatureKind.PC)] = worst[SignatureKind.PC] <= thresholds.pc
    return verdicts
