"""Signature stability assessment (Section III-B, last paragraph).

"To determine whether a signature is stable, FlowDiff partitions the log
into several time intervals and computes the application signatures for
each interval. If a signature does not change significantly across all
intervals, we consider it stable and use it during problem detection."

Unstable signatures (e.g. component interaction under non-linear load
balancing, Section V-B1) are excluded from diffing so they cannot raise
false debugging flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.timeseries import split_intervals
from repro.core.signatures.application import (
    ApplicationSignature,
    SignatureConfig,
    build_application_signatures,
)
from repro.core.signatures.base import SignatureKind
from repro.openflow.log import ControllerLog


@dataclass(frozen=True)
class StabilityThresholds:
    """Maximum across-interval distance for a signature to count as stable.

    Distances use each signature's ``distance`` semantics: normalized edge
    churn for CG, normalized-share drift for CI, dominant-peak shift in
    seconds for DD, correlation delta for PC, and max relative scalar
    change for FS. FS and PC tolerate more because short intervals carry
    sampling noise.
    """

    cg: float = 0.35
    fs: float = 0.6
    ci: float = 0.3
    dd: float = 0.03
    pc: float = 0.5


def _match_interval_signature(
    group_members: frozenset,
    interval_sigs: Dict[str, ApplicationSignature],
) -> Optional[ApplicationSignature]:
    """The interval signature whose group overlaps ``group_members`` most."""
    best = None
    best_overlap = 0
    for sig in interval_sigs.values():
        overlap = len(sig.group.members & group_members)
        if overlap > best_overlap:
            best, best_overlap = sig, overlap
    return best


def assess_stability(
    log: ControllerLog,
    config: Optional[SignatureConfig] = None,
    parts: int = 3,
    thresholds: Optional[StabilityThresholds] = None,
    window: Optional[Tuple[float, float]] = None,
    full: Optional[Dict[str, ApplicationSignature]] = None,
    per_interval: Optional[List[Dict[str, ApplicationSignature]]] = None,
) -> Dict[Tuple[str, SignatureKind], bool]:
    """Per (group, kind) stability verdicts over ``parts`` sub-intervals.

    Signatures observed in fewer than two sub-intervals are left unjudged
    (absent from the result, treated as stable by the behavior model) —
    sparse data is not evidence of instability.

    Args:
        full: precomputed full-window application signatures (what
            ``FlowDiff.model`` already built); when omitted they are
            rebuilt here from the log.
        per_interval: precomputed per-sub-interval signatures, one dict
            per interval of ``split_intervals(t_start, t_end, parts)`` —
            the sharded parallel pipeline supplies these from its shard
            work instead of re-windowing the log ``parts`` times.

    Raises:
        ValueError: if ``parts`` < 2, or ``per_interval`` has the wrong
            number of entries.
    """
    if parts < 2:
        raise ValueError(f"stability assessment needs >= 2 parts, got {parts}")
    config = config or SignatureConfig()
    thresholds = thresholds or StabilityThresholds()
    if window is None:
        window = log.time_span
    t_start, t_end = window
    if t_end <= t_start:
        return {}

    if full is None:
        full = build_application_signatures(log, config, window=window)
    intervals = split_intervals(t_start, t_end, parts)
    if per_interval is None:
        per_interval = [
            build_application_signatures(log.window(a, b), config, window=(a, b))
            for a, b in intervals
        ]
    elif len(per_interval) != len(intervals):
        raise ValueError(
            f"per_interval has {len(per_interval)} entries for "
            f"{len(intervals)} intervals"
        )

    verdicts: Dict[Tuple[str, SignatureKind], bool] = {}
    for key, signature in full.items():
        matched = [
            m
            for m in (
                _match_interval_signature(signature.group.members, sigs)
                for sigs in per_interval
            )
            if m is not None
        ]
        if len(matched) < 2:
            continue
        worst = {
            SignatureKind.CG: 0.0,
            SignatureKind.FS: 0.0,
            SignatureKind.CI: 0.0,
            SignatureKind.DD: 0.0,
            SignatureKind.PC: 0.0,
        }
        for a, b in zip(matched, matched[1:]):
            worst[SignatureKind.CG] = max(worst[SignatureKind.CG], a.cg.distance(b.cg))
            worst[SignatureKind.FS] = max(worst[SignatureKind.FS], a.fs.distance(b.fs))
            worst[SignatureKind.CI] = max(worst[SignatureKind.CI], a.ci.distance(b.ci))
            worst[SignatureKind.DD] = max(worst[SignatureKind.DD], a.dd.distance(b.dd))
            worst[SignatureKind.PC] = max(worst[SignatureKind.PC], a.pc.distance(b.pc))
        verdicts[(key, SignatureKind.CG)] = worst[SignatureKind.CG] <= thresholds.cg
        verdicts[(key, SignatureKind.FS)] = worst[SignatureKind.FS] <= thresholds.fs
        verdicts[(key, SignatureKind.CI)] = worst[SignatureKind.CI] <= thresholds.ci
        verdicts[(key, SignatureKind.DD)] = worst[SignatureKind.DD] <= thresholds.dd
        verdicts[(key, SignatureKind.PC)] = worst[SignatureKind.PC] <= thresholds.pc
    return verdicts
