"""Application-group extraction (Section III-B).

FlowDiff organizes the data center's hosts into *application groups*: sets
of application nodes forming a connected communication graph. Hosts that
are connected **only** through special-purpose service nodes (DNS, NFS,
...) belong to separate groups — the operator-supplied ``special_nodes``
set is the domain knowledge that disambiguates them.

Group identity must also be matchable across two logs (L1 vs L2) even when
membership shifted (a crashed server drops out, an intruder appears);
:func:`match_groups` pairs groups by maximum member overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.events import FlowArrival


@dataclass(frozen=True)
class ApplicationGroup:
    """One application group and the shared services it touches.

    Attributes:
        members: the application hosts in the group.
        services: special-purpose nodes the group communicates with (not
            members; recorded for diagnosis context).
    """

    members: FrozenSet[str]
    services: FrozenSet[str]

    @property
    def key(self) -> str:
        """A deterministic identifier derived from the member set."""
        return "|".join(sorted(self.members))

    def __contains__(self, host: str) -> bool:
        return host in self.members

    def owns_edge(self, src: str, dst: str) -> bool:
        """Whether a flow between ``src`` and ``dst`` belongs to this group.

        Group-internal edges and edges between a member and a shared
        service both count; purely service-to-service traffic does not.
        """
        return (src in self.members and dst in self.members) or (
            src in self.members and dst in self.services
        ) or (src in self.services and dst in self.members)


def extract_groups(
    arrivals: Sequence[FlowArrival],
    special_nodes: Iterable[str] = (),
) -> List[ApplicationGroup]:
    """Partition hosts into application groups from observed flows.

    Union-find over flow endpoints, skipping unions through special nodes;
    each special node is then attributed (as a service) to every group any
    of its peers belongs to.

    Returns:
        Groups sorted by their deterministic key.
    """
    special = set(special_nodes)
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    service_peers: Dict[str, Set[str]] = {}
    for arrival in arrivals:
        src, dst = arrival.src, arrival.dst
        for node in (src, dst):
            if node not in special:
                parent.setdefault(node, node)
        if src in special and dst in special:
            continue
        if src in special:
            service_peers.setdefault(src, set()).add(dst)
        elif dst in special:
            service_peers.setdefault(dst, set()).add(src)
        else:
            union(src, dst)

    components: Dict[str, Set[str]] = {}
    for node in parent:
        components.setdefault(find(node), set()).add(node)

    groups = []
    for members in components.values():
        touched = frozenset(
            svc for svc, peers in service_peers.items() if peers & members
        )
        groups.append(
            ApplicationGroup(members=frozenset(members), services=touched)
        )
    groups.sort(key=lambda g: g.key)
    return groups


def group_of(groups: Sequence[ApplicationGroup], host: str) -> Optional[ApplicationGroup]:
    """The group containing ``host`` as a member, if any."""
    for group in groups:
        if host in group:
            return group
    return None


def match_groups(
    baseline: Sequence[ApplicationGroup],
    current: Sequence[ApplicationGroup],
) -> List[Tuple[Optional[ApplicationGroup], Optional[ApplicationGroup]]]:
    """Pair groups across two logs by maximum member overlap.

    Greedy maximum-Jaccard matching: each baseline group is paired with the
    unmatched current group sharing the most members (ties broken by key
    order). Unpaired groups on either side are returned with ``None``
    opposite them — a disappeared or newly appeared application.
    """
    pairs: List[Tuple[Optional[ApplicationGroup], Optional[ApplicationGroup]]] = []
    remaining = list(current)
    for base in baseline:
        best = None
        best_score = 0.0
        for cand in remaining:
            inter = len(base.members & cand.members)
            if inter == 0:
                continue
            score = inter / len(base.members | cand.members)
            if score > best_score:
                best, best_score = cand, score
        if best is not None:
            remaining.remove(best)
        pairs.append((base, best))
    for leftover in remaining:
        pairs.append((None, leftover))
    return pairs
