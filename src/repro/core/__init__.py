"""FlowDiff core: the paper's primary contribution.

Public entry points:

* :class:`~repro.core.flowdiff.FlowDiff` — model controller logs and diff
  models into diagnosis reports.
* :class:`~repro.core.tasks.library.TaskLibrary` — learn and detect
  operator-task signatures.
* :mod:`repro.core.signatures` — the individual signature builders, for
  users who want the pieces.
"""

from repro.core.events import (
    FlowArrival,
    FlowRecord,
    HopReport,
    extract_flow_arrivals,
    extract_flow_records,
    join_flow_records,
    splits_occurrence,
    timed_flows,
)
from repro.core.groups import ApplicationGroup, extract_groups, match_groups
from repro.core.model import BehaviorModel
from repro.core.flowdiff import FlowDiff, FlowDiffConfig
from repro.core.monitor import SlidingDiagnoser, WindowReport
from repro.core.parallel import parallel_model
from repro.core.persist import (
    ModelCache,
    ModelLoadError,
    load_model,
    log_fingerprint,
    model_cache_key,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.core.stability import StabilityThresholds, assess_stability
from repro.core.tasks import TaskDetector, TaskEvent, TaskLibrary, TaskSignature

__all__ = [
    "FlowArrival",
    "FlowRecord",
    "HopReport",
    "extract_flow_arrivals",
    "extract_flow_records",
    "join_flow_records",
    "splits_occurrence",
    "timed_flows",
    "ApplicationGroup",
    "extract_groups",
    "match_groups",
    "BehaviorModel",
    "FlowDiff",
    "FlowDiffConfig",
    "SlidingDiagnoser",
    "WindowReport",
    "parallel_model",
    "ModelCache",
    "ModelLoadError",
    "log_fingerprint",
    "model_cache_key",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "save_model",
    "StabilityThresholds",
    "assess_stability",
    "TaskDetector",
    "TaskEvent",
    "TaskLibrary",
    "TaskSignature",
]
