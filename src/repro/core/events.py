"""Decoding controller logs into flow-level observations.

The raw controller log is message-granular: one ``PacketIn`` per switch a
new flow traverses, paired ``FlowMod`` replies, and eventual
``FlowRemoved`` notifications. Signature building needs *flow-level*
observations instead:

* a :class:`FlowArrival` — one occurrence of a flow entering the network,
  carrying its start time and per-switch hop reports in traversal order
  (the Figure 3 pattern), from which the connectivity, interaction, delay,
  and correlation signatures and the physical-topology / ISL inference all
  derive;
* a :class:`FlowRecord` — an arrival joined with its ``FlowRemoved``
  counters (bytes, packets, duration), feeding the flow-statistics
  signature.

A 5-tuple can recur (connection reuse after entry expiry, periodic jobs);
occurrences of the same key separated by more than ``occurrence_gap`` are
distinct arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.occurrence import splits_occurrence
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey
from repro.openflow.messages import FlowMod, FlowRemoved, PacketIn


@dataclass(frozen=True)
class HopReport:
    """One switch's report of a flow occurrence.

    Attributes:
        dpid: the reporting switch.
        in_port: ingress port from the ``PacketIn``.
        packet_in_at: controller timestamp of the ``PacketIn``.
        flow_mod_at: controller timestamp of the paired ``FlowMod`` (None
            when the controller dropped the request).
        out_port: egress port from the ``FlowMod`` (None when dropped).
    """

    dpid: str
    in_port: int
    packet_in_at: float
    flow_mod_at: Optional[float] = None
    out_port: Optional[int] = None


@dataclass(frozen=True)
class FlowArrival:
    """One occurrence of a flow, as seen through control traffic.

    Attributes:
        flow: the 5-tuple.
        time: arrival time (first ``PacketIn`` timestamp).
        hops: per-switch reports in traversal order.
    """

    flow: FlowKey
    time: float
    hops: Tuple[HopReport, ...]

    @property
    def src(self) -> str:
        """Source endpoint."""
        return self.flow.src

    @property
    def dst(self) -> str:
        """Destination endpoint."""
        return self.flow.dst

    @property
    def path_dpids(self) -> Tuple[str, ...]:
        """Switch dpids in traversal order."""
        return tuple(h.dpid for h in self.hops)


@dataclass(frozen=True)
class FlowRecord:
    """A flow occurrence joined with its final counters.

    Attributes:
        arrival: the occurrence.
        byte_count: bytes matched (max across reporting switches, since
            every on-path switch sees the full flow).
        packet_count: packets matched.
        duration: entry active time, approximating flow duration.
    """

    arrival: FlowArrival
    byte_count: int
    packet_count: int
    duration: float


def arrival_sort_key(arrival: FlowArrival) -> Tuple[float, FlowKey]:
    """Deterministic ordering for arrival lists: (time, flow key).

    The flow-key tiebreak makes the order independent of extraction
    strategy, so the sharded parallel pipeline and the serial path emit
    byte-identical arrival sequences even when two flows start at the
    same timestamp.
    """
    return (arrival.time, arrival.flow)


def extract_flow_arrivals(
    log: ControllerLog, occurrence_gap: float = 1.0
) -> List[FlowArrival]:
    """Group per-switch ``PacketIn``/``FlowMod`` messages into flow arrivals.

    Messages with the same 5-tuple within ``occurrence_gap`` seconds of the
    previous report belong to one occurrence (the flow traversing its
    path); a larger gap starts a new occurrence. ``FlowMod`` replies are
    paired via their ``in_reply_to`` buffer id when present, falling back
    to (dpid, order) matching.

    Returns:
        Arrivals sorted by time.
    """
    # Pair FlowMods with PacketIns.
    mods_by_reply: Dict[int, FlowMod] = {}
    unpaired_mods: Dict[str, List[FlowMod]] = {}
    for mod in log.flow_mods():
        if mod.in_reply_to is not None:
            mods_by_reply[mod.in_reply_to] = mod
        else:
            unpaired_mods.setdefault(mod.dpid, []).append(mod)

    def find_mod(pin: PacketIn) -> Optional[FlowMod]:
        if pin.buffer_id in mods_by_reply:
            return mods_by_reply[pin.buffer_id]
        candidates = unpaired_mods.get(pin.dpid, [])
        for mod in candidates:
            if mod.timestamp >= pin.timestamp and mod.match.matches(pin.flow):
                candidates.remove(mod)
                return mod
        return None

    arrivals: List[FlowArrival] = []
    open_runs: Dict[FlowKey, List[HopReport]] = {}
    last_seen: Dict[FlowKey, float] = {}

    def close(flow: FlowKey) -> None:
        hops = open_runs.pop(flow, [])
        if hops:
            arrivals.append(
                FlowArrival(flow=flow, time=hops[0].packet_in_at, hops=tuple(hops))
            )

    for pin in log.packet_ins():
        flow = pin.flow
        if flow in open_runs and splits_occurrence(last_seen[flow], pin.timestamp, occurrence_gap):
            close(flow)
        mod = find_mod(pin)
        hop = HopReport(
            dpid=pin.dpid,
            in_port=pin.in_port,
            packet_in_at=pin.timestamp,
            flow_mod_at=mod.timestamp if mod else None,
            out_port=mod.out_port if mod else None,
        )
        open_runs.setdefault(flow, []).append(hop)
        last_seen[flow] = pin.timestamp

    for flow in list(open_runs):
        close(flow)
    arrivals.sort(key=arrival_sort_key)
    return arrivals


def extract_flow_records(
    log: ControllerLog, occurrence_gap: float = 1.0
) -> List[FlowRecord]:
    """Join flow arrivals with their ``FlowRemoved`` counters.

    Each arrival takes the earliest unconsumed ``FlowRemoved`` whose match
    covers the flow and whose timestamp follows the arrival; the byte and
    packet counts are maximized across the on-path switches that reported.
    Arrivals with no expiry report in the log window keep zero counters
    (they are still useful for structural signatures).
    """
    arrivals = extract_flow_arrivals(log, occurrence_gap)
    return join_flow_records(arrivals, log.flow_removed())


def join_flow_records(
    arrivals: List[FlowArrival], removed: List[FlowRemoved]
) -> List[FlowRecord]:
    """Join already-extracted arrivals with time-ordered expiry reports.

    The single joining implementation shared by the serial path (via
    :func:`extract_flow_records`) and the sharded parallel pipeline
    (:mod:`repro.core.parallel`), which stitches arrivals across shard
    boundaries first and joins once over the full window. ``removed``
    must be in log (time) order — consumption cursors rely on it.
    """
    # Index expiry reports for O(1) joining, keyed flow-first so the hot
    # loop hashes each arrival's flow once rather than once per hop. Keys
    # are plain 5-tuples — hashing one is several times cheaper than a
    # dataclass FlowKey, and this loop runs once per expiry report.
    # Microflow matches are keyed by their exact 5-tuple per dpid; wildcard
    # matches (rare in reactive deployments) fall back to a small linear list.
    exact: Dict[tuple, Dict[str, List[FlowRemoved]]] = {}
    wildcards: List[List] = []  # [FlowRemoved, consumed_flag]
    for fr in removed:
        m = fr.match
        if m is not None and m.is_microflow:
            key = (m.src, m.dst, m.src_port, m.dst_port, m.proto)
            exact.setdefault(key, {}).setdefault(fr.dpid, []).append(fr)
        else:
            wildcards.append([fr, False])
    # Per-bucket cursor: reports are already time-ordered within the log.
    cursors: Dict[tuple, Dict[str, int]] = {}

    records: List[FlowRecord] = []
    for arrival in arrivals:
        best_bytes = 0
        best_packets = 0
        best_duration = 0.0
        on_path = {h.dpid for h in arrival.hops}
        taken_dpids: set = set()
        f = arrival.flow
        flow_key = (f.src, f.dst, f.src_port, f.dst_port, f.proto)
        by_dpid = exact.get(flow_key)
        if by_dpid:
            flow_cursors = cursors.setdefault(flow_key, {})
            for dpid in on_path:
                bucket = by_dpid.get(dpid)
                if not bucket:
                    continue
                i = flow_cursors.get(dpid, 0)
                while i < len(bucket) and bucket[i].timestamp < arrival.time:
                    i += 1
                if i < len(bucket):
                    fr = bucket[i]
                    flow_cursors[dpid] = i + 1
                    taken_dpids.add(dpid)
                    best_bytes = max(best_bytes, fr.byte_count)
                    best_packets = max(best_packets, fr.packet_count)
                    best_duration = max(best_duration, fr.duration)
        for item in wildcards:
            fr, consumed = item
            if consumed or fr.timestamp < arrival.time:
                continue
            if fr.dpid not in on_path or fr.dpid in taken_dpids:
                continue
            if not fr.match.matches(arrival.flow):
                continue
            # At most one expiry report per switch belongs to one arrival;
            # later reports for the same 5-tuple describe re-occurrences.
            item[1] = True
            taken_dpids.add(fr.dpid)
            best_bytes = max(best_bytes, fr.byte_count)
            best_packets = max(best_packets, fr.packet_count)
            best_duration = max(best_duration, fr.duration)
        records.append(
            FlowRecord(
                arrival=arrival,
                byte_count=best_bytes,
                packet_count=best_packets,
                duration=best_duration,
            )
        )
    return records


def timed_flows(log: ControllerLog, dedup_window: float = 0.0) -> List[Tuple[float, FlowKey]]:
    """Flatten a log into (time, flow) pairs, one per flow arrival.

    The representation task mining consumes. ``dedup_window`` > 0 collapses
    repeat reports of the same 5-tuple within the window (the per-switch
    PacketIn fan-out), keeping the first.
    """
    out: List[Tuple[float, FlowKey]] = []
    last: Dict[FlowKey, float] = {}
    for pin in log.packet_ins():
        prev = last.get(pin.flow)
        if prev is not None and dedup_window > 0 and pin.timestamp - prev <= dedup_window:
            continue
        last[pin.flow] = pin.timestamp
        out.append((pin.timestamp, pin.flow))
    return out
