"""Decoding controller logs into flow-level observations.

The raw controller log is message-granular: one ``PacketIn`` per switch a
new flow traverses, paired ``FlowMod`` replies, and eventual
``FlowRemoved`` notifications. Signature building needs *flow-level*
observations instead:

* a :class:`FlowArrival` — one occurrence of a flow entering the network,
  carrying its start time and per-switch hop reports in traversal order
  (the Figure 3 pattern), from which the connectivity, interaction, delay,
  and correlation signatures and the physical-topology / ISL inference all
  derive;
* a :class:`FlowRecord` — an arrival joined with its ``FlowRemoved``
  counters (bytes, packets, duration), feeding the flow-statistics
  signature.

A 5-tuple can recur (connection reuse after entry expiry, periodic jobs);
occurrences of the same key separated by more than ``occurrence_gap`` are
distinct arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.occurrence import splits_occurrence
from repro.openflow.log import ControllerLog
from repro.openflow.match import FlowKey
from repro.openflow.messages import FlowMod, FlowRemoved, PacketIn, PortStatus


@dataclass(frozen=True)
class HopReport:
    """One switch's report of a flow occurrence.

    Attributes:
        dpid: the reporting switch.
        in_port: ingress port from the ``PacketIn``.
        packet_in_at: controller timestamp of the ``PacketIn``.
        flow_mod_at: controller timestamp of the paired ``FlowMod`` (None
            when the controller dropped the request).
        out_port: egress port from the ``FlowMod`` (None when dropped).
    """

    dpid: str
    in_port: int
    packet_in_at: float
    flow_mod_at: Optional[float] = None
    out_port: Optional[int] = None


@dataclass(frozen=True)
class FlowArrival:
    """One occurrence of a flow, as seen through control traffic.

    Attributes:
        flow: the 5-tuple.
        time: arrival time (first ``PacketIn`` timestamp).
        hops: per-switch reports in traversal order.
    """

    flow: FlowKey
    time: float
    hops: Tuple[HopReport, ...]

    @property
    def src(self) -> str:
        """Source endpoint."""
        return self.flow.src

    @property
    def dst(self) -> str:
        """Destination endpoint."""
        return self.flow.dst

    @property
    def path_dpids(self) -> Tuple[str, ...]:
        """Switch dpids in traversal order."""
        return tuple(h.dpid for h in self.hops)


@dataclass(frozen=True)
class FlowRecord:
    """A flow occurrence joined with its final counters.

    Attributes:
        arrival: the occurrence.
        byte_count: bytes matched (max across reporting switches, since
            every on-path switch sees the full flow).
        packet_count: packets matched.
        duration: entry active time, approximating flow duration.
    """

    arrival: FlowArrival
    byte_count: int
    packet_count: int
    duration: float


def arrival_sort_key(arrival: FlowArrival) -> Tuple[float, FlowKey]:
    """Deterministic ordering for arrival lists: (time, flow key).

    The flow-key tiebreak makes the order independent of extraction
    strategy, so the sharded parallel pipeline and the serial path emit
    byte-identical arrival sequences even when two flows start at the
    same timestamp.
    """
    return (arrival.time, arrival.flow)


def extract_flow_arrivals(
    log: ControllerLog, occurrence_gap: float = 1.0
) -> List[FlowArrival]:
    """Group per-switch ``PacketIn``/``FlowMod`` messages into flow arrivals.

    Messages with the same 5-tuple within ``occurrence_gap`` seconds of the
    previous report belong to one occurrence (the flow traversing its
    path); a larger gap starts a new occurrence. ``FlowMod`` replies are
    paired via their ``in_reply_to`` buffer id when present, falling back
    to (dpid, order) matching.

    Returns:
        Arrivals sorted by time.
    """
    # Pair FlowMods with PacketIns.
    mods_by_reply: Dict[int, FlowMod] = {}
    unpaired_mods: Dict[str, List[FlowMod]] = {}
    for mod in log.flow_mods():
        if mod.in_reply_to is not None:
            mods_by_reply[mod.in_reply_to] = mod
        else:
            unpaired_mods.setdefault(mod.dpid, []).append(mod)

    def find_mod(pin: PacketIn) -> Optional[FlowMod]:
        if pin.buffer_id in mods_by_reply:
            return mods_by_reply[pin.buffer_id]
        candidates = unpaired_mods.get(pin.dpid, [])
        for mod in candidates:
            if mod.timestamp >= pin.timestamp and mod.match.matches(pin.flow):
                candidates.remove(mod)
                return mod
        return None

    arrivals: List[FlowArrival] = []
    open_runs: Dict[FlowKey, List[HopReport]] = {}
    last_seen: Dict[FlowKey, float] = {}

    def close(flow: FlowKey) -> None:
        hops = open_runs.pop(flow, [])
        if hops:
            arrivals.append(
                FlowArrival(flow=flow, time=hops[0].packet_in_at, hops=tuple(hops))
            )

    for pin in log.packet_ins():
        flow = pin.flow
        if flow in open_runs and splits_occurrence(last_seen[flow], pin.timestamp, occurrence_gap):
            close(flow)
        mod = find_mod(pin)
        hop = HopReport(
            dpid=pin.dpid,
            in_port=pin.in_port,
            packet_in_at=pin.timestamp,
            flow_mod_at=mod.timestamp if mod else None,
            out_port=mod.out_port if mod else None,
        )
        open_runs.setdefault(flow, []).append(hop)
        last_seen[flow] = pin.timestamp

    for flow in list(open_runs):
        close(flow)
    arrivals.sort(key=arrival_sort_key)
    return arrivals


def extract_flow_records(
    log: ControllerLog, occurrence_gap: float = 1.0
) -> List[FlowRecord]:
    """Join flow arrivals with their ``FlowRemoved`` counters.

    Each arrival takes the earliest unconsumed ``FlowRemoved`` whose match
    covers the flow and whose timestamp follows the arrival; the byte and
    packet counts are maximized across the on-path switches that reported.
    Arrivals with no expiry report in the log window keep zero counters
    (they are still useful for structural signatures).
    """
    arrivals = extract_flow_arrivals(log, occurrence_gap)
    return join_flow_records(arrivals, log.flow_removed())


def join_flow_records(
    arrivals: List[FlowArrival], removed: List[FlowRemoved]
) -> List[FlowRecord]:
    """Join already-extracted arrivals with time-ordered expiry reports.

    The single joining implementation shared by the serial path (via
    :func:`extract_flow_records`) and the sharded parallel pipeline
    (:mod:`repro.core.parallel`), which stitches arrivals across shard
    boundaries first and joins once over the full window. ``removed``
    must be in log (time) order — consumption cursors rely on it.
    """
    # Index expiry reports for O(1) joining, keyed flow-first so the hot
    # loop hashes each arrival's flow once rather than once per hop. Keys
    # are plain 5-tuples — hashing one is several times cheaper than a
    # dataclass FlowKey, and this loop runs once per expiry report.
    # Microflow matches are keyed by their exact 5-tuple per dpid; wildcard
    # matches (rare in reactive deployments) fall back to a small linear list.
    exact: Dict[tuple, Dict[str, List[FlowRemoved]]] = {}
    wildcards: List[List] = []  # [FlowRemoved, consumed_flag]
    for fr in removed:
        m = fr.match
        if m is not None and m.is_microflow:
            key = (m.src, m.dst, m.src_port, m.dst_port, m.proto)
            exact.setdefault(key, {}).setdefault(fr.dpid, []).append(fr)
        else:
            wildcards.append([fr, False])
    # Per-bucket cursor: reports are already time-ordered within the log.
    cursors: Dict[tuple, Dict[str, int]] = {}

    records: List[FlowRecord] = []
    for arrival in arrivals:
        best_bytes = 0
        best_packets = 0
        best_duration = 0.0
        on_path = {h.dpid for h in arrival.hops}
        taken_dpids: set = set()
        f = arrival.flow
        flow_key = (f.src, f.dst, f.src_port, f.dst_port, f.proto)
        by_dpid = exact.get(flow_key)
        if by_dpid:
            flow_cursors = cursors.setdefault(flow_key, {})
            for dpid in on_path:
                bucket = by_dpid.get(dpid)
                if not bucket:
                    continue
                i = flow_cursors.get(dpid, 0)
                while i < len(bucket) and bucket[i].timestamp < arrival.time:
                    i += 1
                if i < len(bucket):
                    fr = bucket[i]
                    flow_cursors[dpid] = i + 1
                    taken_dpids.add(dpid)
                    best_bytes = max(best_bytes, fr.byte_count)
                    best_packets = max(best_packets, fr.packet_count)
                    best_duration = max(best_duration, fr.duration)
        for item in wildcards:
            fr, consumed = item
            if consumed or fr.timestamp < arrival.time:
                continue
            if fr.dpid not in on_path or fr.dpid in taken_dpids:
                continue
            if not fr.match.matches(arrival.flow):
                continue
            # At most one expiry report per switch belongs to one arrival;
            # later reports for the same 5-tuple describe re-occurrences.
            item[1] = True
            taken_dpids.add(fr.dpid)
            best_bytes = max(best_bytes, fr.byte_count)
            best_packets = max(best_packets, fr.packet_count)
            best_duration = max(best_duration, fr.duration)
        records.append(
            FlowRecord(
                arrival=arrival,
                byte_count=best_bytes,
                packet_count=best_packets,
                duration=best_duration,
            )
        )
    return records


@dataclass
class LogPartition:
    """A controller log partitioned into time intervals in one pass.

    The shared plan behind both the sharded parallel pipeline
    (:mod:`repro.core.parallel`) and the serial stability fast path
    (:mod:`repro.core.stability`): ``PacketIn``/``FlowRemoved`` messages
    are bucketed by interval while ``FlowMod`` replies stay global,
    keyed by ``in_reply_to`` (a pairing that is position-independent and
    therefore safe to consult from any interval).

    Attributes:
        mods_by_reply: every ``FlowMod``, keyed by its reply buffer id.
        pins_by_interval: ``PacketIn`` messages bucketed by interval.
        removed_by_interval: ``FlowRemoved`` messages bucketed likewise.
        removed_all: all ``FlowRemoved`` messages in log order.
        port_down: ``(timestamp, dpid, port)`` for each port-down event.
    """

    mods_by_reply: Dict[int, FlowMod]
    pins_by_interval: List[List[PacketIn]]
    removed_by_interval: List[List[FlowRemoved]]
    removed_all: List[FlowRemoved]
    port_down: List[Tuple[float, str, int]]


def partition_log(
    log: ControllerLog,
    bounds: Sequence[Tuple[float, float]],
    collect_pins: bool = True,
) -> Tuple[Optional[LogPartition], Optional[str]]:
    """Bucket a log's messages into the given time intervals, or decline.

    Returns ``(partition, None)`` on success and ``(None, reason)`` when
    the log cannot be partitioned without changing pairing semantics:
    ``FlowMod`` replies lacking ``in_reply_to`` (the ordered fallback
    consumption is stateful across the whole window) or duplicate reply
    ids (the winning reply would depend on the slice). Messages before
    the first upper bound land in interval 0 and messages at or after
    the last lower bound land in the final interval, so callers must
    only partition over the log's full time span.

    ``collect_pins=False`` skips the ``PacketIn`` bucketing (the
    buckets stay empty) for callers that already hold extracted
    arrivals and only need the reply-id validation plus the
    ``FlowRemoved`` buckets.
    """
    n = len(bounds)
    mods_by_reply: Dict[int, FlowMod] = {}
    pins_by_interval: List[List[PacketIn]] = [[] for _ in range(n)]
    removed_by_interval: List[List[FlowRemoved]] = [[] for _ in range(n)]
    removed_all: List[FlowRemoved] = []
    port_down: List[Tuple[float, str, int]] = []
    uppers = [b for _, b in bounds]
    idx = 0
    for msg in log:
        kind = type(msg)
        if kind is PacketIn or kind is FlowRemoved:
            ts = msg.timestamp
            while idx < n - 1 and ts >= uppers[idx]:
                idx += 1
            if kind is PacketIn:
                if collect_pins:
                    pins_by_interval[idx].append(msg)
            else:
                removed_all.append(msg)
                removed_by_interval[idx].append(msg)
        elif kind is FlowMod:
            reply_id = msg.in_reply_to
            if reply_id is None:
                return None, "flowmod_without_reply_id"
            if reply_id in mods_by_reply:
                return None, "duplicate_flowmod_reply_id"
            mods_by_reply[reply_id] = msg
        elif kind is PortStatus and not msg.live:
            port_down.append((msg.timestamp, msg.dpid, msg.port))
    return (
        LogPartition(
            mods_by_reply=mods_by_reply,
            pins_by_interval=pins_by_interval,
            removed_by_interval=removed_by_interval,
            removed_all=removed_all,
            port_down=port_down,
        ),
        None,
    )


def build_occurrence_runs(
    pins: Sequence[PacketIn],
    mods_by_reply: Dict[int, FlowMod],
    occurrence_gap: float,
) -> Dict[FlowKey, List[List[HopReport]]]:
    """Group time-ordered ``PacketIn`` messages into per-flow occurrence runs.

    The core grouping step shared by the parallel shard workers and the
    serial stability fast path: consecutive reports of one 5-tuple within
    ``occurrence_gap`` seconds extend the current run; a larger gap starts
    a new one. ``FlowMod`` pairing is by reply buffer id only — callers
    must have verified (via :func:`partition_log`) that every ``FlowMod``
    carries a unique ``in_reply_to``.
    """
    runs: Dict[FlowKey, List[List[HopReport]]] = {}
    last_ts: Dict[FlowKey, float] = {}
    for pin in pins:
        mod = mods_by_reply.get(pin.buffer_id)
        hop = HopReport(
            dpid=pin.dpid,
            in_port=pin.in_port,
            packet_in_at=pin.timestamp,
            flow_mod_at=mod.timestamp if mod else None,
            out_port=mod.out_port if mod else None,
        )
        flow = pin.flow
        prev = last_ts.get(flow)
        if prev is not None and not splits_occurrence(prev, pin.timestamp, occurrence_gap):
            runs[flow][-1].append(hop)
        else:
            runs.setdefault(flow, []).append([hop])
        last_ts[flow] = pin.timestamp
    return runs


def interval_flow_records(
    runs: Dict[FlowKey, List[List[HopReport]]],
    removed: Sequence[FlowRemoved],
    a: float,
    b: float,
) -> List[FlowRecord]:
    """An interval-semantics view of occurrence runs, joined with expiries.

    Mirrors what a serial ``log.window(a, b)`` rebuild would extract:
    only reports with ``a <= ts < b`` exist, so runs are truncated at the
    interval end and ``FlowMod`` pairings outside ``[a, b)`` are dropped
    (the hop keeps its ``PacketIn`` but loses the reply, exactly as if
    the controller had never answered inside the slice). ``removed`` is
    filtered to the slice the same way.
    """
    arrivals: List[FlowArrival] = []
    for flow, flow_runs in runs.items():
        for hops in flow_runs:
            ihops = [h for h in hops if h.packet_in_at < b]
            if not ihops:
                continue
            arrivals.append(
                FlowArrival(
                    flow=flow,
                    time=ihops[0].packet_in_at,
                    hops=tuple(
                        h
                        if h.flow_mod_at is None or a <= h.flow_mod_at < b
                        else HopReport(
                            dpid=h.dpid,
                            in_port=h.in_port,
                            packet_in_at=h.packet_in_at,
                        )
                        for h in ihops
                    ),
                )
            )
    arrivals.sort(key=arrival_sort_key)
    return join_flow_records(arrivals, [r for r in removed if r.timestamp < b])


def interval_flow_records_from_arrivals(
    arrivals: Sequence[FlowArrival],
    removed: Sequence[FlowRemoved],
    a: float,
    b: float,
) -> List[FlowRecord]:
    """The ``[a, b)`` interval view sliced out of full-window arrivals.

    Equivalent to :func:`interval_flow_records` over runs built from the
    interval's own ``PacketIn`` bucket: a full-window run's hops are
    time-ordered, so the hops falling inside ``[a, b)`` are a contiguous
    slice, and the occurrence-gap splits between them are the same ones
    per-interval grouping would make. Valid only when every ``FlowMod``
    pairing came via a unique ``in_reply_to`` (the
    :func:`partition_log` precondition) — positional fallback pairing is
    window-dependent and would diverge.

    Arrivals wholly inside the interval are reused as-is, so the common
    case allocates nothing per arrival.
    """
    out: List[FlowArrival] = []
    for arrival in arrivals:
        hops = arrival.hops
        if a <= hops[0].packet_in_at and hops[-1].packet_in_at < b:
            if all(
                h.flow_mod_at is None or a <= h.flow_mod_at < b for h in hops
            ):
                out.append(arrival)
                continue
            ihops = list(hops)
        else:
            ihops = [h for h in hops if a <= h.packet_in_at < b]
            if not ihops:
                continue
        out.append(
            FlowArrival(
                flow=arrival.flow,
                time=ihops[0].packet_in_at,
                hops=tuple(
                    h
                    if h.flow_mod_at is None or a <= h.flow_mod_at < b
                    else HopReport(
                        dpid=h.dpid,
                        in_port=h.in_port,
                        packet_in_at=h.packet_in_at,
                    )
                    for h in ihops
                ),
            )
        )
    out.sort(key=arrival_sort_key)
    return join_flow_records(out, [r for r in removed if r.timestamp < b])


def timed_flows(log: ControllerLog, dedup_window: float = 0.0) -> List[Tuple[float, FlowKey]]:
    """Flatten a log into (time, flow) pairs, one per flow arrival.

    The representation task mining consumes. ``dedup_window`` > 0 collapses
    repeat reports of the same 5-tuple within the window (the per-switch
    PacketIn fan-out), keeping the first.
    """
    out: List[Tuple[float, FlowKey]] = []
    last: Dict[FlowKey, float] = {}
    for pin in log.packet_ins():
        prev = last.get(pin.flow)
        if prev is not None and dedup_window > 0 and pin.timestamp - prev <= dedup_window:
            continue
        last[pin.flow] = pin.timestamp
        out.append((pin.timestamp, pin.flow))
    return out
