"""The flow-statistics (FS) application signature.

"We use the control traffic measurements to compute the flow duration, the
byte count, and the packet count of each flow corresponding to each
application group. We also measure max, min, and average flow counts and
volumes per unit of time" (Section III-B). Byte counts and durations come
from ``FlowRemoved`` counters; arrival rates from ``PacketIn`` timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import EmpiricalCDF, mean_std
from repro.analysis.timeseries import epoch_counts
from repro.core.events import FlowRecord
from repro.core.signatures.base import (
    ChangeRecord,
    JsonDict,
    Signature,
    SignatureKind,
    decode_edge,
    edge_component,
    encode_edge,
)

Edge = Tuple[str, str]
#: Raw per-record row retained by partial builds: (arrival time, byte
#: count, packet count, duration, src, dst). Everything ``build`` consumes.
Row = Tuple[float, int, int, float, str, str]


@dataclass(frozen=True)
class RateSummary:
    """Max / min / average of a per-unit-time series."""

    maximum: float
    minimum: float
    average: float

    @classmethod
    def of(cls, series: Sequence[float]) -> "RateSummary":
        """Summarize a series; zeros for an empty one."""
        if not series:
            return cls(0.0, 0.0, 0.0)
        return cls(
            maximum=max(series),
            minimum=min(series),
            average=sum(series) / len(series),
        )


@dataclass(frozen=True)
class FlowStats(Signature):
    """Volume-dimension statistics of one application group's flows.

    Attributes:
        flow_count: number of flow occurrences observed.
        byte_mean/byte_std: per-flow byte-count moments.
        duration_mean/duration_std: per-flow duration moments.
        packet_mean: per-flow packet-count mean.
        flows_per_sec: max/min/avg flow arrivals per second.
        bytes_per_sec: max/min/avg volume per second.
        per_edge_bytes: total bytes per CG edge (localizes volume shifts).
        byte_samples: raw per-flow byte counts (kept for CDF plots and the
            Figure 9 comparison; sample count is bounded by the log window).
        rows: raw per-record rows, retained only by partial builds
            (``keep_rows=True``) so :meth:`merge` can re-finalize exactly;
            empty on normal builds and never persisted.
    """

    flow_count: int
    byte_mean: float
    byte_std: float
    duration_mean: float
    duration_std: float
    packet_mean: float
    flows_per_sec: RateSummary
    bytes_per_sec: RateSummary
    per_edge_bytes: Tuple[Tuple[Edge, int], ...]
    byte_samples: Tuple[int, ...] = ()
    rows: Tuple[Row, ...] = ()

    @classmethod
    def build(
        cls,
        records: Sequence[FlowRecord],
        t_start: float,
        t_end: float,
        epoch: float = 1.0,
        keep_rows: bool = False,
    ) -> "FlowStats":
        """Build FS over records of one group within ``[t_start, t_end)``.

        With ``keep_rows=True`` the raw per-record rows are retained on
        the result, making it a *partial* signature that :meth:`merge`
        can combine with neighbors.
        """
        rows = tuple(
            (
                r.arrival.time,
                r.byte_count,
                r.packet_count,
                r.duration,
                r.arrival.src,
                r.arrival.dst,
            )
            for r in records
        )
        return cls._from_rows(rows, t_start, t_end, epoch, keep_rows)

    @classmethod
    def merge(
        cls,
        parts: Sequence["FlowStats"],
        t_start: float,
        t_end: float,
        epoch: float = 1.0,
        keep_rows: bool = False,
    ) -> "FlowStats":
        """Combine partial signatures built with ``keep_rows=True``.

        ``parts`` must cover disjoint, time-contiguous slices of one
        record stream, given in time order; the result is then identical
        (bit for bit — float accumulation order is preserved) to a single
        build over the full stream with window ``[t_start, t_end)``.
        Associative: merged partials re-merge freely as long as
        ``keep_rows=True`` is threaded through the intermediate merges.

        Raises:
            ValueError: if a non-empty part retained no rows.
        """
        rows: List[Row] = []
        for part in parts:
            if part.flow_count and not part.rows:
                raise ValueError(
                    "FlowStats.merge needs partials built with keep_rows=True"
                )
            rows.extend(part.rows)
        return cls._from_rows(tuple(rows), t_start, t_end, epoch, keep_rows)

    @classmethod
    def _from_rows(
        cls,
        rows: Tuple[Row, ...],
        t_start: float,
        t_end: float,
        epoch: float,
        keep_rows: bool,
    ) -> "FlowStats":
        with_counters = [row for row in rows if row[1] > 0]
        bytes_list = [float(row[1]) for row in with_counters]
        byte_mean, byte_std = mean_std(bytes_list)
        duration_mean, duration_std = mean_std(
            [row[3] for row in with_counters]
        )
        packet_mean, _ = mean_std([float(row[2]) for row in with_counters])

        times = [row[0] for row in rows]
        span = max(t_end - t_start, 1e-9)
        if times and span > epoch:
            counts = epoch_counts(times, t_start, t_end, epoch)
            flows_rate = RateSummary.of([c / epoch for c in counts])
        else:
            flows_rate = RateSummary.of([len(times) / span] if times else [])

        volume_series: List[float] = []
        if with_counters and span > epoch:
            buckets: Dict[int, float] = {}
            for row in with_counters:
                idx = int((row[0] - t_start) // epoch)
                buckets[idx] = buckets.get(idx, 0.0) + row[1]
            n_buckets = int(span // epoch) or 1
            volume_series = [buckets.get(i, 0.0) / epoch for i in range(n_buckets)]
        bytes_rate = RateSummary.of(volume_series)
        # The series average is biased low in short windows: flows arriving
        # near the window end expire (and report their counters) *after*
        # it, so their volume is missing. byte_mean is unbiased (computed
        # only over counter-bearing flows) and the PacketIn-based flow rate
        # is complete, so their product is the unbiased volume rate.
        if with_counters:
            bytes_rate = RateSummary(
                maximum=bytes_rate.maximum,
                minimum=bytes_rate.minimum,
                average=byte_mean * flows_rate.average,
            )

        per_edge: Dict[Edge, int] = {}
        for row in with_counters:
            edge = (row[4], row[5])
            per_edge[edge] = per_edge.get(edge, 0) + row[1]

        return cls(
            flow_count=len(rows),
            byte_mean=byte_mean,
            byte_std=byte_std,
            duration_mean=duration_mean,
            duration_std=duration_std,
            packet_mean=packet_mean,
            flows_per_sec=flows_rate,
            bytes_per_sec=bytes_rate,
            per_edge_bytes=tuple(sorted(per_edge.items())),
            byte_samples=tuple(row[1] for row in with_counters),
            rows=rows if keep_rows else (),
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding: scalar summaries only.

        Raw ``byte_samples`` and ``rows`` are deliberately dropped — the
        persisted model diffs identically but cannot re-plot sample-level
        CDFs (the module docstring of :mod:`repro.core.persist` owns that
        trade-off).
        """
        return {
            "flow_count": self.flow_count,
            "byte_mean": self.byte_mean,
            "byte_std": self.byte_std,
            "duration_mean": self.duration_mean,
            "duration_std": self.duration_std,
            "packet_mean": self.packet_mean,
            "flows_per_sec": [
                self.flows_per_sec.maximum,
                self.flows_per_sec.minimum,
                self.flows_per_sec.average,
            ],
            "bytes_per_sec": [
                self.bytes_per_sec.maximum,
                self.bytes_per_sec.minimum,
                self.bytes_per_sec.average,
            ],
            "per_edge_bytes": [
                [encode_edge(e), b] for e, b in self.per_edge_bytes
            ],
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "FlowStats":
        """Rebuild from :meth:`to_dict` output (samples stay empty)."""
        return cls(
            flow_count=data["flow_count"],
            byte_mean=data["byte_mean"],
            byte_std=data["byte_std"],
            duration_mean=data["duration_mean"],
            duration_std=data["duration_std"],
            packet_mean=data["packet_mean"],
            flows_per_sec=RateSummary(*data["flows_per_sec"]),
            bytes_per_sec=RateSummary(*data["bytes_per_sec"]),
            per_edge_bytes=tuple(
                (decode_edge(e), b) for e, b in data["per_edge_bytes"]
            ),
            byte_samples=(),
        )

    def byte_cdf(self) -> EmpiricalCDF:
        """Empirical CDF of per-flow byte counts (Figure 9(a))."""
        return EmpiricalCDF.from_values(float(b) for b in self.byte_samples)

    def scalar_summary(self) -> Tuple[float, float, float, float]:
        """The four scalars :meth:`distance` compares, in a fixed order.

        The feature row the vectorized stability path batches into an
        array (:mod:`repro.core.vectorized`); kept next to ``distance``
        so the two can never drift apart silently.
        """
        return (
            self.byte_mean,
            self.duration_mean,
            self.flows_per_sec.average,
            self.bytes_per_sec.average,
        )

    def distance(self, other: "FlowStats") -> float:
        """Maximum relative change across the scalar summaries."""
        return max(
            _relative(base, current)
            for base, current in zip(self.scalar_summary(), other.scalar_summary())
        )

    def diff(
        self, other: "FlowStats", scope: str, threshold: float = 0.3
    ) -> List[ChangeRecord]:
        """Scalar comparisons with relative-change thresholds (Section IV-A)."""
        changes: List[ChangeRecord] = []
        scalars = [
            ("byte count mean", self.byte_mean, other.byte_mean),
            ("duration mean", self.duration_mean, other.duration_mean),
            (
                "flow rate avg",
                self.flows_per_sec.average,
                other.flows_per_sec.average,
            ),
            (
                "volume avg",
                self.bytes_per_sec.average,
                other.bytes_per_sec.average,
            ),
        ]
        for label, base, cur in scalars:
            rel = _relative(base, cur)
            if rel > threshold:
                components = self._changed_edges(other, threshold)
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.FS,
                        scope=scope,
                        description=(
                            f"{label} changed {base:.1f} -> {cur:.1f} "
                            f"({rel * 100.0:.0f}%)"
                        ),
                        components=components,
                        magnitude=rel,
                    )
                )
        return changes

    def _changed_edges(self, other: "FlowStats", threshold: float) -> frozenset:
        base = dict(self.per_edge_bytes)
        cur = dict(other.per_edge_bytes)
        out = set()
        for edge in set(base) | set(cur):
            if _relative(base.get(edge, 0), cur.get(edge, 0)) > threshold:
                out.add(edge[0])
                out.add(edge[1])
                out.add(edge_component(*edge))
        return frozenset(out)


def _relative(base: float, current: float) -> float:
    """Symmetric relative change; 0 when both are ~zero, 1 when one is."""
    denominator = max(abs(base), abs(current))
    if denominator < 1e-12:
        return 0.0
    return abs(current - base) / denominator
