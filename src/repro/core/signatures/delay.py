"""The delay-distribution (DD) application signature.

"The delays between dependent flows are time-invariant and can be used as
a reliable indicator of dependencies ... the most frequent delay value is
the processing time at the application node. We use peaks of the delay
distribution frequency as one of the application signatures"
(Section III-B, following Orion). For every node, every (incoming edge,
outgoing edge) pair collects the delays between each incoming flow arrival
and the outgoing flow arrivals that follow it within a window; histogram
peaks of those delays are the signature. A peak shift beyond the operator
threshold flags performance degradation at the connecting server
(Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import EmpiricalCDF, histogram_peaks
from repro.core.events import FlowArrival
from repro.core.signatures.base import (
    ChangeRecord,
    JsonDict,
    Signature,
    SignatureKind,
    decode_pair,
    edge_component,
    encode_pair,
    finite_or_flag,
)

Edge = Tuple[str, str]
#: An (incoming edge, outgoing edge) pair sharing a middle node.
EdgePair = Tuple[Edge, Edge]


@dataclass(frozen=True)
class DelayDistribution(Signature):
    """Inter-flow delay peaks for each dependent edge pair of a group.

    Attributes:
        samples: per edge pair, the raw delay samples (seconds), pairing
            each incoming flow with every outgoing flow in the window —
            the distribution whose histogram peaks identify processing
            times even under interleaving.
        first_samples: per edge pair, only the delay to the *first*
            outgoing flow after each incoming flow — the tighter causal
            estimate used for mean-shift detection and the Figure 9(b)
            CDFs (an all-pairs mean would be diluted by later unrelated
            flows).
        peaks: per edge pair, ``(delay, count)`` histogram peaks, dominant
            first.
        bin_width: histogram bin width used for peak extraction (the paper
            plots 20 ms bins).
        events: raw ``(time, src, dst)`` arrival events, retained only by
            partial builds (``keep_events=True``) so :meth:`merge` can
            re-pair across part boundaries; empty on normal builds and
            never persisted.
    """

    samples: Tuple[Tuple[EdgePair, Tuple[float, ...]], ...]
    first_samples: Tuple[Tuple[EdgePair, Tuple[float, ...]], ...]
    peaks: Tuple[Tuple[EdgePair, Tuple[Tuple[float, int], ...]], ...]
    bin_width: float = 0.02
    events: Tuple[Tuple[float, str, str], ...] = ()

    @classmethod
    def build(
        cls,
        arrivals: Sequence[FlowArrival],
        window: float = 1.0,
        bin_width: float = 0.02,
        max_pairs_per_in: int = 8,
        min_peak_count: int = 3,
        keep_events: bool = False,
    ) -> "DelayDistribution":
        """Collect inter-flow delays at every node of a group.

        Args:
            arrivals: the group's flow arrivals.
            window: how long after an incoming flow an outgoing flow can
                still be considered potentially dependent.
            bin_width: histogram bin width in seconds.
            max_pairs_per_in: cap on outgoing flows paired with one
                incoming flow (bounds quadratic blowup under bursts; true
                dependency peaks survive because they recur).
            min_peak_count: minimum bin count for a peak to register.
            keep_events: retain the raw arrival events, making the result
                a partial signature that :meth:`merge` can combine.
        """
        events = tuple((a.time, a.src, a.dst) for a in arrivals)
        return cls._from_events(
            events, window, bin_width, max_pairs_per_in, min_peak_count, keep_events
        )

    @classmethod
    def merge(
        cls,
        parts: Sequence["DelayDistribution"],
        window: float = 1.0,
        bin_width: float = 0.02,
        max_pairs_per_in: int = 8,
        min_peak_count: int = 3,
        keep_events: bool = False,
    ) -> "DelayDistribution":
        """Combine partial DDs built with ``keep_events=True``.

        Pairing of incoming with outgoing flows crosses slice boundaries
        (an incoming flow near a boundary pairs with outgoing flows up to
        ``window`` seconds into the next slice), so the merge re-runs the
        pairing over the concatenated raw events. The internal sorting of
        per-node event lists makes the result independent of part order;
        the construction parameters must match the parts' builds.

        Raises:
            ValueError: if a non-empty part retained no events.
        """
        events: List[Tuple[float, str, str]] = []
        for part in parts:
            if part.samples and not part.events:
                raise ValueError(
                    "DelayDistribution.merge needs partials built with "
                    "keep_events=True"
                )
            events.extend(part.events)
        return cls._from_events(
            tuple(events), window, bin_width, max_pairs_per_in, min_peak_count,
            keep_events,
        )

    @classmethod
    def _from_events(
        cls,
        events: Tuple[Tuple[float, str, str], ...],
        window: float,
        bin_width: float,
        max_pairs_per_in: int,
        min_peak_count: int,
        keep_events: bool,
    ) -> "DelayDistribution":
        incoming: Dict[str, List[Tuple[float, Edge]]] = {}
        outgoing: Dict[str, List[Tuple[float, Edge]]] = {}
        for time, src, dst in events:
            edge = (src, dst)
            outgoing.setdefault(src, []).append((time, edge))
            incoming.setdefault(dst, []).append((time, edge))

        delays: Dict[EdgePair, List[float]] = {}
        first_delays: Dict[EdgePair, List[float]] = {}
        for node, in_list in incoming.items():
            out_list = sorted(outgoing.get(node, []))
            if not out_list:
                continue
            out_times = [t for t, _ in out_list]
            for t_in, in_edge in sorted(in_list):
                # Binary search for the first outgoing flow after t_in.
                lo, hi = 0, len(out_times)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if out_times[mid] <= t_in:
                        lo = mid + 1
                    else:
                        hi = mid
                paired = 0
                seen_pairs = set()
                for t_out, out_edge in out_list[lo:]:
                    if t_out - t_in > window or paired >= max_pairs_per_in:
                        break
                    pair = (in_edge, out_edge)
                    delays.setdefault(pair, []).append(t_out - t_in)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        first_delays.setdefault(pair, []).append(t_out - t_in)
                    paired += 1

        peaks = {
            pair: tuple(
                histogram_peaks(vals, bin_width, min_count=min_peak_count)
            )
            for pair, vals in delays.items()
        }
        return cls(
            samples=tuple(
                (pair, tuple(vals)) for pair, vals in sorted(delays.items())
            ),
            first_samples=tuple(
                (pair, tuple(vals)) for pair, vals in sorted(first_delays.items())
            ),
            peaks=tuple(sorted(peaks.items())),
            bin_width=bin_width,
            events=events if keep_events else (),
        )

    def to_dict(self) -> JsonDict:
        """The persisted-JSON encoding: per-pair summaries, no raw samples.

        Peaks plus the first-pairing mean/SE/count per pair — everything
        diffing consumes. ``inf`` standard errors travel as the ``-1.0``
        sentinel (JSON has no infinity).
        """
        return {
            "bin_width": self.bin_width,
            # Persist summaries, not raw samples: peaks plus the
            # first-pairing mean/SE/count per pair.
            "pairs": [
                {
                    "pair": encode_pair(pair),
                    "peaks": [
                        list(p) for p in dict(self.peaks).get(pair, ())
                    ],
                    "mean": self.mean_delay(pair),
                    "stderr": finite_or_flag(self.mean_standard_error(pair)),
                    "n": len(self.samples_for(pair)),
                    "n_first": len(self.first_samples_for(pair)),
                }
                for pair in self.pairs()
            ],
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "DelayDistribution":
        """Rebuild from :meth:`to_dict` output.

        Returns a :class:`PersistedDelayDistribution` — diffs identically
        to the original but cannot re-plot sample-level CDFs.
        """
        return PersistedDelayDistribution(data["pairs"], data["bin_width"])

    def pairs(self) -> List[EdgePair]:
        """All edge pairs with delay samples."""
        return [p for p, _ in self.samples]

    def samples_for(self, pair: EdgePair) -> Tuple[float, ...]:
        """Raw (all-pairings) delays for one edge pair."""
        for p, vals in self.samples:
            if p == pair:
                return vals
        return ()

    def first_samples_for(self, pair: EdgePair) -> Tuple[float, ...]:
        """First-pairing (causal-estimate) delays for one edge pair."""
        for p, vals in self.first_samples:
            if p == pair:
                return vals
        return ()

    def dominant_peak(self, pair: EdgePair, prominence: float = 1.5) -> float:
        """The most frequent delay for an edge pair; -1 when unknown.

        A dominant peak must stand out: its bin count must be at least
        ``prominence`` times the runner-up's, else the distribution is
        multi-modal (e.g. a reverse-direction pair mixing several causal
        chains) and no single processing time can be attributed — such
        pairs are excluded from stability and diffing rather than allowed
        to flap between near-equal modes.
        """
        for p, pk in self.peaks:
            if p == pair and pk:
                if len(pk) > 1 and pk[0][1] < prominence * pk[1][1]:
                    return -1.0
                return pk[0][0]
        return -1.0

    def delay_cdf(self, pair: EdgePair) -> EmpiricalCDF:
        """Empirical CDF of one pair's first-pairing delays (Figure 9(b))."""
        return EmpiricalCDF.from_values(self.first_samples_for(pair))

    def peak_map(self, prominence: float = 1.5) -> Dict[EdgePair, float]:
        """:meth:`dominant_peak` for every sampled pair, in one pass.

        Per-pair :meth:`dominant_peak` calls rescan ``peaks`` each time,
        which makes pairwise distances quadratic in the pair count; this
        is the linear batch form ``distance`` and the vectorized
        stability path (:mod:`repro.core.vectorized`) share. Values are
        the dominant delay, or ``-1.0`` for unknown/multi-modal pairs.
        """
        peaks_by_pair = dict(self.peaks)
        out: Dict[EdgePair, float] = {}
        for pair, _vals in self.samples:
            pk = peaks_by_pair.get(pair)
            if not pk or (len(pk) > 1 and pk[0][1] < prominence * pk[1][1]):
                out[pair] = -1.0
            else:
                out[pair] = pk[0][0]
        return out

    def distance(self, other: "DelayDistribution") -> float:
        """Largest dominant-peak shift (seconds) across common edge pairs."""
        worst = 0.0
        mine = self.peak_map()
        theirs = other.peak_map()
        for pair in set(mine) & set(theirs):
            p1, p2 = mine[pair], theirs[pair]
            if p1 >= 0 and p2 >= 0:
                worst = max(worst, abs(p1 - p2))
        return worst

    def mean_delay(self, pair: EdgePair) -> float:
        """Mean first-pairing delay for an edge pair; -1 when no samples."""
        vals = self.first_samples_for(pair)
        if not vals:
            return -1.0
        return sum(vals) / len(vals)

    def mean_standard_error(self, pair: EdgePair) -> float:
        """Standard error of the first-pairing delay mean; inf when unknown.

        Used to scale the mean-shift significance test: a pair whose
        delays mix several causal chains (e.g. the end-to-end
        client-to-client pair) has a high-variance mean, and a fixed
        threshold there would alarm on sampling noise.
        """
        vals = self.first_samples_for(pair)
        if len(vals) < 2:
            return float("inf")
        mean = sum(vals) / len(vals)
        var = sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
        return (var / len(vals)) ** 0.5

    def diff(
        self,
        other: "DelayDistribution",
        scope: str,
        shift_threshold: float = 0.03,
        mean_threshold: float = 0.015,
    ) -> List[ChangeRecord]:
        """Flag edge pairs whose delay distribution moved beyond the threshold.

        Two detectors per edge pair, either sufficing:

        * **peak shift** — the dominant mode moved (a server slowed on
          every request, e.g. logging overhead);
        * **mean shift** — the distribution's mass moved even though the
          mode held (a minority of flows delayed heavily, e.g. the
          retransmission tail that packet loss produces in Figure 9(b)).
          The shift must clear both the absolute ``mean_threshold`` and a
          4-standard-error significance bar, so pairs whose means are
          intrinsically noisy (long multi-hop chains) do not alarm on
          sampling variation.

        The implicated component is the server connecting the two edges —
        "the server that connects the two edges may experience performance
        degradation" (Section IV-A).
        """
        changes: List[ChangeRecord] = []
        for pair in sorted(set(self.pairs()) & set(other.pairs())):
            base_peak = self.dominant_peak(pair)
            cur_peak = other.dominant_peak(pair)
            # A strongly unimodal baseline pair whose current distribution
            # no longer has any dominant mode lost its causal structure —
            # e.g. a server so slow that responses now interleave across
            # requests. That collapse is itself a delay anomaly.
            if (
                self.dominant_peak(pair, prominence=2.0) >= 0
                and cur_peak < 0
                and len(other.samples_for(pair)) >= 30
            ):
                in_edge, out_edge = pair
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.DD,
                        scope=scope,
                        description=(
                            f"delay structure {in_edge}->{out_edge} collapsed "
                            f"(peak at {base_peak * 1000:.0f}ms lost)"
                        ),
                        components=frozenset(
                            {
                                in_edge[1],
                                edge_component(*in_edge),
                                edge_component(*out_edge),
                            }
                        ),
                        magnitude=max(
                            abs(other.mean_delay(pair) - self.mean_delay(pair)),
                            self.bin_width,
                        ),
                    )
                )
                continue
            peak_shift = (
                abs(cur_peak - base_peak) if base_peak >= 0 and cur_peak >= 0 else 0.0
            )
            base_mean = self.mean_delay(pair)
            cur_mean = other.mean_delay(pair)
            mean_shift = (
                abs(cur_mean - base_mean) if base_mean >= 0 and cur_mean >= 0 else 0.0
            )
            # Mean comparisons are only meaningful for unimodal pairs —
            # multi-modal mixtures move their mean with workload mix — and
            # only where the first-pairing estimator is *coherent* with
            # the causal peak: when the mean sits far from the dominant
            # mode, the first pairings are contaminated by cross-request
            # interleaving and the mean tracks workload rate, not server
            # behavior.
            if base_peak < 0 or cur_peak < 0:
                mean_shift = 0.0
            elif abs(base_mean - base_peak) > 1.5 * self.bin_width:
                mean_shift = 0.0
            stderr = max(
                self.mean_standard_error(pair),
                other.mean_standard_error(pair),
            )
            mean_significant = (
                mean_shift > mean_threshold and mean_shift > 4.0 * stderr
            )
            significant = peak_shift > shift_threshold or mean_significant
            shift = max(peak_shift, mean_shift)
            if significant:
                in_edge, out_edge = pair
                node = in_edge[1]
                what = "peak" if peak_shift >= mean_shift else "mean"
                base_v = base_peak if what == "peak" else base_mean
                cur_v = cur_peak if what == "peak" else cur_mean
                changes.append(
                    ChangeRecord(
                        kind=SignatureKind.DD,
                        scope=scope,
                        description=(
                            f"delay {what} {in_edge}->{out_edge} moved "
                            f"{base_v * 1000:.0f}ms -> {cur_v * 1000:.0f}ms"
                        ),
                        components=frozenset(
                            {node, edge_component(*in_edge), edge_component(*out_edge)}
                        ),
                        magnitude=shift,
                    )
                )
        return changes


class PersistedDelayDistribution(DelayDistribution):
    """A DelayDistribution reloaded from summaries (no raw samples).

    Overrides the sample-derived accessors to return the persisted
    mean/SE; ``samples``/``first_samples`` hold placeholder tuples sized
    to the original sample counts so length-based guards (e.g. the
    structure-collapse detector's minimum-sample check) behave the same.
    """

    def __init__(self, pairs: List[JsonDict], bin_width: float) -> None:
        samples = []
        first_samples = []
        peaks = []
        self._means: Dict[EdgePair, float] = {}
        self._stderrs: Dict[EdgePair, float] = {}
        for entry in pairs:
            pair = decode_pair(entry["pair"])
            samples.append((pair, (0.0,) * entry["n"]))
            first_samples.append((pair, (0.0,) * entry["n_first"]))
            peaks.append((pair, tuple(tuple(p) for p in entry["peaks"])))
            self._means[pair] = entry["mean"]
            stderr = entry["stderr"]
            self._stderrs[pair] = float("inf") if stderr < 0 else stderr
        object.__setattr__(self, "samples", tuple(samples))
        object.__setattr__(self, "first_samples", tuple(first_samples))
        object.__setattr__(self, "peaks", tuple(peaks))
        object.__setattr__(self, "bin_width", bin_width)
        object.__setattr__(self, "events", ())

    def mean_delay(self, pair: EdgePair) -> float:  # noqa: D102 - inherited
        return self._means.get(pair, -1.0)

    def mean_standard_error(self, pair: EdgePair) -> float:  # noqa: D102
        return self._stderrs.get(pair, float("inf"))

    def delay_cdf(self, pair: EdgePair) -> EmpiricalCDF:  # noqa: D102
        raise NotImplementedError(
            "raw delay samples are not persisted; rebuild from the log"
        )
